#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # pram-sssp — Deterministic PRAM approximate shortest paths
//!
//! A comprehensive Rust reproduction of
//!
//! > Michael Elkin and Shaked Matar.
//! > *Deterministic PRAM Approximate Shortest Paths in Polylogarithmic Time
//! > and Slightly Super-Linear Work.* SPAA 2021 (arXiv:2009.14729).
//!
//! The paper gives the first **deterministic** parallel (PRAM) algorithm
//! computing `(1+ε)`-approximate single-source shortest paths in
//! polylogarithmic time with `O(|E|·n^ρ)` work, built on the first
//! efficient deterministic parallel construction of **hopsets**. The
//! derandomization engine is the replacement of random sampling in the
//! superclustering-and-interconnection framework by deterministic
//! `(3, 2·log n)`-**ruling sets** over virtual cluster graphs.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`pgraph`] — graphs, generators, exact oracles;
//! * [`pram`] — the PRAM work/depth cost model and parallel primitives;
//! * [`hopset`] — the paper's contribution: deterministic hopsets
//!   (Theorem 3.7), the weight reduction (Theorem C.2), path reporting
//!   (Theorems 4.6/D.2) and the randomized comparison baseline;
//! * [`sssp`] — the applications behind one facade: the owned,
//!   thread-safe [`sssp::Oracle`] serving aSSSD/aMSSD (Theorem 3.8),
//!   `(1+ε)`-shortest-path trees, and the exact baselines through the
//!   [`sssp::DistanceOracle`] trait.
//!
//! ## Quickstart
//!
//! ```
//! use pram_sssp::prelude::*;
//!
//! // A weighted graph (road-network-like grid). The oracle takes
//! // ownership (internally an Arc<Graph>).
//! let g = pgraph::gen::road_grid(12, 12, 7, 1.0, 10.0);
//!
//! // One fluent configuration path: stretch 1+ε, sparsity κ; the plain
//! // vs weight-reduced pipeline is picked from the aspect-ratio bound.
//! let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
//!
//! // The same built object answers every query.
//! let approx = oracle.distances_from(0).unwrap();
//! let d_pair = oracle.distance(0, 77).unwrap();
//! assert!((d_pair - approx[77]).abs() < 1e-12);
//!
//! // Compare against the exact oracle: never below, at most (1+ε) above.
//! let exact = pgraph::exact::dijkstra(oracle.graph(), 0).dist;
//! for v in 0..oracle.num_vertices() {
//!     assert!(approx[v] >= exact[v] - 1e-9);
//!     assert!(approx[v] <= oracle.stretch_bound() * exact[v] + 1e-9);
//! }
//!
//! // Share it: Oracle is Send + Sync, so Arc<Oracle> serves threads.
//! let shared = std::sync::Arc::new(oracle);
//! let handle = {
//!     let o = std::sync::Arc::clone(&shared);
//!     std::thread::spawn(move || o.distances_from(5).unwrap())
//! };
//! assert_eq!(handle.join().unwrap()[5], 0.0);
//!
//! // Serving: a bounded, deterministic LRU source cache in front —
//! // hot sources answer from a cached row, bit-identical to cold.
//! let served = CachedOracle::new(std::sync::Arc::clone(&shared), 4).unwrap();
//! let cold = served.distances_from(0).unwrap(); // miss: fills the cache
//! let warm = served.distances_from(0).unwrap(); // hit: no exploration
//! assert_eq!(cold, warm);
//! assert_eq!(served.stats().hits, 1);
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md`/`EXPERIMENTS.md`
//! for the reproduction methodology and measured results.

pub use hopset;
pub use pgraph;
pub use pram;
pub use sssp;

/// The most commonly used items in one import.
pub mod prelude {
    pub use hopset::path_report::{build_spt, validate_spt, SptResult};
    pub use hopset::reduction::build_reduced_hopset;
    pub use hopset::{build_hopset, BuildOptions, BuiltHopset, HopsetParams, ParamMode};
    pub use pgraph::{exact, gen, Graph, GraphBuilder, UnionGraph, UnionView, INF};
    pub use pram::{Executor, Ledger};
    pub use sssp::{
        delta_stepping, AdmissionConfig, CacheConfig, CacheStats, CachedOracle, CachedRow,
        DeltaSteppingOracle, DijkstraOracle, DistanceMatrix, DistanceOracle, FillPolicy,
        LandmarkBounds, LandmarkConfig, LandmarkPlane, MultiSourceResult, Oracle, OracleBuilder,
        Pipeline, SnapshotError, SsspError,
    };
    #[allow(deprecated)]
    pub use sssp::{ApproxShortestPaths, ApproxSptEngine};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn umbrella_reexports_compose() {
        let g = gen::path(16);
        let oracle = Oracle::builder(g).eps(0.5).kappa(4).build().unwrap();
        let d = oracle.distances_from(0).unwrap();
        assert!((d[15] - 15.0).abs() <= 15.0 * 0.5 + 1e-9);
        assert_eq!(oracle.distance(0, 15).unwrap(), d[15]);
    }
}
