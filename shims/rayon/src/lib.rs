//! Sequential, API-compatible stand-in for the subset of `rayon` this
//! workspace uses (the build environment has no registry access; see
//! `shims/README.md`).
//!
//! Every `par_*` entry point returns a plain `std` iterator, so downstream
//! adaptor chains (`map`, `zip`, `enumerate`, `for_each`, `collect`, …)
//! come from `std::iter::Iterator` unchanged. The one adaptor rayon has and
//! `std` lacks (`reduce_with`) is supplied by [`ParallelIterator`].
//!
//! Because all call sites in this workspace are order-independent
//! reductions or order-preserving maps (that is the repo's determinism
//! contract), sequential execution is *observably identical* to rayon up to
//! wall-clock time. Swapping the real rayon back in is a one-line change in
//! the root `Cargo.toml`.

use std::cmp::Ordering;
use std::fmt;

pub mod prelude {
    //! The drop-in equivalent of `rayon::prelude::*`.
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// `into_par_iter()` for any owned iterable (ranges, vectors, …).
pub trait IntoParallelIterator {
    /// The element type.
    type Item;
    /// The iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Convert into a (sequentially executed) "parallel" iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Adaptors rayon's `ParallelIterator` offers beyond `std::iter::Iterator`.
pub trait ParallelIterator: Iterator + Sized {
    /// Reduce with a binary operation; `None` on an empty iterator.
    fn reduce_with<F>(self, op: F) -> Option<Self::Item>
    where
        F: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.reduce(op)
    }

    /// Splitting-granularity hint; a no-op sequentially.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelIterator for I {}

/// `par_iter`/`par_chunks` over shared slices.
pub trait ParallelSlice<T> {
    /// Iterate the slice ("in parallel").
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
    /// Fixed-size chunks of the slice ("in parallel").
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `par_iter_mut`/`par_chunks_mut`/`par_sort_*` over mutable slices.
pub trait ParallelSliceMut<T> {
    /// Iterate the slice mutably.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    /// Fixed-size mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    /// Stable sort by comparator (rayon's parallel merge sort is stable;
    /// so is this).
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering;
    /// Stable sort by key.
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K;
    /// Unstable sort by comparator.
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
    fn par_sort_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering,
    {
        self.sort_by(cmp);
    }
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K,
    {
        self.sort_by_key(key);
    }
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering,
    {
        self.sort_unstable_by(cmp);
    }
}

/// Run two closures "in parallel" (sequentially here) and return both
/// results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of worker threads the current pool uses (always 1 in the shim).
pub fn current_num_threads() -> usize {
    1
}

/// Builder mirroring `rayon::ThreadPoolBuilder`; thread count is recorded
/// but execution stays sequential.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a worker count (recorded, not enforced).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Build the pool; never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.max(1),
        })
    }
}

/// A "thread pool": `install` simply runs the closure on the current
/// thread. Correct for this workspace because every parallel region is
/// deterministic and order-independent.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Execute `op` inside the pool.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// The recorded worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Error from [`ThreadPoolBuilder::build`]; never produced by the shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_chain_matches_sequential() {
        let v: Vec<u32> = (0..100).collect();
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled[99], 198);
        let s: u32 = (0..10u32).into_par_iter().sum();
        assert_eq!(s, 45);
        let m = v.par_iter().copied().reduce_with(u32::max);
        assert_eq!(m, Some(99));
    }

    #[test]
    fn pool_installs() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
        assert_eq!(pool.current_num_threads(), 4);
    }

    #[test]
    fn par_sorts_are_stable_where_promised() {
        let mut v: Vec<(u32, u32)> = (0..100).map(|i| (i % 3, i)).collect();
        v.par_sort_by_key(|&(k, _)| k);
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }
}
