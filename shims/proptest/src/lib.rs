//! Local stand-in for the subset of `proptest` this workspace uses:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! range/tuple/`any`/`collection::vec` strategies, `ProptestConfig`, and
//! the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted for a hermetic
//! build (see `shims/README.md`):
//!
//! * **no shrinking** — a failing case reports its case number and message
//!   but is not minimized (this repo's property tests draw small tuples by
//!   design, so shrinking matters little);
//! * **deterministic RNG** — cases are generated from a fixed per-test
//!   seed (hash of module path + test name + case index), so failures
//!   reproduce exactly across runs and machines;
//! * no persistence files, no forking, no timeout handling.

pub mod test_runner {
    //! Configuration and failure plumbing (mirrors `proptest::test_runner`).

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases per test; other settings default.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Failure of one generated case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed assertion/requirement with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// What a case body evaluates to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The deterministic per-case RNG: seeded from the test's identity and
    /// the case index, so every run regenerates the identical case list.
    #[derive(Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for case `case` of test `test_id`.
        pub fn deterministic(test_id: &str, case: u32) -> Self {
            // FNV-1a over the test id, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5bd1)))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (mirrors `proptest::strategy`).

    use crate::test_runner::TestRng;
    use rand::{Rng, SampleRange};
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// simply draws a value from the deterministic [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

    /// Strategy for the "any value of `T`" request; see [`crate::arbitrary::any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `SampleRange` bridge so range strategies can reuse `rand` sampling.
    pub(crate) fn _assert_range_usable<T, R: SampleRange<T>>(_r: R) {}
}

pub mod arbitrary {
    //! `any::<T>()` support (mirrors `proptest::arbitrary`).

    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only: uniform sign/exponent-limited mantissa.
            rng.random_range(-1.0e9f64..1.0e9)
        }
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (mirrors `proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The drop-in equivalent of `proptest::prelude::*`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __strategies = ( $( $s, )+ );
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ( $($p,)+ ) =
                        $crate::strategy::Strategy::new_value(&__strategies, &mut __rng);
                    let mut __case_body =
                        || -> $crate::test_runner::TestCaseResult { $body Ok(()) };
                    if let Err(e) = __case_body() {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            e
                        );
                    }
                }
            }
        )+
    };
}

/// Assert a condition inside a proptest body (fails the case, not the
/// process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 0.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
        }

        #[test]
        fn tuples_and_maps(v in crate::collection::vec((0u8..4, 1u32..10), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for &(a, b) in &v {
                prop_assert!(a < 4);
                prop_assert!((1..10).contains(&b));
            }
        }

        #[test]
        fn any_and_early_return(seed in any::<u64>()) {
            if seed % 2 == 0 { return Ok(()); }
            prop_assert_ne!(seed % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = (0u64..1000, 0.0f64..1.0);
        let draw = |case| {
            let mut rng = crate::test_runner::TestRng::deterministic("fixed::id", case);
            strat.new_value(&mut rng)
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
