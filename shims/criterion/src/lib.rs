//! Local stand-in for the subset of `criterion` the `xbench` benches use.
//!
//! It keeps the bench *sources* byte-for-byte compatible with real
//! criterion (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`) but replaces the
//! statistical machinery with a simple timed loop: each benchmark runs a
//! warm-up iteration plus `min(sample_size, 5)` timed iterations and prints
//! mean/min wall-clock per iteration. Good enough to eyeball regressions;
//! swap the real criterion back in via the root `Cargo.toml` for serious
//! measurement.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export convenience;
/// benches may also use `std::hint::black_box` directly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id rendered from a single parameter (e.g. an input size).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Id from a function name and a parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

/// The per-benchmark timing driver.
pub struct Bencher {
    label: String,
    samples: usize,
}

impl Bencher {
    /// Time the closure: one warm-up call, then `samples` timed calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(routine());
            let dt = t.elapsed();
            total += dt;
            best = best.min(dt);
        }
        println!(
            "bench {:<48} mean {:>12?}  min {:>12?}  ({} iters, shim)",
            self.label,
            total / self.samples as u32,
            best,
            self.samples
        );
    }
}

/// Top-level benchmark context (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            sample_size: 3,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            label: id.into(),
            samples: 3,
        };
        f(&mut b);
        self
    }

    /// Accept CLI configuration (ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count (the shim caps it at 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 5);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id.into()),
            samples: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Benchmark a closure with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id.0),
            samples: self.sample_size,
        };
        f(&mut b, input);
        self
    }

    /// Finish the group (a no-op beyond ending the borrow).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_closures() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("shim-test");
            g.sample_size(2);
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.finish();
        }
        // warm-up + 2 samples
        assert_eq!(calls, 3);
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::from_parameter(1024).0, "1024");
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
    }
}
