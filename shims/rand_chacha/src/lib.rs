//! Local stand-in for `rand_chacha`: real ChaCha8/12/20 keystream
//! generators implementing the `rand` shim's `RngCore`/`SeedableRng`.
//!
//! Unlike the shim `StdRng` (which trades fidelity for size), these run the
//! genuine ChaCha quarter-round schedule (RFC 8439 block function with the
//! rounds parameter varied), so the keystream for a given 32-byte key
//! matches any conformant ChaCha implementation with the same nonce/counter
//! convention (original-ChaCha layout, as upstream `rand_chacha` uses:
//! 8-byte zero nonce, 64-bit block counter starting at 0 in state words
//! 12–13).

use rand::{RngCore, SeedableRng};

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32, out: &mut [u32; 16]) {
    let mut state = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..rounds / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
        *o = s.wrapping_add(*i);
    }
}

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $rounds:expr) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buf: [u32; 16],
            idx: usize,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                $name { key, counter: 0, buf: [0; 16], idx: 16 }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.idx >= 16 {
                    chacha_block(&self.key, self.counter, $rounds, &mut self.buf);
                    self.counter += 1;
                    self.idx = 0;
                }
                let w = self.buf[self.idx];
                self.idx += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds — fastest, still statistically strong.
    ChaCha8Rng,
    8
);
chacha_rng!(
    /// ChaCha with 12 rounds — upstream `StdRng`'s choice.
    ChaCha12Rng,
    12
);
chacha_rng!(
    /// ChaCha with 20 rounds — the full RFC 8439 cipher.
    ChaCha20Rng,
    20
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_matches_rfc8439_keystream_shape() {
        // RFC 8439 §2.3.2 test vector uses key 00..1f, nonce/counter values
        // we don't replicate; instead check the zero-key/zero-counter block
        // is stable and rounds differentiate streams.
        let mut a = ChaCha20Rng::from_seed([0; 32]);
        let mut b = ChaCha20Rng::from_seed([0; 32]);
        let mut c = ChaCha8Rng::from_seed([0; 32]);
        let xs: Vec<u32> = (0..32).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..32).map(|_| b.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u32());
    }

    #[test]
    fn seedable_and_samplable() {
        let mut r = ChaCha12Rng::seed_from_u64(99);
        let v = r.random_range(0usize..100);
        assert!(v < 100);
        let f = r.random::<f64>();
        assert!((0.0..1.0).contains(&f));
    }
}
