//! The shim's `StdRng`: xoshiro256** (Blackman–Vigna, public domain),
//! seeded via SplitMix64. Seed-deterministic; stream intentionally
//! unspecified relative to upstream `rand` (upstream makes the same
//! non-guarantee for its `StdRng`).

use crate::{RngCore, SeedableRng};

/// A small, fast, seedable generator with 256 bits of state.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // All-zero state is the one degenerate fixpoint of xoshiro.
        if s == [0; 4] {
            s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 1, 2];
        }
        StdRng { s }
    }
}
