//! Local stand-in for the subset of `rand` 0.9 this workspace uses: the
//! [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, uniform range sampling,
//! and a seedable [`rngs::StdRng`].
//!
//! The workspace only ever consumes *seeded* randomness (generators and the
//! randomized baseline take explicit `u64` seeds), so the only contract
//! that matters is seed-determinism: same seed, same stream — which this
//! shim honors. The stream itself differs from upstream `rand`'s `StdRng`
//! (upstream explicitly documents its `StdRng` stream as unstable across
//! versions, so no caller may depend on the exact values).
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — the
//! initialization recommended by the xoshiro authors — giving 256 bits of
//! state and passing the usual statistical batteries; plenty for graph
//! generation and sampling baselines.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Named generators, mirroring `rand::rngs`.
    pub use crate::std_rng::StdRng;
}

mod std_rng;

/// Low-level generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through SplitMix64 exactly like
    /// upstream `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (public domain), the upstream expansion function.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods (mirrors `rand::Rng`, the 0.9 naming:
/// `random` / `random_range`).
pub trait Rng: RngCore {
    /// A sample from the standard distribution of `T` (`f64`: uniform in
    /// `[0, 1)`; integers: uniform over the full range; `bool`: fair coin).
    fn random<T>(&mut self) -> T
    where
        T: StandardSample,
    {
        T::standard_sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait StandardSample: Sized {
    /// Draw one standard sample.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_standard_sample {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                // Two's-complement wrap gives the correct span width even
                // for negative-start signed ranges.
                let span = (self.end as u128).wrapping_sub(self.start as u128) & (u64::MAX as u128);
                let v = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span =
                    ((hi as u128).wrapping_sub(lo as u128) & (u64::MAX as u128)) + 1;
                let v = (rng.next_u64() as u128) % span;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let unit = f64::standard_sample(rng); // [0, 1)
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        // 53 uniform bits into [0, 1] (both endpoints reachable).
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * unit
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1.5f64..=9.5);
            assert!((1.5..=9.5).contains(&y));
            let z = rng.random::<f64>();
            assert!((0.0..1.0).contains(&z));
            let w = rng.random_range(0u32..5);
            assert!(w < 5);
            // Negative-start signed ranges must not underflow the span.
            let s = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&s));
            let si = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&si));
        }
        // Extreme signed spans exercise the wrap-around arithmetic.
        let e = rng.random_range(i64::MIN..=i64::MAX);
        let _ = e;
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
