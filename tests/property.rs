//! Property-based tests (proptest): the paper's invariants under random
//! graphs and parameters.
//!
//! Strategy note: graphs are generated through the seeded deterministic
//! generators, with proptest driving (n, m, seed, ε, κ) — this keeps shrink
//! behavior sane (a failing case is a small tuple, not a giant edge list)
//! while still covering a wide input space.

use pram::pool;
use pram_sssp::prelude::*;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (12usize..80, 1usize..4, any::<u64>())
        .prop_map(|(n, density, seed)| gen::gnm_connected(n, n * density, seed, 1.0, 10.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// eq. (1) left side + Lemmas 2.3/2.9: the hopset never shortens any
    /// distance, at any hop budget.
    #[test]
    fn never_undershoots(g in arb_graph(), src_sel in 0usize..8) {
        let n = g.num_vertices();
        let src = ((src_sel * n) / 8) as u32;
        let p = HopsetParams::practical(n, 0.25, 4, g.aspect_ratio_bound()).unwrap();
        let built = build_hopset(&g, &p, BuildOptions::default());
        let overlay = built.overlay();
        let view = UnionView::with_extra(&g, &overlay);
        let exact = exact::dijkstra(&g, src).dist;
        for hops in [2usize, 5, n] {
            let d = exact::bellman_ford_hops(&view, &[src], hops);
            for v in 0..n {
                prop_assert!(d[v] >= exact[v] - 1e-6 * exact[v].max(1.0),
                    "hops={hops} v={v}: {} < {}", d[v], exact[v]);
            }
        }
    }

    /// eq. (1) right side at the engine's hop budget.
    #[test]
    fn stretch_holds_at_query_budget(g in arb_graph(), eps_pct in 15u32..60) {
        let eps = eps_pct as f64 / 100.0;
        let oracle = Oracle::builder(g.clone()).eps(eps).kappa(4).build().unwrap();
        let src = 0u32;
        let approx = oracle.distances_from(src).unwrap();
        let exact = exact::dijkstra(&g, src).dist;
        for v in 0..g.num_vertices() {
            if exact[v].is_finite() && exact[v] > 0.0 {
                prop_assert!(approx[v] <= (1.0 + eps) * exact[v] + 1e-9,
                    "v={v}: {} > (1+{eps})*{}", approx[v], exact[v]);
            }
        }
    }

    /// Determinism: same input, same hopset, bit for bit.
    #[test]
    fn construction_is_deterministic(g in arb_graph()) {
        let p = HopsetParams::practical(g.num_vertices(), 0.3, 4, g.aspect_ratio_bound()).unwrap();
        let a = build_hopset(&g, &p, BuildOptions::default());
        let b = build_hopset(&g, &p, BuildOptions::default());
        prop_assert_eq!(a.hopset.len(), b.hopset.len());
        for (x, y) in a.hopset.iter().zip(b.hopset.iter()) {
            prop_assert_eq!((x.u, x.v, x.scale), (y.u, y.v, y.scale));
            prop_assert_eq!(x.w.to_bits(), y.w.to_bits());
        }
    }

    /// eq. (10): |H| ≤ ⌈log Λ⌉·n^{1+1/κ} (with the per-scale bound of
    /// eq. (9) summed over the scales actually built).
    #[test]
    fn size_bound_holds(g in arb_graph(), kappa in 2usize..6) {
        let p = HopsetParams::practical(g.num_vertices(), 0.25, kappa, g.aspect_ratio_bound()).unwrap();
        let built = build_hopset(&g, &p, BuildOptions::default());
        prop_assert!((built.hopset.len() as f64) <= built.size_bound() + 1.0,
            "{} > {}", built.hopset.len(), built.size_bound());
    }

    /// §4: the SPT is a real tree of graph edges realizing its distances.
    #[test]
    fn spt_well_formed(g in arb_graph()) {
        let oracle = Oracle::builder(g.clone()).eps(0.25).kappa(4).paths(true).build().unwrap();
        let spt = oracle.spt(0).unwrap();
        let val = validate_spt(&g, &spt);
        prop_assert_eq!(val.non_graph_edges, 0);
        prop_assert_eq!(val.weight_mismatches, 0);
        prop_assert_eq!(val.distance_mismatches, 0);
        prop_assert_eq!(val.missing, 0);
        prop_assert!(val.max_stretch <= 1.25 + 1e-9);
    }

    /// Memory property (§4.1) on every recorded path.
    #[test]
    fn memory_paths_sound(g in arb_graph()) {
        let p = HopsetParams::practical(g.num_vertices(), 0.25, 4, g.aspect_ratio_bound()).unwrap();
        let built = build_hopset(&g, &p, BuildOptions { record_paths: true });
        let errs = hopset::validate::check_memory_paths(&g, &built.hopset);
        prop_assert!(errs.is_empty(), "{:?}", errs);
    }

    /// Klein–Sairam reduction invariants on wide-weight graphs: per-level
    /// weight ratio O(n/ε), star count ≤ n·log n, no undershoots.
    #[test]
    fn reduction_invariants(n in 16usize..64, levels in 4u32..12, seed in any::<u64>()) {
        let g = gen::wide_weights(n, 2 * n, levels, seed);
        let eps = 0.4;
        let r = build_reduced_hopset(&g, eps, 4, 0.3, ParamMode::Practical, BuildOptions::default()).unwrap();
        let nf = n as f64;
        prop_assert!((r.star_edges as f64) <= nf * nf.log2() + 1.0);
        for lvl in r.levels.iter().filter(|l| l.edges > 0) {
            prop_assert!(lvl.aspect_ratio <= (1.0 + eps / 3.0) * nf / (eps / 6.0) * 2.0,
                "level {} ratio {}", lvl.k, lvl.aspect_ratio);
        }
        let bad = hopset::validate::find_shortcut_violations(&g, &r.hopset);
        prop_assert!(bad.is_empty(), "{:?}", bad);
    }

    /// Thm 3.8 (aMSSD, nearest-source form): `distances_to_nearest` never
    /// undershoots the brute-force min-over-Dijkstra-rows reference, stays
    /// within the (1+ε) stretch of it, and does so at every thread count;
    /// the exact backend matches the reference outright.
    #[test]
    fn nearest_source_vs_brute_force(g in arb_graph(), k_sel in 1usize..4, seed in any::<u64>()) {
        let n = g.num_vertices();
        // k deterministic, well-spread sources (duplicates allowed).
        let k = k_sel + 1;
        let sources: Vec<u32> = (0..k)
            .map(|i| (((seed as usize).wrapping_add(i * n / k)) % n) as u32)
            .collect();
        // Brute force: min over one full Dijkstra row per source.
        let rows: Vec<Vec<f64>> = sources.iter().map(|&s| exact::dijkstra(&g, s).dist).collect();
        let reference: Vec<f64> = (0..n)
            .map(|v| rows.iter().map(|r| r[v]).fold(INF, f64::min))
            .collect();

        let eps = 0.25;
        for &t in &[1usize, 2, 4, 8] {
            let got = pool::with_threads(t, || {
                let oracle = Oracle::builder(g.clone()).eps(eps).kappa(4).build().unwrap();
                oracle.distances_to_nearest(&sources).unwrap()
            });
            for v in 0..n {
                prop_assert!(got[v] >= reference[v] - 1e-9,
                    "threads={t} v={v}: {} undershoots {}", got[v], reference[v]);
                prop_assert!(got[v] <= (1.0 + eps) * reference[v] + 1e-9,
                    "threads={t} v={v}: {} > (1+{eps})*{}", got[v], reference[v]);
            }
        }

        let exact_backend = DijkstraOracle::new(g.clone());
        let exact_near = exact_backend.distances_to_nearest(&sources).unwrap();
        for v in 0..n {
            prop_assert!((exact_near[v] - reference[v]).abs() < 1e-9
                || (exact_near[v] == INF && reference[v] == INF),
                "exact backend v={v}: {} vs {}", exact_near[v], reference[v]);
        }
    }

    /// The exact Bellman–Ford recurrence: d^{(h)} is non-increasing in h
    /// and reaches Dijkstra at h = n (sanity for the whole query stack).
    #[test]
    fn bounded_distance_monotone(g in arb_graph(), src_sel in 0usize..4) {
        let n = g.num_vertices();
        let src = ((src_sel * n) / 4) as u32;
        let view = UnionView::base_only(&g);
        let exact = exact::dijkstra(&g, src).dist;
        let mut prev = exact::bellman_ford_hops(&view, &[src], 1);
        for h in [2usize, 4, 8, n] {
            let cur = exact::bellman_ford_hops(&view, &[src], h);
            for v in 0..n {
                prop_assert!(cur[v] <= prev[v]);
            }
            prev = cur;
        }
        for v in 0..n {
            prop_assert!((prev[v] - exact[v]).abs() < 1e-9 || (prev[v] == INF && exact[v] == INF));
        }
    }
}
