//! The persistence contract (DESIGN.md §11): snapshots round-trip
//! bit-identically, and every way a file can lie is a typed error.
//!
//! Three layers are pinned here:
//!
//! 1. **Graph container** — `pgraph::snapshot` round-trips the CSR columns
//!    verbatim across generator families (proptest drives the family and
//!    its parameters).
//! 2. **Oracle container** — `sssp::snapshot` reloads an oracle whose
//!    distances, SPTs, and construction ledger are bit-identical to the
//!    one saved, on both the plain and the weight-reduced pipeline.
//! 3. **Error paths** — corrupted header, truncated section, wrong
//!    version, and out-of-bounds column bytes are rejected with the
//!    matching [`SnapshotError`] variant, never a panic or a silently
//!    wrong graph.
//!
//! Plus the ingestion pipeline end to end: DIMACS text in, oracle built,
//! snapshot out, reload, bit-identical answers.

use pgraph::snapshot::{
    load_graph_snapshot, read_graph_snapshot, save_graph_snapshot, write_graph_snapshot,
    SnapshotError,
};
use pram_sssp::prelude::*;
use proptest::prelude::*;

/// Round-trip an oracle through an in-memory snapshot buffer.
fn reload(o: &Oracle) -> Oracle {
    let mut buf = Vec::new();
    o.write_snapshot(&mut buf).expect("write snapshot");
    assert_eq!(
        buf.len() as u64,
        o.snapshot_size(),
        "size is declared exactly"
    );
    OracleBuilder::from_snapshot_reader(buf.as_slice(), o.executor().clone())
        .expect("read snapshot")
}

/// Distances from `src` must agree to the bit.
fn assert_rows_identical(a: &Oracle, b: &Oracle, src: u32) {
    let da = a.distances_from(src).expect("in range");
    let db = b.distances_from(src).expect("in range");
    assert_eq!(da.len(), db.len());
    for (x, y) in da.iter().zip(&db) {
        assert_eq!(x.to_bits(), y.to_bits(), "row {src} diverged");
    }
}

/// One graph from a proptest-driven family: gnm, road grid, or geometric
/// (the shimmed proptest has no `prop_oneof`, so the family is an integer).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (0usize..3, 16usize..64, 1usize..4, any::<u64>()).prop_map(|(fam, n, d, s)| match fam {
        0 => gen::gnm_connected(n, n * d, s, 1.0, 10.0),
        1 => gen::road_grid(4 + n % 6, 4 + d + n % 5, s, 1.0, 8.0),
        _ => gen::geometric(n, 0.4, s),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Layer 1: the graph container restores every CSR column verbatim
    /// (weights compared as bit patterns — no float laundering).
    #[test]
    fn graph_snapshot_roundtrips_all_families(g in arb_graph()) {
        let mut buf = Vec::new();
        write_graph_snapshot(&g, &mut buf).expect("write");
        let g2 = read_graph_snapshot(buf.as_slice()).expect("read");
        prop_assert_eq!(g.num_vertices(), g2.num_vertices());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        prop_assert_eq!(g.offsets(), g2.offsets());
        prop_assert_eq!(g.neighbor_column(), g2.neighbor_column());
        let wa: Vec<u64> = g.weight_column().iter().map(|w| w.to_bits()).collect();
        let wb: Vec<u64> = g2.weight_column().iter().map(|w| w.to_bits()).collect();
        prop_assert_eq!(wa, wb);
    }

    /// Layer 2, plain pipeline: distances and the construction ledger
    /// survive the round trip bit-for-bit.
    #[test]
    fn plain_oracle_roundtrips(g in arb_graph(), src_sel in 0usize..8) {
        let n = g.num_vertices();
        let oracle = Oracle::builder(g)
            .eps(0.25)
            .kappa(4)
            .pipeline(Pipeline::Plain)
            .build()
            .unwrap();
        let loaded = reload(&oracle);
        prop_assert_eq!(loaded.pipeline(), Pipeline::Plain);
        prop_assert_eq!(oracle.query_hops(), loaded.query_hops());
        prop_assert_eq!(oracle.hopset_size(), loaded.hopset_size());
        prop_assert_eq!(oracle.cost(), loaded.cost());
        assert_rows_identical(&oracle, &loaded, ((src_sel * n) / 8) as u32);
    }

    /// Layer 2, weight-reduced pipeline: same contract, no aspect-ratio
    /// assumption.
    #[test]
    fn reduced_oracle_roundtrips(g in arb_graph()) {
        let oracle = Oracle::builder(g)
            .eps(0.5)
            .kappa(4)
            .pipeline(Pipeline::Reduced)
            .build()
            .unwrap();
        let loaded = reload(&oracle);
        prop_assert_eq!(loaded.pipeline(), Pipeline::Reduced);
        prop_assert_eq!(oracle.cost(), loaded.cost());
        assert_rows_identical(&oracle, &loaded, 0);
    }

    /// Layer 2 with memory paths: the loaded oracle extracts the same SPT.
    #[test]
    fn spt_survives_roundtrip(g in arb_graph()) {
        let oracle = Oracle::builder(g).eps(0.3).kappa(4).paths(true).build().unwrap();
        let loaded = reload(&oracle);
        assert!(loaded.has_paths());
        let a = oracle.spt(0).unwrap();
        let b = loaded.spt(0).unwrap();
        prop_assert_eq!(a.parent, b.parent);
        let da: Vec<u64> = a.dist.iter().map(|w| w.to_bits()).collect();
        let db: Vec<u64> = b.dist.iter().map(|w| w.to_bits()).collect();
        prop_assert_eq!(da, db);
    }
}

// ---- Layer 3: every way a file can lie. ------------------------------------

fn graph_bytes() -> Vec<u8> {
    let g = gen::road_grid(5, 5, 3, 1.0, 4.0);
    let mut buf = Vec::new();
    write_graph_snapshot(&g, &mut buf).expect("write");
    buf
}

#[test]
fn corrupted_header_is_a_checksum_error() {
    let mut buf = graph_bytes();
    buf[24] ^= 0x40; // first header byte, covered by the stored FNV-1a-64
    assert!(matches!(
        read_graph_snapshot(buf.as_slice()),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));
}

#[test]
fn wrong_version_is_typed() {
    let mut buf = graph_bytes();
    buf[8..12].copy_from_slice(&7u32.to_le_bytes());
    match read_graph_snapshot(buf.as_slice()) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 7);
            assert_eq!(supported, pgraph::snapshot::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn truncated_section_is_typed() {
    let buf = graph_bytes();
    for cut in [10, 30, buf.len() / 2, buf.len() - 5] {
        assert!(
            matches!(
                read_graph_snapshot(&buf[..cut]),
                Err(SnapshotError::Truncated { .. })
            ),
            "cut at {cut} must be a Truncated error"
        );
    }
}

#[test]
fn out_of_bounds_column_is_corrupt() {
    let mut buf = graph_bytes();
    // Section data starts right after the checksummed header; the first
    // section is the (n+1)-entry u64 offset column, then neighbors.
    let header_len = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
    let data = 24 + header_len;
    let n = 25usize;
    let neig0 = data + (n + 1) * 8;
    buf[neig0..neig0 + 4].copy_from_slice(&(n as u32).to_le_bytes()); // vertex id == n
    assert!(matches!(
        read_graph_snapshot(buf.as_slice()),
        Err(SnapshotError::Corrupt { .. })
    ));
}

#[test]
fn oracle_snapshot_rejects_the_same_lies() {
    let g = gen::road_grid(5, 5, 3, 1.0, 4.0);
    let oracle = Oracle::builder(g).build().unwrap();
    let mut buf = Vec::new();
    oracle.write_snapshot(&mut buf).unwrap();
    let exec = oracle.executor().clone();

    let mut bad = buf.clone();
    bad[0] = b'X';
    assert!(matches!(
        OracleBuilder::from_snapshot_reader(bad.as_slice(), exec.clone()),
        Err(SnapshotError::BadMagic { .. })
    ));

    let mut bad = buf.clone();
    bad[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        OracleBuilder::from_snapshot_reader(bad.as_slice(), exec.clone()),
        Err(SnapshotError::UnsupportedVersion { found: 99, .. })
    ));

    assert!(matches!(
        OracleBuilder::from_snapshot_reader(&buf[..buf.len() - 9], exec),
        Err(SnapshotError::Truncated { .. })
    ));
}

// ---- File-backed save/load and the ingestion pipeline. ---------------------

#[test]
fn file_backed_graph_roundtrip() {
    let g = gen::gnm_connected(96, 288, 5, 1.0, 12.0);
    let path = std::env::temp_dir().join("pram-sssp-test-graph-roundtrip.bin");
    save_graph_snapshot(&g, &path).expect("save");
    let g2 = load_graph_snapshot(&path).expect("load");
    let _ = std::fs::remove_file(&path);
    assert_eq!(g.offsets(), g2.offsets());
    assert_eq!(g.neighbor_column(), g2.neighbor_column());
}

#[test]
fn dimacs_to_oracle_to_snapshot_pipeline() {
    // A 3x3 grid written the DIMACS way: every undirected edge as both
    // directed arcs, 1-based ids.
    let mut dimacs = String::from("c 3x3 grid\np sp 9 24\n");
    let idx = |r: usize, c: usize| r * 3 + c + 1;
    for r in 0..3 {
        for c in 0..3 {
            if c + 1 < 3 {
                dimacs.push_str(&format!(
                    "a {} {} 2\na {} {} 2\n",
                    idx(r, c),
                    idx(r, c + 1),
                    idx(r, c + 1),
                    idx(r, c)
                ));
            }
            if r + 1 < 3 {
                dimacs.push_str(&format!(
                    "a {} {} 3\na {} {} 3\n",
                    idx(r, c),
                    idx(r + 1, c),
                    idx(r + 1, c),
                    idx(r, c)
                ));
            }
        }
    }
    let g = pgraph::io::dimacs::read_dimacs(dimacs.as_bytes()).expect("parse");
    assert_eq!(g.num_vertices(), 9);
    assert_eq!(g.num_edges(), 12);

    let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
    let path = std::env::temp_dir().join("pram-sssp-test-dimacs-oracle.bin");
    oracle.save_snapshot(&path).expect("save");
    let loaded = OracleBuilder::from_snapshot(&path).expect("load");
    let _ = std::fs::remove_file(&path);

    // Corner-to-corner: two rights (2+2) + two downs (3+3).
    let d = loaded.distance(0, 8).unwrap();
    assert!((d - 10.0).abs() <= 0.25 * 10.0 + 1e-9);
    assert_rows_identical(&oracle, &loaded, 0);
}
