//! Cross-crate integration tests: full pipelines on several graph
//! families, exercising the public API exactly as a downstream user would.

use pram_sssp::prelude::*;

/// The core contract on one graph: approximate distances never undershoot
/// and respect (1+eps) at the engine's hop budget.
fn assert_sssp_contract(g: &Graph, eps: f64, kappa: usize, sources: &[u32]) {
    let oracle = Oracle::builder(g.clone())
        .eps(eps)
        .kappa(kappa)
        .build()
        .expect("params");
    for &s in sources {
        let approx = oracle.distances_from(s).expect("source in range");
        let exact = exact::dijkstra(g, s).dist;
        for v in 0..g.num_vertices() {
            if exact[v] == INF {
                assert_eq!(approx[v], INF, "phantom connectivity at {v}");
                continue;
            }
            assert!(
                approx[v] >= exact[v] - 1e-6 * exact[v].max(1.0),
                "undershoot at {v}: {} < {}",
                approx[v],
                exact[v]
            );
            assert!(
                approx[v] <= (1.0 + eps) * exact[v] + 1e-9,
                "stretch bust at {v}: {} vs {}",
                approx[v],
                exact[v]
            );
        }
    }
}

#[test]
fn sssp_contract_random_graph() {
    let g = gen::gnm_connected(200, 700, 5, 1.0, 12.0);
    assert_sssp_contract(&g, 0.25, 4, &[0, 99, 199]);
}

#[test]
fn sssp_contract_road_grid() {
    let g = gen::road_grid(14, 14, 9, 1.0, 7.0);
    assert_sssp_contract(&g, 0.25, 4, &[0, 97, 195]);
}

#[test]
fn sssp_contract_clique_chain() {
    let g = gen::clique_chain(8, 10, 2.5);
    assert_sssp_contract(&g, 0.2, 4, &[0, 40, 79]);
}

#[test]
fn sssp_contract_weighted_path() {
    let g = gen::path_weighted(160, |i| 1.0 + (i % 9) as f64);
    assert_sssp_contract(&g, 0.25, 3, &[0, 80, 159]);
}

#[test]
fn sssp_contract_varied_kappa() {
    let g = gen::gnm_connected(120, 360, 2, 1.0, 6.0);
    for kappa in [2, 3, 4, 6] {
        assert_sssp_contract(&g, 0.3, kappa, &[7]);
    }
}

#[test]
fn sssp_contract_varied_eps() {
    let g = gen::gnm_connected(120, 360, 8, 1.0, 6.0);
    for eps in [0.1, 0.25, 0.5, 0.9] {
        assert_sssp_contract(&g, eps, 4, &[11]);
    }
}

#[test]
fn determinism_across_thread_counts() {
    // The headline property: the construction is deterministic. Run the
    // full pipeline under thread pools of different sizes and demand
    // bit-identical hopsets.
    let g = gen::gnm_connected(150, 500, 13, 1.0, 9.0);
    let params = HopsetParams::new(
        150,
        0.25,
        4,
        0.3,
        ParamMode::Practical,
        g.aspect_ratio_bound(),
        None,
    )
    .unwrap();
    let run = |threads: usize| {
        pram::pool::with_threads(threads, || {
            build_hopset(&g, &params, BuildOptions::default())
        })
    };
    let a = run(1);
    let b = run(2);
    let c = run(8);
    for other in [&b, &c] {
        assert_eq!(a.hopset.len(), other.hopset.len());
        for (x, y) in a.hopset.iter().zip(other.hopset.iter()) {
            assert_eq!((x.u, x.v, x.scale), (y.u, y.v, y.scale));
            assert_eq!(
                x.w.to_bits(),
                y.w.to_bits(),
                "weights must be bit-identical"
            );
        }
        assert_eq!(a.ledger, other.ledger);
    }
}

#[test]
fn spt_pipeline_end_to_end() {
    let g = gen::clique_chain(6, 9, 2.0);
    let oracle = Oracle::builder(g.clone())
        .eps(0.25)
        .kappa(4)
        .paths(true)
        .build()
        .expect("params");
    for src in [0u32, 26, 53] {
        let spt = oracle.spt(src).expect("paths recorded");
        let val = validate_spt(&g, &spt);
        assert_eq!(val.non_graph_edges, 0, "src {src}: {val:?}");
        assert_eq!(val.weight_mismatches, 0);
        assert_eq!(val.distance_mismatches, 0);
        assert_eq!(val.missing, 0);
        assert!(val.max_stretch <= 1.25 + 1e-9, "src {src}: {val:?}");
    }
}

#[test]
fn reduced_pipeline_end_to_end() {
    let g = gen::exponential_path(40, 2.5);
    let reduced = build_reduced_hopset(
        &g,
        0.5,
        4,
        0.3,
        ParamMode::Practical,
        BuildOptions::default(),
    )
    .expect("params");
    let sl = reduced.hopset.all_slice();
    let view = UnionView::with_overlay_columns(&g, sl.us(), sl.vs(), sl.ws());
    let mut ledger = Ledger::new();
    let bf = pram::bellman_ford(
        &pram::Executor::current(),
        &view,
        &[0],
        reduced.query_hops,
        &mut ledger,
    );
    let exact = exact::dijkstra(&g, 0).dist;
    #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
    for v in 0..40 {
        assert!(bf.dist[v] >= exact[v] * (1.0 - 1e-9));
        assert!(bf.dist[v] <= 1.5 * exact[v] + 1e-9, "v={v}");
    }
}

#[test]
fn hop_reduction_is_real() {
    // The actual point of a hopset: with budget ≪ hop diameter, the bare
    // graph cannot answer, G ∪ H can.
    let g = gen::path(300);
    let oracle = Oracle::builder(g.clone())
        .eps(0.25)
        .kappa(4)
        .rho(0.3)
        .mode(ParamMode::Practical)
        .hop_cap(40)
        .build()
        .expect("params");
    let approx = oracle.distances_from(0).expect("source in range");
    let (bare, _) = sssp::baseline::plain_bellman_ford(&g, 0, oracle.query_hops());
    assert_eq!(bare[299], INF, "bare graph cannot span 299 hops in 40");
    assert!(approx[299].is_finite(), "hopset must shortcut");
    assert!(approx[299] <= 1.25 * 299.0 + 1e-9);
    assert!(approx[299] >= 299.0 - 1e-6);
}

#[test]
fn io_roundtrip_through_public_api() {
    let g = gen::gnm_connected(60, 150, 21, 1.0, 5.0);
    let mut buf = Vec::new();
    pgraph::io::write_graph(&g, &mut buf).unwrap();
    let h = pgraph::io::read_graph(buf.as_slice()).unwrap();
    assert_eq!(g.edges(), h.edges());
    // The reloaded graph builds the same hopset.
    let p = HopsetParams::practical(60, 0.25, 4, g.aspect_ratio_bound()).unwrap();
    let a = build_hopset(&g, &p, BuildOptions::default());
    let b = build_hopset(&h, &p, BuildOptions::default());
    assert_eq!(a.hopset.len(), b.hopset.len());
}

#[test]
fn rejects_unnormalized_weights() {
    // Construction requires min weight ≥ 1; the panic is the documented
    // contract (normalize with scaled_to_unit_min).
    let g = Graph::from_edges(4, [(0, 1, 0.5), (1, 2, 2.0)]).unwrap();
    let p = HopsetParams::practical(4, 0.25, 4, g.aspect_ratio_bound()).unwrap();
    let r = std::panic::catch_unwind(|| build_hopset(&g, &p, BuildOptions::default()));
    assert!(r.is_err(), "must reject min weight < 1");
    // And the documented fix works.
    let g2 = g.scaled_to_unit_min();
    let p2 = HopsetParams::practical(4, 0.25, 4, g2.aspect_ratio_bound()).unwrap();
    let _ = build_hopset(&g2, &p2, BuildOptions::default());
}

#[test]
fn reduced_pipeline_determinism_across_threads() {
    // The reduction stack (CC, forests, centers, per-level hopsets) must be
    // as deterministic as the plain pipeline.
    let g = pgraph::gen::wide_weights(80, 160, 12, 5);
    let run = |threads: usize| {
        pram::pool::with_threads(threads, || {
            build_reduced_hopset(
                &g,
                0.4,
                4,
                0.3,
                ParamMode::Practical,
                BuildOptions::default(),
            )
            .unwrap()
        })
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.hopset.len(), b.hopset.len());
    assert_eq!(a.star_edges, b.star_edges);
    for (x, y) in a.hopset.iter().zip(b.hopset.iter()) {
        assert_eq!((x.u, x.v, x.scale), (y.u, y.v, y.scale));
        assert_eq!(x.w.to_bits(), y.w.to_bits());
    }
}

#[test]
fn spt_determinism_across_threads() {
    let g = pgraph::gen::clique_chain(5, 8, 2.0);
    let run = |threads: usize| {
        pram::pool::with_threads(threads, || {
            let p =
                HopsetParams::practical(g.num_vertices(), 0.25, 4, g.aspect_ratio_bound()).unwrap();
            let built = build_hopset(&g, &p, BuildOptions { record_paths: true });
            build_spt(&g, &built, 0)
        })
    };
    let a = run(1);
    let b = run(8);
    assert_eq!(a.parent, b.parent);
    for (x, y) in a.dist.iter().zip(&b.dist) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn hopset_serialization_through_public_api() {
    // Build → save → load → query: the production precompute workflow.
    let g = pgraph::gen::gnm_connected(80, 240, 31, 1.0, 6.0);
    let p = HopsetParams::practical(80, 0.25, 4, g.aspect_ratio_bound()).unwrap();
    let built = build_hopset(&g, &p, BuildOptions::default());
    let mut buf = Vec::new();
    hopset::write_hopset(&built.hopset, &mut buf).unwrap();
    let loaded = hopset::read_hopset(buf.as_slice()).unwrap();
    let v1 = UnionView::with_extra(&g, &built.hopset.all_slice().to_overlay_vec());
    let v2 = UnionView::with_extra(&g, &loaded.all_slice().to_overlay_vec());
    let d1 = exact::bellman_ford_hops(&v1, &[3], p.query_hops);
    let d2 = exact::bellman_ford_hops(&v2, &[3], p.query_hops);
    assert_eq!(d1, d2);
}

#[test]
fn delta_stepping_agrees_with_engine() {
    // Two very different algorithms, one truth: Δ-stepping (exact) lower-
    // bounds the hopset oracle's approximate answers — both behind the
    // same DistanceOracle trait.
    let g = std::sync::Arc::new(pgraph::gen::road_grid(12, 12, 5, 1.0, 8.0));
    let hopset: Box<dyn DistanceOracle> = Box::new(
        Oracle::builder(std::sync::Arc::clone(&g))
            .eps(0.25)
            .kappa(4)
            .build()
            .unwrap(),
    );
    let dstep: Box<dyn DistanceOracle> =
        Box::new(DeltaSteppingOracle::with_delta(std::sync::Arc::clone(&g), 2.0).unwrap());
    let approx = hopset.distances_from(0).unwrap();
    let ds = dstep.distances_from(0).unwrap();
    #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
    for v in 0..g.num_vertices() {
        assert!(approx[v] >= ds[v] - 1e-9);
        assert!(approx[v] <= hopset.stretch_bound() * ds[v] + 1e-9);
    }
}
