//! Id-width parity suite — the `compact-ids` contract (DESIGN.md §12).
//!
//! The `compact-ids` feature narrows `pgraph::EdgeIndex` (CSR edge
//! offsets) from `usize` to `u32`. The contract is that the width is a
//! *storage* choice with zero observable effect: every constructed
//! adjacency structure, every snapshot byte, and every oracle output is
//! identical under both builds. CI runs this file twice — default and
//! `--features compact-ids` — and the golden fingerprints below must
//! match from both legs. A fingerprint drift on exactly one leg is a
//! width bug; a drift on both legs means construction itself changed
//! (re-record the goldens only in that case, with the tier-1 determinism
//! suite green).

use pram_sssp::prelude::*;

/// FNV-1a over a u64 stream — order-sensitive, width-independent.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn push(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn push_bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// The 64k construction both legs must agree on: n = 65 536, m = 2n.
fn graph_64k() -> Graph {
    gen::gnm_connected(65_536, 131_072, 41, 1.0, 8.0)
}

/// CSR columns of the 64k graph — offsets widened to u64 so the
/// fingerprint stream is identical whatever `EdgeIndex` is.
#[test]
fn csr_fingerprint_is_width_independent() {
    let g = graph_64k();
    let mut f = Fnv::new();
    f.push(g.num_vertices() as u64);
    f.push(g.num_edges() as u64);
    for &o in g.offsets() {
        f.push(pgraph::edge_index_usize(o) as u64);
    }
    for v in 0..g.num_vertices() as u32 {
        for (u, w) in g.neighbors(v) {
            f.push(u as u64);
            f.push(w.to_bits());
        }
    }
    assert_eq!(
        f.0, 0xf382_b486_a203_8ef8,
        "64k CSR fingerprint drifted (got {:#x})",
        f.0
    );
}

/// Snapshot bytes are a property of the data, not the build: the v2
/// header stores the offset width that *fits* (4 here, since 2m < 2³²),
/// so the file is byte-identical across feature legs.
#[test]
fn snapshot_bytes_are_width_independent() {
    let g = graph_64k();
    let mut buf = Vec::new();
    pgraph::snapshot::write_graph_snapshot(&g, &mut buf).expect("write");
    let mut f = Fnv::new();
    f.push(buf.len() as u64);
    f.push_bytes(&buf);
    assert_eq!(
        f.0, 0x5006_55ae_72d9_041e,
        "64k snapshot byte fingerprint drifted (got {:#x})",
        f.0
    );
    // And it loads back to the same adjacency on this leg.
    let h = pgraph::snapshot::read_graph_snapshot(buf.as_slice()).expect("read");
    assert_eq!(h.num_edges(), g.num_edges());
    assert_eq!(h.edges(), g.edges());
}

/// End-to-end: a full oracle build plus queries on a subsampled size
/// (debug-profile friendly), fingerprinting hopset columns and distances.
#[test]
fn oracle_outputs_are_width_independent() {
    let g = gen::gnm_connected(2_048, 4_096, 7, 1.0, 8.0);
    let oracle = Oracle::builder(g)
        .eps(0.5)
        .kappa(8)
        .build()
        .expect("params");
    let mut f = Fnv::new();
    f.push(oracle.hopset_size() as u64);
    let built = oracle.built().expect("constructed oracle keeps its hopset");
    for e in built.hopset.iter() {
        f.push(e.u as u64);
        f.push(e.v as u64);
        f.push(e.w.to_bits());
        f.push(e.scale as u64);
    }
    let sources = [0u32, 512, 1_024, 2_047];
    let multi = oracle.distances_multi(&sources).expect("in range");
    for i in 0..sources.len() {
        for &d in multi.dist.row(i) {
            f.push(d.to_bits());
        }
    }
    assert_eq!(
        f.0, 0x94d0_feee_560d_787b,
        "oracle output fingerprint drifted (got {:#x})",
        f.0
    );
}
