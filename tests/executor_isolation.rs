//! Isolation and robustness contract of the persistent worker-pool
//! runtime (`pram::pool::Executor`, DESIGN.md §5):
//!
//! * two oracles pinned to *different* thread counts own *disjoint*
//!   executors, so they can be built and queried **concurrently** from
//!   many caller threads with zero global-state crosstalk — and every
//!   answer stays bit-identical to the single-threaded reference;
//! * a panicking task propagates to the dispatching caller but neither
//!   kills the workers nor deadlocks subsequent rounds;
//! * the `0 → 1` thread-count clamp (documented once, on
//!   `Executor::new`) holds at every layer that accepts a count.

use pram_sssp::prelude::*;
use std::sync::Arc;

fn test_graph() -> Graph {
    gen::gnm_connected(150, 450, 17, 1.0, 8.0)
}

fn assert_bits(a: &[f64], b: &[f64], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}");
    for (v, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: vertex {v}");
    }
}

/// The headline stress test: build two oracles with different pinned
/// thread counts *concurrently*, then hammer both with queries from
/// several caller threads at once. Every row must be bit-identical to the
/// sequential reference — pinned pools share nothing, and one executor
/// safely serializes rounds from concurrent callers.
#[test]
fn concurrent_oracles_with_different_thread_counts_are_bit_identical() {
    let g = test_graph();
    let n = g.num_vertices() as u32;
    let sources: Vec<u32> = vec![0, n / 4, n / 2, n - 1];

    // Sequential reference (its own private 1-thread executor).
    let reference = Oracle::builder(g.clone())
        .eps(0.25)
        .kappa(4)
        .threads(1)
        .build()
        .expect("params");
    let ref_multi = reference.distances_multi(&sources).expect("in range");

    // Two differently-pinned oracles, built in parallel.
    let (a, b) = std::thread::scope(|s| {
        let g2 = g.clone();
        let ha = s.spawn(move || {
            Oracle::builder(g2)
                .eps(0.25)
                .kappa(4)
                .threads(2)
                .build()
                .expect("params")
        });
        let g3 = g.clone();
        let hb = s.spawn(move || {
            Oracle::builder(g3)
                .eps(0.25)
                .kappa(4)
                .threads(4)
                .build()
                .expect("params")
        });
        (ha.join().expect("build t=2"), hb.join().expect("build t=4"))
    });
    assert_eq!(a.threads(), Some(2));
    assert_eq!(b.threads(), Some(4));
    assert_eq!(a.executor().threads(), 2);
    assert_eq!(b.executor().threads(), 4);
    assert_eq!(a.hopset_size(), reference.hopset_size());
    assert_eq!(b.hopset_size(), reference.hopset_size());

    // Query both simultaneously from several caller threads each.
    let a = Arc::new(a);
    let b = Arc::new(b);
    std::thread::scope(|s| {
        for caller in 0..3 {
            for oracle in [Arc::clone(&a), Arc::clone(&b)] {
                let sources = sources.clone();
                let ref_multi = ref_multi.dist.clone();
                s.spawn(move || {
                    for round in 0..4 {
                        let got = oracle.distances_multi(&sources).expect("in range");
                        for (i, _) in sources.iter().enumerate() {
                            assert_bits(
                                ref_multi.row(i),
                                got.dist.row(i),
                                &format!(
                                    "caller {caller} round {round} t={:?} row {i}",
                                    oracle.threads()
                                ),
                            );
                        }
                    }
                });
            }
        }
    });
}

/// A panic inside a pool task must reach the caller as a panic — and the
/// pool must stay fully usable afterwards (workers park again; the next
/// dispatch completes). Three consecutive panics prove no one-shot luck.
#[test]
fn worker_panic_propagates_without_deadlocking_the_pool() {
    let exec = Executor::new(4);
    let bounds = pram::pool::chunk_bounds(16 * 2048, 4);
    assert!(bounds.len() > 1, "must actually dispatch to workers");
    for round in 0..3 {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.run_chunks(&bounds, |r| {
                // Chunk assignment is dynamic (work-stealing counter), so
                // the panicking chunk may land on a worker (payload must
                // cross the pool boundary) or on the caller itself — both
                // paths must propagate, and repeated rounds exercise both.
                assert!(r.start == 0, "deliberate pool-task panic, round {round}");
                r.len()
            })
        }));
        assert!(caught.is_err(), "round {round} must panic");
    }
    // The same executor still answers; results are complete and ordered.
    let parts = exec.run_chunks(&bounds, |r| r.len());
    assert_eq!(parts.iter().sum::<usize>(), 16 * 2048);
    // And a full oracle query still runs on a fresh pinned oracle while
    // that battered executor is alive (no global fallout).
    let oracle = Oracle::builder(test_graph())
        .eps(0.25)
        .kappa(4)
        .threads(2)
        .build()
        .expect("params");
    assert!(oracle.distances_from(0).expect("in range")[1].is_finite());
}

/// The documented clamp rule (`Executor::new`: 0 ⇒ 1, never an error)
/// holds at every layer that accepts a thread count.
#[test]
fn zero_thread_counts_clamp_to_one_everywhere() {
    assert_eq!(Executor::new(0).threads(), 1);
    assert_eq!(
        pram::pool::with_threads(0, || Executor::current().threads()),
        1
    );
    let oracle = Oracle::builder(gen::path(16))
        .eps(0.5)
        .kappa(4)
        .threads(0)
        .build()
        .expect("params");
    assert_eq!(oracle.threads(), Some(1), "builder clamps 0 to 1");
    assert_eq!(oracle.executor().threads(), 1);
    let d = oracle.distances_from(0).expect("in range");
    assert!((d[15] - 15.0).abs() <= 15.0 * 0.5 + 1e-9);
}

/// An explicitly injected executor is shared, not copied: the oracle
/// reports the same pool it was given, and queries run on it.
#[test]
fn injected_executor_is_shared() {
    let exec = Executor::new(3);
    let oracle = Oracle::builder(test_graph())
        .eps(0.25)
        .kappa(4)
        .executor(exec.clone())
        .build()
        .expect("params");
    assert_eq!(oracle.executor().threads(), 3);
    let single = Oracle::builder(test_graph())
        .eps(0.25)
        .kappa(4)
        .threads(1)
        .build()
        .expect("params");
    assert_bits(
        &single.distances_from(7).expect("in range"),
        &oracle.distances_from(7).expect("in range"),
        "injected executor",
    );
}
