//! Landmark-plane + admission pinning suite (DESIGN.md §9, PR 10).
//!
//! The landmark plane is the one serving fast path that is *not*
//! bit-identical to the slow path it replaces — it answers with a
//! documented `(1+δ)` stretch instead. That makes its contract three
//! separate claims, each pinned here:
//!
//! 1. **soundness** — the triangle bounds sandwich the exact distance
//!    (`lower ≤ d ≤ upper`) on random graphs × landmark counts, and a
//!    certified answer lands in `[d, (1+δ)·d]` (proptest);
//! 2. **determinism** — selection, rows, bounds, and certified answers
//!    are bit-identical at threads 1/2/4/8 and across fresh rebuilds;
//! 3. **admission** — the gate's decisions are typed
//!    (`SsspError::Overloaded`), counted, recoverable, and sequential
//!    traffic is never rejected (decisions are a pure function of the
//!    in-flight count).
//!
//! The fill policies (never-fill default, landmark-only, promote-after-k)
//! are pinned at this level too, because they are the serving behaviors a
//! deployment actually selects between.

use pram::pool;
use pram_sssp::pgraph::{VId, Weight};
use pram_sssp::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, Condvar, Mutex};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn arb_graph() -> impl Strategy<Value = Graph> {
    (16usize..64, 2usize..4, any::<u64>())
        .prop_map(|(n, density, seed)| gen::gnm_connected(n, n * density, seed, 1.0, 10.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Soundness of the triangle bounds over (1+ε)-approximate rows: for
    /// every pair, `lower ≤ d_exact ≤ upper` — the deflated lower bound
    /// absorbs the rows' one-sided error (DESIGN.md §9).
    #[test]
    fn triangle_bounds_sandwich_the_exact_distance(g in arb_graph(), count in 1usize..6) {
        let n = g.num_vertices();
        let oracle = Oracle::builder(g.clone()).eps(0.25).kappa(4).build().unwrap();
        let plane = LandmarkPlane::build(&oracle, &LandmarkConfig::new(count, 1.0)).unwrap();
        for u in [0u32, (n / 2) as u32, (n - 1) as u32] {
            let exact = exact::dijkstra(&g, u).dist;
            for v in 0..n as u32 {
                let b = plane.bounds(u, v).unwrap();
                let d = exact[v as usize];
                prop_assert!(b.lower <= b.upper + 1e-9);
                if d.is_finite() {
                    prop_assert!(b.lower <= d + 1e-9,
                        "L={count} ({u},{v}): lower {} > exact {d}", b.lower);
                    prop_assert!(b.upper >= d - 1e-9,
                        "L={count} ({u},{v}): upper {} < exact {d}", b.upper);
                } else {
                    // An unreachable pair can never get a finite upper
                    // bound: a finite landmark detour would be a path.
                    prop_assert!(b.upper.is_infinite());
                }
            }
        }
    }

    /// A certified answer is within the documented composed stretch of
    /// the exact distance: `d ≤ answer ≤ (1+δ)·d` — δ alone, the rows'
    /// ε is absorbed by the deflated lower bound.
    #[test]
    fn certified_answers_meet_the_composed_stretch(g in arb_graph(), delta_pct in 60u32..240) {
        let delta = delta_pct as f64 / 100.0;
        let n = g.num_vertices();
        let oracle = Oracle::builder(g.clone()).eps(0.25).kappa(4).build().unwrap();
        let plane = LandmarkPlane::build(&oracle, &LandmarkConfig::new(4.min(n), delta)).unwrap();
        prop_assert!((plane.stretch_bound() - (1.0 + delta)).abs() < 1e-12);
        for u in [0u32, (n / 3) as u32] {
            let exact = exact::dijkstra(&g, u).dist;
            for v in 0..n as u32 {
                if let Some(ans) = plane.certify(u, v) {
                    let d = exact[v as usize];
                    if d.is_finite() {
                        prop_assert!(ans >= d - 1e-9,
                            "({u},{v}): certified {ans} < exact {d}");
                        prop_assert!(ans <= (1.0 + delta) * d + 1e-9,
                            "({u},{v}): certified {ans} > (1+{delta})*{d}");
                    } else {
                        prop_assert!(ans.is_infinite());
                    }
                }
            }
        }
    }
}

/// Selection, rows, bounds, and certified answers are pure functions of
/// (graph, backend config, landmark config): bit-identical at every
/// thread count and across fresh rebuilds.
#[test]
fn plane_is_bit_identical_across_thread_counts_and_rebuilds() {
    let g = gen::road_grid(9, 9, 4, 1.0, 6.0);
    let cfg = LandmarkConfig::new(5, 1.0);
    let build_plane = |g: &Graph| {
        let oracle = Oracle::builder(g.clone())
            .eps(0.25)
            .kappa(4)
            .build()
            .expect("params");
        LandmarkPlane::build(&oracle, &cfg).expect("landmarks")
    };
    let n = g.num_vertices() as u32;
    let pairs: Vec<(u32, u32)> = (0..n)
        .step_by(7)
        .flat_map(|u| [(u, (u * 13 + 5) % n), (u, n - 1 - u)])
        .collect();
    let reference = pool::with_threads(1, || build_plane(&g));
    // Rebuild at the same thread count: identical, not just equivalent.
    let rebuilt = pool::with_threads(1, || build_plane(&g));
    assert_eq!(reference.landmarks(), rebuilt.landmarks());
    for &t in &THREADS[1..] {
        let got = pool::with_threads(t, || build_plane(&g));
        assert_eq!(
            reference.landmarks(),
            got.landmarks(),
            "threads={t}: selection diverged"
        );
        for i in 0..reference.landmarks().len() {
            for (v, (a, b)) in reference.row(i).iter().zip(got.row(i)).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={t}: row {i} v={v}");
            }
        }
        for &(u, v) in &pairs {
            let a = reference.bounds(u, v).expect("in range");
            let b = got.bounds(u, v).expect("in range");
            assert_eq!(
                a.lower.to_bits(),
                b.lower.to_bits(),
                "threads={t} ({u},{v})"
            );
            assert_eq!(
                a.upper.to_bits(),
                b.upper.to_bits(),
                "threads={t} ({u},{v})"
            );
            match (reference.certify(u, v), got.certify(u, v)) {
                (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                (None, None) => {}
                (x, y) => panic!("threads={t} ({u},{v}): certify diverged {x:?} vs {y:?}"),
            }
        }
    }
}

/// The PR 6 default, pinned: `CachedOracle::new` serves with
/// `FillPolicy::NeverFill` — a p2p miss delegates to the backend
/// (bit-identical), never consults a plane, never fills the row cache.
#[test]
fn default_policy_is_never_fill_and_p2p_misses_do_not_fill() {
    let g = gen::gnm_connected(80, 240, 5, 1.0, 9.0);
    let oracle = Oracle::builder(g)
        .eps(0.25)
        .kappa(4)
        .build()
        .expect("params");
    let reference = oracle.distances_from(3).expect("in range");
    let served = CachedOracle::new(oracle, 4).expect("capacity");
    assert_eq!(served.policy(), FillPolicy::NeverFill);
    assert!(served.landmark_plane().is_none());
    assert!(served.admission().is_none());
    let d = served.distance(3, 41).expect("in range");
    assert_eq!(d.to_bits(), reference[41].to_bits());
    let st = served.stats();
    assert_eq!(st.len, 0, "a p2p miss never fills under the default policy");
    assert_eq!(st.fallbacks, 1);
    assert_eq!(st.landmark_answers, 0);
}

/// `LandmarkOnly` without a plane is a typed configuration error, not a
/// silent no-op.
#[test]
fn landmark_only_without_a_plane_is_a_config_error() {
    let oracle = Oracle::builder(gen::path(16)).build().expect("params");
    match CachedOracle::with_config(oracle, CacheConfig::new(4).policy(FillPolicy::LandmarkOnly)) {
        Err(SsspError::Config(msg)) => assert!(msg.contains("landmark")),
        other => panic!("expected Config error, got {:?}", other.map(|_| ())),
    }
}

/// `PromoteAfterMisses(k)`: the k-th fallback exploration for a source
/// computes and caches its full row; later p2p queries on it are hits.
#[test]
fn promote_after_k_misses_turns_a_hot_cold_source_into_hits() {
    let g = gen::gnm_connected(80, 240, 5, 1.0, 9.0);
    let oracle = Oracle::builder(g)
        .eps(0.25)
        .kappa(4)
        .build()
        .expect("params");
    let reference = oracle.distances_from(7).expect("in range");
    let served = CachedOracle::with_config(
        oracle,
        CacheConfig::new(4).policy(FillPolicy::PromoteAfterMisses(2)),
    )
    .expect("config");
    assert_eq!(
        served.distance(7, 11).expect("in range").to_bits(),
        reference[11].to_bits()
    );
    assert_eq!(served.stats().len, 0, "first fallback does not promote");
    assert_eq!(
        served.distance(7, 12).expect("in range").to_bits(),
        reference[12].to_bits()
    );
    let st = served.stats();
    assert_eq!((st.promotions, st.len), (1, 1), "second fallback promotes");
    let hits_before = st.hits;
    assert_eq!(
        served.distance(7, 13).expect("in range").to_bits(),
        reference[13].to_bits()
    );
    assert_eq!(served.stats().hits, hits_before + 1);
}

/// Through the serving stack: a landmark-backed cache answers a real
/// fraction of cold p2p traffic without exploration, every answer within
/// the composed stretch, and the counters account for every request.
#[test]
fn landmark_backed_cache_serves_cold_p2p_within_stretch() {
    let g = gen::road_grid(11, 11, 4, 1.0, 6.0);
    let n = g.num_vertices() as u32;
    let oracle = Oracle::builder(g.clone())
        .eps(0.25)
        .kappa(4)
        .build()
        .expect("params");
    let served = CachedOracle::with_config(
        oracle,
        CacheConfig::new(4)
            .policy(FillPolicy::LandmarkOnly)
            .landmarks(LandmarkConfig::new(8, 1.0)),
    )
    .expect("config");
    let delta = served.landmark_plane().expect("plane").delta();
    assert!(served.stretch_bound() >= 1.0 + delta);
    let mut p2p = 0u64;
    for u in (0..n).step_by(5) {
        let exact = exact::dijkstra(&g, u).dist;
        for v in (0..n).step_by(7) {
            let d = served.distance(u, v).expect("in range");
            p2p += 1;
            assert!(d >= exact[v as usize] - 1e-9, "({u},{v}): {d} undershoots");
            assert!(
                d <= served.stretch_bound() * exact[v as usize] + 1e-9,
                "({u},{v}): {d} > bound * {}",
                exact[v as usize]
            );
        }
    }
    let st = served.stats();
    assert!(st.landmark_answers > 0, "the plane must answer something");
    assert_eq!(st.landmark_answers + st.fallbacks, p2p - st.hits);
    assert_eq!(st.len, 0, "LandmarkOnly never fills from p2p traffic");
}

/// A backend whose exploration blocks until released: lets the tests
/// hold an admission slot open deterministically.
struct Blocking {
    n: usize,
    ledger: Ledger,
    open: Mutex<bool>,
    cv: Condvar,
    entered: std::sync::mpsc::Sender<()>,
}

impl DistanceOracle for Blocking {
    fn name(&self) -> &'static str {
        "blocking"
    }
    fn num_vertices(&self) -> usize {
        self.n
    }
    fn stretch_bound(&self) -> f64 {
        1.0
    }
    fn cost(&self) -> &Ledger {
        &self.ledger
    }
    fn distances_from_with_ledger(&self, _source: VId) -> Result<(Vec<Weight>, Ledger), SsspError> {
        self.entered.send(()).expect("test alive");
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
        Ok((vec![0.0; self.n], Ledger::new()))
    }
}

/// The admission gate in reject mode: over-capacity requests fail with
/// the typed, counted `Overloaded` — and succeed again once load drains.
#[test]
fn admission_gate_rejects_typed_counted_and_recoverable() {
    let (tx, rx) = std::sync::mpsc::channel();
    let served = Arc::new(
        CachedOracle::with_config(
            Blocking {
                n: 8,
                ledger: Ledger::new(),
                open: Mutex::new(false),
                cv: Condvar::new(),
                entered: tx,
            },
            CacheConfig::new(4).admission(1, false),
        )
        .expect("config"),
    );
    assert_eq!(
        served.admission(),
        Some(AdmissionConfig {
            max_inflight: 1,
            queue: false
        })
    );
    let holder = {
        let s = Arc::clone(&served);
        std::thread::spawn(move || s.row(0).map(|r| r.1))
    };
    rx.recv().expect("holder entered the backend");
    match served.row(1) {
        Err(
            e @ SsspError::Overloaded {
                in_flight,
                capacity,
            },
        ) => {
            assert_eq!((in_flight, capacity), (1, 1));
            let msg = format!("{e}");
            assert!(msg.contains("admission") && msg.contains('1'), "{msg}");
        }
        other => panic!("expected Overloaded, got {:?}", other.map(|r| r.1)),
    }
    assert_eq!(served.stats().rejections, 1);
    {
        let b = served.inner();
        *b.open.lock().unwrap() = true;
        b.cv.notify_all();
    }
    assert!(
        !holder.join().expect("holder").expect("row"),
        "miss, not hit"
    );
    assert!(served.row(1).is_ok(), "gate recovered after the drain");
}

/// Sequential traffic is never rejected: admission is a pure function of
/// the in-flight count, which a serialized sequence keeps at zero — so
/// the decision trace (and every counter) is reproducible run over run.
#[test]
fn sequential_requests_are_never_rejected_and_stats_are_reproducible() {
    let g = gen::road_grid(9, 9, 4, 1.0, 6.0);
    let sequence = [0u32, 5, 0, 9, 5, 0, 80, 9];
    let mut runs = Vec::new();
    for _ in 0..2 {
        let oracle = Oracle::builder(g.clone())
            .eps(0.25)
            .kappa(4)
            .build()
            .expect("params");
        let served = CachedOracle::with_config(
            oracle,
            CacheConfig::new(2)
                .policy(FillPolicy::PromoteAfterMisses(2))
                .admission(1, false),
        )
        .expect("config");
        for &s in &sequence {
            let _ = served.row(s).expect("sequential: never overloaded");
            let _ = served.distance(s, 3).expect("sequential: never overloaded");
        }
        runs.push(served.stats());
    }
    assert_eq!(runs[0], runs[1], "same sequence, same stats");
    assert_eq!(runs[0].rejections, 0);
}
