//! The API-redesign contract tests: the owned `Oracle` facade is
//! thread-safe (compile-time `Send + Sync`), object-safe
//! (`Box<dyn DistanceOracle>`), and produces **bit-identical** results to
//! the legacy borrowed engines (`ApproxShortestPaths`, `ApproxSptEngine`)
//! it supersedes.
#![allow(deprecated)] // parity tests deliberately exercise the legacy API

use pram_sssp::prelude::*;
use std::sync::Arc;

/// Compile-time: the owned oracle and its trait objects cross threads.
#[test]
fn oracle_is_send_sync_statically() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Oracle>();
    assert_send_sync::<Arc<Oracle>>();
    assert_send_sync::<DeltaSteppingOracle>();
    assert_send_sync::<DijkstraOracle>();
    assert_send_sync::<Box<dyn DistanceOracle>>();
    assert_send_sync::<Arc<dyn DistanceOracle>>();
    assert_send_sync::<Vec<Box<dyn DistanceOracle>>>();
}

/// Object safety: all backends usable through one `dyn` surface, including
/// every trait method.
#[test]
fn distance_oracle_is_object_safe() {
    let g = Arc::new(gen::gnm_connected(60, 180, 3, 1.0, 6.0));
    let backends: Vec<Box<dyn DistanceOracle>> = vec![
        Box::new(
            Oracle::builder(Arc::clone(&g))
                .eps(0.25)
                .kappa(4)
                .build()
                .unwrap(),
        ),
        Box::new(DeltaSteppingOracle::new(Arc::clone(&g))),
        Box::new(DijkstraOracle::new(Arc::clone(&g))),
    ];
    let exact = exact::dijkstra(&g, 0).dist;
    for b in &backends {
        assert_eq!(b.num_vertices(), 60);
        assert!(b.stretch_bound() >= 1.0);
        let d = b.distances_from(0).unwrap();
        let multi = b.distances_multi(&[0, 30]).unwrap();
        assert_eq!(multi.dist.row(0), &d[..], "{}", b.name());
        let near = b.distances_to_nearest(&[0, 59]).unwrap();
        assert_eq!(near[0], 0.0);
        let p2p = b.distance(0, 30).unwrap();
        assert!((p2p - d[30]).abs() < 1e-12);
        // Every backend respects its declared stretch bound.
        for v in 0..60 {
            assert!(d[v] >= exact[v] - 1e-6 * exact[v].max(1.0), "{}", b.name());
            assert!(
                d[v] <= b.stretch_bound() * exact[v] + 1e-9,
                "{} at {v}",
                b.name()
            );
        }
    }
}

/// `Arc<Oracle>` served from multiple threads returns bit-identical
/// answers (the determinism contract survives sharing).
#[test]
fn arc_oracle_concurrent_queries_are_deterministic() {
    let g = gen::road_grid(12, 12, 9, 1.0, 8.0);
    let oracle = Arc::new(
        Oracle::builder(g)
            .eps(0.25)
            .kappa(4)
            .paths(true)
            .build()
            .unwrap(),
    );
    let reference = oracle.distances_from(7).unwrap();
    let ref_spt = oracle.spt(7).unwrap();
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let o = Arc::clone(&oracle);
            std::thread::spawn(move || {
                let d = o.distances_from(7).unwrap();
                let spt = o.spt(7).unwrap();
                (i, d, spt)
            })
        })
        .collect();
    for h in handles {
        let (i, d, spt) = h.join().unwrap();
        for (a, b) in d.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits(), "thread {i}");
        }
        assert_eq!(spt.parent, ref_spt.parent, "thread {i}");
    }
}

/// Parity: the new facade's distance queries are bit-identical to the
/// legacy `ApproxShortestPaths` on seeded graphs (same construction, same
/// query engine — the redesign changed ownership, not answers).
#[test]
fn new_oracle_matches_legacy_assd_bit_for_bit() {
    for (seed, eps, kappa) in [(5u64, 0.25, 4usize), (13, 0.4, 3), (21, 0.15, 6)] {
        let g = gen::gnm_connected(140, 420, seed, 1.0, 9.0);
        let legacy = ApproxShortestPaths::build(&g, eps, kappa).unwrap();
        let oracle = Oracle::builder(g.clone())
            .eps(eps)
            .kappa(kappa)
            .build()
            .unwrap();
        assert_eq!(oracle.query_hops(), legacy.query_hops());
        assert_eq!(oracle.hopset_size(), legacy.built().hopset.len());
        for src in [0u32, 70, 139] {
            let old = legacy.distances_from(src);
            let new = oracle.distances_from(src).unwrap();
            for (a, b) in new.iter().zip(&old) {
                assert_eq!(a.to_bits(), b.to_bits(), "seed {seed} src {src}");
            }
        }
        // Multi-source parity via the nested view of the flat matrix.
        let sources = [3u32, 99];
        let old_multi = legacy.distances_multi(&sources);
        let new_multi = oracle.distances_multi(&sources).unwrap();
        assert_eq!(old_multi.dist.to_nested(), new_multi.dist.to_nested());
        // Nearest-source parity.
        assert_eq!(
            legacy.distances_to_nearest(&sources),
            oracle.distances_to_nearest(&sources).unwrap()
        );
    }
}

/// Parity: SPT extraction through the facade is bit-identical to the
/// legacy `ApproxSptEngine`, on both pipelines.
#[test]
fn new_oracle_matches_legacy_spt_engines() {
    // Plain pipeline.
    let g = gen::clique_chain(5, 8, 2.0);
    let legacy = ApproxSptEngine::build(&g, 0.25, 4).unwrap();
    let oracle = Oracle::builder(g.clone())
        .eps(0.25)
        .kappa(4)
        .paths(true)
        .pipeline(Pipeline::Plain)
        .build()
        .unwrap();
    assert_eq!(oracle.hopset_size(), legacy.hopset_size());
    for src in [0u32, 20, 39] {
        let old = legacy.spt(src);
        let new = oracle.spt(src).unwrap();
        assert_eq!(old.parent, new.parent, "src {src}");
        for (a, b) in new.dist.iter().zip(&old.dist) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    // Reduced pipeline (huge aspect ratio).
    let g = gen::exponential_path(28, 3.0);
    let legacy = ApproxSptEngine::build_reduced(&g, 0.5, 4).unwrap();
    let oracle = Oracle::builder(g.clone())
        .eps(0.5)
        .kappa(4)
        .paths(true)
        .pipeline(Pipeline::Reduced)
        .build()
        .unwrap();
    assert_eq!(oracle.pipeline(), Pipeline::Reduced);
    assert_eq!(oracle.hopset_size(), legacy.hopset_size());
    let old = legacy.spt(0);
    let new = oracle.spt(0).unwrap();
    assert_eq!(old.parent, new.parent);
    for (a, b) in new.dist.iter().zip(&old.dist) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// The error surface: typed errors, not panics, for every misuse.
#[test]
fn query_errors_are_typed_not_panics() {
    let g = gen::path(12);
    let oracle = Oracle::builder(g).build().unwrap();
    assert!(matches!(
        oracle.distances_from(12),
        Err(SsspError::InvalidSource { source: 12, n: 12 })
    ));
    assert!(matches!(oracle.spt(0), Err(SsspError::PathsNotRecorded)));
    assert!(matches!(
        Oracle::builder(gen::path(4)).eps(0.0).build(),
        Err(SsspError::Params(_))
    ));
    // Errors format for humans (the serving path logs them).
    let msg = oracle.distances_from(99).unwrap_err().to_string();
    assert!(msg.contains("99") && msg.contains("12"), "{msg}");
}
