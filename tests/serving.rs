//! Serving-grade pinning suite for the query plane (DESIGN.md §9).
//!
//! The serving layer (early-exit point-to-point, batched multi-source,
//! the LRU source cache) is only usable because every fast path is
//! **bit-identical** to the slow path it replaces. This file pins that
//! contract the same way `tests/determinism.rs` pins the pool contract:
//! `f64::to_bits` equality, no epsilon anywhere, across three graph
//! families × both pipelines × threads {1, 2, 4, 8}, plus the cache's
//! determinism (same request sequence ⇒ same hit/miss trace) and its
//! behavior under concurrent mixed hit/miss load.

use pram::pool;
use pram_sssp::prelude::*;
use std::sync::Arc;

/// The same three families the determinism suite pins: sparse random,
/// planar-ish road grid, and a wide-weight-range family.
fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnm", gen::gnm_connected(120, 360, 6, 1.0, 9.0)),
        ("road-grid", gen::road_grid(9, 9, 4, 1.0, 6.0)),
        ("wide-weights", gen::wide_weights(80, 160, 12, 5)),
    ]
}

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn build(g: &Graph, pipeline: Pipeline) -> Oracle {
    Oracle::builder(g.clone())
        .eps(0.25)
        .kappa(4)
        .pipeline(pipeline)
        .build()
        .expect("params")
}

/// (1) Early-exit `distance(u, v)` is bit-identical to the full row's
/// entry, on every family × pipeline × thread count × several (u, v).
#[test]
fn early_exit_p2p_bit_identical_to_full_row() {
    for (name, g) in families() {
        for (pname, pipeline) in [("plain", Pipeline::Plain), ("reduced", Pipeline::Reduced)] {
            for &t in &THREADS {
                pool::with_threads(t, || {
                    let oracle = build(&g, pipeline);
                    let n = oracle.num_vertices() as u32;
                    for &u in &[0u32, n / 3, n - 1] {
                        let row = oracle.distances_from(u).expect("in range");
                        for &v in &[0u32, 1, u, n / 2, n - 2, n - 1] {
                            let p2p = oracle.distance(u, v).expect("in range");
                            assert_eq!(
                                p2p.to_bits(),
                                row[v as usize].to_bits(),
                                "{name}/{pname}/threads={t}: {u} -> {v}: {p2p} vs {}",
                                row[v as usize]
                            );
                        }
                    }
                });
            }
        }
    }
}

/// (2) Batched `distances_multi` is bit-identical (rows **and** batch
/// ledger) to querying the same sources one by one.
#[test]
fn batched_multi_source_bit_identical_to_sequential() {
    for (name, g) in families() {
        for &t in &THREADS {
            pool::with_threads(t, || {
                let oracle = build(&g, Pipeline::Plain);
                let n = oracle.num_vertices() as u32;
                // Repeated source included: batching must not dedup.
                let sources = vec![0u32, n / 3, n - 1, n / 3];
                let multi = oracle.distances_multi(&sources).expect("in range");
                assert_eq!(multi.sources, sources);
                let mut ledger = Ledger::new();
                for (i, &s) in sources.iter().enumerate() {
                    let (row, l) = oracle.distances_from_with_ledger(s).expect("in range");
                    ledger.absorb_parallel(&l);
                    let batched = multi.dist.row(i);
                    assert_eq!(batched.len(), row.len());
                    for (v, (a, b)) in batched.iter().zip(&row).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{name}/threads={t}: row {i} vertex {v}"
                        );
                    }
                }
                assert_eq!(multi.ledger, ledger, "{name}/threads={t}: batch ledger");
            });
        }
    }
}

/// The exact baselines' early exits (pop-`v` Dijkstra, settled-bucket
/// Δ-stepping) keep `distance` bit-identical to their own full rows.
#[test]
fn exact_backend_p2p_bit_identical_to_full_row() {
    for (name, g) in families() {
        let g = Arc::new(g);
        let backends: Vec<Box<dyn DistanceOracle>> = vec![
            Box::new(DijkstraOracle::new(Arc::clone(&g))),
            Box::new(DeltaSteppingOracle::new(Arc::clone(&g))),
        ];
        let n = g.num_vertices() as u32;
        for b in &backends {
            for &u in &[0u32, n / 2] {
                let row = b.distances_from(u).expect("in range");
                for &v in &[0u32, u, n / 3, n - 1] {
                    let p2p = b.distance(u, v).expect("in range");
                    assert_eq!(
                        p2p.to_bits(),
                        row[v as usize].to_bits(),
                        "{name}/{}: {u} -> {v}",
                        b.name()
                    );
                }
            }
        }
    }
}

/// (3a) Cache hits are bit-identical to cold answers — rows, ledgers, and
/// p2p reads through the cached row.
#[test]
fn cache_hits_bit_identical_to_cold_answers() {
    for (name, g) in families() {
        let oracle = build(&g, Pipeline::Plain);
        let n = oracle.num_vertices() as u32;
        let reference: Vec<Vec<f64>> = (0..n)
            .step_by((n as usize / 4).max(1))
            .map(|s| oracle.distances_from(s).expect("in range"))
            .collect();
        let sources: Vec<u32> = (0..n).step_by((n as usize / 4).max(1)).collect();
        let served = CachedOracle::new(oracle, 2).expect("capacity");
        // Two passes: misses fill (and evict — capacity 2 < sources), hits
        // re-serve; every answer equals the cold reference bit for bit.
        for pass in 0..2 {
            for (i, &s) in sources.iter().enumerate() {
                let row = served.distances_from(s).expect("in range");
                for (v, (a, b)) in row.iter().zip(&reference[i]).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{name}: pass {pass} s={s} v={v}");
                }
                let p2p = served.distance(s, n - 1).expect("in range");
                assert_eq!(p2p.to_bits(), reference[i][n as usize - 1].to_bits());
            }
        }
        let st = served.stats();
        assert!(st.hits > 0, "{name}: second pass must hit");
        assert!(st.len <= 2, "{name}: bounded");
    }
}

/// (3b) Concurrent mixed hit/miss load from ≥ 4 caller threads: every
/// answer, from every thread, is bit-identical to the cold reference, and
/// the counters account for every row request.
#[test]
fn cache_concurrent_mixed_load_is_bit_identical() {
    let g = gen::gnm_connected(120, 360, 6, 1.0, 9.0);
    let oracle = build(&g, Pipeline::Plain);
    let n = oracle.num_vertices() as u32;
    let reference: Arc<Vec<Vec<f64>>> = Arc::new(
        (0..n)
            .map(|s| oracle.distances_from(s).expect("in range"))
            .collect(),
    );
    let served = Arc::new(CachedOracle::new(oracle, 3).expect("capacity"));
    const CLIENTS: usize = 6;
    const OPS: usize = 40;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let s = Arc::clone(&served);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                let mut row_requests = 0u64;
                for i in 0..OPS {
                    // Deterministic per-thread mix: a small hot set (cache
                    // hits land here), a rotating cold tail (misses +
                    // evictions), and p2p reads between them.
                    let hot = (c % 3) as u32;
                    let cold = ((c * OPS + i) % n as usize) as u32;
                    let src = if i % 3 == 0 { cold } else { hot };
                    match i % 2 {
                        0 => {
                            let row = s.distances_from(src).expect("in range");
                            row_requests += 1;
                            for (v, (a, b)) in row.iter().zip(&reference[src as usize]).enumerate()
                            {
                                assert_eq!(
                                    a.to_bits(),
                                    b.to_bits(),
                                    "client {c} op {i} src {src} v {v}"
                                );
                            }
                        }
                        _ => {
                            let v = (i as u32 * 7) % n;
                            let d = s.distance(src, v).expect("in range");
                            assert_eq!(
                                d.to_bits(),
                                reference[src as usize][v as usize].to_bits(),
                                "client {c} op {i} p2p {src} -> {v}"
                            );
                        }
                    }
                }
                row_requests
            })
        })
        .collect();
    let total_rows: u64 = handles.into_iter().map(|h| h.join().expect("client")).sum();
    let st = served.stats();
    // Every row request was counted as a hit or a miss; p2p requests add
    // hits (resident row) or silent delegations, never rows.
    assert!(st.hits + st.misses >= total_rows);
    assert!(st.misses >= 1);
    assert!(st.hits >= 1);
    assert!(st.len <= 3);
}

/// (4) Eviction determinism: the same request sequence on a fresh cache
/// produces the same hit/miss trace and the same counters, every time.
#[test]
fn cache_eviction_trace_is_deterministic() {
    let g = gen::road_grid(9, 9, 4, 1.0, 6.0);
    // LRU, capacity 2, sequence: 0m 1m 2m(evict 0) 0m(evict 1) 0h
    // 1m(evict 2) 2m(evict 0) — the trace is a pure function of the
    // sequence and the capacity.
    let sequence = [0u32, 1, 2, 0, 0, 1, 2];
    let expected = [false, false, false, false, true, false, false];
    let mut traces = Vec::new();
    for _ in 0..2 {
        let served = CachedOracle::new(build(&g, Pipeline::Plain), 2).expect("capacity");
        let trace: Vec<bool> = sequence
            .iter()
            .map(|&s| served.row(s).expect("in range").1)
            .collect();
        let st = served.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 6);
        assert_eq!(st.evictions, 4);
        assert_eq!(st.len, 2);
        // Row-only traffic under the default policy touches none of the
        // PR 10 serving counters.
        assert_eq!(st.landmark_answers, 0);
        assert_eq!(st.fallbacks, 0);
        assert_eq!(st.rejections, 0);
        assert_eq!(st.promotions, 0);
        traces.push(trace);
    }
    assert_eq!(traces[0], expected);
    assert_eq!(traces[0], traces[1], "same sequence, same trace");
}

/// (4b) The extended counter set (landmark answers, fallbacks,
/// promotions) is part of the same contract: a fixed mixed row/p2p
/// request sequence over a landmark-backed, promotion-enabled cache
/// produces the identical `CacheStats` on every fresh run.
#[test]
fn extended_counter_trace_is_deterministic() {
    let g = gen::road_grid(9, 9, 4, 1.0, 6.0);
    let n = 81u32;
    // Mixed sequence: hot rows, repeated cold p2p on one source (crosses
    // the promotion threshold), and scattered cold p2p (landmark or
    // fallback — decided purely by the plane's bounds).
    let rows = [0u32, 40, 0];
    let pairs = [
        (7u32, 60u32),
        (7, 61),
        (7, 62),
        (13, 70),
        (25, 33),
        (0, 80),
        (44, 44),
    ];
    let mut runs = Vec::new();
    for _ in 0..2 {
        let served = CachedOracle::with_config(
            build(&g, Pipeline::Plain),
            CacheConfig::new(2)
                .policy(FillPolicy::PromoteAfterMisses(2))
                .landmarks(LandmarkConfig::new(6, 1.0)),
        )
        .expect("config");
        for &s in &rows {
            let _ = served.row(s).expect("in range");
        }
        for &(u, v) in &pairs {
            assert!(u < n && v < n);
            let _ = served.distance(u, v).expect("in range");
        }
        runs.push(served.stats());
    }
    assert_eq!(runs[0], runs[1], "same sequence, same extended counters");
    let st = runs[0];
    // The sequence exercises every counter class it is meant to pin.
    assert_eq!(st.hits + st.misses, (rows.len() + pairs.len()) as u64);
    // Every miss is either a row fill (the [0, 40, 0] prefix misses
    // exactly twice) or a p2p request resolved by the plane or a
    // fallback exploration — nothing is dropped from the accounting.
    assert_eq!(st.misses, 2 + st.landmark_answers + st.fallbacks);
    assert!(
        st.landmark_answers > 0,
        "plane answered the trivial pair at least"
    );
    assert!(st.fallbacks > 0, "some pair fell through to exploration");
}

/// The serving wrapper crosses threads and erases like every other
/// backend (compile-time + object-safety check).
#[test]
fn cached_oracle_is_send_sync_and_object_safe() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CachedOracle<Oracle>>();
    assert_send_sync::<Arc<CachedOracle<Oracle>>>();
    assert_send_sync::<CachedOracle<Arc<Oracle>>>();

    let g = Arc::new(gen::path(32));
    let backends: Vec<Box<dyn DistanceOracle>> = vec![
        Box::new(
            CachedOracle::new(Oracle::builder(Arc::clone(&g)).build().expect("params"), 4)
                .expect("capacity"),
        ),
        Box::new(CachedOracle::new(DijkstraOracle::new(g), 4).expect("capacity")),
    ];
    for b in &backends {
        assert_eq!(b.name(), "cached");
        let d = b.distances_from(0).expect("in range");
        assert_eq!(
            b.distance(0, 31).expect("in range").to_bits(),
            d[31].to_bits()
        );
        let near = b.distances_to_nearest(&[0, 31]).expect("in range");
        assert_eq!(near[0], 0.0);
    }
}

/// Cached answers are bit-identical across thread counts too: the cache
/// composes with the pool contract instead of weakening it.
#[test]
fn cached_rows_bit_identical_across_thread_counts() {
    let g = gen::wide_weights(80, 160, 12, 5);
    let base = pool::with_threads(1, || {
        let served = CachedOracle::new(build(&g, Pipeline::Plain), 4).expect("capacity");
        let cold = served.distances_from(7).expect("in range");
        let warm = served.distances_from(7).expect("in range");
        (cold, warm)
    });
    for &t in &THREADS[1..] {
        let got = pool::with_threads(t, || {
            let served = CachedOracle::new(build(&g, Pipeline::Plain), 4).expect("capacity");
            let cold = served.distances_from(7).expect("in range");
            let warm = served.distances_from(7).expect("in range");
            (cold, warm)
        });
        for (v, ((a, b), (c, d))) in base
            .0
            .iter()
            .zip(&base.1)
            .zip(got.0.iter().zip(&got.1))
            .enumerate()
        {
            assert_eq!(a.to_bits(), c.to_bits(), "threads={t} cold v={v}");
            assert_eq!(b.to_bits(), d.to_bits(), "threads={t} warm v={v}");
        }
    }
}
