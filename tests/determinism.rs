//! Cross-thread-count determinism suite — the contract of `pram::pool`.
//!
//! The persistent worker pool executes every primitive with fixed chunk
//! boundaries and order-independent reductions (DESIGN.md §5), which
//! must make the *entire* oracle pipeline — hopset construction, aMSSD
//! batches, SPT extraction, and the PRAM cost ledger — **bit-identical**
//! for every thread count (and identical to what the retired scoped-spawn
//! implementation produced: neither the chunking rule nor any reduction
//! changed). This file runs the full pipeline (plain and
//! Klein–Sairam-reduced) at threads ∈ {1, 2, 4, 8} on three graph
//! families and compares every output against the single-threaded run,
//! `f64`s by `to_bits` (no epsilon anywhere: identical means identical).

use pram::pool;
use pram_sssp::prelude::*;
use sssp::MultiSourceResult;

/// The three graph families the suite pins: sparse random, planar-ish
/// road grid, and a wide-weight-range family (the reduced pipeline's
/// reason to exist).
fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnm", gen::gnm_connected(120, 360, 6, 1.0, 9.0)),
        ("road-grid", gen::road_grid(9, 9, 4, 1.0, 6.0)),
        ("wide-weights", gen::wide_weights(80, 160, 12, 5)),
    ]
}

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One full pipeline run at a fixed thread count: build (with paths), an
/// aMSSD batch, SPT parents from two roots, and the construction ledger.
struct PipelineRun {
    construction: Ledger,
    multi: MultiSourceResult,
    spt_parents: Vec<Vec<Option<(u32, f64)>>>,
    spt_dists: Vec<Vec<f64>>,
    spt_ledgers: Vec<Ledger>,
    hopset_size: usize,
}

fn run_pipeline(g: &Graph, pipeline: Pipeline, threads: usize) -> PipelineRun {
    pool::with_threads(threads, || {
        let oracle = Oracle::builder(g.clone())
            .eps(0.25)
            .kappa(4)
            .paths(true)
            .pipeline(pipeline)
            .build()
            .expect("params");
        let n = g.num_vertices() as u32;
        let sources = vec![0u32, n / 3, n - 1];
        let multi = oracle.distances_multi(&sources).expect("sources in range");
        let mut spt_parents = Vec::new();
        let mut spt_dists = Vec::new();
        let mut spt_ledgers = Vec::new();
        for root in [0u32, n / 2] {
            let spt = oracle.spt(root).expect("paths recorded");
            spt_parents.push(spt.parent);
            spt_dists.push(spt.dist);
            spt_ledgers.push(spt.ledger);
        }
        PipelineRun {
            construction: oracle.cost().clone(),
            multi,
            spt_parents,
            spt_dists,
            spt_ledgers,
            hopset_size: oracle.hopset_size(),
        }
    })
}

/// Bit-exact comparison of two distance rows (`-0.0 ≠ 0.0`, `NaN == NaN`:
/// stricter than `==` in both directions).
fn assert_rows_bit_identical(a: &[f64], b: &[f64], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: row length");
    for (v, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: vertex {v}: {x} vs {y}");
    }
}

fn assert_identical(base: &PipelineRun, got: &PipelineRun, ctx: &str) {
    // Ledger work counts: the PRAM cost accounting may not depend on the
    // schedule either.
    assert_eq!(base.construction, got.construction, "{ctx}: build ledger");
    assert_eq!(
        base.construction.work(),
        got.construction.work(),
        "{ctx}: build work count"
    );
    assert_eq!(base.hopset_size, got.hopset_size, "{ctx}: |H|");
    // aMSSD: the whole DistanceMatrix, bit for bit, plus its batch ledger.
    assert_eq!(base.multi.sources, got.multi.sources, "{ctx}: sources");
    for i in 0..base.multi.sources.len() {
        assert_rows_bit_identical(
            base.multi.dist.row(i),
            got.multi.dist.row(i),
            &format!("{ctx}: aMSSD row {i}"),
        );
    }
    assert_eq!(base.multi.ledger, got.multi.ledger, "{ctx}: aMSSD ledger");
    // SPT: parent trees (ids and parent-edge weights) and tree distances.
    for (r, (bp, gp)) in base.spt_parents.iter().zip(&got.spt_parents).enumerate() {
        assert_eq!(bp.len(), gp.len());
        for v in 0..bp.len() {
            match (&bp[v], &gp[v]) {
                (None, None) => {}
                (Some((p1, w1)), Some((p2, w2))) => {
                    assert_eq!(p1, p2, "{ctx}: SPT {r} parent of {v}");
                    assert_eq!(w1.to_bits(), w2.to_bits(), "{ctx}: SPT {r} weight at {v}");
                }
                (x, y) => panic!("{ctx}: SPT {r} parent presence at {v}: {x:?} vs {y:?}"),
            }
        }
    }
    for (r, (bd, gd)) in base.spt_dists.iter().zip(&got.spt_dists).enumerate() {
        assert_rows_bit_identical(bd, gd, &format!("{ctx}: SPT {r} dist"));
    }
    assert_eq!(base.spt_ledgers, got.spt_ledgers, "{ctx}: SPT ledgers");
}

#[test]
fn plain_pipeline_bit_identical_across_thread_counts() {
    for (name, g) in families() {
        let base = run_pipeline(&g, Pipeline::Plain, THREADS[0]);
        for &t in &THREADS[1..] {
            let got = run_pipeline(&g, Pipeline::Plain, t);
            assert_identical(&base, &got, &format!("plain/{name}/threads={t}"));
        }
    }
}

#[test]
fn reduced_pipeline_bit_identical_across_thread_counts() {
    for (name, g) in families() {
        let base = run_pipeline(&g, Pipeline::Reduced, THREADS[0]);
        for &t in &THREADS[1..] {
            let got = run_pipeline(&g, Pipeline::Reduced, t);
            assert_identical(&base, &got, &format!("reduced/{name}/threads={t}"));
        }
    }
}

/// The `threads` builder knob and the ambient `with_threads` scope must
/// agree: pinning via `OracleBuilder::threads(t)` gives the same bits as
/// pinning the whole pipeline scope.
#[test]
fn builder_threads_knob_matches_scoped_override() {
    let g = gen::gnm_connected(100, 300, 9, 1.0, 6.0);
    let scoped = run_pipeline(&g, Pipeline::Plain, 4);
    let built = {
        let oracle = Oracle::builder(g.clone())
            .eps(0.25)
            .kappa(4)
            .paths(true)
            .pipeline(Pipeline::Plain)
            .threads(4)
            .build()
            .expect("params");
        assert_eq!(oracle.threads(), Some(4));
        let sources = vec![0u32, 33, 99];
        oracle.distances_multi(&sources).expect("in range")
    };
    for i in 0..3 {
        assert_rows_bit_identical(
            scoped.multi.dist.row(i),
            built.dist.row(i),
            &format!("builder-vs-scope row {i}"),
        );
    }
    assert_eq!(scoped.multi.ledger, built.ledger);
}

/// The primitives underneath, driven through a public hot path with an
/// input big enough to cross `PAR_THRESHOLD`: a single large Bellman–Ford
/// must produce bit-identical distances at every thread count.
#[test]
fn large_bellman_ford_bit_identical_across_thread_counts() {
    let n = 6000usize;
    let g = gen::gnm_connected(n, 3 * n, 21, 1.0, 9.0);
    let view = UnionView::base_only(&g);
    let mut base_ledger = Ledger::new();
    let base = pram::bellman_ford(&Executor::sequential(), &view, &[0], 12, &mut base_ledger);
    for t in [2usize, 4, 8] {
        let mut ledger = Ledger::new();
        let got = pram::bellman_ford(&Executor::shared(t), &view, &[0], 12, &mut ledger);
        assert_rows_bit_identical(&base.dist, &got.dist, &format!("bford threads={t}"));
        assert_eq!(base.parent, got.parent, "bford parents threads={t}");
        assert_eq!(base_ledger, ledger, "bford ledger threads={t}");
    }
}
