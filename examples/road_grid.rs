//! Road-network-style scenario: hop-limited queries on a large weighted
//! grid — the setting where the hopset earns its keep, because plain
//! Bellman–Ford needs Θ(hop diameter) rounds while `G ∪ H` needs β.
//!
//! ```sh
//! cargo run --release --example road_grid
//! ```

use pram_sssp::prelude::*;
use sssp::baseline;

fn main() {
    // A 64×64 "road network": planar-ish, bounded degree, jittered weights.
    let (rows, cols) = (64, 64);
    let g = gen::road_grid(rows, cols, 7, 1.0, 10.0);
    let n = g.num_vertices();
    println!("road grid: {rows}×{cols}, n = {n}, m = {}", g.num_edges());

    // How many Bellman-Ford rounds does the bare graph need?
    let src = 0;
    let plain_rounds = baseline::bf_rounds_to_converge(&g, src);
    println!("plain Bellman–Ford rounds to converge: {plain_rounds}");

    // Build the oracle (it takes ownership of the graph).
    let t0 = std::time::Instant::now();
    let oracle = Oracle::builder(g)
        .eps(0.25)
        .kappa(4)
        .build()
        .expect("valid parameters");
    println!(
        "hopset: {} edges in {:?}; query hop budget β = {}",
        oracle.hopset_size(),
        t0.elapsed(),
        oracle.query_hops()
    );

    // Approximate distances vs exact, from a corner (worst case for hops).
    let approx = oracle.distances_from(src).expect("source in range");
    let exact = exact::dijkstra(oracle.graph(), src).dist;
    let far = rows * cols - 1;
    println!(
        "corner-to-corner: exact = {:.1}, approx = {:.1} (ratio {:.4})",
        exact[far],
        approx[far],
        approx[far] / exact[far]
    );

    let mut max_stretch: f64 = 1.0;
    let mut mean = 0.0;
    let mut cnt = 0;
    for v in 0..n {
        if exact[v] > 0.0 && exact[v].is_finite() {
            let r = approx[v] / exact[v];
            max_stretch = max_stretch.max(r);
            mean += r;
            cnt += 1;
        }
    }
    println!(
        "stretch over all {} pairs: max = {:.4}, mean = {:.4}",
        cnt,
        max_stretch,
        mean / cnt as f64
    );
    assert!(
        max_stretch <= oracle.stretch_bound() + 1e-9,
        "stretch contract violated"
    );
    println!("OK");
}
