//! Huge aspect ratios via the Klein–Sairam reduction (Appendix C,
//! Theorem C.2): weights spanning 15+ orders of magnitude would cost the
//! plain pipeline ~50 scales; the reduction contracts light regions into
//! nodes so every level sees aspect ratio O(n/ε). The oracle's `Auto`
//! pipeline detects this from the aspect-ratio bound on its own.
//!
//! ```sh
//! cargo run --release --example weight_reduction
//! ```

use pram_sssp::prelude::*;

fn main() {
    // Weights 3^i along a path with extra random chords: aspect ratio 3^62.
    let n = 64;
    let mut b = GraphBuilder::new(n);
    for i in 0..n - 1 {
        b.add_edge(i as u32, (i + 1) as u32, 3f64.powi(i as i32).min(1e18));
    }
    // chords inside the light prefix
    for i in 0..n / 2 - 2 {
        b.add_edge(i as u32, (i + 2) as u32, 3f64.powi(i as i32 + 1).min(1e18));
    }
    let g = b.build().unwrap();
    println!(
        "graph: n = {}, m = {}, weight span {:.1e}..{:.1e}",
        g.num_vertices(),
        g.num_edges(),
        g.min_weight().unwrap(),
        g.max_weight().unwrap()
    );

    // Auto pipeline selection: the aspect-ratio bound exceeds n², so the
    // builder routes through the Klein–Sairam reduction by itself.
    let t0 = std::time::Instant::now();
    let oracle = Oracle::builder(g)
        .eps(0.5)
        .kappa(4)
        .build()
        .expect("valid parameters");
    assert_eq!(oracle.pipeline(), Pipeline::Reduced, "auto-selected");
    let reduced = oracle.reduced().expect("reduced backend");
    println!(
        "pipeline auto-selected: {:?}; reduced hopset: {} edges ({} stars) \
         over {} relevant scales in {:?}",
        oracle.pipeline(),
        oracle.hopset_size(),
        reduced.star_edges,
        reduced.levels.len(),
        t0.elapsed()
    );
    println!("  k | nodes | contracted | Gk edges | weight ratio (≤ O(n/ε))");
    for lvl in reduced.levels.iter().filter(|l| l.edges > 0) {
        println!(
            "  {:>2} | {:>5} | {:>10} | {:>8} | {:>10.1}",
            lvl.k, lvl.nodes, lvl.contracted_nodes, lvl.edges, lvl.aspect_ratio
        );
    }

    // Query through the oracle with the reduced hop budget (6β+5).
    let approx = oracle.distances_from(0).expect("source in range");
    let exact = exact::dijkstra(oracle.graph(), 0).dist;
    let mut worst: f64 = 1.0;
    #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
    for v in 0..oracle.num_vertices() {
        assert!(approx[v] >= exact[v] * (1.0 - 1e-9), "no shortcuts");
        if exact[v] > 0.0 {
            worst = worst.max(approx[v] / exact[v]);
        }
    }
    println!(
        "stretch at {} hops: {:.4} (contract: ≤ {})",
        oracle.query_hops(),
        worst,
        oracle.stretch_bound()
    );
    assert!(worst <= oracle.stretch_bound() + 1e-9);
    println!("OK");
}
