//! Huge aspect ratios via the Klein–Sairam reduction (Appendix C,
//! Theorem C.2): weights spanning 15+ orders of magnitude would cost the
//! plain pipeline ~50 scales; the reduction contracts light regions into
//! nodes so every level sees aspect ratio O(n/ε).
//!
//! ```sh
//! cargo run --release --example weight_reduction
//! ```

use pram_sssp::prelude::*;

fn main() {
    // Weights 3^i along a path with extra random chords: aspect ratio 3^62.
    let n = 64;
    let mut b = GraphBuilder::new(n);
    for i in 0..n - 1 {
        b.add_edge(i as u32, (i + 1) as u32, 3f64.powi(i as i32).min(1e18));
    }
    // chords inside the light prefix
    for i in 0..n / 2 - 2 {
        b.add_edge(i as u32, (i + 2) as u32, 3f64.powi(i as i32 + 1).min(1e18));
    }
    let g = b.build().unwrap();
    println!(
        "graph: n = {}, m = {}, weight span {:.1e}..{:.1e}",
        g.num_vertices(),
        g.num_edges(),
        g.min_weight().unwrap(),
        g.max_weight().unwrap()
    );

    let t0 = std::time::Instant::now();
    let reduced = build_reduced_hopset(
        &g,
        0.5,
        4,
        0.3,
        ParamMode::Practical,
        BuildOptions::default(),
    )
    .expect("valid parameters");
    println!(
        "reduced hopset: {} edges ({} stars) over {} relevant scales in {:?}",
        reduced.hopset.len(),
        reduced.star_edges,
        reduced.levels.len(),
        t0.elapsed()
    );
    println!("  k | nodes | contracted | Gk edges | weight ratio (≤ O(n/ε))");
    for lvl in reduced.levels.iter().filter(|l| l.edges > 0) {
        println!(
            "  {:>2} | {:>5} | {:>10} | {:>8} | {:>10.1}",
            lvl.k, lvl.nodes, lvl.contracted_nodes, lvl.edges, lvl.aspect_ratio
        );
    }

    // Query through G ∪ H with the reduced hop budget.
    let overlay = reduced.hopset.overlay_all();
    let view = UnionView::with_extra(&g, &overlay);
    let mut ledger = Ledger::new();
    let bf = pram::bellman_ford(&view, &[0], reduced.query_hops, &mut ledger);
    let exact = exact::dijkstra(&g, 0).dist;
    let mut worst: f64 = 1.0;
    #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
    for v in 0..g.num_vertices() {
        assert!(bf.dist[v] >= exact[v] * (1.0 - 1e-9), "no shortcuts");
        if exact[v] > 0.0 {
            worst = worst.max(bf.dist[v] / exact[v]);
        }
    }
    println!(
        "stretch at {} hops: {:.4} (contract: ≤ 1.5)",
        reduced.query_hops, worst
    );
    assert!(worst <= 1.5 + 1e-9);
    println!("OK");
}
