//! Path reporting (§4, Theorem 4.6): extract a full `(1+ε)`-approximate
//! shortest-path **tree** whose edges all belong to the original graph —
//! the capability previous hopsets lacked (§1.3) — from the same oracle
//! object that answers distance queries.
//!
//! ```sh
//! cargo run --release --example spt_reporting
//! ```

use pram_sssp::prelude::*;

fn main() {
    // Dense communities bridged sparsely: superclustering territory.
    let g = gen::clique_chain(12, 16, 3.0);
    println!("graph: n = {}, m = {}", g.num_vertices(), g.num_edges());

    // Path-reporting oracle (records memory paths on every hopset edge).
    let t0 = std::time::Instant::now();
    let oracle = Oracle::builder(g)
        .eps(0.25)
        .kappa(4)
        .paths(true)
        .build()
        .expect("valid parameters");
    println!(
        "path-reporting hopset: {} edges in {:?}",
        oracle.hopset_size(),
        t0.elapsed()
    );

    // Extract the SPT and inspect the peeling process (Figure 11's story).
    let source = 0;
    let t1 = std::time::Instant::now();
    let spt = oracle.spt(source).expect("paths recorded, source in range");
    println!("SPT extracted in {:?}; peeling iterations:", t1.elapsed());
    println!("  scale | tree hop-edges | replaced | triplets | improved");
    for st in &spt.peel_stats {
        println!(
            "  {:>5} | {:>14} | {:>8} | {:>8} | {:>8}",
            st.scale, st.hopset_edges, st.replaced, st.triplets, st.improved
        );
    }

    // Validate: tree ⊆ E, exact tree distances, (1+ε) stretch.
    let val = validate_spt(oracle.graph(), &spt);
    println!(
        "validation: non-graph-edges = {}, distance mismatches = {}, \
         missing = {}, max stretch = {:.4}",
        val.non_graph_edges, val.distance_mismatches, val.missing, val.max_stretch
    );
    assert_eq!(val.non_graph_edges, 0);
    assert_eq!(val.distance_mismatches, 0);
    assert_eq!(val.missing, 0);
    assert!(val.max_stretch <= oracle.stretch_bound() + 1e-9);

    // The same object still answers plain distance queries.
    let d = oracle.distances_from(source).expect("source in range");
    let far = (oracle.num_vertices() - 1) as u32;
    println!(
        "distance query from the same oracle: d({source}, {far}) = {:.1}",
        d[far as usize]
    );

    // Walk one actual tree path.
    let path = spt.path_to(far).expect("connected");
    println!(
        "tree path {source} → {far}: {} hops, weight {:.1}",
        path.len() - 1,
        spt.dist[far as usize]
    );
    println!("OK");
}
