//! Quickstart: build a deterministic (1+ε)-hopset oracle and answer
//! approximate shortest-distance queries (Theorems 3.7 + 3.8).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pram_sssp::prelude::*;

fn main() {
    // A moderately sized weighted random graph.
    let n = 1024;
    let g = gen::gnm_connected(n, 4 * n, 42, 1.0, 16.0);
    println!("graph: n = {}, m = {}", g.num_vertices(), g.num_edges());

    // Build the deterministic oracle: target stretch 1+ε with ε = 0.25,
    // sparsity parameter κ = 4 (hopset size O(n^{1+1/κ}) per scale). The
    // oracle owns the graph and picks the construction pipeline from the
    // aspect-ratio bound.
    let t0 = std::time::Instant::now();
    let oracle = Oracle::builder(g)
        .eps(0.25)
        .kappa(4)
        .build()
        .expect("valid parameters");
    let built = oracle.built().expect("plain pipeline on unit-ish weights");
    println!(
        "hopset: {} edges over scales {}..={}, built in {:?}",
        built.hopset.len(),
        built.k0,
        built.lambda,
        t0.elapsed()
    );
    println!(
        "PRAM cost of construction: work = {}, depth = {} (polylog rounds)",
        oracle.cost().work(),
        oracle.cost().depth()
    );

    // Query: β-hop Bellman–Ford over the pre-built G ∪ H union CSR.
    let source = 0;
    let t1 = std::time::Instant::now();
    let approx = oracle.distances_from(source).expect("source in range");
    println!(
        "query: β = {} hops, answered in {:?}",
        oracle.query_hops(),
        t1.elapsed()
    );

    // Verify the (1+ε) contract against the exact oracle.
    let exact = exact::dijkstra(oracle.graph(), source).dist;
    let mut max_stretch: f64 = 1.0;
    for v in 0..oracle.num_vertices() {
        assert!(
            approx[v] >= exact[v] - 1e-6,
            "hopsets never shorten distances (Lemmas 2.3/2.9)"
        );
        if exact[v] > 0.0 && exact[v].is_finite() {
            max_stretch = max_stretch.max(approx[v] / exact[v]);
        }
    }
    println!(
        "max observed stretch: {max_stretch:.4} (contract: ≤ {})",
        oracle.stretch_bound()
    );
    assert!(max_stretch <= oracle.stretch_bound() + 1e-9);
    println!("OK");
}
