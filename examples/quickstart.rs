//! Quickstart: build a deterministic (1+ε)-hopset and answer approximate
//! shortest-distance queries (Theorems 3.7 + 3.8).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pram_sssp::prelude::*;

fn main() {
    // A moderately sized weighted random graph.
    let n = 1024;
    let g = gen::gnm_connected(n, 4 * n, 42, 1.0, 16.0);
    println!("graph: n = {}, m = {}", g.num_vertices(), g.num_edges());

    // Build the deterministic hopset engine: target stretch 1+ε with ε =
    // 0.25, sparsity parameter κ = 4 (hopset size O(n^{1+1/κ}) per scale).
    let t0 = std::time::Instant::now();
    let engine = ApproxShortestPaths::build(&g, 0.25, 4).expect("valid parameters");
    let built = engine.built();
    println!(
        "hopset: {} edges over scales {}..={}, built in {:?}",
        built.hopset.len(),
        built.k0,
        built.lambda,
        t0.elapsed()
    );
    println!(
        "PRAM cost of construction: work = {}, depth = {} (polylog rounds)",
        built.ledger.work(),
        built.ledger.depth()
    );

    // Query: β-hop Bellman–Ford over G ∪ H.
    let source = 0;
    let t1 = std::time::Instant::now();
    let approx = engine.distances_from(source);
    println!(
        "query: β = {} hops, answered in {:?}",
        engine.query_hops(),
        t1.elapsed()
    );

    // Verify the (1+ε) contract against the exact oracle.
    let exact = exact::dijkstra(&g, source).dist;
    let mut max_stretch: f64 = 1.0;
    for v in 0..g.num_vertices() {
        assert!(
            approx[v] >= exact[v] - 1e-6,
            "hopsets never shorten distances (Lemmas 2.3/2.9)"
        );
        if exact[v] > 0.0 && exact[v].is_finite() {
            max_stretch = max_stretch.max(approx[v] / exact[v]);
        }
    }
    println!("max observed stretch: {max_stretch:.4} (contract: ≤ 1.25)");
    assert!(max_stretch <= 1.25 + 1e-9);
    println!("OK");
}
