//! Multi-source approximate distances (aMSSD, Theorem 3.8): one hopset,
//! `|S|` parallel β-hop explorations — e.g. computing distances from every
//! depot of a delivery fleet.
//!
//! ```sh
//! cargo run --release --example multi_source
//! ```

use pram_sssp::prelude::*;

fn main() {
    let g = gen::geometric(600, 0.08, 11);
    let g = if g.num_edges() == 0 {
        gen::gnm_connected(600, 2400, 11, 1.0, 4.0)
    } else {
        g
    };
    println!("graph: n = {}, m = {}", g.num_vertices(), g.num_edges());

    let engine = ApproxShortestPaths::build(&g, 0.25, 4).expect("valid parameters");

    // A fleet of depots spread over the vertex set.
    let depots: Vec<u32> = (0..8).map(|i| (i * g.num_vertices() / 8) as u32).collect();
    println!("depots: {depots:?}");

    let t0 = std::time::Instant::now();
    let multi = engine.distances_multi(&depots);
    println!(
        "aMSSD: {} explorations in {:?} (PRAM depth {}, work {})",
        depots.len(),
        t0.elapsed(),
        multi.ledger.depth(),
        multi.ledger.work()
    );

    // Validate each row against the exact oracle.
    for (i, &s) in depots.iter().enumerate() {
        let exact = exact::dijkstra(&g, s).dist;
        let mut worst: f64 = 1.0;
        #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
        for v in 0..g.num_vertices() {
            if exact[v] > 0.0 && exact[v].is_finite() && multi.dist[i][v].is_finite() {
                worst = worst.max(multi.dist[i][v] / exact[v]);
            }
        }
        println!("depot {s}: max stretch {worst:.4}");
        assert!(worst <= 1.25 + 1e-9);
    }

    // Nearest-depot distances in one shot (single multi-source BF).
    let nearest = engine.distances_to_nearest(&depots);
    let covered = nearest.iter().filter(|d| d.is_finite()).count();
    println!(
        "nearest-depot query covers {covered}/{} vertices",
        g.num_vertices()
    );
    println!("OK");
}
