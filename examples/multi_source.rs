//! Multi-source approximate distances (aMSSD, Theorem 3.8): one hopset,
//! `|S|` parallel β-hop explorations — e.g. computing distances from every
//! depot of a delivery fleet.
//!
//! ```sh
//! cargo run --release --example multi_source
//! ```

use pram_sssp::prelude::*;

fn main() {
    let g = gen::geometric(600, 0.08, 11);
    let g = if g.num_edges() == 0 {
        gen::gnm_connected(600, 2400, 11, 1.0, 4.0)
    } else {
        g
    };
    println!("graph: n = {}, m = {}", g.num_vertices(), g.num_edges());

    let oracle = Oracle::builder(g)
        .eps(0.25)
        .kappa(4)
        .build()
        .expect("valid parameters");
    let n = oracle.num_vertices();

    // A fleet of depots spread over the vertex set.
    let depots: Vec<u32> = (0..8).map(|i| (i * n / 8) as u32).collect();
    println!("depots: {depots:?}");

    let t0 = std::time::Instant::now();
    let multi = oracle.distances_multi(&depots).expect("depots in range");
    println!(
        "aMSSD: {} explorations in {:?} (PRAM depth {}, work {})",
        depots.len(),
        t0.elapsed(),
        multi.ledger.depth(),
        multi.ledger.work()
    );
    // The result is one flat row-major matrix (one allocation, |S|·n).
    assert_eq!(multi.dist.num_sources(), depots.len());
    assert_eq!(multi.dist.num_targets(), n);

    // Validate each row against the exact oracle.
    for (i, &s) in depots.iter().enumerate() {
        let exact = exact::dijkstra(oracle.graph(), s).dist;
        let row = multi.dist.row(i);
        let mut worst: f64 = 1.0;
        for v in 0..n {
            if exact[v] > 0.0 && exact[v].is_finite() && row[v].is_finite() {
                worst = worst.max(row[v] / exact[v]);
            }
        }
        println!("depot {s}: max stretch {worst:.4}");
        assert!(worst <= oracle.stretch_bound() + 1e-9);
    }

    // Nearest-depot distances in one shot (single multi-source BF).
    let nearest = oracle
        .distances_to_nearest(&depots)
        .expect("depots in range");
    let covered = nearest.iter().filter(|d| d.is_finite()).count();
    println!("nearest-depot query covers {covered}/{n} vertices");
    println!("OK");
}
