//! The debug-build chunk-overlap race detector (`pram::pool::overlap`).
//!
//! The pool drives the detector on every debug round, so the rest of the
//! test suite exercises the *passing* path continuously; these tests feed
//! it deliberately broken rounds — overlapping, double-claimed, gapped,
//! lost, truncated — and assert each failure mode fires with its own
//! message. The whole file is compiled out in release builds, exactly
//! like the detector itself.
#![cfg(debug_assertions)]

use pram::pool::{chunk_bounds, overlap::RoundClaims, Executor};

#[test]
fn disjoint_exhaustive_round_passes() {
    let claims = RoundClaims::new(100, 3);
    // Claim order is schedule-dependent; the detector must not care.
    claims.claim(2, 70..100);
    claims.claim(0, 0..40);
    claims.claim(1, 40..70);
    claims.finish();
}

#[test]
fn empty_round_passes() {
    RoundClaims::new(0, 0).finish();
}

#[test]
#[should_panic(expected = "chunk overlap")]
fn overlapping_claims_panic() {
    let claims = RoundClaims::new(100, 2);
    claims.claim(0, 0..60);
    claims.claim(1, 40..100);
    claims.finish();
}

#[test]
#[should_panic(expected = "claimed twice")]
fn double_claimed_chunk_panics() {
    let claims = RoundClaims::new(10, 2);
    claims.claim(0, 0..5);
    claims.claim(0, 0..5);
    claims.finish();
}

#[test]
#[should_panic(expected = "chunk claims (lost or extra execution)")]
fn lost_claim_panics() {
    let claims = RoundClaims::new(10, 2);
    claims.claim(0, 0..5);
    claims.finish();
}

#[test]
#[should_panic(expected = "chunk gap")]
fn gap_between_claims_panics() {
    let claims = RoundClaims::new(10, 2);
    claims.claim(0, 0..4);
    claims.claim(1, 6..10);
    claims.finish();
}

#[test]
#[should_panic(expected = "not exhaustive")]
fn truncated_coverage_panics() {
    let claims = RoundClaims::new(10, 2);
    claims.claim(0, 0..4);
    claims.claim(1, 4..8);
    claims.finish();
}

/// End-to-end: a real parallel round over a slice large enough to cross
/// the pool's parallel threshold runs under the detector (the pool wires
/// it into every debug dispatch) and completes without firing.
#[test]
fn real_rounds_run_under_the_detector() {
    let exec = Executor::new(4);
    let mut data: Vec<u64> = (0..100_000).collect();
    let bounds = chunk_bounds(data.len(), exec.threads());
    exec.for_each_chunk_mut(&mut data, &bounds, |_ci, chunk| {
        for x in chunk {
            *x *= 2;
        }
    });
    assert!(data.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    let sums = exec.run_chunks(&bounds, |r| r.len());
    assert_eq!(sums.iter().sum::<usize>(), data.len());
}
