//! Property tests for the PRAM primitives against sequential references.
//!
//! The second block below targets the `pram::pool` persistent worker pool:
//! every pool-backed primitive must match its sequential reference on
//! arbitrary inputs, at arbitrary thread counts, with lengths specifically
//! straddling `PAR_THRESHOLD` (the sequential/parallel gate, including the
//! exact-threshold edge) and chunk boundaries (`len = threads·k ± 1`).

use pgraph::{gen, Graph, UnionView, VId};
use pram::{cc, jump, prim, scan, sort, Executor, Ledger};
use proptest::prelude::*;

/// Lengths the pool proptests probe: tiny, straddling `PAR_THRESHOLD`,
/// straddling `2·PAR_THRESHOLD` (two full parallel chunks per thread at
/// low thread counts), and exact multiples of the thread count ± 1 (the
/// balanced chunking rule's remainder edge).
fn boundary_len(sel: usize, off: usize, threads: usize) -> usize {
    match sel {
        0 => off,                                           // 0..5: degenerate
        1 => prim::PAR_THRESHOLD - 2 + off,                 // threshold − 2 .. + 2
        2 => 2 * prim::PAR_THRESHOLD - 2 + off,             // 2·threshold − 2 .. + 2
        _ => threads * (prim::PAR_THRESHOLD / 2) + off - 2, // k·threads ± 2
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (8usize..80, 0usize..3, any::<u64>())
        .prop_map(|(n, d, seed)| gen::gnm(n, n * d, seed, 1.0, 9.0))
}

/// Sequential union-find reference for component labels (min id).
fn ref_components(g: &Graph) -> Vec<VId> {
    let n = g.num_vertices();
    let mut label: Vec<VId> = (0..n as VId).collect();
    let mut stack = Vec::new();
    let mut seen = vec![false; n];
    for s in 0..n as u32 {
        if seen[s as usize] {
            continue;
        }
        seen[s as usize] = true;
        stack.push(s);
        while let Some(u) = stack.pop() {
            label[u as usize] = s;
            for (v, _) in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
    }
    label
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Shiloach–Vishkin labels match the DFS reference exactly.
    #[test]
    fn cc_matches_reference(g in arb_graph()) {
        let mut l = Ledger::new();
        let res = cc::connected_components(&Executor::sequential(), &g, &mut l);
        prop_assert_eq!(res.label, ref_components(&g));
    }

    /// The spanning forest has exactly n - #components edges and connects
    /// whatever the graph connects.
    #[test]
    fn forest_spans(g in arb_graph()) {
        let mut l = Ledger::new();
        let (res, forest) = cc::spanning_forest(&Executor::sequential(), &g, |_| true, &mut l);
        prop_assert_eq!(forest.len(), g.num_vertices() - res.count);
        let set: std::collections::HashSet<usize> = forest.iter().copied().collect();
        let mut l2 = Ledger::new();
        let res2 =
            cc::connected_components_filtered(&Executor::sequential(), &g, |e| set.contains(&e), &mut l2);
        prop_assert_eq!(res.label, res2.label);
    }

    /// Prefix sums equal the sequential scan.
    #[test]
    fn scan_matches(xs in proptest::collection::vec(0u64..1000, 0..200)) {
        let mut l = Ledger::new();
        let (out, total) = scan::exclusive_prefix_sum(&Executor::sequential(), &xs, &mut l);
        let mut acc = 0u64;
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(out[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    /// Instrumented sort sorts, stably.
    #[test]
    fn sort_matches(mut xs in proptest::collection::vec((0u8..8, 0u32..1000), 0..300)) {
        let mut expect = xs.clone();
        expect.sort_by_key(|&(k, _)| k); // stable by construction
        let mut l = Ledger::new();
        sort::sort_by_key(&Executor::sequential(), &mut xs, &mut l, |&(k, _)| k);
        prop_assert_eq!(xs, expect);
    }

    /// Pointer jumping computes exact root distances on random forests.
    #[test]
    fn jump_matches_walk(n in 2usize..200, seed in any::<u64>()) {
        // Random forest: parent[v] < v (acyclic by construction).
        let mut parent: Vec<VId> = vec![0; n];
        let mut weight: Vec<f64> = vec![0.0; n];
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for v in 1..n {
            // Some vertices are roots.
            if rnd() % 5 == 0 {
                parent[v] = v as VId;
            } else {
                parent[v] = (rnd() % v as u64) as VId;
                weight[v] = (rnd() % 50 + 1) as f64;
            }
        }
        let mut l = Ledger::new();
        let (dist, root) =
            jump::pointer_jump_distances(&Executor::sequential(), &parent, &weight, &mut l);
        for v in 0..n {
            // Walk reference.
            let mut cur = v;
            let mut acc = 0.0;
            while parent[cur] != cur as VId {
                acc += weight[cur];
                cur = parent[cur] as usize;
            }
            prop_assert!((dist[v] - acc).abs() < 1e-9, "v={v}");
            prop_assert_eq!(root[v], cur as VId);
        }
    }

    /// Parallel Bellman–Ford equals the sequential reference at every hop
    /// bound, including over union views.
    #[test]
    fn bellman_ford_matches(g in arb_graph(), hops in 1usize..12, extra_w in 1.0f64..20.0) {
        if g.num_vertices() < 3 { return Ok(()); }
        let extra = vec![(0u32, (g.num_vertices() - 1) as u32, extra_w)];
        let view = UnionView::with_extra(&g, &extra);
        let mut l = Ledger::new();
        let par = pram::bellman_ford(&Executor::sequential(), &view, &[0], hops, &mut l);
        let seq = pgraph::exact::bellman_ford_hops(&view, &[0], hops);
        prop_assert_eq!(par.dist, seq);
    }

    /// prim::par_argmin_by_key matches the sequential argmin with
    /// smallest-index tie-breaking, at any size.
    #[test]
    fn argmin_matches(xs in proptest::collection::vec(0u32..50, 1..5000)) {
        let expect = xs
            .iter()
            .enumerate()
            .min_by_key(|(i, &x)| (x, *i))
            .map(|(i, _)| i);
        prop_assert_eq!(
            prim::par_argmin_by_key(&Executor::sequential(), &xs, |&x| x),
            expect
        );
    }

    /// Ledger arithmetic: sequential absorb adds both axes; parallel absorb
    /// adds work, maxes depth.
    #[test]
    fn ledger_absorb_laws(steps_a in 0u64..50, steps_b in 0u64..50, w in 1u64..100) {
        let mut a = Ledger::new();
        a.steps(steps_a, w);
        let mut b = Ledger::new();
        b.steps(steps_b, w);
        let mut s = a.clone();
        s.absorb_sequential(&b);
        prop_assert_eq!(s.depth(), steps_a + steps_b);
        prop_assert_eq!(s.work(), (steps_a + steps_b) * w);
        let mut p = a.clone();
        p.absorb_parallel(&b);
        prop_assert_eq!(p.depth(), steps_a.max(steps_b));
        prop_assert_eq!(p.work(), (steps_a + steps_b) * w);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `par_map` (slice) equals the sequential map, in order.
    #[test]
    fn pool_map_matches(sel in 0usize..4, off in 0usize..5, threads in 1usize..9, mul in any::<u64>()) {
        let len = boundary_len(sel, off, threads);
        let items: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(mul)).collect();
        let expect: Vec<u64> = items.iter().map(|x| x.rotate_left(7) ^ 0xA5A5).collect();
        let got = prim::par_map(&Executor::shared(threads), &items, |x| x.rotate_left(7) ^ 0xA5A5);
        prop_assert_eq!(got, expect);
    }

    /// `par_map_range` equals the sequential range map, in order.
    #[test]
    fn pool_map_range_matches(sel in 0usize..4, off in 0usize..5, threads in 1usize..9, mul in any::<u64>()) {
        let len = boundary_len(sel, off, threads);
        let f = |i: usize| (i as u64).wrapping_mul(mul) % 65_537;
        let expect: Vec<u64> = (0..len).map(f).collect();
        let got = prim::par_map_range(&Executor::shared(threads), len, f);
        prop_assert_eq!(got, expect);
    }

    /// `par_fill` writes exactly the sequential fill.
    #[test]
    fn pool_fill_matches(sel in 0usize..4, off in 0usize..5, threads in 1usize..9, mul in any::<u64>()) {
        let len = boundary_len(sel, off, threads);
        let f = |i: usize| (i as u64).wrapping_add(mul).wrapping_mul(2654435761);
        let expect: Vec<u64> = (0..len).map(f).collect();
        let mut got = vec![0u64; len];
        prim::par_fill(&Executor::shared(threads), &mut got, f);
        prop_assert_eq!(got, expect);
    }

    /// `par_argmin_by_key` matches the sequential argmin with
    /// smallest-index ties, at boundary lengths and heavy tie density.
    #[test]
    fn pool_argmin_matches(sel in 0usize..4, off in 0usize..5, threads in 1usize..9, mul in any::<u64>(), modulus in 1u64..20) {
        let len = boundary_len(sel, off, threads);
        let items: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(mul) % modulus).collect();
        let expect = items
            .iter()
            .enumerate()
            .min_by_key(|(i, &x)| (x, *i))
            .map(|(i, _)| i);
        let got = prim::par_argmin_by_key(&Executor::shared(threads), &items, |&x| x);
        prop_assert_eq!(got, expect);
    }

    /// `par_sum_range` equals the sequential sum.
    #[test]
    fn pool_sum_matches(sel in 0usize..4, off in 0usize..5, threads in 1usize..9, mul in any::<u64>()) {
        let len = boundary_len(sel, off, threads);
        let f = |i: usize| (i as u64).wrapping_mul(mul) % 1_000_003;
        let expect: u64 = (0..len).map(f).sum();
        prop_assert_eq!(prim::par_sum_range(&Executor::shared(threads), len, f), expect);
    }

    /// `par_any_range` equals the sequential any — for targets inside every
    /// chunk, at chunk edges, and absent.
    #[test]
    fn pool_any_matches(sel in 0usize..4, off in 0usize..5, threads in 1usize..9, target in any::<u64>()) {
        let len = boundary_len(sel, off, threads);
        // Probe both a maybe-present target and a definitely-absent one.
        let t = if len == 0 { 0 } else { (target as usize) % (2 * len) };
        let expect = (0..len).any(|i| i == t);
        prop_assert_eq!(
            prim::par_any_range(&Executor::shared(threads), len, |i| i == t),
            expect
        );
        prop_assert!(!prim::par_any_range(&Executor::shared(threads), len, |i| i == len));
    }

    /// The pool-backed scan equals the sequential prefix sum at lengths
    /// around its parallel gate, at any thread count, with the same ledger.
    #[test]
    fn pool_scan_matches(sel in 0usize..4, off in 0usize..5, threads in 1usize..9, mul in any::<u64>()) {
        let len = boundary_len(sel, off, threads);
        let xs: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(mul) % 1009).collect();
        let mut seq_out = Vec::with_capacity(len);
        let mut acc = 0u64;
        for &x in &xs {
            seq_out.push(acc);
            acc += x;
        }
        let mut l = Ledger::new();
        let (out, total) = scan::exclusive_prefix_sum(&Executor::shared(threads), &xs, &mut l);
        prop_assert_eq!(out, seq_out);
        prop_assert_eq!(total, acc);
        let mut l1 = Ledger::new();
        let _ = scan::exclusive_prefix_sum(&Executor::sequential(), &xs, &mut l1);
        prop_assert_eq!(l, l1);
    }

    /// The pool-backed stable sort equals `slice::sort_by` (unique stable
    /// output) around its own parallel threshold, with equal keys present.
    #[test]
    fn pool_sort_matches(delta in 0usize..5, threads in 1usize..9, mul in any::<u32>(), modulus in 1u32..9) {
        // PAR_SORT_THRESHOLD is 1 << 13; straddle it by ±2.
        let len = (1usize << 13) - 2 + delta;
        let mk = || -> Vec<(u32, u32)> {
            (0..len as u32).map(|i| (i.wrapping_mul(mul) % modulus, i)).collect()
        };
        let mut expect = mk();
        expect.sort_by_key(|e| e.0); // std stable sort: the reference
        let mut got = mk();
        let mut l = Ledger::new();
        sort::sort_by(&Executor::shared(threads), &mut got, &mut l, |a, b| a.0.cmp(&b.0));
        prop_assert_eq!(got, expect);
    }
}
