//! Deterministic data-parallel helpers.
//!
//! Thin wrappers over the persistent worker pool ([`crate::pool`]) that
//! (a) take the execution context — an explicit [`Executor`] handle —
//! as an argument instead of resolving ambient thread-count state per
//! call, (b) keep results in input order (per-chunk outputs land in
//! chunk-indexed slots, so output never depends on scheduling), and
//! (c) fall back to sequential execution for small inputs, where even a
//! wake + barrier dominates (perf-book: parallelize hot code only).
//!
//! Threshold contract (pinned by the boundary tests below and the
//! proptests in `tests/proptests.rs`): inputs with
//! `len < PAR_THRESHOLD` run sequentially on the calling thread; inputs
//! with `len >= PAR_THRESHOLD` — *including exactly* `PAR_THRESHOLD` —
//! take the chunked parallel path whenever the executor has more than one
//! effective thread. Both paths compute identical results; the reductions
//! here are order-independent (total-order keys with smallest-index
//! tie-breaks, associative `u64` sums, `bool` any), so outputs are
//! bit-identical at any thread count.

use crate::pool::Executor;

pub use crate::pool::PAR_THRESHOLD;

/// Concatenate per-chunk outputs in chunk order.
fn concat<U>(parts: Vec<Vec<U>>, len: usize) -> Vec<U> {
    let mut out = Vec::with_capacity(len);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Map every element, preserving order. Deterministic regardless of thread
/// count.
pub fn par_map<T: Sync, U: Send>(
    exec: &Executor,
    items: &[T],
    f: impl Fn(&T) -> U + Sync + Send,
) -> Vec<U> {
    if !exec.parallel_eligible(items.len()) {
        return items.iter().map(f).collect();
    }
    let bounds = exec.chunk_bounds(items.len());
    let parts = exec.run_chunks(&bounds, |r| items[r].iter().map(&f).collect::<Vec<U>>());
    concat(parts, items.len())
}

/// Map every index `0..n`, preserving order.
pub fn par_map_range<U: Send>(
    exec: &Executor,
    n: usize,
    f: impl Fn(usize) -> U + Sync + Send,
) -> Vec<U> {
    if !exec.parallel_eligible(n) {
        return (0..n).map(f).collect();
    }
    let bounds = exec.chunk_bounds(n);
    let parts = exec.run_chunks(&bounds, |r| r.map(&f).collect::<Vec<U>>());
    concat(parts, n)
}

/// Overwrite `out[i] = f(i)` in parallel (disjoint chunk writes — no merge
/// step at all).
pub fn par_fill<U: Send>(exec: &Executor, out: &mut [U], f: impl Fn(usize) -> U + Sync + Send) {
    if !exec.parallel_eligible(out.len()) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let bounds = exec.chunk_bounds(out.len());
    let starts: Vec<usize> = bounds.iter().map(|r| r.start).collect();
    exec.for_each_chunk_mut(out, &bounds, |ci, chunk| {
        let base = starts[ci];
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = f(base + i);
        }
    });
}

/// Minimum element index by a total-order key, ties to the smallest index —
/// an order-independent (hence deterministic) reduction.
pub fn par_argmin_by_key<T: Sync, K: Ord + Send>(
    exec: &Executor,
    items: &[T],
    key: impl Fn(&T) -> K + Sync + Send,
) -> Option<usize> {
    if items.is_empty() {
        return None;
    }
    let pick = |a: (usize, K), b: (usize, K)| -> (usize, K) {
        match a.1.cmp(&b.1) {
            std::cmp::Ordering::Less => a,
            std::cmp::Ordering::Greater => b,
            std::cmp::Ordering::Equal => {
                if a.0 <= b.0 {
                    a
                } else {
                    b
                }
            }
        }
    };
    if !exec.parallel_eligible(items.len()) {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| (i, key(t)))
            .reduce(pick)
            .map(|(i, _)| i);
    }
    let bounds = exec.chunk_bounds(items.len());
    // Per-chunk argmin, then a fold over the (few) chunk winners in chunk
    // order. `pick` is associative and commutative over the total order
    // `(key, index)`, so the grouping cannot affect the result.
    let locals = exec.run_chunks(&bounds, |r| r.map(|i| (i, key(&items[i]))).reduce(&pick));
    locals.into_iter().flatten().reduce(pick).map(|(i, _)| i)
}

/// Sum of `f(i)` over `0..n` (u64) — order-independent.
pub fn par_sum_range(exec: &Executor, n: usize, f: impl Fn(usize) -> u64 + Sync + Send) -> u64 {
    if !exec.parallel_eligible(n) {
        return (0..n).map(f).sum();
    }
    let bounds = exec.chunk_bounds(n);
    exec.run_chunks(&bounds, |r| r.map(&f).sum::<u64>())
        .into_iter()
        .sum()
}

/// `true` if `f(i)` holds for any `i in 0..n` — order-independent. Every
/// chunk runs to completion (no cross-chunk early exit): the answer is a
/// disjunction, so completion order cannot matter.
pub fn par_any_range(exec: &Executor, n: usize, f: impl Fn(usize) -> bool + Sync + Send) -> bool {
    if !exec.parallel_eligible(n) {
        return (0..n).any(f);
    }
    let bounds = exec.chunk_bounds(n);
    exec.run_chunks(&bounds, |r| r.into_iter().any(&f))
        .into_iter()
        .any(|b| b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let exec = Executor::shared(4);
        let v: Vec<u32> = (0..10_000).collect();
        let out = par_map(&exec, &v, |x| x * 2);
        assert_eq!(out[0], 0);
        assert_eq!(out[9999], 19998);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn map_range_matches_sequential() {
        let big = par_map_range(&Executor::shared(8), 20_000, |i| i as u64 * 3);
        let small = par_map_range(&Executor::sequential(), 10, |i| i as u64 * 3);
        assert_eq!(big[12345], 12345 * 3);
        assert_eq!(small, vec![0, 3, 6, 9, 12, 15, 18, 21, 24, 27]);
    }

    #[test]
    fn fill_in_place() {
        let exec = Executor::shared(4);
        let mut v = vec![0u64; 5000];
        par_fill(&exec, &mut v, |i| (i as u64).pow(2) % 97);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i as u64).pow(2) % 97);
        }
    }

    #[test]
    fn argmin_ties_to_smallest_index() {
        let exec = Executor::shared(4);
        let v = vec![3u32, 1, 5, 1, 2];
        assert_eq!(par_argmin_by_key(&exec, &v, |&x| x), Some(1));
        let empty: Vec<u32> = vec![];
        assert_eq!(par_argmin_by_key(&exec, &empty, |&x| x), None);
        // Large input exercising the parallel path.
        let big: Vec<u64> = (0..50_000).map(|i| (i * 2654435761) % 1000).collect();
        let seq = big
            .iter()
            .enumerate()
            .min_by_key(|(i, &x)| (x, *i))
            .map(|(i, _)| i);
        assert_eq!(par_argmin_by_key(&exec, &big, |&x| x), seq);
    }

    #[test]
    fn sum_and_any() {
        let exec = Executor::shared(4);
        assert_eq!(par_sum_range(&exec, 100, |i| i as u64), 4950);
        assert_eq!(par_sum_range(&exec, 100_000, |_| 1), 100_000);
        assert!(par_any_range(&exec, 10_000, |i| i == 9_999));
        assert!(!par_any_range(&exec, 10_000, |i| i == 10_000));
    }

    /// The `PAR_THRESHOLD` edge, pinned: results at `threshold − 1`,
    /// `threshold`, and `threshold + 1` are identical to the sequential
    /// reference at every thread count.
    #[test]
    fn threshold_boundary_lengths_match_reference() {
        for len in [PAR_THRESHOLD - 1, PAR_THRESHOLD, PAR_THRESHOLD + 1] {
            let reference: Vec<u64> = (0..len)
                .map(|i| (i as u64).wrapping_mul(31) % 257)
                .collect();
            let ref_sum: u64 = reference.iter().sum();
            let ref_argmin = reference
                .iter()
                .enumerate()
                .min_by_key(|(i, &x)| (x, *i))
                .map(|(i, _)| i);
            for threads in [1usize, 2, 3, 4, 8] {
                let exec = Executor::shared(threads);
                let m = par_map_range(&exec, len, |i| (i as u64).wrapping_mul(31) % 257);
                assert_eq!(m, reference, "map len={len} threads={threads}");
                let mut filled = vec![0u64; len];
                par_fill(&exec, &mut filled, |i| (i as u64).wrapping_mul(31) % 257);
                assert_eq!(filled, reference, "fill len={len} threads={threads}");
                assert_eq!(
                    par_sum_range(&exec, len, |i| (i as u64).wrapping_mul(31) % 257),
                    ref_sum,
                    "sum len={len} threads={threads}"
                );
                assert_eq!(
                    par_argmin_by_key(&exec, &reference, |&x| x),
                    ref_argmin,
                    "argmin len={len} threads={threads}"
                );
                assert!(par_any_range(&exec, len, |i| i == len - 1));
            }
        }
    }
}
