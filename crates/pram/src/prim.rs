//! Deterministic data-parallel helpers.
//!
//! Thin wrappers over rayon that (a) keep results in input order, so output
//! never depends on scheduling, and (b) fall back to sequential execution for
//! small inputs, where rayon's overhead dominates (perf-book: parallelize hot
//! code only).

use rayon::prelude::*;

/// Inputs shorter than this run sequentially.
pub const PAR_THRESHOLD: usize = 4096;

/// Map every element, preserving order. Deterministic regardless of thread
/// count.
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync + Send) -> Vec<U> {
    if items.len() < PAR_THRESHOLD {
        items.iter().map(f).collect()
    } else {
        items.par_iter().map(f).collect()
    }
}

/// Map every index `0..n`, preserving order.
pub fn par_map_range<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync + Send) -> Vec<U> {
    if n < PAR_THRESHOLD {
        (0..n).map(f).collect()
    } else {
        (0..n).into_par_iter().map(f).collect()
    }
}

/// Overwrite `out[i] = f(i)` in parallel.
pub fn par_fill<U: Send + Sync>(out: &mut [U], f: impl Fn(usize) -> U + Sync + Send) {
    if out.len() < PAR_THRESHOLD {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
    } else {
        out.par_iter_mut()
            .enumerate()
            .for_each(|(i, slot)| *slot = f(i));
    }
}

/// Minimum element index by a total-order key, ties to the smallest index —
/// an order-independent (hence deterministic) reduction.
pub fn par_argmin_by_key<T: Sync, K: Ord + Send>(
    items: &[T],
    key: impl Fn(&T) -> K + Sync + Send,
) -> Option<usize> {
    if items.is_empty() {
        return None;
    }
    let pick = |a: (usize, K), b: (usize, K)| -> (usize, K) {
        match a.1.cmp(&b.1) {
            std::cmp::Ordering::Less => a,
            std::cmp::Ordering::Greater => b,
            std::cmp::Ordering::Equal => {
                if a.0 <= b.0 {
                    a
                } else {
                    b
                }
            }
        }
    };
    if items.len() < PAR_THRESHOLD {
        items
            .iter()
            .enumerate()
            .map(|(i, t)| (i, key(t)))
            .reduce(pick)
            .map(|(i, _)| i)
    } else {
        items
            .par_iter()
            .enumerate()
            .map(|(i, t)| (i, key(t)))
            .reduce_with(pick)
            .map(|(i, _)| i)
    }
}

/// Sum of `f(i)` over `0..n` (u64) — order-independent.
pub fn par_sum_range(n: usize, f: impl Fn(usize) -> u64 + Sync + Send) -> u64 {
    if n < PAR_THRESHOLD {
        (0..n).map(f).sum()
    } else {
        (0..n).into_par_iter().map(f).sum()
    }
}

/// `true` if `f(i)` holds for any `i in 0..n` — order-independent.
pub fn par_any_range(n: usize, f: impl Fn(usize) -> bool + Sync + Send) -> bool {
    if n < PAR_THRESHOLD {
        (0..n).any(f)
    } else {
        (0..n).into_par_iter().any(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u32> = (0..10_000).collect();
        let out = par_map(&v, |x| x * 2);
        assert_eq!(out[0], 0);
        assert_eq!(out[9999], 19998);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn map_range_matches_sequential() {
        let big = par_map_range(20_000, |i| i as u64 * 3);
        let small = par_map_range(10, |i| i as u64 * 3);
        assert_eq!(big[12345], 12345 * 3);
        assert_eq!(small, vec![0, 3, 6, 9, 12, 15, 18, 21, 24, 27]);
    }

    #[test]
    fn fill_in_place() {
        let mut v = vec![0u64; 5000];
        par_fill(&mut v, |i| (i as u64).pow(2) % 97);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i as u64).pow(2) % 97);
        }
    }

    #[test]
    fn argmin_ties_to_smallest_index() {
        let v = vec![3u32, 1, 5, 1, 2];
        assert_eq!(par_argmin_by_key(&v, |&x| x), Some(1));
        let empty: Vec<u32> = vec![];
        assert_eq!(par_argmin_by_key(&empty, |&x| x), None);
        // Large input exercising the parallel path.
        let big: Vec<u64> = (0..50_000).map(|i| (i * 2654435761) % 1000).collect();
        let seq = big
            .iter()
            .enumerate()
            .min_by_key(|(i, &x)| (x, *i))
            .map(|(i, _)| i);
        assert_eq!(par_argmin_by_key(&big, |&x| x), seq);
    }

    #[test]
    fn sum_and_any() {
        assert_eq!(par_sum_range(100, |i| i as u64), 4950);
        assert_eq!(par_sum_range(100_000, |_| 1), 100_000);
        assert!(par_any_range(10_000, |i| i == 9_999));
        assert!(!par_any_range(10_000, |i| i == 10_000));
    }
}
