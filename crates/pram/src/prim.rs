//! Deterministic data-parallel helpers.
//!
//! Thin wrappers over the chunked thread pool ([`crate::pool`]) that
//! (a) keep results in input order — per-chunk outputs are merged in chunk
//! order, so output never depends on scheduling — and (b) fall back to
//! sequential execution for small inputs, where spawn overhead dominates
//! (perf-book: parallelize hot code only).
//!
//! Threshold contract (pinned by the boundary tests below and the
//! proptests in `tests/proptests.rs`): inputs with
//! `len < PAR_THRESHOLD` run sequentially on the calling thread; inputs
//! with `len >= PAR_THRESHOLD` — *including exactly* `PAR_THRESHOLD` —
//! take the chunked parallel path whenever more than one thread is
//! configured (see [`pool::current_threads`]). Both paths compute
//! identical results; the reductions here are order-independent
//! (total-order keys with smallest-index tie-breaks, associative `u64`
//! sums, `bool` any), so outputs are bit-identical at any thread count.

use crate::pool;

pub use crate::pool::PAR_THRESHOLD;

/// Concatenate per-chunk outputs in chunk order.
fn concat<U>(parts: Vec<Vec<U>>, len: usize) -> Vec<U> {
    let mut out = Vec::with_capacity(len);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Map every element, preserving order. Deterministic regardless of thread
/// count.
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync + Send) -> Vec<U> {
    if !pool::parallel_eligible(items.len()) {
        return items.iter().map(f).collect();
    }
    let bounds = pool::chunk_bounds(items.len(), pool::current_threads());
    let parts = pool::run_chunks(&bounds, |r| items[r].iter().map(&f).collect::<Vec<U>>());
    concat(parts, items.len())
}

/// Map every index `0..n`, preserving order.
pub fn par_map_range<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync + Send) -> Vec<U> {
    if !pool::parallel_eligible(n) {
        return (0..n).map(f).collect();
    }
    let bounds = pool::chunk_bounds(n, pool::current_threads());
    let parts = pool::run_chunks(&bounds, |r| r.map(&f).collect::<Vec<U>>());
    concat(parts, n)
}

/// Overwrite `out[i] = f(i)` in parallel (disjoint chunk writes — no merge
/// step at all).
pub fn par_fill<U: Send>(out: &mut [U], f: impl Fn(usize) -> U + Sync + Send) {
    if !pool::parallel_eligible(out.len()) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let bounds = pool::chunk_bounds(out.len(), pool::current_threads());
    let starts: Vec<usize> = bounds.iter().map(|r| r.start).collect();
    pool::for_each_chunk_mut(out, &bounds, |ci, chunk| {
        let base = starts[ci];
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = f(base + i);
        }
    });
}

/// Minimum element index by a total-order key, ties to the smallest index —
/// an order-independent (hence deterministic) reduction.
pub fn par_argmin_by_key<T: Sync, K: Ord + Send>(
    items: &[T],
    key: impl Fn(&T) -> K + Sync + Send,
) -> Option<usize> {
    if items.is_empty() {
        return None;
    }
    let pick = |a: (usize, K), b: (usize, K)| -> (usize, K) {
        match a.1.cmp(&b.1) {
            std::cmp::Ordering::Less => a,
            std::cmp::Ordering::Greater => b,
            std::cmp::Ordering::Equal => {
                if a.0 <= b.0 {
                    a
                } else {
                    b
                }
            }
        }
    };
    if !pool::parallel_eligible(items.len()) {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| (i, key(t)))
            .reduce(pick)
            .map(|(i, _)| i);
    }
    let bounds = pool::chunk_bounds(items.len(), pool::current_threads());
    // Per-chunk argmin, then a fold over the (few) chunk winners in chunk
    // order. `pick` is associative and commutative over the total order
    // `(key, index)`, so the grouping cannot affect the result.
    let locals = pool::run_chunks(&bounds, |r| r.map(|i| (i, key(&items[i]))).reduce(&pick));
    locals.into_iter().flatten().reduce(pick).map(|(i, _)| i)
}

/// Sum of `f(i)` over `0..n` (u64) — order-independent.
pub fn par_sum_range(n: usize, f: impl Fn(usize) -> u64 + Sync + Send) -> u64 {
    if !pool::parallel_eligible(n) {
        return (0..n).map(f).sum();
    }
    let bounds = pool::chunk_bounds(n, pool::current_threads());
    pool::run_chunks(&bounds, |r| r.map(&f).sum::<u64>())
        .into_iter()
        .sum()
}

/// `true` if `f(i)` holds for any `i in 0..n` — order-independent. Every
/// chunk runs to completion (no cross-chunk early exit): the answer is a
/// disjunction, so completion order cannot matter.
pub fn par_any_range(n: usize, f: impl Fn(usize) -> bool + Sync + Send) -> bool {
    if !pool::parallel_eligible(n) {
        return (0..n).any(f);
    }
    let bounds = pool::chunk_bounds(n, pool::current_threads());
    pool::run_chunks(&bounds, |r| r.into_iter().any(&f))
        .into_iter()
        .any(|b| b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u32> = (0..10_000).collect();
        let out = pool::with_threads(4, || par_map(&v, |x| x * 2));
        assert_eq!(out[0], 0);
        assert_eq!(out[9999], 19998);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn map_range_matches_sequential() {
        let big = pool::with_threads(8, || par_map_range(20_000, |i| i as u64 * 3));
        let small = par_map_range(10, |i| i as u64 * 3);
        assert_eq!(big[12345], 12345 * 3);
        assert_eq!(small, vec![0, 3, 6, 9, 12, 15, 18, 21, 24, 27]);
    }

    #[test]
    fn fill_in_place() {
        let mut v = vec![0u64; 5000];
        pool::with_threads(4, || par_fill(&mut v, |i| (i as u64).pow(2) % 97));
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i as u64).pow(2) % 97);
        }
    }

    #[test]
    fn argmin_ties_to_smallest_index() {
        let v = vec![3u32, 1, 5, 1, 2];
        assert_eq!(par_argmin_by_key(&v, |&x| x), Some(1));
        let empty: Vec<u32> = vec![];
        assert_eq!(par_argmin_by_key(&empty, |&x| x), None);
        // Large input exercising the parallel path.
        let big: Vec<u64> = (0..50_000).map(|i| (i * 2654435761) % 1000).collect();
        let seq = big
            .iter()
            .enumerate()
            .min_by_key(|(i, &x)| (x, *i))
            .map(|(i, _)| i);
        assert_eq!(
            pool::with_threads(4, || par_argmin_by_key(&big, |&x| x)),
            seq
        );
    }

    #[test]
    fn sum_and_any() {
        assert_eq!(par_sum_range(100, |i| i as u64), 4950);
        pool::with_threads(4, || {
            assert_eq!(par_sum_range(100_000, |_| 1), 100_000);
            assert!(par_any_range(10_000, |i| i == 9_999));
            assert!(!par_any_range(10_000, |i| i == 10_000));
        });
    }

    /// The `PAR_THRESHOLD` edge, pinned: results at `threshold − 1`,
    /// `threshold`, and `threshold + 1` are identical to the sequential
    /// reference at every thread count (the satellite fix for the latent
    /// boundary gap — previous tests only covered far-from-threshold
    /// sizes).
    #[test]
    fn threshold_boundary_lengths_match_reference() {
        for len in [PAR_THRESHOLD - 1, PAR_THRESHOLD, PAR_THRESHOLD + 1] {
            let reference: Vec<u64> = (0..len)
                .map(|i| (i as u64).wrapping_mul(31) % 257)
                .collect();
            let ref_sum: u64 = reference.iter().sum();
            let ref_argmin = reference
                .iter()
                .enumerate()
                .min_by_key(|(i, &x)| (x, *i))
                .map(|(i, _)| i);
            for threads in [1usize, 2, 3, 4, 8] {
                pool::with_threads(threads, || {
                    let m = par_map_range(len, |i| (i as u64).wrapping_mul(31) % 257);
                    assert_eq!(m, reference, "map len={len} threads={threads}");
                    let mut filled = vec![0u64; len];
                    par_fill(&mut filled, |i| (i as u64).wrapping_mul(31) % 257);
                    assert_eq!(filled, reference, "fill len={len} threads={threads}");
                    assert_eq!(
                        par_sum_range(len, |i| (i as u64).wrapping_mul(31) % 257),
                        ref_sum,
                        "sum len={len} threads={threads}"
                    );
                    assert_eq!(
                        par_argmin_by_key(&reference, |&x| x),
                        ref_argmin,
                        "argmin len={len} threads={threads}"
                    );
                    assert!(par_any_range(len, |i| i == len - 1));
                });
            }
        }
    }
}
