//! Pointer jumping \[SV82\].
//!
//! §4.2 of the paper uses pointer jumping to turn per-edge parent weights
//! into exact root distances in `⌈log2 n⌉` rounds: every vertex `v` keeps a
//! pointer `q(v)` (initially its parent) and a partial distance `d'(v)`
//! (initially the parent-edge weight) and repeatedly performs
//! `d'(v) += d'(q(v)); q(v) = q(q(v))`. Appendix C.4 reuses the same device
//! to locate node centers in the laminar "nodes forest".

use crate::pool::Executor;
use crate::{prim, Ledger};
use pgraph::{VId, Weight};

/// Given a rooted forest as parent pointers (`parent[r] == r` for roots) and
/// the weight of each vertex's parent edge (`0.0` for roots), return
/// `(dist, root)` where `dist[v]` is the exact path weight from `v` to its
/// root and `root[v]` is that root. Lemma 4.3 is the correctness statement.
///
/// Runs `⌈log2 n⌉` synchronous rounds, each charged as one PRAM step of `n`
/// work. Panics (debug) if `parent` contains a cycle other than self loops
/// at roots — callers establish acyclicity (Lemma 4.1).
pub fn pointer_jump_distances(
    exec: &Executor,
    parent: &[VId],
    edge_weight: &[Weight],
    ledger: &mut Ledger,
) -> (Vec<Weight>, Vec<VId>) {
    let n = parent.len();
    assert_eq!(n, edge_weight.len());
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let mut q: Vec<VId> = parent.to_vec();
    let mut d: Vec<Weight> = edge_weight.to_vec();
    let rounds = pgraph::ceil_log2(n.max(2)) as usize + 1;
    for _ in 0..rounds {
        ledger.step(n as u64);
        // Double-buffered: reads see the previous round only (CREW style).
        let nd: Vec<Weight> = prim::par_map_range(exec, n, |v| d[v] + d[q[v] as usize]);
        let nq: Vec<VId> = prim::par_map_range(exec, n, |v| q[q[v] as usize]);
        d = nd;
        q = nq;
    }
    debug_assert!(
        (0..n).all(|v| q[q[v] as usize] == q[v]),
        "pointer jumping did not converge: parent array is not a forest"
    );
    (d, q)
}

/// Pointer jumping on pointers alone: returns the root of every vertex.
/// Used by Appendix C.4's node-center selection over the nodes forest G¯.
pub fn pointer_jump_roots(exec: &Executor, parent: &[VId], ledger: &mut Ledger) -> Vec<VId> {
    let n = parent.len();
    if n == 0 {
        return Vec::new();
    }
    let mut q: Vec<VId> = parent.to_vec();
    let rounds = pgraph::ceil_log2(n.max(2)) as usize + 1;
    for _ in 0..rounds {
        ledger.step(n as u64);
        q = prim::par_map_range(exec, n, |v| q[q[v] as usize]);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec() -> Executor {
        Executor::shared(2)
    }

    #[test]
    fn single_path() {
        // 0 <- 1 <- 2 <- 3 with weights 1, 2, 3.
        let parent = vec![0, 0, 1, 2];
        let w = vec![0.0, 1.0, 2.0, 3.0];
        let mut l = Ledger::new();
        let (d, r) = pointer_jump_distances(&exec(), &parent, &w, &mut l);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 6.0]);
        assert_eq!(r, vec![0, 0, 0, 0]);
        assert_eq!(l.depth() as usize, pgraph::ceil_log2(4) as usize + 1);
    }

    #[test]
    fn forest_with_two_trees() {
        // tree A: 0 <- 1, 0 <- 2 ; tree B: 3 <- 4 <- 5
        let parent = vec![0, 0, 0, 3, 3, 4];
        let w = vec![0.0, 2.0, 5.0, 0.0, 1.0, 1.5];
        let mut l = Ledger::new();
        let (d, r) = pointer_jump_distances(&exec(), &parent, &w, &mut l);
        assert_eq!(d, vec![0.0, 2.0, 5.0, 0.0, 1.0, 2.5]);
        assert_eq!(r, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn long_chain_converges() {
        let n = 1000;
        let parent: Vec<VId> = (0..n)
            .map(|v| if v == 0 { 0 } else { v as VId - 1 })
            .collect();
        let w: Vec<Weight> = (0..n).map(|v| if v == 0 { 0.0 } else { 1.0 }).collect();
        let mut l = Ledger::new();
        let (d, r) = pointer_jump_distances(&exec(), &parent, &w, &mut l);
        for v in 0..n {
            assert_eq!(d[v], v as f64);
            assert_eq!(r[v], 0);
        }
    }

    #[test]
    fn roots_only() {
        let parent = vec![0, 0, 1, 2, 4, 4];
        let mut l = Ledger::new();
        let r = pointer_jump_roots(&exec(), &parent, &mut l);
        assert_eq!(r, vec![0, 0, 0, 0, 4, 4]);
    }

    #[test]
    fn empty_input() {
        let mut l = Ledger::new();
        let (d, r) = pointer_jump_distances(&exec(), &[], &[], &mut l);
        assert!(d.is_empty() && r.is_empty());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // A chain above PAR_THRESHOLD so the jump rounds run chunked.
        let n = 6000usize;
        let parent: Vec<VId> = (0..n)
            .map(|v| if v == 0 { 0 } else { v as VId - 1 })
            .collect();
        let w: Vec<Weight> = (0..n).map(|v| if v == 0 { 0.0 } else { 0.5 }).collect();
        let mut l1 = Ledger::new();
        let (bd, br) = pointer_jump_distances(&Executor::sequential(), &parent, &w, &mut l1);
        for threads in [2usize, 4, 8] {
            let mut l = Ledger::new();
            let (d, r) = pointer_jump_distances(&Executor::shared(threads), &parent, &w, &mut l);
            assert_eq!(r, br, "threads={threads}");
            for (x, y) in d.iter().zip(&bd) {
                assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}");
            }
            assert_eq!(l, l1);
        }
    }
}
