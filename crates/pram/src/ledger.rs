//! The PRAM work/depth ledger.
//!
//! The paper's complexity claims (Theorems 3.7, 3.8, 4.6, C.2, C.3, D.2) are
//! statements about *counted* work and depth in the CREW PRAM model. The
//! [`Ledger`] accumulates these counts as the algorithms run. Control flow in
//! this workspace is sequential between synchronous rounds (exactly like a
//! PRAM program's global clock), so the ledger is plain `&mut` state —
//! deterministic by construction and free of atomics on the hot path.

/// Accumulates PRAM work/depth, plus the maximum per-round work, which is the
/// number of processors a literal PRAM execution would need (work divided by
/// rounds is a lower bound; the max concurrent width is the honest figure).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ledger {
    work: u64,
    depth: u64,
    max_width: u64,
}

impl Ledger {
    /// Fresh ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total work counted so far.
    #[inline]
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Total depth (number of synchronous rounds) counted so far.
    #[inline]
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Maximum work charged in any single round — the processor count a
    /// literal PRAM realization would need (§1.5.1 allocates `O(n^ρ)`
    /// processors per edge/vertex; this reports what was actually used).
    #[inline]
    pub fn max_width(&self) -> u64 {
        self.max_width
    }

    /// Charge one synchronous round that performs `work` operations in
    /// parallel.
    #[inline]
    pub fn step(&mut self, work: u64) {
        self.depth += 1;
        self.work += work;
        self.max_width = self.max_width.max(work);
    }

    /// Charge `rounds` synchronous rounds each performing `work_per_round`
    /// operations.
    #[inline]
    pub fn steps(&mut self, rounds: u64, work_per_round: u64) {
        if rounds == 0 {
            return;
        }
        self.depth += rounds;
        self.work += rounds * work_per_round;
        self.max_width = self.max_width.max(work_per_round);
    }

    /// Charge a parallel sort of `m` items: depth `⌈log2 m⌉`, work
    /// `m·⌈log2 m⌉` — the AKS \[AKS83\] accounting the paper uses
    /// (Appendix A: "sorting it … requires O(log n) time").
    pub fn sort(&mut self, m: u64) {
        if m <= 1 {
            return;
        }
        let lg = ceil_log2_u64(m);
        self.depth += lg;
        self.work += m * lg;
        self.max_width = self.max_width.max(m);
    }

    /// Charge a prefix-sum/scan over `m` items: depth `⌈log2 m⌉`, work `m`.
    pub fn scan(&mut self, m: u64) {
        if m <= 1 {
            return;
        }
        self.depth += ceil_log2_u64(m);
        self.work += m;
        self.max_width = self.max_width.max(m);
    }

    /// Charge a binary search by each of `m` processors over a length-`s`
    /// array: depth `⌈log2 s⌉`, work `m·⌈log2 s⌉` (§4.1's peeling uses this).
    pub fn binary_search(&mut self, m: u64, s: u64) {
        if s <= 1 || m == 0 {
            self.step(m.max(1));
            return;
        }
        let lg = ceil_log2_u64(s);
        self.depth += lg;
        self.work += m * lg;
        self.max_width = self.max_width.max(m);
    }

    /// Merge another ledger *sequentially after* this one (its rounds happen
    /// after ours): depths add, works add.
    pub fn absorb_sequential(&mut self, other: &Ledger) {
        self.depth += other.depth;
        self.work += other.work;
        self.max_width = self.max_width.max(other.max_width);
    }

    /// Merge another ledger that ran *in parallel with* this one (e.g. the
    /// per-scale hopsets of Appendix C run concurrently): depth is the max,
    /// work adds.
    pub fn absorb_parallel(&mut self, other: &Ledger) {
        self.depth = self.depth.max(other.depth);
        self.work += other.work;
        self.max_width = self.max_width.max(other.max_width);
    }

    /// Snapshot of (work, depth).
    pub fn snapshot(&self) -> (u64, u64) {
        (self.work, self.depth)
    }

    /// Reassemble a ledger from previously recorded counters — used by the
    /// snapshot layer to restore construction-time accounting on load, so a
    /// reloaded oracle reports the same work/depth/width it was built with.
    pub fn from_parts(work: u64, depth: u64, max_width: u64) -> Self {
        Ledger {
            work,
            depth,
            max_width,
        }
    }
}

#[inline]
fn ceil_log2_u64(x: u64) -> u64 {
    debug_assert!(x >= 1);
    (u64::BITS - (x - 1).leading_zeros()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_accounting() {
        let mut l = Ledger::new();
        l.step(10);
        l.step(4);
        assert_eq!(l.work(), 14);
        assert_eq!(l.depth(), 2);
        assert_eq!(l.max_width(), 10);
    }

    #[test]
    fn steps_bulk() {
        let mut l = Ledger::new();
        l.steps(5, 3);
        assert_eq!((l.work(), l.depth()), (15, 5));
        l.steps(0, 100);
        assert_eq!((l.work(), l.depth()), (15, 5));
    }

    #[test]
    fn sort_charges_aks_cost() {
        let mut l = Ledger::new();
        l.sort(8);
        assert_eq!(l.depth(), 3);
        assert_eq!(l.work(), 24);
        let mut l2 = Ledger::new();
        l2.sort(1);
        assert_eq!(l2.snapshot(), (0, 0));
        let mut l3 = Ledger::new();
        l3.sort(9); // ceil(log2 9) = 4
        assert_eq!(l3.depth(), 4);
        assert_eq!(l3.work(), 36);
    }

    #[test]
    fn scan_cost() {
        let mut l = Ledger::new();
        l.scan(1024);
        assert_eq!(l.depth(), 10);
        assert_eq!(l.work(), 1024);
    }

    #[test]
    fn binary_search_cost() {
        let mut l = Ledger::new();
        l.binary_search(100, 16);
        assert_eq!(l.depth(), 4);
        assert_eq!(l.work(), 400);
    }

    #[test]
    fn absorb_modes() {
        let mut a = Ledger::new();
        a.step(5);
        let mut b = Ledger::new();
        b.steps(3, 2);
        let mut seq = a.clone();
        seq.absorb_sequential(&b);
        assert_eq!(seq.depth(), 4);
        assert_eq!(seq.work(), 11);
        let mut par = a.clone();
        par.absorb_parallel(&b);
        assert_eq!(par.depth(), 3);
        assert_eq!(par.work(), 11);
    }
}
