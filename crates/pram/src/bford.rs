//! Parallel multi-source hop-limited Bellman–Ford over `G ∪ H`.
//!
//! This is the final stage of Theorems 3.8/C.3: "execute a Bellman–Ford
//! exploration from a vertex v ∈ V limited to β hops … O(β·log n) time,
//! O(1) processors per vertex and edge". It is also the engine behind the
//! (1+ε)-SPT of §4 (Algorithm 1, line 3).
//!
//! Implementation notes:
//! * *pull style*: each round, every vertex scans its (undirected) neighbors
//!   and takes the best tentative distance. Pull keeps every write owned by
//!   a single vertex — CREW-clean and trivially parallel;
//! * *determinism*: the per-vertex minimum is taken over a totally ordered
//!   key `(distance, parent id, edge layer, overlay index)`, so parent trees
//!   are unique regardless of thread count;
//! * *double buffering*: reads go to the previous round's array, exactly
//!   like the PRAM's odd/even read/write rounds (§1.5.1).

use crate::pool::Executor;
use crate::{prim, Ledger};
use pgraph::{EdgeTag, UnionView, VId, Weight, INF};

/// The parent edge chosen for a vertex by the exploration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParentEdge {
    /// The neighbor the distance came from.
    pub parent: VId,
    /// Weight of the relaxed edge.
    pub weight: Weight,
    /// Which layer the edge belongs to (base graph or overlay index).
    pub tag: EdgeTag,
}

/// Result of [`bellman_ford`].
#[derive(Clone, Debug)]
pub struct BellmanFordResult {
    /// `dist[v]` = minimum weight of a path from the nearest source using at
    /// most `rounds_run` hops (`d^{(h)}` of eq. (1)).
    pub dist: Vec<Weight>,
    /// Parent edge of each vertex (`None` for sources and unreached).
    pub parent: Vec<Option<ParentEdge>>,
    /// Rounds actually executed (≤ the requested hop limit).
    pub rounds_run: usize,
    /// `Some(r)` if no distance changed in round `r` (the exploration
    /// converged to the unbounded shortest paths).
    pub converged_at: Option<usize>,
}

impl BellmanFordResult {
    /// Hop count of the tree path to `v` (follows parents). `None` if
    /// unreached.
    pub fn hops_to(&self, v: VId) -> Option<usize> {
        if self.dist[v as usize] == INF {
            return None;
        }
        let mut h = 0usize;
        let mut cur = v;
        while let Some(pe) = self.parent[cur as usize] {
            h += 1;
            cur = pe.parent;
            debug_assert!(h <= self.dist.len(), "parent cycle");
        }
        Some(h)
    }
}

/// Run a hop-limited multi-source Bellman–Ford exploration.
///
/// * `exec` — the pool the per-round relaxations run on;
/// * `view` — the graph `G ∪ H` (overlay = hopset);
/// * `sources` — the set `S` (Theorem 3.8's aMSSD sources);
/// * `max_hops` — the hop budget `β`;
/// * `ledger` — charged one step of `O(|E∪H| + n)` work per round.
pub fn bellman_ford(
    exec: &Executor,
    view: &UnionView<'_>,
    sources: &[VId],
    max_hops: usize,
    ledger: &mut Ledger,
) -> BellmanFordResult {
    let n = view.num_vertices();
    let mut dist = vec![INF; n];
    let mut parent: Vec<Option<ParentEdge>> = vec![None; n];
    for &s in sources {
        dist[s as usize] = 0.0;
    }
    let edge_slots = 2 * view.num_edges() as u64;
    let mut rounds_run = 0usize;
    let mut converged_at = None;

    for round in 1..=max_hops {
        ledger.step(edge_slots + n as u64);
        // Each vertex pulls the best (distance, parent) over its neighbors,
        // reading only the previous round's distances.
        let prev = &dist;
        let updates: Vec<Option<(Weight, ParentEdge)>> = prim::par_map_range(exec, n, |v| {
            let vid = v as VId;
            let mut best: Option<(Weight, ParentEdge)> = None;
            view.for_each_neighbor(vid, |u, w, tag| {
                let du = prev[u as usize];
                if du == INF {
                    return;
                }
                let nd = du + w;
                if nd >= prev[v] {
                    return;
                }
                let cand = (
                    nd,
                    ParentEdge {
                        parent: u,
                        weight: w,
                        tag,
                    },
                );
                best = Some(match best.take() {
                    None => cand,
                    Some(cur) => min_candidate(cur, cand),
                });
            });
            best
        });
        let mut changed = false;
        for v in 0..n {
            if let Some((nd, pe)) = updates[v] {
                dist[v] = nd;
                parent[v] = Some(pe);
                changed = true;
            }
        }
        rounds_run = round;
        if !changed {
            converged_at = Some(round);
            break;
        }
    }
    BellmanFordResult {
        dist,
        parent,
        rounds_run,
        converged_at,
    }
}

/// Total order on relaxation candidates: distance, then parent id, then base
/// edges before overlay, then overlay index. Deterministic tie-breaking.
#[inline]
fn min_candidate(a: (Weight, ParentEdge), b: (Weight, ParentEdge)) -> (Weight, ParentEdge) {
    let ka = cand_key(&a);
    let kb = cand_key(&b);
    if kb < ka {
        b
    } else {
        a
    }
}

#[inline]
fn cand_key(c: &(Weight, ParentEdge)) -> (u64, VId, u8, u32) {
    let (d, pe) = c;
    let (layer, idx) = match pe.tag {
        EdgeTag::Base => (0u8, 0u32),
        EdgeTag::Extra(i) => (1u8, i),
    };
    (d.to_bits(), pe.parent, layer, idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgraph::exact;
    use pgraph::gen;
    use pgraph::Graph;

    fn exec() -> Executor {
        Executor::shared(2)
    }

    #[test]
    fn hop_limit_respected() {
        // square: 0-1-2-3 light path, 0-3 heavy chord
        let g =
            Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 10.0)]).unwrap();
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r1 = bellman_ford(&exec(), &view, &[0], 1, &mut l);
        assert_eq!(r1.dist[3], 10.0);
        let r3 = bellman_ford(&exec(), &view, &[0], 3, &mut l);
        assert_eq!(r3.dist[3], 3.0);
        assert_eq!(r3.hops_to(3), Some(3));
    }

    #[test]
    fn matches_sequential_reference() {
        let g = gen::gnm_connected(100, 300, 9, 1.0, 6.0);
        let view = UnionView::base_only(&g);
        for hops in [1, 2, 5, 100] {
            let mut l = Ledger::new();
            let par = bellman_ford(&exec(), &view, &[0], hops, &mut l);
            let seq = exact::bellman_ford_hops(&view, &[0], hops);
            assert_eq!(par.dist, seq, "hops={hops}");
        }
    }

    #[test]
    fn multi_source() {
        let g = gen::path(9);
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r = bellman_ford(&exec(), &view, &[0, 8], 10, &mut l);
        assert_eq!(r.dist[4], 4.0);
        assert_eq!(r.dist[6], 2.0);
    }

    #[test]
    fn convergence_detection() {
        let g = gen::path(5);
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r = bellman_ford(&exec(), &view, &[0], 100, &mut l);
        // path of 4 edges converges after round 5 sees no change
        assert_eq!(r.converged_at, Some(5));
        assert_eq!(r.rounds_run, 5);
    }

    #[test]
    fn overlay_edges_take_part_and_are_tagged() {
        let g = gen::path(5); // 0-1-2-3-4
        let extra = vec![(0u32, 4u32, 1.5)];
        let view = UnionView::with_extra(&g, &extra);
        let mut l = Ledger::new();
        let r = bellman_ford(&exec(), &view, &[0], 2, &mut l);
        assert_eq!(r.dist[4], 1.5);
        let pe = r.parent[4].unwrap();
        assert_eq!(pe.tag, EdgeTag::Extra(0));
        assert_eq!(pe.parent, 0);
    }

    #[test]
    fn parent_tree_is_consistent() {
        let g = gen::gnm_connected(80, 240, 4, 1.0, 4.0);
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r = bellman_ford(&exec(), &view, &[7], 80, &mut l);
        for v in 0..80u32 {
            if v == 7 {
                assert!(r.parent[v as usize].is_none());
                continue;
            }
            let pe = r.parent[v as usize].expect("connected");
            // dist[v] == dist[parent] + w  (tree realizes the distances)
            let expect = r.dist[pe.parent as usize] + pe.weight;
            assert!((r.dist[v as usize] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn ledger_charges_per_round() {
        let g = gen::path(4);
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r = bellman_ford(&exec(), &view, &[0], 2, &mut l);
        assert_eq!(r.rounds_run, 2);
        assert_eq!(l.depth(), 2);
        assert_eq!(l.work(), 2 * (2 * 3 + 4));
    }

    #[test]
    fn unreachable_stays_infinite() {
        let g = Graph::from_edges(4, [(0, 1, 1.0)]).unwrap();
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r = bellman_ford(&exec(), &view, &[0], 10, &mut l);
        assert_eq!(r.dist[2], INF);
        assert_eq!(r.hops_to(2), None);
    }
}
