//! Parallel multi-source hop-limited Bellman–Ford over `G ∪ H`.
//!
//! This is the final stage of Theorems 3.8/C.3: "execute a Bellman–Ford
//! exploration from a vertex v ∈ V limited to β hops … O(β·log n) time,
//! O(1) processors per vertex and edge". It is also the engine behind the
//! (1+ε)-SPT of §4 (Algorithm 1, line 3).
//!
//! Implementation notes:
//! * *pull style*: each round, every vertex scans its (undirected) neighbors
//!   and takes the best tentative distance. Pull keeps every write owned by
//!   a single vertex — CREW-clean and trivially parallel;
//! * *determinism*: the per-vertex minimum is taken over a totally ordered
//!   key `(distance, parent id, edge layer, overlay index)`, so parent trees
//!   are unique regardless of thread count;
//! * *double buffering*: reads go to the previous round's array, exactly
//!   like the PRAM's odd/even read/write rounds (§1.5.1).

use crate::pool::Executor;
use crate::{prim, Ledger};
use pgraph::{EdgeTag, UnionView, VId, Weight, INF};

/// The parent edge chosen for a vertex by the exploration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParentEdge {
    /// The neighbor the distance came from.
    pub parent: VId,
    /// Weight of the relaxed edge.
    pub weight: Weight,
    /// Which layer the edge belongs to (base graph or overlay index).
    pub tag: EdgeTag,
}

/// Result of [`bellman_ford`].
#[derive(Clone, Debug)]
pub struct BellmanFordResult {
    /// `dist[v]` = minimum weight of a path from the nearest source using at
    /// most `rounds_run` hops (`d^{(h)}` of eq. (1)).
    pub dist: Vec<Weight>,
    /// Parent edge of each vertex (`None` for sources and unreached).
    pub parent: Vec<Option<ParentEdge>>,
    /// Rounds actually executed (≤ the requested hop limit).
    pub rounds_run: usize,
    /// `Some(r)` if no distance changed in round `r` (the exploration
    /// converged to the unbounded shortest paths).
    pub converged_at: Option<usize>,
}

impl BellmanFordResult {
    /// Hop count of the tree path to `v` (follows parents). `None` if
    /// unreached.
    pub fn hops_to(&self, v: VId) -> Option<usize> {
        if self.dist[v as usize] == INF {
            return None;
        }
        let mut h = 0usize;
        let mut cur = v;
        while let Some(pe) = self.parent[cur as usize] {
            h += 1;
            cur = pe.parent;
            debug_assert!(h <= self.dist.len(), "parent cycle");
        }
        Some(h)
    }
}

/// Reusable buffers for repeated explorations over graphs of the same
/// size: the three `n`-sized arrays (distances, parents, per-round
/// updates) live here, so a serving batch pays one allocation set for the
/// whole batch instead of one per query ([`bellman_ford_into`]).
#[derive(Clone, Debug, Default)]
pub struct BfordScratch {
    dist: Vec<Weight>,
    parent: Vec<Option<ParentEdge>>,
    updates: Vec<Option<(Weight, ParentEdge)>>,
}

impl BfordScratch {
    /// Empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// The distance row written by the last exploration run on this
    /// scratch (`d^{(h)}` of eq. (1)).
    #[inline]
    pub fn dist(&self) -> &[Weight] {
        &self.dist
    }

    /// The parent row written by the last exploration.
    #[inline]
    pub fn parent(&self) -> &[Option<ParentEdge>] {
        &self.parent
    }

    fn reset(&mut self, n: usize, sources: &[VId]) {
        self.dist.clear();
        self.dist.resize(n, INF);
        self.parent.clear();
        self.parent.resize(n, None);
        self.updates.clear();
        self.updates.resize(n, None);
        for &s in sources {
            self.dist[s as usize] = 0.0;
        }
    }
}

/// Result of a target-aware exploration ([`bellman_ford_to`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TargetResult {
    /// `d^{(β)}(S, target)` — bit-identical to the full run's value at the
    /// target (the settle criterion only ever stops rounds that provably
    /// cannot change it).
    pub dist: Weight,
    /// Rounds actually executed (≤ the requested hop limit).
    pub rounds_run: usize,
    /// Whether the run stopped before exhausting the hop budget (the
    /// target settled, or the whole exploration converged).
    pub settled_early: bool,
}

/// The shared round loop. With `target = Some(t)` it additionally applies
/// the serving-plane settle criterion (DESIGN.md §9): stop after round `r`
/// once `dist[t]` is finite and `min_changed_r ≥ dist[t]`, where
/// `min_changed_r` is the smallest distance written in round `r`. Safety:
/// a pull-update can only apply through a neighbor whose distance changed
/// in the previous round (an unchanged neighbor's candidate was already
/// considered and rejected), so every distance written after round `r` is
/// `> min_changed_r` — edge weights are strictly positive, a `pgraph`
/// construction invariant — and therefore can never undercut `dist[t]`.
/// The early answer is the full-β answer bit for bit.
///
/// Returns `(rounds_run, converged_at, settled_early)`.
fn explore(
    exec: &Executor,
    view: &UnionView<'_>,
    sources: &[VId],
    target: Option<VId>,
    max_hops: usize,
    ledger: &mut Ledger,
    scratch: &mut BfordScratch,
) -> (usize, Option<usize>, bool) {
    let n = view.num_vertices();
    scratch.reset(n, sources);
    if let Some(t) = target {
        // A target at distance 0 (it is a source) can never improve:
        // every candidate is a positive-weight path sum.
        if scratch.dist[t as usize] == 0.0 {
            return (0, None, true);
        }
    }
    let edge_slots = 2 * view.num_edges() as u64;
    let mut rounds_run = 0usize;
    let mut converged_at = None;
    let mut settled = false;

    for round in 1..=max_hops {
        ledger.step(edge_slots + n as u64);
        // Each vertex pulls the best (distance, parent) over its neighbors,
        // reading only the previous round's distances (double buffering:
        // `updates` is the write side, applied below in vertex order).
        let BfordScratch {
            dist,
            parent,
            updates,
        } = scratch;
        let prev: &[Weight] = dist;
        prim::par_fill(exec, updates, |v| {
            let vid = v as VId;
            let mut best: Option<(Weight, ParentEdge)> = None;
            view.for_each_neighbor(vid, |u, w, tag| {
                let du = prev[u as usize];
                if du == INF {
                    return;
                }
                let nd = du + w;
                if nd >= prev[v] {
                    return;
                }
                let cand = (
                    nd,
                    ParentEdge {
                        parent: u,
                        weight: w,
                        tag,
                    },
                );
                best = Some(match best.take() {
                    None => cand,
                    Some(cur) => min_candidate(cur, cand),
                });
            });
            best
        });
        let mut changed = false;
        let mut min_changed = INF;
        for v in 0..n {
            if let Some((nd, pe)) = updates[v] {
                dist[v] = nd;
                parent[v] = Some(pe);
                changed = true;
                if nd < min_changed {
                    min_changed = nd;
                }
            }
        }
        rounds_run = round;
        if !changed {
            converged_at = Some(round);
            break;
        }
        if let Some(t) = target {
            let dt = dist[t as usize];
            if dt.is_finite() && min_changed >= dt {
                settled = true;
                break;
            }
        }
    }
    (rounds_run, converged_at, settled)
}

/// Run a hop-limited multi-source Bellman–Ford exploration.
///
/// * `exec` — the pool the per-round relaxations run on;
/// * `view` — the graph `G ∪ H` (overlay = hopset);
/// * `sources` — the set `S` (Theorem 3.8's aMSSD sources);
/// * `max_hops` — the hop budget `β`;
/// * `ledger` — charged one step of `O(|E∪H| + n)` work per round.
pub fn bellman_ford(
    exec: &Executor,
    view: &UnionView<'_>,
    sources: &[VId],
    max_hops: usize,
    ledger: &mut Ledger,
) -> BellmanFordResult {
    let mut scratch = BfordScratch::new();
    let (rounds_run, converged_at) =
        bellman_ford_into(exec, view, sources, max_hops, ledger, &mut scratch);
    BellmanFordResult {
        dist: scratch.dist,
        parent: scratch.parent,
        rounds_run,
        converged_at,
    }
}

/// Like [`bellman_ford`], writing into caller-owned [`BfordScratch`]
/// buffers (read the row back with [`BfordScratch::dist`]). A request
/// batch reuses one scratch across all its explorations — the serving
/// path of `sssp::Oracle::distances_multi`. Returns
/// `(rounds_run, converged_at)`; results are bit-identical to
/// [`bellman_ford`].
pub fn bellman_ford_into(
    exec: &Executor,
    view: &UnionView<'_>,
    sources: &[VId],
    max_hops: usize,
    ledger: &mut Ledger,
    scratch: &mut BfordScratch,
) -> (usize, Option<usize>) {
    let (rounds_run, converged_at, _) =
        explore(exec, view, sources, None, max_hops, ledger, scratch);
    (rounds_run, converged_at)
}

/// Point-to-point exploration with early exit: identical rounds to
/// [`bellman_ford`], but the loop stops as soon as the target's label has
/// provably settled (the settle criterion is documented on the internal
/// `explore` loop; DESIGN.md §9 has the
/// proof sketch). The returned distance is **bit-identical** to
/// `bellman_ford(..).dist[target]` — only the number of rounds (and hence
/// the ledger's charge, which reflects work actually done) can shrink.
pub fn bellman_ford_to(
    exec: &Executor,
    view: &UnionView<'_>,
    sources: &[VId],
    target: VId,
    max_hops: usize,
    ledger: &mut Ledger,
) -> TargetResult {
    let mut scratch = BfordScratch::new();
    let (rounds_run, converged_at, settled) = explore(
        exec,
        view,
        sources,
        Some(target),
        max_hops,
        ledger,
        &mut scratch,
    );
    TargetResult {
        dist: scratch.dist[target as usize],
        rounds_run,
        settled_early: settled || converged_at.is_some(),
    }
}

/// Total order on relaxation candidates: distance, then parent id, then base
/// edges before overlay, then overlay index. Deterministic tie-breaking.
#[inline]
fn min_candidate(a: (Weight, ParentEdge), b: (Weight, ParentEdge)) -> (Weight, ParentEdge) {
    let ka = cand_key(&a);
    let kb = cand_key(&b);
    if kb < ka {
        b
    } else {
        a
    }
}

#[inline]
fn cand_key(c: &(Weight, ParentEdge)) -> (u64, VId, u8, u32) {
    let (d, pe) = c;
    let (layer, idx) = match pe.tag {
        EdgeTag::Base => (0u8, 0u32),
        EdgeTag::Extra(i) => (1u8, i),
    };
    (d.to_bits(), pe.parent, layer, idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgraph::exact;
    use pgraph::gen;
    use pgraph::Graph;

    fn exec() -> Executor {
        Executor::shared(2)
    }

    #[test]
    fn hop_limit_respected() {
        // square: 0-1-2-3 light path, 0-3 heavy chord
        let g =
            Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 10.0)]).unwrap();
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r1 = bellman_ford(&exec(), &view, &[0], 1, &mut l);
        assert_eq!(r1.dist[3], 10.0);
        let r3 = bellman_ford(&exec(), &view, &[0], 3, &mut l);
        assert_eq!(r3.dist[3], 3.0);
        assert_eq!(r3.hops_to(3), Some(3));
    }

    #[test]
    fn matches_sequential_reference() {
        let g = gen::gnm_connected(100, 300, 9, 1.0, 6.0);
        let view = UnionView::base_only(&g);
        for hops in [1, 2, 5, 100] {
            let mut l = Ledger::new();
            let par = bellman_ford(&exec(), &view, &[0], hops, &mut l);
            let seq = exact::bellman_ford_hops(&view, &[0], hops);
            assert_eq!(par.dist, seq, "hops={hops}");
        }
    }

    #[test]
    fn multi_source() {
        let g = gen::path(9);
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r = bellman_ford(&exec(), &view, &[0, 8], 10, &mut l);
        assert_eq!(r.dist[4], 4.0);
        assert_eq!(r.dist[6], 2.0);
    }

    #[test]
    fn convergence_detection() {
        let g = gen::path(5);
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r = bellman_ford(&exec(), &view, &[0], 100, &mut l);
        // path of 4 edges converges after round 5 sees no change
        assert_eq!(r.converged_at, Some(5));
        assert_eq!(r.rounds_run, 5);
    }

    #[test]
    fn overlay_edges_take_part_and_are_tagged() {
        let g = gen::path(5); // 0-1-2-3-4
        let extra = vec![(0u32, 4u32, 1.5)];
        let view = UnionView::with_extra(&g, &extra);
        let mut l = Ledger::new();
        let r = bellman_ford(&exec(), &view, &[0], 2, &mut l);
        assert_eq!(r.dist[4], 1.5);
        let pe = r.parent[4].unwrap();
        assert_eq!(pe.tag, EdgeTag::Extra(0));
        assert_eq!(pe.parent, 0);
    }

    #[test]
    fn parent_tree_is_consistent() {
        let g = gen::gnm_connected(80, 240, 4, 1.0, 4.0);
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r = bellman_ford(&exec(), &view, &[7], 80, &mut l);
        for v in 0..80u32 {
            if v == 7 {
                assert!(r.parent[v as usize].is_none());
                continue;
            }
            let pe = r.parent[v as usize].expect("connected");
            // dist[v] == dist[parent] + w  (tree realizes the distances)
            let expect = r.dist[pe.parent as usize] + pe.weight;
            assert!((r.dist[v as usize] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn ledger_charges_per_round() {
        let g = gen::path(4);
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r = bellman_ford(&exec(), &view, &[0], 2, &mut l);
        assert_eq!(r.rounds_run, 2);
        assert_eq!(l.depth(), 2);
        assert_eq!(l.work(), 2 * (2 * 3 + 4));
    }

    #[test]
    fn unreachable_stays_infinite() {
        let g = Graph::from_edges(4, [(0, 1, 1.0)]).unwrap();
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r = bellman_ford(&exec(), &view, &[0], 10, &mut l);
        assert_eq!(r.dist[2], INF);
        assert_eq!(r.hops_to(2), None);
    }

    /// The settle criterion: early-exit p2p answers are bit-identical to
    /// the full run's target entry, across graphs, sources, targets and
    /// hop budgets.
    #[test]
    fn target_early_exit_bit_identical_to_full_run() {
        for seed in [3u64, 9, 21] {
            let g = gen::gnm_connected(90, 270, seed, 1.0, 8.0);
            let view = UnionView::base_only(&g);
            for hops in [1usize, 3, 8, 90] {
                let mut lf = Ledger::new();
                let full = bellman_ford(&exec(), &view, &[5], hops, &mut lf);
                for target in [0u32, 5, 44, 89] {
                    let mut lt = Ledger::new();
                    let p2p = bellman_ford_to(&exec(), &view, &[5], target, hops, &mut lt);
                    assert_eq!(
                        p2p.dist.to_bits(),
                        full.dist[target as usize].to_bits(),
                        "seed={seed} hops={hops} target={target}"
                    );
                    assert!(p2p.rounds_run <= full.rounds_run);
                }
            }
        }
    }

    /// A nearby target settles long before the hop budget runs out.
    #[test]
    fn target_early_exit_actually_cuts_rounds() {
        let g = gen::path(64); // 0-1-...-63
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r = bellman_ford_to(&exec(), &view, &[0], 3, 64, &mut l);
        assert_eq!(r.dist, 3.0);
        assert!(r.settled_early);
        // Settling needs the frontier to pass the target: a handful of
        // rounds, not 64.
        assert!(r.rounds_run < 10, "rounds_run={}", r.rounds_run);
        // The ledger reflects the rounds actually run.
        assert_eq!(l.depth(), r.rounds_run as u64);
    }

    /// target ∈ sources: label 0.0 is final before any round runs.
    #[test]
    fn target_is_source_settles_at_round_zero() {
        let g = gen::path(8);
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r = bellman_ford_to(&exec(), &view, &[2], 2, 8, &mut l);
        assert_eq!(r.dist.to_bits(), 0.0f64.to_bits());
        assert_eq!(r.rounds_run, 0);
        assert!(r.settled_early);
        assert_eq!(l.depth(), 0);
    }

    /// An unreachable target never settles early (short of convergence)
    /// and reports INF, like the full run.
    #[test]
    fn unreachable_target_matches_full_run() {
        let g = Graph::from_edges(4, [(0, 1, 1.0)]).unwrap();
        let view = UnionView::base_only(&g);
        let mut l = Ledger::new();
        let r = bellman_ford_to(&exec(), &view, &[0], 3, 10, &mut l);
        assert_eq!(r.dist, INF);
        assert!(r.settled_early); // via whole-exploration convergence
    }

    /// Scratch reuse: back-to-back explorations through one scratch give
    /// the same bits as fresh runs (no state leaks between requests).
    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_runs() {
        let g = gen::gnm_connected(70, 210, 13, 1.0, 6.0);
        let view = UnionView::base_only(&g);
        let mut scratch = BfordScratch::new();
        for src in [0u32, 33, 69, 7] {
            let mut l1 = Ledger::new();
            let (rounds, conv) =
                bellman_ford_into(&exec(), &view, &[src], 70, &mut l1, &mut scratch);
            let mut l2 = Ledger::new();
            let fresh = bellman_ford(&exec(), &view, &[src], 70, &mut l2);
            assert_eq!(rounds, fresh.rounds_run, "src={src}");
            assert_eq!(conv, fresh.converged_at);
            for (a, b) in scratch.dist().iter().zip(&fresh.dist) {
                assert_eq!(a.to_bits(), b.to_bits(), "src={src}");
            }
            assert_eq!(scratch.parent(), &fresh.parent[..]);
            assert_eq!(l1, l2);
        }
    }
}
