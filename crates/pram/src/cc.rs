//! Connected components in the Shiloach–Vishkin style \[SV82\], plus spanning
//! forests — the substrate of the Klein–Sairam weight reduction (Appendix C),
//! which contracts all edges lighter than a threshold into "nodes" and needs,
//! "as a byproduct of the connected components algorithm, … a spanning tree
//! T_U" per node (Appendix C.2).
//!
//! The variant here is the deterministic hook-to-minimum formulation: each
//! round, every root is hooked onto the smallest neighboring label (a
//! min-reduction — order-independent, hence thread-count-independent), then
//! pointer jumping fully compresses the forest. Labels strictly decrease, so
//! the hook edges form a spanning forest and the algorithm terminates; the
//! round count is logarithmic in practice (each surviving component absorbs
//! at least one neighbor per round).

use crate::pool::Executor;
use crate::{prim, Ledger};
use pgraph::{Graph, VId};

/// Output of [`connected_components`].
#[derive(Clone, Debug)]
pub struct CcResult {
    /// `label[v]` = smallest vertex id in `v`'s component.
    pub label: Vec<VId>,
    /// Number of components.
    pub count: usize,
    /// Rounds of hook+compress executed.
    pub rounds: usize,
}

impl CcResult {
    /// True if `u` and `v` are in the same component.
    #[inline]
    pub fn same(&self, u: VId, v: VId) -> bool {
        self.label[u as usize] == self.label[v as usize]
    }

    /// The members of every component, keyed by label, sorted by label then
    /// id — deterministic.
    pub fn components(&self) -> Vec<(VId, Vec<VId>)> {
        let mut by_label: Vec<(VId, VId)> = self
            .label
            .iter()
            .enumerate()
            .map(|(v, &l)| (l, v as VId))
            .collect();
        by_label.sort_unstable();
        let mut out: Vec<(VId, Vec<VId>)> = Vec::new();
        for (l, v) in by_label {
            match out.last_mut() {
                Some((ll, members)) if *ll == l => members.push(v),
                _ => out.push((l, vec![v])),
            }
        }
        out
    }
}

/// Connected components over the subgraph of `g` containing only the edges
/// whose index satisfies `edge_filter`. Passing `|_| true` uses the whole
/// graph. The filter is how Appendix C selects "edges of weight ≤ (ε/n)·2^k".
pub fn connected_components_filtered(
    exec: &Executor,
    g: &Graph,
    edge_filter: impl Fn(usize) -> bool + Sync,
    ledger: &mut Ledger,
) -> CcResult {
    let (res, _forest) = cc_with_forest(exec, g, edge_filter, ledger);
    res
}

/// Connected components of the whole graph.
pub fn connected_components(exec: &Executor, g: &Graph, ledger: &mut Ledger) -> CcResult {
    connected_components_filtered(exec, g, |_| true, ledger)
}

/// Connected components *and* a spanning forest (edge indices into
/// `g.edges()`) of the filtered subgraph. Every component of size `s`
/// contributes exactly `s − 1` forest edges.
pub fn spanning_forest(
    exec: &Executor,
    g: &Graph,
    edge_filter: impl Fn(usize) -> bool + Sync,
    ledger: &mut Ledger,
) -> (CcResult, Vec<usize>) {
    cc_with_forest(exec, g, edge_filter, ledger)
}

fn cc_with_forest(
    exec: &Executor,
    g: &Graph,
    edge_filter: impl Fn(usize) -> bool + Sync,
    ledger: &mut Ledger,
) -> (CcResult, Vec<usize>) {
    let n = g.num_vertices();
    let edges = g.edges();
    let m = edges.len();
    let mut label: Vec<VId> = (0..n as VId).collect();
    let mut forest: Vec<usize> = Vec::new();
    let mut rounds = 0usize;

    let active: Vec<usize> = (0..m).filter(|&e| edge_filter(e)).collect();
    if n == 0 {
        return (
            CcResult {
                label,
                count: 0,
                rounds,
            },
            forest,
        );
    }

    loop {
        rounds += 1;
        // --- Hook: every root computes the minimum neighboring label over
        // all incident (filtered) edges; ties broken by edge index.
        // One PRAM round of O(m) work.
        ledger.step(active.len() as u64 + n as u64);
        // proposals[r] = (candidate_label, edge_idx) — min-reduced.
        let mut proposal: Vec<(VId, usize)> = vec![(VId::MAX, usize::MAX); n];
        for &e in &active {
            let (u, v, _) = edges[e];
            let lu = label[u as usize];
            let lv = label[v as usize];
            if lu == lv {
                continue;
            }
            let (hi, lo) = if lu > lv { (lu, lv) } else { (lv, lu) };
            let p = &mut proposal[hi as usize];
            if (lo, e) < *p {
                *p = (lo, e);
            }
        }
        let mut changed = false;
        for r in 0..n {
            let (cand, e) = proposal[r];
            // Only current roots (label[r] == r) accept hooks; `r` is a label
            // value, so label[r] == r exactly for roots after compression.
            if cand != VId::MAX && label[r] == r as VId {
                label[r] = cand;
                forest.push(e);
                changed = true;
            }
        }
        if !changed {
            rounds -= 1;
            break;
        }
        // --- Compress: full pointer jumping (reads previous array only).
        loop {
            ledger.step(n as u64);
            let next: Vec<VId> = prim::par_map_range(exec, n, |v| label[label[v] as usize]);
            let stable = next == label;
            label = next;
            if stable {
                break;
            }
        }
    }

    forest.sort_unstable();
    let mut count = 0usize;
    #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
    for v in 0..n {
        if label[v] == v as VId {
            count += 1;
        }
    }
    (
        CcResult {
            label,
            count,
            rounds,
        },
        forest,
    )
}

/// Orient a spanning forest: given tree edges (indices into `g.edges()`) and
/// a root per component (`root[c_label]`), produce parent pointers and
/// parent-edge weights (roots point to themselves with weight 0).
///
/// `roots` maps a component label to its chosen root vertex; components whose
/// label is absent use the label vertex itself as root.
///
/// The forest adjacency scratch is a flat CSR built with a degree count and
/// a prefix-sum pass on `exec` (the workspace's flat-layout discipline —
/// no per-vertex `Vec` allocation), then BFS-style rounds over it (depth ≤
/// forest diameter). The paper's node trees are an internal device of
/// Appendix C/D, where this orientation cost is dominated by the hopset
/// construction.
pub fn orient_forest(
    exec: &Executor,
    n: usize,
    g: &Graph,
    tree_edges: &[usize],
    root_of_label: impl Fn(VId) -> VId,
    labels: &[VId],
    ledger: &mut Ledger,
) -> (Vec<VId>, Vec<f64>) {
    // Flat CSR over the forest edges: count, scan, place, sort runs.
    let edges = g.edges();
    let mut deg = vec![0u64; n];
    for &e in tree_edges {
        let (u, v, _) = edges[e];
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    let (offsets, total) = crate::scan::exclusive_prefix_sum(exec, &deg, ledger);
    let mut off: Vec<usize> = Vec::with_capacity(n + 1);
    off.extend(offsets.iter().map(|&x| x as usize));
    off.push(total as usize);
    let mut cursor = off[..n].to_vec();
    let mut adj: Vec<(VId, f64)> = vec![(0, 0.0); total as usize];
    for &e in tree_edges {
        let (u, v, w) = edges[e];
        adj[cursor[u as usize]] = (v, w);
        cursor[u as usize] += 1;
        adj[cursor[v as usize]] = (u, w);
        cursor[v as usize] += 1;
    }
    for v in 0..n {
        // Neighbors are unique within a forest run, so unstable is exact.
        adj[off[v]..off[v + 1]].sort_unstable_by_key(|a| a.0);
    }
    let run = |v: usize| &adj[off[v]..off[v + 1]];

    let mut parent: Vec<VId> = (0..n as VId).collect();
    let mut pw: Vec<f64> = vec![0.0; n];
    let mut visited = vec![false; n];
    let mut frontier: Vec<VId> = Vec::new();
    for v in 0..n as VId {
        let r = root_of_label(labels[v as usize]);
        if r == v {
            visited[v as usize] = true;
            frontier.push(v);
        }
    }
    while !frontier.is_empty() {
        ledger.step(
            frontier
                .iter()
                .map(|&v| run(v as usize).len() as u64)
                .sum::<u64>()
                + 1,
        );
        let mut next = Vec::new();
        for &u in &frontier {
            for &(v, w) in run(u as usize) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    parent[v as usize] = u;
                    pw[v as usize] = w;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    (parent, pw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgraph::gen;

    fn exec() -> Executor {
        Executor::shared(2)
    }

    #[test]
    fn single_component_path() {
        let g = gen::path(10);
        let mut l = Ledger::new();
        let cc = connected_components(&exec(), &g, &mut l);
        assert_eq!(cc.count, 1);
        assert!(cc.label.iter().all(|&x| x == 0));
    }

    #[test]
    fn disconnected_components() {
        let g = Graph::from_edges(6, [(0, 1, 1.0), (1, 2, 1.0), (4, 5, 1.0)]).unwrap();
        let mut l = Ledger::new();
        let cc = connected_components(&exec(), &g, &mut l);
        assert_eq!(cc.count, 3); // {0,1,2}, {3}, {4,5}
        assert!(cc.same(0, 2));
        assert!(!cc.same(2, 3));
        assert!(cc.same(4, 5));
        let comps = cc.components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], (0, vec![0, 1, 2]));
        assert_eq!(comps[1], (3, vec![3]));
        assert_eq!(comps[2], (4, vec![4, 5]));
    }

    #[test]
    fn edge_filter_restricts_components() {
        // Path 0-1-2-3 with weights 1, 10, 1. Filtering to weight < 5 splits
        // into {0,1}, {2,3} — the Appendix C node construction.
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 10.0), (2, 3, 1.0)]).unwrap();
        let edges = g.edges().to_vec();
        let mut l = Ledger::new();
        let cc = connected_components_filtered(&exec(), &g, |e| edges[e].2 < 5.0, &mut l);
        assert_eq!(cc.count, 2);
        assert!(cc.same(0, 1));
        assert!(cc.same(2, 3));
        assert!(!cc.same(1, 2));
    }

    #[test]
    fn forest_has_right_size_and_spans() {
        let g = gen::gnm_connected(200, 500, 17, 1.0, 2.0);
        let mut l = Ledger::new();
        let (cc, forest) = spanning_forest(&exec(), &g, |_| true, &mut l);
        assert_eq!(cc.count, 1);
        assert_eq!(forest.len(), 199);
        // Forest edges must connect the graph: run CC over forest edges only.
        let mut forest_set: Vec<usize> = forest.to_vec();
        forest_set.sort_unstable();
        let mut l2 = Ledger::new();
        let cc2 = connected_components_filtered(
            &exec(),
            &g,
            |e| forest_set.binary_search(&e).is_ok(),
            &mut l2,
        );
        assert_eq!(cc2.count, 1);
    }

    #[test]
    fn forest_per_component_size() {
        let g = Graph::from_edges(
            7,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 0, 1.0), // triangle: 2 tree edges
                (4, 5, 1.0),
                (5, 6, 1.0),
                (6, 4, 1.0), // triangle: 2 tree edges
            ],
        )
        .unwrap();
        let mut l = Ledger::new();
        let (cc, forest) = spanning_forest(&exec(), &g, |_| true, &mut l);
        assert_eq!(cc.count, 3); // two triangles + isolated 3
        assert_eq!(forest.len(), 4);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = gen::gnm(300, 900, 5, 1.0, 3.0);
        let mut l1 = Ledger::new();
        let mut l2 = Ledger::new();
        let (a, fa) = spanning_forest(&exec(), &g, |_| true, &mut l1);
        let (b, fb) = spanning_forest(&exec(), &g, |_| true, &mut l2);
        assert_eq!(a.label, b.label);
        assert_eq!(fa, fb);
        assert_eq!(l1, l2);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // Big enough that the compress rounds cross PAR_THRESHOLD and
        // really fan out on the pool.
        let g = gen::gnm(6000, 12_000, 5, 1.0, 3.0);
        let mut l1 = Ledger::new();
        let (base, base_forest) = spanning_forest(&Executor::sequential(), &g, |_| true, &mut l1);
        for threads in [2usize, 4, 8] {
            let mut l = Ledger::new();
            let (got, forest) = spanning_forest(&Executor::shared(threads), &g, |_| true, &mut l);
            assert_eq!(got.label, base.label, "threads={threads}");
            assert_eq!(got.rounds, base.rounds);
            assert_eq!(forest, base_forest);
            assert_eq!(l, l1);
        }
    }

    #[test]
    fn orient_forest_parents() {
        let g = Graph::from_edges(5, [(0, 1, 2.0), (1, 2, 3.0), (3, 4, 1.0)]).unwrap();
        let mut l = Ledger::new();
        let (cc, forest) = spanning_forest(&exec(), &g, |_| true, &mut l);
        // Root component {0,1,2} at 2; component {3,4} at 3.
        let (parent, pw) = orient_forest(
            &exec(),
            5,
            &g,
            &forest,
            |label| if label == 0 { 2 } else { 3 },
            &cc.label,
            &mut l,
        );
        assert_eq!(parent[2], 2);
        assert_eq!(parent[1], 2);
        assert_eq!(parent[0], 1);
        assert_eq!(pw[0], 2.0);
        assert_eq!(pw[1], 3.0);
        assert_eq!(parent[3], 3);
        assert_eq!(parent[4], 3);
        assert_eq!(pw[4], 1.0);
    }

    #[test]
    fn label_is_component_minimum() {
        let g = gen::gnm(128, 200, 33, 1.0, 2.0);
        let mut l = Ledger::new();
        let cc = connected_components(&exec(), &g, &mut l);
        // Reference: simple DFS union.
        let mut ref_label: Vec<VId> = (0..128).collect();
        let mut stack = Vec::new();
        let mut seen = [false; 128];
        for s in 0..128u32 {
            if seen[s as usize] {
                continue;
            }
            stack.push(s);
            seen[s as usize] = true;
            while let Some(u) = stack.pop() {
                ref_label[u as usize] = s;
                for (v, _) in g.neighbors(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        stack.push(v);
                    }
                }
            }
        }
        assert_eq!(cc.label, ref_label);
    }
}
