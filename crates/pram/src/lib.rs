#![warn(missing_docs)]
//! # pram — PRAM CREW cost model and instrumented parallel primitives
//!
//! The paper (Elkin–Matar, SPAA 2021) states its results in the CREW PRAM
//! model (§1.5.1): computation proceeds in synchronous rounds; *depth* is the
//! number of rounds and *work* is the total number of operations. Those are
//! **counted** quantities, not wall-clock times, so this crate reproduces
//! them with a deterministic [`Ledger`] that charges every primitive exactly
//! as the paper charges it:
//!
//! | primitive | depth charged | work charged | paper reference |
//! |---|---|---|---|
//! | elementwise step over `m` items | 1 | `m` | §1.5.1 |
//! | sort of `m` items | `⌈log2 m⌉` | `m · ⌈log2 m⌉` | AKS \[AKS83\], App. A |
//! | prefix sums over `m` items | `⌈log2 m⌉` | `m` | folklore, used in App. C |
//! | pointer-jumping round | 1 | `m` | \[SV82\], §4.2 |
//!
//! Actual execution uses [`pool`] — a **persistent worker-pool runtime**
//! (std-only: parked workers, condvar dispatch, barrier per round) behind
//! the explicit [`Executor`] handle every primitive takes. Chunk
//! boundaries are a pure function of `(len, threads)` and reductions are
//! order-independent, so results are bit-identical across thread counts
//! (tested, `tests/determinism.rs`). Handles come from `Executor::new(t)`
//! (private pool), `Executor::shared(t)` (process-cached), or
//! `Executor::current()` — the compatibility default resolved from
//! `pool::with_threads` / `pool::set_global_threads` / the
//! `PRAM_SSSP_THREADS` env var / the hardware, in that order. The legacy
//! sequential execution path survives behind the `seq-shim` feature only
//! (see `shims/README.md`).
//!
//! Modules:
//! * [`ledger`] — the work/depth ledger,
//! * [`pool`] — the persistent worker pool + [`Executor`] handle all
//!   primitives execute on,
//! * [`prim`] — deterministic parallel map/reduce helpers,
//! * [`scan`] — prefix sums,
//! * [`sort`] — instrumented sorting (the AKS stand-in),
//! * [`jump`] — pointer jumping (§4.2, Appendix C.4),
//! * [`cc`] — Shiloach–Vishkin connected components + spanning forests
//!   (needed by the Klein–Sairam reduction, Appendix C),
//! * [`bford`] — multi-source hop-limited Bellman–Ford over union views
//!   (the final exploration of Theorems 3.8/C.3),
//! * [`phase`] — construction-phase markers observed by the memory-audit
//!   hook in the experiment harness.

pub mod bford;
pub mod cc;
pub mod jump;
pub mod ledger;
pub mod phase;
pub mod pool;
pub mod prim;
pub mod scan;
pub mod sort;

pub use bford::{
    bellman_ford, bellman_ford_into, bellman_ford_to, BellmanFordResult, BfordScratch, ParentEdge,
    TargetResult,
};
pub use cc::{connected_components, spanning_forest, CcResult};
pub use jump::pointer_jump_distances;
pub use ledger::Ledger;
pub use pool::Executor;
