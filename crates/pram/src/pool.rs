//! The persistent worker-pool runtime: parked workers, barrier-cost
//! parallel rounds, bit-identical results at any thread count.
//!
//! PR 3 built real multi-threaded execution on `std::thread::scope`, which
//! paid a fresh OS-thread spawn (tens of microseconds) on **every**
//! primitive call. The oracle pipeline executes thousands of tiny parallel
//! rounds (β-limited Bellman–Ford pulses, ruling-set levels, per-scale
//! explorations), so spawn overhead swamped the per-round work —
//! EXPERIMENTS.md recorded construction getting *slower* at t=8. This
//! module replaces the scoped pool with a **persistent** one (still
//! std-only, no external dependencies): an [`Executor`] owns `threads − 1`
//! parked worker threads, and a parallel round costs a condvar wake plus a
//! barrier instead of a syscall storm.
//!
//! ## The `Executor` handle
//!
//! [`Executor`] is a cheap-to-clone, `Arc`-backed, `Send + Sync` handle.
//! Every `pram` primitive takes `&Executor` explicitly — thread counts are
//! no longer resolved from ambient (thread-local / global / env) state in
//! each hot call. Handles come from:
//!
//! * [`Executor::new(t)`](Executor::new) — a **private** pool: its workers
//!   serve only this handle's clones, and are shut down and joined when the
//!   last clone drops. This is what `sssp::OracleBuilder::threads(t)` pins,
//!   so two oracles with different thread counts run concurrently with zero
//!   global-state crosstalk.
//! * [`Executor::shared(t)`](Executor::shared) — the lazily-created,
//!   process-cached pool for count `t` (workers live for the process).
//! * [`Executor::current()`](Executor::current) — the process-default:
//!   [`Executor::shared`] at the count resolved from the legacy ambient
//!   knobs (see below). This is what layers use when no handle was passed
//!   down — the compatibility path, not the hot path.
//!
//! ## Dispatch / barrier protocol
//!
//! One parallel round (`run_chunks` / `for_each_chunk_mut`):
//!
//! 1. the caller takes the executor's **round lock** (rounds from
//!    concurrent caller threads on one executor serialize, they never
//!    interleave),
//! 2. publishes a lifetime-erased job — `(task, chunk-claim counter,
//!    chunk count)` — under the state mutex and wakes
//!    `min(workers, nchunks − 1)` workers (the caller participates too;
//!    a round never enrolls — or barriers on — more workers than it has
//!    chunks, so small rounds on big pools stay cheap),
//! 3. works itself: caller and enrolled workers claim chunk indices from
//!    one atomic counter until none remain (which chunk runs *where* is
//!    schedule-dependent; results are not — see the contract below),
//! 4. waits on the completion condvar until every enrolled worker has
//!    checked in, then clears the job and releases the round lock.
//!
//! Step 4 is the barrier that makes the lifetime erasure sound: the
//! borrowed task and output slots outlive the round because `dispatch`
//! cannot return (or unwind) before every worker is done with them. A
//! panicking task is caught on the worker, the worker checks in normally
//! (it stays parked for the next round — panics never poison or deadlock
//! the pool), and the payload is re-thrown on the caller after the
//! barrier.
//!
//! ## Determinism contract (DESIGN.md §5)
//!
//! * **Fixed chunk boundaries.** [`chunk_bounds`] derives the split purely
//!   from `(len, threads)`: `min(threads, len / MIN_CHUNK)` (at least one)
//!   contiguous chunks, sizes differing by at most one, earlier chunks
//!   larger. Nothing about the split depends on scheduling.
//! * **Merge in chunk order.** [`Executor::run_chunks`] writes each chunk's
//!   result into the slot indexed by its chunk number; completion order is
//!   unobservable.
//! * **Order-independent reductions.** Callers combine per-chunk results
//!   with associative, commutative operations over totally ordered keys,
//!   so the *values* do not depend on the boundaries either. Outputs are
//!   bit-identical for every thread count — and to the retired scoped
//!   implementation (`tests/determinism.rs` pins the full pipeline).
//!
//! ## Thread-count resolution (legacy ambient knobs)
//!
//! [`Executor::current`] resolves, in priority order: a scoped
//! [`with_threads`] override (thread-local) → [`set_global_threads`] → the
//! `PRAM_SSSP_THREADS` environment variable → hardware parallelism. These
//! knobs are **construction-time defaults** for code that has no explicit
//! handle (legacy shims, tests, the env-driven CI matrix); they are no
//! longer consulted by any primitive at execution time, and the intended
//! long-term path is an explicit `Executor` everywhere (see DESIGN.md §5's
//! deprecation note).
//!
//! Inside a pool task the effective count is pinned to 1: nested
//! primitives run sequentially instead of deadlocking on their own pool or
//! fanning out `t²` threads. (Results are unaffected — only the schedule.)
//!
//! ## The `seq-shim` feature
//!
//! With `--features seq-shim` executors spawn no workers and every round
//! routes through the sequential `rayon` shim, exactly as before real
//! threads existed — same results, zero threads (see `shims/README.md`).

#[cfg(not(feature = "seq-shim"))]
use std::any::Any;
use std::cell::Cell;
use std::ops::Range;
#[cfg(not(feature = "seq-shim"))]
use std::panic::resume_unwind;
#[cfg(any(test, not(feature = "seq-shim")))]
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(feature = "seq-shim"))]
use std::sync::Condvar;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Inputs shorter than this run sequentially in every `prim` primitive;
/// inputs of **exactly** this length take the chunked parallel path.
///
/// This is the pool's documented, test-pinned threshold constant: the
/// boundary behavior (`len == PAR_THRESHOLD` ⇒ parallel) is asserted by
/// `prim`'s boundary tests and by the proptests straddling it, so changing
/// the value or the comparison direction fails loudly.
pub const PAR_THRESHOLD: usize = 4096;

/// No chunk is ever smaller than this (except when a single chunk covers
/// the whole input): even with persistent workers a chunk costs a wake +
/// barrier check-in, so chunks must carry enough work to be worth
/// distributing. With `PAR_THRESHOLD = 4096` and `MIN_CHUNK = 2048`, the
/// smallest parallel input splits into exactly two chunks.
pub const MIN_CHUNK: usize = 2048;

/// Process-global thread count; `0` means "not set".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped override installed by [`with_threads`]; `0` means "not set".
    static TLS_THREADS: Cell<usize> = const { Cell::new(0) };
    /// True while this thread is executing a pool task (a parked worker, or
    /// the caller processing chunks of a round): nested primitives go
    /// sequential.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// `PRAM_SSSP_THREADS`, parsed once per process. Invalid or zero ⇒ `None`.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PRAM_SSSP_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
    })
}

/// The thread count [`Executor::current`] would resolve on this thread.
/// Resolution order: [`with_threads`] scope > [`set_global_threads`] >
/// `PRAM_SSSP_THREADS` > available parallelism. Always ≥ 1; exactly 1
/// inside a pool task (nested parallelism collapses to sequential).
pub fn current_threads() -> usize {
    if IN_POOL.with(|c| c.get()) {
        return 1;
    }
    let tls = TLS_THREADS.with(|c| c.get());
    if tls > 0 {
        return tls;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Some(t) = env_threads() {
        return t;
    }
    // Cached: `available_parallelism` is a syscall.
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Set the process-global default thread count — an operator-level knob
/// for embedding applications, consulted only by [`Executor::current`]
/// (per-oracle pinning passes an explicit executor instead:
/// `OracleBuilder::threads`). `0` clears the setting, restoring the
/// env-var/hardware default. Scoped [`with_threads`] overrides still win.
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads, Ordering::Relaxed);
}

/// Run `f` with [`Executor::current`]'s resolution pinned to
/// `threads.max(1)` on this thread (`0` clamps to 1 — the clamp rule of
/// [`Executor::new`]). Restores the previous override on exit, including
/// on panic — safe to nest.
///
/// This affects only code that resolves a *default* executor inside `f`;
/// an explicit `Executor` handle always wins.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            TLS_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = TLS_THREADS.with(|c| c.get());
    let _restore = Restore(prev);
    TLS_THREADS.with(|c| c.set(threads.max(1)));
    f()
}

/// The deterministic chunking rule: split `0..len` into
/// `min(threads, len / MIN_CHUNK)` (at least 1) contiguous chunks whose
/// sizes differ by at most one, earlier chunks taking the remainder.
/// Depends on nothing but the two arguments — in particular, not on
/// scheduling — so the split is reproducible by construction.
pub fn chunk_bounds(len: usize, threads: usize) -> Vec<Range<usize>> {
    balanced_split(len, threads.max(1).min((len / MIN_CHUNK).max(1)))
}

/// `nchunks` balanced contiguous chunks of `0..len`, earlier chunks taking
/// the remainder (callers guarantee `1 ≤ nchunks ≤ len` unless `len == 0`).
fn balanced_split(len: usize, nchunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let base = len / nchunks;
    let rem = len % nchunks;
    let mut bounds = Vec::with_capacity(nchunks);
    let mut start = 0usize;
    for i in 0..nchunks {
        let size = base + usize::from(i < rem);
        bounds.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    bounds
}

/// Fine-mode chunk multiplier: skewed rounds split into up to
/// `FINE_CHUNK_FACTOR × threads` chunks so the pool's chunk-claim counter
/// can *donate* trailing chunks to whichever workers finish early.
pub const FINE_CHUNK_FACTOR: usize = 4;

/// Floor for fine-mode chunks, deliberately below [`MIN_CHUNK`]: fine mode
/// exists for rounds whose per-element work is skewed (a few heavy
/// elements among many trivial ones), where load balance matters more
/// than per-chunk dispatch overhead.
pub const MIN_FINE_CHUNK: usize = 512;

/// The deterministic **fine** chunking rule for skewed rounds: split
/// `0..len` into `min(threads × FINE_CHUNK_FACTOR, len / MIN_FINE_CHUNK)`
/// (at least 1) balanced contiguous chunks. Like [`chunk_bounds`] this is
/// a pure function of `(len, threads)` — scheduling never moves a
/// boundary. With more chunks than threads, the shared claim counter in
/// `dispatch` becomes a **donation** queue: a worker that finishes its
/// chunk early claims the next unclaimed index instead of idling. Which
/// chunk runs *where* changes; the boundaries (and therefore every
/// computed value) do not — the §5 contract holds by construction, and
/// the debug-build [`overlap`] detector re-verifies the executed
/// partition every round.
pub fn fine_chunk_bounds(len: usize, threads: usize) -> Vec<Range<usize>> {
    let cap = (len / MIN_FINE_CHUNK).max(1);
    balanced_split(len, (threads.max(1) * FINE_CHUNK_FACTOR).min(cap))
}

/// Chunking for **coarse-grained task lists** — `len` items that are each
/// a substantial computation (e.g. one full Bellman–Ford exploration per
/// item), not array elements: `min(threads, len)` balanced contiguous
/// chunks with **no** [`MIN_CHUNK`] floor. Same determinism properties as
/// [`chunk_bounds`] (a pure function of the two arguments).
pub fn task_bounds(len: usize, threads: usize) -> Vec<Range<usize>> {
    balanced_split(len, threads.max(1).min(len.max(1)))
}

/// Run `f` with this thread marked as a pool participant (nested
/// primitives collapse to sequential). Restores the flag on exit.
#[cfg_attr(feature = "seq-shim", allow(dead_code))]
fn as_worker<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_POOL.with(|c| c.set(self.0));
        }
    }
    let prev = IN_POOL.with(|c| c.get());
    let _restore = Restore(prev);
    IN_POOL.with(|c| c.set(true));
    f()
}

/// Poison-immune lock: a worker panic never happens while holding the
/// state mutex (tasks run outside it), but be robust anyway.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Debug-build chunk-overlap race detector — the **dynamic** complement
/// to the `xlint` static pass (DESIGN.md §10).
///
/// `for_each_chunk_mut` is the one place in the workspace that hands out
/// `&mut` slices to concurrent workers; its soundness (and the
/// determinism contract's "disjoint pre-split writes" clause) rests on
/// the claimed chunks forming a genuine partition of the data, each
/// executed exactly once. The static asserts on the *bounds array* can't
/// see scheduling bugs — a chunk index handed to two workers, or a chunk
/// that never ran — so in `debug_assertions` builds every dispatch round
/// records the `(chunk index, range)` pairs **as they are claimed by the
/// executing thread** and, after the round barrier, verifies:
///
/// 1. every chunk index was claimed exactly once (no double execution,
///    no lost chunk);
/// 2. the claimed ranges are pairwise disjoint (no overlapping `&mut`);
/// 3. together they cover `0..len` with no gap (exhaustive).
///
/// Release builds compile all of this out. The detector is driven by the
/// pool itself on every debug round (so the whole test suite exercises
/// it continuously); `crates/pram/tests/overlap_detector.rs` additionally
/// feeds it deliberately overlapping / double-claimed / gapped rounds and
/// asserts it fires.
#[cfg(debug_assertions)]
pub mod overlap {
    use std::ops::Range;
    use std::sync::{Mutex, PoisonError};

    /// The claim record of one parallel round. Create before dispatch,
    /// [`claim`](RoundClaims::claim) from each executing chunk, and
    /// [`finish`](RoundClaims::finish) after the round barrier.
    #[derive(Debug)]
    pub struct RoundClaims {
        /// Length of the slice the round partitions.
        len: usize,
        /// Number of chunks the round was dispatched with.
        nchunks: usize,
        /// `(chunk index, bounds)` in claim order (schedule-dependent —
        /// which is exactly why `finish` sorts before judging).
        claims: Mutex<Vec<(usize, Range<usize>)>>,
    }

    impl RoundClaims {
        /// A fresh record for a round of `nchunks` chunks over `0..len`.
        pub fn new(len: usize, nchunks: usize) -> RoundClaims {
            RoundClaims {
                len,
                nchunks,
                claims: Mutex::new(Vec::with_capacity(nchunks)),
            }
        }

        /// Record that the executing thread claimed chunk `ci` with the
        /// given bounds. Called from worker threads; claim order is
        /// schedule-dependent and irrelevant.
        pub fn claim(&self, ci: usize, bounds: Range<usize>) {
            self.claims
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push((ci, bounds));
        }

        /// Verify the round: panics unless every chunk index was claimed
        /// exactly once and the claimed ranges partition `0..len`.
        pub fn finish(&self) {
            let mut claims = self
                .claims
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone();
            assert_eq!(
                claims.len(),
                self.nchunks,
                "round ended with {}/{} chunk claims (lost or extra execution)",
                claims.len(),
                self.nchunks,
            );
            claims.sort_by_key(|(ci, _)| *ci);
            for (slot, (ci, _)) in claims.iter().enumerate() {
                assert!(
                    *ci == slot,
                    "chunk {ci} claimed twice in one round (chunk {slot} never ran)",
                );
            }
            claims.sort_by_key(|(_, r)| (r.start, r.end));
            let mut covered = 0usize;
            for (ci, r) in &claims {
                assert!(
                    r.start >= covered,
                    "chunk overlap: chunk {ci} ({}..{}) overlaps the range claimed before it \
                     (covered up to {covered})",
                    r.start,
                    r.end,
                );
                assert!(
                    r.start == covered,
                    "chunk gap: nothing claimed {covered}..{} (chunk {ci} starts at {})",
                    r.start,
                    r.start,
                );
                assert!(r.end >= r.start, "chunk {ci} has decreasing bounds");
                covered = r.end;
            }
            assert_eq!(
                covered, self.len,
                "claims not exhaustive: covered 0..{covered} of 0..{}",
                self.len,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The persistent pool
// ---------------------------------------------------------------------------

/// A one-round job, lifetime-erased. Valid only while its round is in
/// flight: `dispatch` barriers on worker check-in before the referents
/// (caller stack data) go away.
#[cfg(not(feature = "seq-shim"))]
#[derive(Clone, Copy)]
struct Job {
    /// The per-chunk task, `task(chunk_index)`.
    task: &'static (dyn Fn(usize) + Sync),
    /// The shared chunk-claim counter (caller-owned).
    next: &'static AtomicUsize,
    /// Number of chunks in the round.
    nchunks: usize,
}

#[cfg(not(feature = "seq-shim"))]
struct PoolState {
    /// Round generation counter; workers run one job per bump.
    epoch: u64,
    /// The in-flight job, if any.
    job: Option<Job>,
    /// Enrolled workers that have not yet checked in for the current round.
    active: usize,
    /// Enrollment slots left this round: `min(workers, nchunks − 1)`. A
    /// worker that observes a new epoch with no slot left skips the round
    /// entirely — small rounds barrier on a small check-in set instead of
    /// the whole pool.
    enroll: usize,
    /// First worker panic of the round, re-thrown by the caller.
    panic: Option<Box<dyn Any + Send>>,
    /// Set once by `Drop`: workers exit.
    shutdown: bool,
}

#[cfg(not(feature = "seq-shim"))]
struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch (or shutdown).
    work_cv: Condvar,
    /// The dispatching caller waits here for `active == 0`.
    done_cv: Condvar,
    /// Serializes whole rounds across concurrent caller threads.
    round_lock: Mutex<()>,
    /// Number of worker threads (`threads − 1`).
    workers: usize,
}

#[cfg(not(feature = "seq-shim"))]
fn worker_loop(shared: Arc<Shared>) {
    // A worker thread is permanently a pool participant: any primitive a
    // task calls transitively sees an effective thread count of 1.
    IN_POOL.with(|c| c.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    // Observe the round exactly once, enrolled or not.
                    seen_epoch = st.epoch;
                    match st.job {
                        Some(job) if st.enroll > 0 => {
                            st.enroll -= 1;
                            break job;
                        }
                        // Round already fully enrolled (or cleared): not a
                        // participant — go straight back to parking.
                        _ => continue,
                    }
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| run_job(&job)));
        let mut st = lock(&shared.state);
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Claim and run chunks until the round's counter is exhausted.
#[cfg(not(feature = "seq-shim"))]
fn run_job(job: &Job) {
    loop {
        let ci = job.next.fetch_add(1, Ordering::Relaxed);
        if ci >= job.nchunks {
            return;
        }
        (job.task)(ci);
    }
}

/// The executor's owned core: shared pool state plus the worker join
/// handles. Dropping the last [`Executor`] clone shuts the workers down.
struct Core {
    threads: usize,
    #[cfg(not(feature = "seq-shim"))]
    shared: Option<Arc<Shared>>,
    #[cfg(not(feature = "seq-shim"))]
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Drop for Core {
    fn drop(&mut self) {
        #[cfg(not(feature = "seq-shim"))]
        if let Some(shared) = &self.shared {
            lock(&shared.state).shutdown = true;
            shared.work_cv.notify_all();
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

/// A shareable handle to a persistent worker pool — the explicit execution
/// context every `pram` primitive takes (see the module docs for the
/// dispatch protocol and the determinism contract).
///
/// Cloning is cheap (`Arc` bump); clones share one pool. The handle is
/// `Send + Sync`: concurrent rounds from different caller threads
/// serialize on the round lock, so a single executor can safely serve
/// multi-threaded query traffic.
#[derive(Clone)]
pub struct Executor {
    core: Arc<Core>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.core.threads)
            .finish()
    }
}

impl Default for Executor {
    /// [`Executor::current`]: the process-default executor.
    fn default() -> Self {
        Executor::current()
    }
}

impl Executor {
    /// Create a **private** pool of `threads.max(1)` logical threads:
    /// `threads − 1` parked workers plus the dispatching caller. This is
    /// the **single canonical clamp rule** for thread counts in this
    /// workspace: `0` clamps to `1` (sequential), never an error — the
    /// rule [`with_threads`] and `sssp::OracleBuilder::threads` both
    /// inherit (and `tests/executor_isolation.rs` pins).
    ///
    /// Workers park immediately and are woken per round; they are shut
    /// down and joined when the last clone of the handle drops. Under
    /// `--features seq-shim` no workers are spawned at all.
    pub fn new(threads: usize) -> Executor {
        let threads = threads.max(1);
        #[cfg(not(feature = "seq-shim"))]
        {
            let (shared, handles) = if threads > 1 {
                let shared = Arc::new(Shared {
                    state: Mutex::new(PoolState {
                        epoch: 0,
                        job: None,
                        active: 0,
                        enroll: 0,
                        panic: None,
                        shutdown: false,
                    }),
                    work_cv: Condvar::new(),
                    done_cv: Condvar::new(),
                    round_lock: Mutex::new(()),
                    workers: threads - 1,
                });
                let handles = (0..threads - 1)
                    .map(|i| {
                        let shared = Arc::clone(&shared);
                        std::thread::Builder::new()
                            .name(format!("pram-worker-{i}"))
                            .spawn(move || worker_loop(shared))
                            .expect("spawn pool worker")
                    })
                    .collect();
                (Some(shared), handles)
            } else {
                (None, Vec::new())
            };
            Executor {
                core: Arc::new(Core {
                    threads,
                    shared,
                    handles,
                }),
            }
        }
        #[cfg(feature = "seq-shim")]
        {
            Executor {
                core: Arc::new(Core { threads }),
            }
        }
    }

    /// A strictly sequential executor (one thread, no workers).
    pub fn sequential() -> Executor {
        Executor::new(1)
    }

    /// The lazily-created, process-cached executor for `threads.max(1)`
    /// threads. Unlike [`Executor::new`], repeated calls with the same
    /// count return handles to **one** pool whose workers live for the
    /// process — this is what makes [`with_threads`]-style ambient
    /// configuration cheap (no spawn per resolution).
    pub fn shared(threads: usize) -> Executor {
        let threads = threads.max(1);
        static DEFAULTS: OnceLock<Mutex<Vec<(usize, Executor)>>> = OnceLock::new();
        let cache = DEFAULTS.get_or_init(|| Mutex::new(Vec::new()));
        let mut cache = lock(cache);
        if let Some((_, exec)) = cache.iter().find(|(t, _)| *t == threads) {
            return exec.clone();
        }
        let exec = Executor::new(threads);
        cache.push((threads, exec.clone()));
        exec
    }

    /// The process-default executor: [`Executor::shared`] at the count the
    /// legacy ambient knobs resolve to ([`current_threads`]). Construction-
    /// time compatibility path — prefer passing an explicit handle down.
    pub fn current() -> Executor {
        Executor::shared(current_threads())
    }

    /// The logical thread count (chunk boundaries are derived from this —
    /// it is part of the determinism contract's `(len, threads)` input).
    #[inline]
    pub fn threads(&self) -> usize {
        self.core.threads
    }

    /// The thread count a primitive called *right now on this thread*
    /// would fan out to: [`Executor::threads`], except 1 inside a pool
    /// task (nested parallelism collapses to sequential).
    #[inline]
    pub fn effective_threads(&self) -> usize {
        if IN_POOL.with(|c| c.get()) {
            1
        } else {
            self.core.threads
        }
    }

    /// True when a length-`len` input should take the chunked parallel
    /// path: `len >= PAR_THRESHOLD` **and** more than one effective thread.
    #[inline]
    pub fn parallel_eligible(&self, len: usize) -> bool {
        len >= PAR_THRESHOLD && self.effective_threads() > 1
    }

    /// [`chunk_bounds`] at this executor's thread count.
    #[inline]
    pub fn chunk_bounds(&self, len: usize) -> Vec<Range<usize>> {
        chunk_bounds(len, self.effective_threads())
    }

    /// [`task_bounds`] at this executor's thread count.
    #[inline]
    pub fn task_bounds(&self, len: usize) -> Vec<Range<usize>> {
        task_bounds(len, self.effective_threads())
    }

    /// The bounds of one data-parallel round over `0..len`, honoring the
    /// eligibility contract the `prim` primitives follow: the chunked split
    /// ([`Executor::chunk_bounds`]) when [`Executor::parallel_eligible`],
    /// otherwise a single chunk covering the input (empty for `len == 0`).
    /// Downstream round engines (e.g. `hopset`'s exploration pulses) use
    /// this instead of re-deriving the threshold rule, so a future change
    /// to the contract lands everywhere at once.
    pub fn round_bounds(&self, len: usize) -> Vec<Range<usize>> {
        if self.parallel_eligible(len) {
            self.chunk_bounds(len)
        } else if len == 0 {
            Vec::new()
        } else {
            std::iter::once(0..len).collect()
        }
    }

    /// [`fine_chunk_bounds`] at this executor's thread count.
    #[inline]
    pub fn fine_chunk_bounds(&self, len: usize) -> Vec<Range<usize>> {
        fine_chunk_bounds(len, self.effective_threads())
    }

    /// [`Executor::round_bounds`] with the **fine** split: same
    /// eligibility rule, but an eligible round splits into
    /// [`fine_chunk_bounds`] so the claim counter can donate trailing
    /// chunks to early finishers.
    pub fn round_bounds_fine(&self, len: usize) -> Vec<Range<usize>> {
        if self.parallel_eligible(len) {
            self.fine_chunk_bounds(len)
        } else if len == 0 {
            Vec::new()
        } else {
            std::iter::once(0..len).collect()
        }
    }

    /// Autotuned round bounds: pick the fine split when the round is
    /// **skewed** — fewer than half of the `len` elements are expected to
    /// do real work (`active` is the caller's deterministic estimate,
    /// e.g. the number of vertices whose labels changed last pulse) — and
    /// the coarse split otherwise. `active` is computed from the input
    /// data, never from timing or scheduling, so the fine/coarse decision
    /// is itself deterministic and the §5 contract is preserved whichever
    /// branch is taken.
    pub fn round_bounds_auto(&self, len: usize, active: usize) -> Vec<Range<usize>> {
        if active.saturating_mul(2) < len {
            self.round_bounds_fine(len)
        } else {
            self.round_bounds(len)
        }
    }

    /// Execute `task(chunk_index)` for every `chunk_index in 0..nchunks`,
    /// distributed over the persistent workers + the calling thread, and
    /// barrier until all are done. Runs inline (sequentially, in index
    /// order) when the round has ≤ 1 chunk, the executor is sequential, or
    /// the calling thread is itself a pool task.
    #[cfg(not(feature = "seq-shim"))]
    fn dispatch(&self, nchunks: usize, runner: &(dyn Fn(usize) + Sync)) {
        let pooled = nchunks > 1 && !IN_POOL.with(|c| c.get());
        let shared = match &self.core.shared {
            Some(shared) if pooled => shared,
            _ => {
                for ci in 0..nchunks {
                    runner(ci);
                }
                return;
            }
        };
        let next = AtomicUsize::new(0);
        let job = Job {
            // SAFETY: lifetime erasure of `runner`, borrowed from this
            // stack frame. The barrier below guarantees every worker has
            // checked in (and thus dropped its use of the job) before
            // this function returns or unwinds, so the 'static erasure
            // never outlives the borrow. The round lock guarantees no
            // other caller can overwrite the job while this round is in
            // flight.
            task: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                    runner,
                )
            },
            // SAFETY: same barrier argument as `task`: `next` lives on
            // this frame, and no worker touches the job after check-in.
            next: unsafe { std::mem::transmute::<&AtomicUsize, &'static AtomicUsize>(&next) },
            nchunks,
        };
        let round = lock(&shared.round_lock);
        // The caller participates too, so a round of `nchunks` chunks needs
        // at most `nchunks − 1` workers: small rounds wake and barrier on a
        // small check-in set, not the whole pool.
        let enrolled = shared.workers.min(nchunks - 1);
        {
            let mut st = lock(&shared.state);
            debug_assert!(st.job.is_none(), "round lock must serialize rounds");
            st.job = Some(job);
            st.active = enrolled;
            st.enroll = enrolled;
            st.epoch = st.epoch.wrapping_add(1);
            if enrolled == shared.workers {
                shared.work_cv.notify_all();
            } else {
                // notify_one per slot: a lost notification (target mid-loop
                // rather than parked) is harmless — every worker re-checks
                // the epoch under the lock before parking, so any
                // non-parked worker claims an open slot on its own.
                for _ in 0..enrolled {
                    shared.work_cv.notify_one();
                }
            }
        }
        // The caller is a full participant; its own panic must not skip
        // the barrier (the workers may still be using the job).
        let caller = catch_unwind(AssertUnwindSafe(|| as_worker(|| run_job(&job))));
        let mut st = lock(&shared.state);
        while st.active > 0 {
            st = shared
                .done_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
        let worker_panic = st.panic.take();
        drop(st);
        drop(round);
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
    }

    /// `seq-shim` routing: the sequential `rayon` shim runs every chunk on
    /// the calling thread — same results, no threads.
    #[cfg(feature = "seq-shim")]
    fn dispatch(&self, nchunks: usize, runner: &(dyn Fn(usize) + Sync)) {
        use rayon::prelude::*;
        (0..nchunks).into_par_iter().for_each(runner);
    }

    /// Execute `task` once per chunk and return the per-chunk results **in
    /// chunk order** (each result lands in the slot indexed by its chunk
    /// number — completion order is unobservable). A panicking task
    /// propagates to the caller after the round barrier; the pool remains
    /// usable.
    pub fn run_chunks<R: Send>(
        &self,
        bounds: &[Range<usize>],
        task: impl Fn(Range<usize>) -> R + Sync,
    ) -> Vec<R> {
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(bounds.len(), || None);
        // Debug builds verify the "claimed exactly once" premise of the
        // SAFETY argument below dynamically (one synthetic unit range per
        // result slot): see [`overlap`].
        #[cfg(debug_assertions)]
        let claims = overlap::RoundClaims::new(bounds.len(), bounds.len());
        {
            #[cfg(debug_assertions)]
            let claims = &claims;
            let out = SendPtr(slots.as_mut_ptr());
            let runner = move |ci: usize| {
                #[cfg(debug_assertions)]
                claims.claim(ci, ci..ci + 1);
                let r = task(bounds[ci].clone());
                // SAFETY: each chunk index is claimed exactly once per
                // round (atomic counter), so writes are disjoint; the
                // dispatch barrier orders them before the read below.
                unsafe { *out.get().add(ci) = Some(r) };
            };
            self.dispatch(bounds.len(), &runner);
        }
        #[cfg(debug_assertions)]
        claims.finish();
        slots
            .into_iter()
            .map(|s| s.expect("every chunk executed"))
            .collect()
    }

    /// Split `data` at `bounds` (which must partition `0..data.len()`, as
    /// produced by [`chunk_bounds`]) and execute `task(chunk_index, chunk)`
    /// for every chunk. Writes are disjoint by construction, so no merge
    /// step exists and determinism is structural.
    pub fn for_each_chunk_mut<T: Send>(
        &self,
        data: &mut [T],
        bounds: &[Range<usize>],
        task: impl Fn(usize, &mut [T]) + Sync,
    ) {
        let mut consumed = 0usize;
        for r in bounds {
            assert_eq!(r.start, consumed, "bounds must be contiguous from 0");
            // Together with contiguity and the final coverage check, this
            // is what makes the ranges a genuine partition: a decreasing
            // range could otherwise sneak an overlapping or out-of-bounds
            // slice past the other two asserts.
            assert!(r.end >= r.start, "bounds must be non-decreasing ranges");
            consumed = r.end;
        }
        assert_eq!(consumed, data.len(), "bounds must cover the whole slice");
        // This is the one place in the workspace that hands `&mut` slices
        // to concurrent workers; debug builds re-verify the partition
        // *as executed* — each chunk claimed exactly once, claimed ranges
        // disjoint and exhaustive — via the [`overlap`] race detector.
        #[cfg(debug_assertions)]
        let claims = overlap::RoundClaims::new(data.len(), bounds.len());
        #[cfg(debug_assertions)]
        let claims_ref = &claims;
        let base = SendPtr(data.as_mut_ptr());
        let runner = move |ci: usize| {
            let r = &bounds[ci];
            #[cfg(debug_assertions)]
            claims_ref.claim(ci, r.clone());
            // SAFETY: bounds partition `0..data.len()` (asserted above) and
            // each chunk index runs exactly once per round, so the slices
            // are disjoint; the dispatch barrier keeps them inside the
            // borrow of `data`.
            let piece = unsafe { std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()) };
            task(ci, piece);
        };
        self.dispatch(bounds.len(), &runner);
        #[cfg(debug_assertions)]
        claims.finish();
    }
}

/// A raw pointer whose cross-thread use is justified at each use site
/// (disjoint per-chunk writes under the dispatch barrier).
struct SendPtr<T>(*mut T);
impl<T> SendPtr<T> {
    /// Accessed through a method so closures capture the (Send + Sync)
    /// wrapper rather than the bare pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: the pointer is only dereferenced inside a dispatch round, where
// every chunk touches a disjoint region and the round barrier sequences
// all worker writes before the caller reads (see the SAFETY notes at the
// two use sites); moving the pointer value itself between threads is then
// sound exactly when `T: Send`.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr` only exposes the pointer value (`get`); the
// disjoint-write argument above covers every actual access through it.
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_pinned() {
        // The documented contract of the pool: 4096, and `len == threshold`
        // takes the parallel path (see `Executor::parallel_eligible`).
        assert_eq!(PAR_THRESHOLD, 4096);
        let exec = Executor::shared(4);
        assert!(!exec.parallel_eligible(PAR_THRESHOLD - 1));
        assert!(exec.parallel_eligible(PAR_THRESHOLD));
        assert!(exec.parallel_eligible(PAR_THRESHOLD + 1));
        // One thread ⇒ never parallel, whatever the length.
        assert!(!Executor::sequential().parallel_eligible(PAR_THRESHOLD));
    }

    #[test]
    fn chunk_bounds_partition_and_balance() {
        for len in [0usize, 1, 2, 5, 4096, 4097, 10_000, 1 << 20] {
            for t in [1usize, 2, 3, 4, 8, 64] {
                let b = chunk_bounds(len, t);
                if len == 0 {
                    assert!(b.is_empty());
                    continue;
                }
                // The documented rule: min(threads, len / MIN_CHUNK), ≥ 1.
                assert_eq!(b.len(), t.min((len / MIN_CHUNK).max(1)), "len={len} t={t}");
                let mut next = 0usize;
                let mut sizes = Vec::new();
                for r in &b {
                    assert_eq!(r.start, next);
                    next = r.end;
                    sizes.push(r.len());
                }
                assert_eq!(next, len);
                let (max, min) = (sizes.iter().max().unwrap(), sizes.iter().min().unwrap());
                assert!(max - min <= 1, "len={len} t={t}");
                // Earlier chunks take the remainder, and no multi-chunk
                // split produces a sub-MIN_CHUNK chunk.
                assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
                if b.len() > 1 {
                    assert!(*min >= MIN_CHUNK, "len={len} t={t} min={min}");
                }
            }
        }
    }

    #[test]
    fn fine_chunk_bounds_partition_and_are_pure() {
        for len in [0usize, 1, 511, 512, 4096, 4097, 100_000, 1 << 20] {
            for t in [1usize, 2, 4, 8] {
                let b = fine_chunk_bounds(len, t);
                if len == 0 {
                    assert!(b.is_empty());
                    continue;
                }
                // Documented rule: min(t × FINE_CHUNK_FACTOR, len / MIN_FINE_CHUNK), ≥ 1.
                assert_eq!(
                    b.len(),
                    (t * FINE_CHUNK_FACTOR).min((len / MIN_FINE_CHUNK).max(1)),
                    "len={len} t={t}"
                );
                let mut next = 0usize;
                let mut sizes = Vec::new();
                for r in &b {
                    assert_eq!(r.start, next);
                    next = r.end;
                    sizes.push(r.len());
                }
                assert_eq!(next, len);
                let (max, min) = (sizes.iter().max().unwrap(), sizes.iter().min().unwrap());
                assert!(max - min <= 1, "len={len} t={t}");
                // Pure function of (len, threads): identical on re-derivation.
                assert_eq!(b, fine_chunk_bounds(len, t));
            }
        }
        // Fine mode produces strictly more chunks than coarse on big
        // inputs — that headroom is what donation consumes.
        assert!(fine_chunk_bounds(1 << 20, 4).len() > chunk_bounds(1 << 20, 4).len());
    }

    #[test]
    fn round_bounds_auto_picks_fine_only_for_skewed_rounds() {
        let exec = Executor::shared(4);
        let len = 1 << 16;
        // Dense round (everything active): coarse split.
        assert_eq!(exec.round_bounds_auto(len, len), exec.round_bounds(len));
        assert_eq!(
            exec.round_bounds_auto(len, len / 2),
            exec.round_bounds(len),
            "exactly half active is still dense"
        );
        // Skewed round (few active): fine split, more chunks than threads.
        let fine = exec.round_bounds_auto(len, len / 4);
        assert_eq!(fine, exec.round_bounds_fine(len));
        assert!(fine.len() > exec.threads());
        // Ineligible lengths collapse to one chunk in every mode.
        assert_eq!(exec.round_bounds_auto(100, 0), vec![0..100]);
        assert_eq!(Executor::sequential().round_bounds_fine(100), vec![0..100]);
    }

    #[test]
    fn donation_rounds_merge_in_chunk_order_and_match_coarse() {
        // More chunks than threads: the claim counter hands trailing
        // chunks to whichever participant frees up first (donation). The
        // per-chunk results still land in chunk-order slots, so the merged
        // output is bit-identical to the coarse split's.
        let exec = Executor::new(2);
        let len = 64 * MIN_FINE_CHUNK;
        let fine = exec.fine_chunk_bounds(len);
        assert!(fine.len() > exec.threads(), "donation must be exercised");
        let sum = |bounds: &[Range<usize>]| -> Vec<u64> {
            exec.run_chunks(bounds, |r| r.map(|i| i as u64 * 31).sum::<u64>())
        };
        for _ in 0..10 {
            let fine_parts = sum(&fine);
            // Chunk order: per-slot sums are increasing (earlier chunks
            // hold smaller indices), independent of completion order.
            assert!(fine_parts.windows(2).all(|w| w[0] < w[1]));
            let coarse_parts = sum(&exec.chunk_bounds(len));
            assert_eq!(
                fine_parts.iter().sum::<u64>(),
                coarse_parts.iter().sum::<u64>(),
                "fine and coarse splits reduce to identical totals"
            );
        }
    }

    #[test]
    fn task_bounds_has_no_min_chunk_floor() {
        // Coarse task lists split one-chunk-per-thread even when tiny —
        // the point is items that are each a big computation.
        for (len, t, expect) in [(64usize, 4usize, 4usize), (3, 8, 3), (1, 8, 1), (0, 4, 0)] {
            let b = task_bounds(len, t);
            assert_eq!(b.len(), expect, "len={len} t={t}");
            let covered: usize = b.iter().map(|r| r.len()).sum();
            assert_eq!(covered, len);
            if let (Some(max), Some(min)) = (
                b.iter().map(|r| r.len()).max(),
                b.iter().map(|r| r.len()).min(),
            ) {
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn run_chunks_merges_in_chunk_order() {
        let exec = Executor::new(4);
        let bounds = exec.chunk_bounds(10_000);
        let parts = exec.run_chunks(&bounds, |r| r.map(|i| i as u64).sum::<u64>());
        assert_eq!(parts.len(), 4);
        // Chunk order, not completion order: chunk 0's sum is the smallest.
        assert!(parts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(parts.iter().sum::<u64>(), 10_000 * 9_999 / 2);
    }

    #[test]
    fn for_each_chunk_mut_covers_disjointly() {
        let exec = Executor::new(8);
        let mut v = vec![0u32; 10_001];
        let bounds = exec.chunk_bounds(v.len());
        exec.for_each_chunk_mut(&mut v, &bounds, |ci, piece| {
            for slot in piece.iter_mut() {
                *slot += 1 + ci as u32;
            }
        });
        // Every slot written exactly once, chunk index recoverable.
        for (r, ci) in bounds.iter().zip(0u32..) {
            assert!(v[r.clone()].iter().all(|&x| x == 1 + ci));
        }
    }

    #[test]
    fn with_threads_scopes_and_restores() {
        let before = TLS_THREADS.with(|c| c.get());
        let inner = with_threads(3, || {
            assert_eq!(current_threads(), 3);
            assert_eq!(Executor::current().threads(), 3);
            with_threads(2, current_threads)
        });
        assert_eq!(inner, 2);
        // The scoped override is fully unwound (tested on the TLS cell
        // itself: the resolved count may race with other tests touching the
        // process-global setting).
        assert_eq!(TLS_THREADS.with(|c| c.get()), before);
        // Zero clamps to one rather than clearing mid-scope (the
        // Executor::new clamp rule).
        assert_eq!(with_threads(0, current_threads), 1);
    }

    #[test]
    fn zero_threads_clamp_to_one() {
        // The canonical clamp rule (documented on Executor::new): 0 is
        // never an error and never "unset" — it is sequential.
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(Executor::shared(0).threads(), 1);
        assert_eq!(with_threads(0, || Executor::current().threads()), 1);
    }

    #[test]
    fn shared_executors_are_cached() {
        let a = Executor::shared(3);
        let b = Executor::shared(3);
        assert!(Arc::ptr_eq(&a.core, &b.core), "one pool per count");
        let c = Executor::shared(5);
        assert!(!Arc::ptr_eq(&a.core, &c.core));
    }

    #[test]
    fn executor_is_send_sync_and_clone() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<Executor>();
    }

    // Under `seq-shim` everything runs on the calling thread, so the
    // nested-collapse flag is never set (nothing to collapse).
    #[cfg(not(feature = "seq-shim"))]
    #[test]
    fn nested_calls_collapse_to_sequential() {
        let exec = Executor::new(4);
        let bounds = exec.chunk_bounds(4 * MIN_CHUNK);
        assert_eq!(bounds.len(), 4);
        let inner = exec.clone();
        let nested = exec.run_chunks(&bounds, move |_| inner.effective_threads());
        // Inside a pool task (worker or the caller acting as one) the
        // executor reports a single effective thread, so nested primitives
        // cannot fan out (or deadlock on their own pool).
        assert_eq!(nested, vec![1, 1, 1, 1]);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let exec = Executor::new(4);
        let bounds = chunk_bounds(8_192, 4);
        for round in 0..3 {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                exec.run_chunks(&bounds, |r| {
                    assert!(r.start < 4_000, "deliberate test panic {round}");
                    0u8
                })
            }));
            assert!(caught.is_err(), "round {round} must propagate");
        }
        // The workers stayed parked (not dead, not deadlocked): a normal
        // round still completes on the same pool.
        let parts = exec.run_chunks(&bounds, |r| r.len() as u64);
        assert_eq!(parts.iter().sum::<u64>(), 8_192);
    }

    #[test]
    fn concurrent_dispatch_from_many_caller_threads() {
        // One executor, several caller threads issuing rounds at once:
        // the round lock serializes them, results stay correct.
        let exec = Executor::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let exec = exec.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        let bounds = exec.chunk_bounds(3 * MIN_CHUNK);
                        let parts = exec.run_chunks(&bounds, |r| r.map(|i| i as u64).sum::<u64>());
                        let total: u64 = parts.into_iter().sum();
                        let n = (3 * MIN_CHUNK) as u64;
                        assert_eq!(total, n * (n - 1) / 2);
                    }
                });
            }
        });
    }

    #[test]
    fn small_rounds_on_big_pools_enroll_few_workers() {
        // A 16-thread pool serving 2-chunk rounds: only one worker joins
        // the caller per round (the rest stay parked), and repeated rounds
        // stay correct. This is the many-core hot path: round width, not
        // pool size, bounds the per-round barrier.
        let exec = Executor::new(16);
        let bounds = chunk_bounds(2 * MIN_CHUNK, 16);
        assert_eq!(bounds.len(), 2, "MIN_CHUNK floors the chunk count");
        for _ in 0..50 {
            let parts = exec.run_chunks(&bounds, |r| r.map(|i| i as u64).sum::<u64>());
            let n = (2 * MIN_CHUNK) as u64;
            assert_eq!(parts.iter().sum::<u64>(), n * (n - 1) / 2);
        }
        // Wider rounds on the same pool still use it fully.
        let wide = chunk_bounds(16 * MIN_CHUNK, 16);
        assert_eq!(wide.len(), 16);
        let parts = exec.run_chunks(&wide, |r| r.len());
        assert_eq!(parts.iter().sum::<usize>(), 16 * MIN_CHUNK);
    }

    #[test]
    fn private_pool_shuts_down_on_drop() {
        let exec = Executor::new(3);
        let bounds = chunk_bounds(2 * MIN_CHUNK, 2);
        let _ = exec.run_chunks(&bounds, |r| r.len());
        drop(exec); // joins the workers; must not hang.
    }

    #[test]
    fn global_setting_applies_and_clears() {
        // Touch the global API on a throwaway value; TLS overrides win, so
        // scope the assertion with them removed.
        set_global_threads(5);
        let seen = TLS_THREADS.with(|c| c.get());
        if seen == 0 && !IN_POOL.with(|c| c.get()) {
            assert_eq!(current_threads(), 5);
        }
        set_global_threads(0);
    }
}
