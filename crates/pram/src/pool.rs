//! The deterministic chunked thread pool: real scoped-thread execution for
//! every `pram` primitive, with bit-identical results at any thread count.
//!
//! PR 1 shipped a sequential `rayon` shim (the build environment has no
//! registry access), which made every "parallel" primitive a plain loop.
//! This module replaces it with genuine multi-threaded execution built on
//! `std::thread::scope` — no external dependencies — while keeping the
//! repository's determinism contract (DESIGN.md §5) intact by construction:
//!
//! * **Fixed chunk boundaries.** [`chunk_bounds`] derives the work split
//!   purely from `(input length, thread count)`:
//!   `min(threads, len / MIN_CHUNK)` (at least one) contiguous chunks
//!   whose sizes differ by at most one, earlier chunks larger — the
//!   [`MIN_CHUNK`] floor keeps every spawned thread busy long enough to
//!   amortize its spawn cost. Nothing about the split depends on
//!   scheduling.
//! * **Merge in chunk order.** [`run_chunks`] collects per-chunk results
//!   into a `Vec` indexed by chunk, caller-side, in chunk order — never in
//!   completion order.
//! * **Order-independent reductions only.** Callers combine per-chunk
//!   results with associative, commutative operations over totally ordered
//!   keys (min with smallest-index tie-breaks, `u64` sums, `bool` any).
//!   Under that discipline the *values* are independent of the boundaries
//!   too, so outputs are bit-identical for any thread count — the property
//!   `tests/determinism.rs` pins for the full oracle pipeline.
//!
//! ## Thread-count resolution
//!
//! [`current_threads`] resolves, in priority order:
//!
//! 1. a scoped override installed by [`with_threads`] (thread-local —
//!    what `OracleBuilder::threads` wraps around each build/query, and
//!    what benches and the cross-thread-count tests use);
//! 2. the process-global count set by [`set_global_threads`] (an
//!    operator-level knob for embedding applications; nothing in this
//!    workspace calls it outside tests);
//! 3. the `PRAM_SSSP_THREADS` environment variable (a positive integer;
//!    `0`, empty, or unparsable values are ignored), read once per process;
//! 4. [`std::thread::available_parallelism`], the hardware default.
//!
//! Inside a pool worker the count is pinned to 1: nested primitives run
//! sequentially instead of spawning `t²` threads. (Results are unaffected —
//! see the contract above — only the schedule is.)
//!
//! ## The `seq-shim` feature
//!
//! With `--features seq-shim` the executors route through the sequential
//! `rayon` shim exactly as before this module existed, which keeps the shim
//! exercised and offers a zero-thread escape hatch (see `shims/README.md`).

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Inputs shorter than this run sequentially in every `prim` primitive;
/// inputs of **exactly** this length take the chunked parallel path.
///
/// This is the pool's documented, test-pinned threshold constant: the
/// boundary behavior (`len == PAR_THRESHOLD` ⇒ parallel) is asserted by
/// `prim`'s boundary tests and by the proptests straddling it, so changing
/// the value or the comparison direction fails loudly.
pub const PAR_THRESHOLD: usize = 4096;

/// No chunk is ever smaller than this (except when a single chunk covers
/// the whole input): spawning a scoped thread costs tens of microseconds,
/// so chunks must carry enough work to amortize it. With
/// `PAR_THRESHOLD = 4096` and `MIN_CHUNK = 2048`, the smallest parallel
/// input splits into exactly two chunks.
pub const MIN_CHUNK: usize = 2048;

/// Process-global thread count; `0` means "not set".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped override installed by [`with_threads`]; `0` means "not set".
    static TLS_THREADS: Cell<usize> = const { Cell::new(0) };
    /// True while this thread is executing a pool task (worker or the
    /// caller processing its own chunk): nested primitives go sequential.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// `PRAM_SSSP_THREADS`, parsed once per process. Invalid or zero ⇒ `None`.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PRAM_SSSP_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
    })
}

/// The thread count the next primitive call on this thread will use.
/// Resolution order: [`with_threads`] scope > [`set_global_threads`] >
/// `PRAM_SSSP_THREADS` > available parallelism. Always ≥ 1; exactly 1
/// inside a pool worker (nested parallelism collapses to sequential).
pub fn current_threads() -> usize {
    if IN_POOL.with(|c| c.get()) {
        return 1;
    }
    let tls = TLS_THREADS.with(|c| c.get());
    if tls > 0 {
        return tls;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Some(t) = env_threads() {
        return t;
    }
    // Cached: `available_parallelism` is a syscall, and this accessor sits
    // on the hot path of every primitive.
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Set the process-global thread count — an operator-level knob for
/// embedding applications (per-oracle pinning uses scoped
/// [`with_threads`] via `OracleBuilder::threads` instead). `0` clears the
/// setting, restoring the env-var/hardware default. Scoped
/// [`with_threads`] overrides still win.
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads, Ordering::Relaxed);
}

/// Run `f` with the thread count pinned to `threads.max(1)` on this thread
/// (and on the pool scopes it opens). Restores the previous override on
/// exit, including on panic — safe to nest.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            TLS_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = TLS_THREADS.with(|c| c.get());
    let _restore = Restore(prev);
    TLS_THREADS.with(|c| c.set(threads.max(1)));
    f()
}

/// True when a length-`len` input should take the chunked parallel path:
/// `len >= PAR_THRESHOLD` **and** more than one thread is available (which
/// is never the case inside a pool worker).
#[inline]
pub fn parallel_eligible(len: usize) -> bool {
    len >= PAR_THRESHOLD && current_threads() > 1
}

/// The deterministic chunking rule: split `0..len` into
/// `min(threads, len / MIN_CHUNK)` (at least 1) contiguous chunks whose
/// sizes differ by at most one, earlier chunks taking the remainder.
/// Depends on nothing but the two arguments — in particular, not on
/// scheduling — so the split is reproducible by construction.
pub fn chunk_bounds(len: usize, threads: usize) -> Vec<Range<usize>> {
    balanced_split(len, threads.max(1).min((len / MIN_CHUNK).max(1)))
}

/// `nchunks` balanced contiguous chunks of `0..len`, earlier chunks taking
/// the remainder (callers guarantee `1 ≤ nchunks ≤ len` unless `len == 0`).
fn balanced_split(len: usize, nchunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let base = len / nchunks;
    let rem = len % nchunks;
    let mut bounds = Vec::with_capacity(nchunks);
    let mut start = 0usize;
    for i in 0..nchunks {
        let size = base + usize::from(i < rem);
        bounds.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    bounds
}

/// Chunking for **coarse-grained task lists** — `len` items that are each
/// a substantial computation (e.g. one full Bellman–Ford exploration per
/// item), not array elements: `min(threads, len)` balanced contiguous
/// chunks with **no** [`MIN_CHUNK`] floor. Same determinism properties as
/// [`chunk_bounds`] (a pure function of the two arguments); pass the
/// result to [`run_chunks`].
pub fn task_bounds(len: usize, threads: usize) -> Vec<Range<usize>> {
    balanced_split(len, threads.max(1).min(len.max(1)))
}

/// Run `f` with this thread marked as a pool worker (nested primitives
/// collapse to sequential). Restores the flag on exit.
#[cfg_attr(feature = "seq-shim", allow(dead_code))]
fn as_worker<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_POOL.with(|c| c.set(self.0));
        }
    }
    let prev = IN_POOL.with(|c| c.get());
    let _restore = Restore(prev);
    IN_POOL.with(|c| c.set(true));
    f()
}

/// Execute `task` once per chunk and return the per-chunk results **in
/// chunk order**. Chunks `1..` run on freshly spawned scoped threads; the
/// calling thread processes chunk `0` concurrently. A panicking task
/// propagates to the caller.
///
/// With `--features seq-shim` this routes through the sequential `rayon`
/// shim instead (same results, no threads).
pub fn run_chunks<R: Send>(
    bounds: &[Range<usize>],
    task: impl Fn(Range<usize>) -> R + Sync,
) -> Vec<R> {
    #[cfg(feature = "seq-shim")]
    {
        use rayon::prelude::*;
        bounds.par_iter().cloned().map(task).collect()
    }
    #[cfg(not(feature = "seq-shim"))]
    {
        if bounds.len() <= 1 {
            return bounds.iter().cloned().map(task).collect();
        }
        std::thread::scope(|s| {
            let task = &task;
            let handles: Vec<_> = bounds[1..]
                .iter()
                .map(|r| {
                    let r = r.clone();
                    s.spawn(move || as_worker(|| task(r)))
                })
                .collect();
            let mut out = Vec::with_capacity(bounds.len());
            out.push(as_worker(|| task(bounds[0].clone())));
            for h in handles {
                match h.join() {
                    Ok(r) => out.push(r),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            out
        })
    }
}

/// Split `data` at `bounds` (which must partition `0..data.len()`, as
/// produced by [`chunk_bounds`]) and execute `task(chunk_index, chunk)`
/// for every chunk, chunks `1..` on scoped threads. Writes are disjoint by
/// construction, so no merge step exists and determinism is structural.
pub fn for_each_chunk_mut<T: Send>(
    data: &mut [T],
    bounds: &[Range<usize>],
    task: impl Fn(usize, &mut [T]) + Sync,
) {
    let mut pieces: Vec<(usize, &mut [T])> = Vec::with_capacity(bounds.len());
    let mut rest = data;
    let mut consumed = 0usize;
    for (ci, r) in bounds.iter().enumerate() {
        assert_eq!(r.start, consumed, "bounds must be contiguous from 0");
        let (piece, tail) = rest.split_at_mut(r.end - r.start);
        pieces.push((ci, piece));
        rest = tail;
        consumed = r.end;
    }
    assert!(rest.is_empty(), "bounds must cover the whole slice");
    #[cfg(feature = "seq-shim")]
    {
        use rayon::prelude::*;
        pieces
            .into_par_iter()
            .for_each(|(ci, piece)| task(ci, piece));
    }
    #[cfg(not(feature = "seq-shim"))]
    {
        if pieces.len() <= 1 {
            for (ci, piece) in pieces {
                task(ci, piece);
            }
            return;
        }
        std::thread::scope(|s| {
            let task = &task;
            let mut iter = pieces.into_iter();
            let first = iter.next().expect("at least one chunk");
            let handles: Vec<_> = iter
                .map(|(ci, piece)| s.spawn(move || as_worker(|| task(ci, piece))))
                .collect();
            as_worker(|| task(first.0, first.1));
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_pinned() {
        // The documented contract of the pool: 4096, and `len == threshold`
        // takes the parallel path (see `parallel_eligible`).
        assert_eq!(PAR_THRESHOLD, 4096);
        with_threads(4, || {
            assert!(!parallel_eligible(PAR_THRESHOLD - 1));
            assert!(parallel_eligible(PAR_THRESHOLD));
            assert!(parallel_eligible(PAR_THRESHOLD + 1));
        });
        // One thread ⇒ never parallel, whatever the length.
        with_threads(1, || assert!(!parallel_eligible(PAR_THRESHOLD)));
    }

    #[test]
    fn chunk_bounds_partition_and_balance() {
        for len in [0usize, 1, 2, 5, 4096, 4097, 10_000, 1 << 20] {
            for t in [1usize, 2, 3, 4, 8, 64] {
                let b = chunk_bounds(len, t);
                if len == 0 {
                    assert!(b.is_empty());
                    continue;
                }
                // The documented rule: min(threads, len / MIN_CHUNK), ≥ 1.
                assert_eq!(b.len(), t.min((len / MIN_CHUNK).max(1)), "len={len} t={t}");
                let mut next = 0usize;
                let mut sizes = Vec::new();
                for r in &b {
                    assert_eq!(r.start, next);
                    next = r.end;
                    sizes.push(r.len());
                }
                assert_eq!(next, len);
                let (max, min) = (sizes.iter().max().unwrap(), sizes.iter().min().unwrap());
                assert!(max - min <= 1, "len={len} t={t}");
                // Earlier chunks take the remainder, and no multi-chunk
                // split produces a sub-MIN_CHUNK chunk.
                assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
                if b.len() > 1 {
                    assert!(*min >= MIN_CHUNK, "len={len} t={t} min={min}");
                }
            }
        }
    }

    #[test]
    fn task_bounds_has_no_min_chunk_floor() {
        // Coarse task lists split one-chunk-per-thread even when tiny —
        // the point is items that are each a big computation.
        for (len, t, expect) in [(64usize, 4usize, 4usize), (3, 8, 3), (1, 8, 1), (0, 4, 0)] {
            let b = task_bounds(len, t);
            assert_eq!(b.len(), expect, "len={len} t={t}");
            let covered: usize = b.iter().map(|r| r.len()).sum();
            assert_eq!(covered, len);
            if let (Some(max), Some(min)) = (
                b.iter().map(|r| r.len()).max(),
                b.iter().map(|r| r.len()).min(),
            ) {
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn run_chunks_merges_in_chunk_order() {
        let bounds = chunk_bounds(10_000, 4);
        let parts = run_chunks(&bounds, |r| r.map(|i| i as u64).sum::<u64>());
        assert_eq!(parts.len(), 4);
        // Chunk order, not completion order: chunk 0's sum is the smallest.
        assert!(parts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(parts.iter().sum::<u64>(), 10_000 * 9_999 / 2);
    }

    #[test]
    fn for_each_chunk_mut_covers_disjointly() {
        let mut v = vec![0u32; 10_001];
        let bounds = chunk_bounds(v.len(), 8);
        for_each_chunk_mut(&mut v, &bounds, |ci, piece| {
            for slot in piece.iter_mut() {
                *slot += 1 + ci as u32;
            }
        });
        // Every slot written exactly once, chunk index recoverable.
        for (r, ci) in bounds.iter().zip(0u32..) {
            assert!(v[r.clone()].iter().all(|&x| x == 1 + ci));
        }
    }

    #[test]
    fn with_threads_scopes_and_restores() {
        let before = TLS_THREADS.with(|c| c.get());
        let inner = with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(2, current_threads)
        });
        assert_eq!(inner, 2);
        // The scoped override is fully unwound (tested on the TLS cell
        // itself: the resolved count may race with other tests touching the
        // process-global setting).
        assert_eq!(TLS_THREADS.with(|c| c.get()), before);
        // Zero clamps to one rather than clearing mid-scope.
        assert_eq!(with_threads(0, current_threads), 1);
    }

    // Under `seq-shim` no workers exist, so the nested-collapse flag is
    // never set (everything is sequential anyway).
    #[cfg(not(feature = "seq-shim"))]
    #[test]
    fn nested_calls_collapse_to_sequential() {
        with_threads(4, || {
            let bounds = chunk_bounds(4 * MIN_CHUNK, 4);
            assert_eq!(bounds.len(), 4);
            let nested = run_chunks(&bounds, |_| current_threads());
            // Inside a worker (or the caller acting as one) the pool reports
            // a single thread, so nested primitives cannot fan out.
            assert_eq!(nested, vec![1, 1, 1, 1]);
        });
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                let bounds = chunk_bounds(8_192, 4);
                run_chunks(&bounds, |r| {
                    assert!(r.start < 4_000, "deliberate test panic");
                    0u8
                })
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn global_setting_applies_and_clears() {
        // Touch the global API on a throwaway value; TLS overrides win, so
        // scope the assertion with them removed.
        set_global_threads(5);
        let seen = TLS_THREADS.with(|c| c.get());
        if seen == 0 && !IN_POOL.with(|c| c.get()) {
            assert_eq!(current_threads(), 5);
        }
        set_global_threads(0);
    }
}
