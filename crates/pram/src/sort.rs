//! Instrumented parallel sorting — the AKS-network stand-in.
//!
//! The paper sorts arrays in O(log n) PRAM depth by invoking the AKS sorting
//! network \[AKS83\] (Appendix A, Algorithm 3; §4.1's peeling sorts the global
//! array M). AKS is a purely theoretical device; every implementation-minded
//! treatment substitutes a practical sort and keeps the counted cost. We run
//! a *stable* chunked parallel merge sort on [`crate::pool`] (stability ⇒
//! output independent of thread count even with equal keys) and charge depth
//! `⌈log2 m⌉`, work `m·⌈log2 m⌉` on the [`Ledger`].
//!
//! Parallel scheme: the slice is split at the executor's deterministic chunk
//! boundaries, each chunk is stably sorted on its own pool worker, and a
//! final sequential stable pass merges the presorted runs (std's stable
//! sort is run-adaptive, so that pass costs the merge, not a full re-sort).
//! A stable comparison sort has a *unique* output, so the result is the
//! same as a fully sequential `sort_by` for every thread count.

use crate::pool::Executor;
use crate::Ledger;
use std::cmp::Ordering;

/// Inputs shorter than this sort sequentially (perf-book: avoid parallel
/// overhead on small inputs).
const PAR_SORT_THRESHOLD: usize = 1 << 13;

/// Sort `v` by `cmp`, charging the PRAM cost to `ledger`.
///
/// `cmp` must be a total order. The sort is stable, so the result is uniquely
/// determined by the input even when `cmp` has ties.
pub fn sort_by<T: Send>(
    exec: &Executor,
    v: &mut [T],
    ledger: &mut Ledger,
    cmp: impl Fn(&T, &T) -> Ordering + Sync,
) {
    ledger.sort(v.len() as u64);
    if v.len() < PAR_SORT_THRESHOLD || exec.effective_threads() <= 1 {
        v.sort_by(|a, b| cmp(a, b));
        return;
    }
    let bounds = exec.chunk_bounds(v.len());
    exec.for_each_chunk_mut(v, &bounds, |_, chunk| chunk.sort_by(|a, b| cmp(a, b)));
    v.sort_by(|a, b| cmp(a, b));
}

/// Sort by a key function (stable), charging the PRAM cost to `ledger`.
pub fn sort_by_key<T: Send, K: Ord>(
    exec: &Executor,
    v: &mut [T],
    ledger: &mut Ledger,
    key: impl Fn(&T) -> K + Sync,
) {
    ledger.sort(v.len() as u64);
    if v.len() < PAR_SORT_THRESHOLD || exec.effective_threads() <= 1 {
        v.sort_by_key(|t| key(t));
        return;
    }
    let bounds = exec.chunk_bounds(v.len());
    exec.for_each_chunk_mut(v, &bounds, |_, chunk| chunk.sort_by_key(|t| key(t)));
    v.sort_by_key(|t| key(t));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_charges() {
        let mut v = vec![5, 3, 9, 1, 1, 7];
        let mut l = Ledger::new();
        sort_by(&Executor::sequential(), &mut v, &mut l, |a, b| a.cmp(b));
        assert_eq!(v, vec![1, 1, 3, 5, 7, 9]);
        assert_eq!(l.depth(), 3); // ceil(log2 6)
        assert_eq!(l.work(), 18);
    }

    #[test]
    fn large_sort_matches_sequential() {
        let mut v: Vec<u64> = (0..50_000).map(|i| (i * 2654435761u64) % 10_007).collect();
        let mut expect = v.clone();
        expect.sort();
        let mut l = Ledger::new();
        sort_by_key(&Executor::shared(4), &mut v, &mut l, |&x| x);
        assert_eq!(v, expect);
    }

    #[test]
    fn stability_makes_ties_deterministic() {
        // Pairs sharing a key must keep input order.
        let mut v: Vec<(u32, u32)> = (0..20_000).map(|i| (i % 5, i)).collect();
        let mut l = Ledger::new();
        sort_by_key(&Executor::shared(8), &mut v, &mut l, |&(k, _)| k);
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn identical_across_thread_counts_with_ties() {
        let mk = || -> Vec<(u32, u32)> {
            (0..30_000u32)
                .map(|i| ((i.wrapping_mul(2654435761)) % 7, i))
                .collect()
        };
        let mut baseline = mk();
        let mut l1 = Ledger::new();
        sort_by(&Executor::sequential(), &mut baseline, &mut l1, |a, b| {
            a.0.cmp(&b.0)
        });
        for threads in [2usize, 3, 4, 8] {
            let mut v = mk();
            let mut l = Ledger::new();
            sort_by(&Executor::shared(threads), &mut v, &mut l, |a, b| {
                a.0.cmp(&b.0)
            });
            assert_eq!(v, baseline, "threads={threads}");
            assert_eq!(l, l1);
        }
    }
}
