//! Construction-phase markers — the hook the memory audit hangs off.
//!
//! The construction path (hopset scales, overlay CSR blocks, oracle
//! assembly) lives in crates that must not depend on the experiment
//! harness, yet the harness wants per-phase accounting (peak heap bytes,
//! allocation counts — ISSUE 9 / ROADMAP item 3). This module is the
//! seam: algorithm code brackets its phases with [`PhaseScope`], and a
//! process-wide hook — installed once, by the harness — observes the
//! enter/exit events. With no hook installed a scope costs one relaxed
//! atomic load, so production query paths pay nothing.
//!
//! The hook is deliberately *not* part of the determinism contract
//! surface: it observes phase boundaries, it cannot change chunking,
//! scheduling, or any computed value.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A phase boundary event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseEvent {
    /// The named phase begins.
    Enter,
    /// The named phase ends (scopes unwind in LIFO order).
    Exit,
}

/// The observer signature: called on every [`PhaseScope`] enter and exit.
/// Must be cheap and must not panic (it runs inside construction loops).
pub type PhaseHook = fn(PhaseEvent, &'static str);

/// The installed hook, stored as a raw fn pointer (0 = none). A fn pointer
/// is never deallocated, so a relaxed load is always safe to call through.
static HOOK: AtomicUsize = AtomicUsize::new(0);

/// Install the process-wide phase hook. The first call wins (returns
/// `true`); later calls are ignored (returns `false`) so two experiment
/// harnesses cannot interleave observers mid-run.
pub fn install_phase_hook(hook: PhaseHook) -> bool {
    HOOK.compare_exchange(0, hook as usize, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
}

/// True if a hook is installed (diagnostics only).
pub fn phase_hook_installed() -> bool {
    HOOK.load(Ordering::Relaxed) != 0
}

#[inline]
fn emit(ev: PhaseEvent, name: &'static str) {
    let raw = HOOK.load(Ordering::Relaxed);
    if raw != 0 {
        // SAFETY: `raw` was stored by `install_phase_hook` from a valid
        // `PhaseHook` fn pointer; fn pointers are 'static and non-null
        // (the 0 sentinel is excluded by the branch above).
        let hook: PhaseHook = unsafe { std::mem::transmute::<usize, PhaseHook>(raw) };
        hook(ev, name);
    }
}

/// RAII marker for one construction phase: emits [`PhaseEvent::Enter`] on
/// creation and [`PhaseEvent::Exit`] on drop. Scopes nest; observers see
/// strictly LIFO enter/exit pairs per thread.
#[must_use = "a phase scope marks a region; binding it to `_` drops it immediately"]
pub struct PhaseScope {
    name: &'static str,
}

impl PhaseScope {
    /// Enter the named phase.
    pub fn enter(name: &'static str) -> PhaseScope {
        emit(PhaseEvent::Enter, name);
        PhaseScope { name }
    }
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        emit(PhaseEvent::Exit, self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The hook is process-global and first-install-wins, so a single test
    // exercises install + delivery + LIFO nesting (parallel test threads
    // would otherwise race on who installs).
    static SEEN: AtomicUsize = AtomicUsize::new(0);

    fn test_hook(ev: PhaseEvent, name: &'static str) {
        // Encode a tiny trace: 2 bits per event, enters odd, exits even.
        let code = match (ev, name) {
            (PhaseEvent::Enter, "outer") => 1,
            (PhaseEvent::Enter, "inner") => 3,
            (PhaseEvent::Exit, "inner") => 4,
            (PhaseEvent::Exit, "outer") => 2,
            _ => 7,
        };
        SEEN.fetch_add(code, Ordering::Relaxed);
    }

    #[test]
    fn hook_sees_lifo_scopes_and_second_install_loses() {
        // Scopes are inert before installation.
        {
            let _p = PhaseScope::enter("outer");
        }
        assert_eq!(SEEN.load(Ordering::Relaxed), 0);

        assert!(install_phase_hook(test_hook));
        assert!(phase_hook_installed());
        assert!(!install_phase_hook(test_hook), "second install must lose");

        {
            let _o = PhaseScope::enter("outer");
            let _i = PhaseScope::enter("inner");
        }
        // 1 + 3 + 4 + 2: both scopes entered and exited exactly once.
        assert_eq!(SEEN.load(Ordering::Relaxed), 10);
    }
}
