//! Prefix sums (scan), the workhorse for PRAM array compaction.
//!
//! The Klein–Sairam reduction (Appendix C) is described in the original as
//! "combining parallel prefix computation with the connected components
//! algorithm of Shiloach and Vishkin"; this module supplies the prefix part.
//! Charged at depth `⌈log2 m⌉`, work `m`.

use crate::Ledger;
use rayon::prelude::*;

/// Exclusive prefix sum: `out[i] = Σ_{j<i} xs[j]`, plus the grand total.
///
/// Parallel three-phase scan (chunk sums → sequential scan of chunk sums →
/// chunk-local rescan); deterministic because addition over `u64` here is
/// associative and chunk boundaries are fixed by input length, not thread
/// scheduling.
pub fn exclusive_prefix_sum(xs: &[u64], ledger: &mut Ledger) -> (Vec<u64>, u64) {
    ledger.scan(xs.len() as u64);
    const CHUNK: usize = 1 << 14;
    if xs.len() <= CHUNK {
        let mut out = Vec::with_capacity(xs.len());
        let mut acc = 0u64;
        for &x in xs {
            out.push(acc);
            acc += x;
        }
        return (out, acc);
    }
    let chunk_sums: Vec<u64> = xs.par_chunks(CHUNK).map(|c| c.iter().sum()).collect();
    let mut chunk_off = Vec::with_capacity(chunk_sums.len());
    let mut acc = 0u64;
    for &s in &chunk_sums {
        chunk_off.push(acc);
        acc += s;
    }
    let mut out = vec![0u64; xs.len()];
    out.par_chunks_mut(CHUNK)
        .zip(xs.par_chunks(CHUNK))
        .zip(chunk_off.par_iter())
        .for_each(|((o, c), &base)| {
            let mut a = base;
            for (slot, &x) in o.iter_mut().zip(c) {
                *slot = a;
                a += x;
            }
        });
    (out, acc)
}

/// Stable parallel compaction: keep the elements where `keep` is true,
/// preserving order. Built on the scan (PRAM-style array packing).
pub fn compact<T: Clone + Send + Sync>(items: &[T], keep: &[bool], ledger: &mut Ledger) -> Vec<T> {
    assert_eq!(items.len(), keep.len());
    let flags: Vec<u64> = keep.iter().map(|&k| k as u64).collect();
    let (offsets, total) = exclusive_prefix_sum(&flags, ledger);
    ledger.step(items.len() as u64);
    let mut out: Vec<Option<T>> = vec![None; total as usize];
    // Sequential placement is already O(m); parallel placement would need
    // unsafe writes. Keep it simple: the ledger, not the wall clock, carries
    // the PRAM claim here.
    for i in 0..items.len() {
        if keep[i] {
            out[offsets[i] as usize] = Some(items[i].clone());
        }
    }
    out.into_iter()
        .map(|x| x.expect("compact slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_prefix_sum() {
        let mut l = Ledger::new();
        let (out, total) = exclusive_prefix_sum(&[3, 1, 4, 1, 5], &mut l);
        assert_eq!(out, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
        assert!(l.depth() > 0);
    }

    #[test]
    fn empty_prefix_sum() {
        let mut l = Ledger::new();
        let (out, total) = exclusive_prefix_sum(&[], &mut l);
        assert!(out.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn large_prefix_sum_matches_sequential() {
        let xs: Vec<u64> = (0..100_000).map(|i| (i * 7 + 3) % 11).collect();
        let mut l = Ledger::new();
        let (out, total) = exclusive_prefix_sum(&xs, &mut l);
        let mut acc = 0u64;
        for i in 0..xs.len() {
            assert_eq!(out[i], acc, "index {i}");
            acc += xs[i];
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn compact_keeps_order() {
        let items: Vec<u32> = (0..1000).collect();
        let keep: Vec<bool> = items.iter().map(|&x| x % 3 == 0).collect();
        let mut l = Ledger::new();
        let out = compact(&items, &keep, &mut l);
        let expect: Vec<u32> = items.iter().copied().filter(|&x| x % 3 == 0).collect();
        assert_eq!(out, expect);
    }
}
