//! Prefix sums (scan), the workhorse for PRAM array compaction.
//!
//! The Klein–Sairam reduction (Appendix C) is described in the original as
//! "combining parallel prefix computation with the connected components
//! algorithm of Shiloach and Vishkin"; this module supplies the prefix part.
//! Charged at depth `⌈log2 m⌉`, work `m`.

use crate::pool::Executor;
use crate::Ledger;

/// Exclusive prefix sum: `out[i] = Σ_{j<i} xs[j]`, plus the grand total.
///
/// Parallel three-phase scan on the persistent pool (per-chunk sums →
/// sequential scan of the chunk sums → chunk-local rescan into disjoint
/// output chunks); deterministic because addition over `u64` is associative
/// — the chunk boundaries ([`Executor::chunk_bounds`]) depend only on input
/// length and the executor's thread count, and the *values* don't depend on
/// them at all.
pub fn exclusive_prefix_sum(exec: &Executor, xs: &[u64], ledger: &mut Ledger) -> (Vec<u64>, u64) {
    ledger.scan(xs.len() as u64);
    if !exec.parallel_eligible(xs.len()) {
        let mut out = Vec::with_capacity(xs.len());
        let mut acc = 0u64;
        for &x in xs {
            out.push(acc);
            acc += x;
        }
        return (out, acc);
    }
    let bounds = exec.chunk_bounds(xs.len());
    let chunk_sums = exec.run_chunks(&bounds, |r| xs[r].iter().sum::<u64>());
    let mut chunk_off = Vec::with_capacity(chunk_sums.len());
    let mut acc = 0u64;
    for &s in &chunk_sums {
        chunk_off.push(acc);
        acc += s;
    }
    let mut out = vec![0u64; xs.len()];
    let starts: Vec<usize> = bounds.iter().map(|r| r.start).collect();
    exec.for_each_chunk_mut(&mut out, &bounds, |ci, o| {
        let mut a = chunk_off[ci];
        for (slot, &x) in o.iter_mut().zip(&xs[starts[ci]..]) {
            *slot = a;
            a += x;
        }
    });
    (out, acc)
}

/// Stable parallel compaction: keep the elements where `keep` is true,
/// preserving order. Built on the scan (PRAM-style array packing).
pub fn compact<T: Clone + Send + Sync>(
    exec: &Executor,
    items: &[T],
    keep: &[bool],
    ledger: &mut Ledger,
) -> Vec<T> {
    assert_eq!(items.len(), keep.len());
    let flags: Vec<u64> = keep.iter().map(|&k| k as u64).collect();
    let (offsets, total) = exclusive_prefix_sum(exec, &flags, ledger);
    ledger.step(items.len() as u64);
    let mut out: Vec<Option<T>> = vec![None; total as usize];
    // Sequential placement is already O(m); parallel placement would need
    // unsafe writes. Keep it simple: the ledger, not the wall clock, carries
    // the PRAM claim here.
    for i in 0..items.len() {
        if keep[i] {
            out[offsets[i] as usize] = Some(items[i].clone());
        }
    }
    out.into_iter()
        .map(|x| x.expect("compact slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_prefix_sum() {
        let mut l = Ledger::new();
        let (out, total) = exclusive_prefix_sum(&Executor::sequential(), &[3, 1, 4, 1, 5], &mut l);
        assert_eq!(out, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
        assert!(l.depth() > 0);
    }

    #[test]
    fn empty_prefix_sum() {
        let mut l = Ledger::new();
        let (out, total) = exclusive_prefix_sum(&Executor::sequential(), &[], &mut l);
        assert!(out.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn large_prefix_sum_matches_sequential() {
        let xs: Vec<u64> = (0..100_000).map(|i| (i * 7 + 3) % 11).collect();
        let mut l = Ledger::new();
        let (out, total) = exclusive_prefix_sum(&Executor::shared(4), &xs, &mut l);
        let mut acc = 0u64;
        for i in 0..xs.len() {
            assert_eq!(out[i], acc, "index {i}");
            acc += xs[i];
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn identical_across_thread_counts() {
        let xs: Vec<u64> = (0..20_001).map(|i| (i * 2654435761) % 1009).collect();
        let mut l1 = Ledger::new();
        let baseline = exclusive_prefix_sum(&Executor::sequential(), &xs, &mut l1);
        for threads in [2usize, 3, 4, 8] {
            let mut l = Ledger::new();
            let got = exclusive_prefix_sum(&Executor::shared(threads), &xs, &mut l);
            assert_eq!(got, baseline, "threads={threads}");
            assert_eq!(l, l1, "ledger threads={threads}");
        }
    }

    #[test]
    fn compact_keeps_order() {
        let items: Vec<u32> = (0..1000).collect();
        let keep: Vec<bool> = items.iter().map(|&x| x % 3 == 0).collect();
        let mut l = Ledger::new();
        let out = compact(&Executor::shared(4), &items, &keep, &mut l);
        let expect: Vec<u32> = items.iter().copied().filter(|&x| x % 3 == 0).collect();
        assert_eq!(out, expect);
    }
}
