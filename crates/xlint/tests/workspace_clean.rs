//! The workspace must satisfy its own determinism contract: this is the
//! same scan `repro lint` gates CI on, run from the test suite so plain
//! `cargo test` catches a violation before CI does.

use std::path::Path;
use std::time::Instant;

#[test]
fn workspace_satisfies_its_own_contract() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let t0 = Instant::now();
    let report = xlint::lint_workspace(&root).expect("workspace tree must be walkable");
    let elapsed = t0.elapsed();

    // Sanity: the walk really found the workspace (every crate root).
    for expected in [
        "src/lib.rs",
        "crates/pram/src/pool.rs",
        "crates/hopset/src/lib.rs",
        "crates/pgraph/src/lib.rs",
        "crates/sssp/src/lib.rs",
        "crates/xbench/src/lib.rs",
        "crates/xlint/src/lib.rs",
    ] {
        assert!(
            report.files.iter().any(|f| f == expected),
            "scan missed {expected}; scanned: {:?}",
            report.files
        );
    }
    // ...and skipped what it must never scan.
    assert!(
        !report
            .files
            .iter()
            .any(|f| f.contains("shims/") || f.contains("fixtures/") || f.contains("target/")),
        "scan leaked into a skipped tree: {:?}",
        report.files
    );

    assert!(
        report.is_clean(),
        "determinism-contract violations in the workspace:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );

    // The acceptance budget: a gate nobody ever waits on.
    assert!(elapsed.as_secs_f64() < 2.0, "lint took {elapsed:?}");
}
