// Bad: an unsafe block with no justification anywhere nearby (D4).
fn write_zero(p: *mut u8) {
    unsafe { *p = 0 };
}
