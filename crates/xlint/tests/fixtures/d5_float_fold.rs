// Bad: bare f64 reductions — the result depends on chunk boundaries (D5).
fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

fn total_by_fold(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |a, b| a + b)
}
