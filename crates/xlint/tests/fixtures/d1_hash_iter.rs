// Bad: iterates a HashMap, so hash order leaks into the output (D1).
use std::collections::HashMap;

fn degree_histogram(deg: &HashMap<u32, u32>) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (k, v) in deg.iter() {
        out.push((*k, *v));
    }
    out
}
