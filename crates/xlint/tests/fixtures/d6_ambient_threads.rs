// Bad: reads the ambient process executor at execution time (D6).
fn run_round() -> usize {
    let exec = Executor::current();
    exec.threads()
}
