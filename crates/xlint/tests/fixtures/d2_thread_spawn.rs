// Bad: hand-rolled parallelism outside the pram::pool runtime (D2).
fn relax_in_background(n: usize) -> usize {
    let h = std::thread::spawn(move || n * 2);
    h.join().unwrap()
}
