// Bad: schedule-visible timing inside an algorithm crate (D3).
fn timed_round() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}
