// Every would-be diagnostic below carries a well-formed escape hatch, so
// this fixture must lint clean.

fn boundary() -> usize {
    // xlint: allow(ambient-threads, compat shim resolves the executor once at entry)
    let exec = Executor::current();
    exec.threads()
}

fn timed() {
    let _ = std::time::Instant::now(); // xlint: allow(wall-clock, same-line escape-hatch form)
}
