// Each annotation below is broken in a different way; every one is an
// A0/malformed-allow error.

// xlint: allow(ambient-threads)
fn missing_reason() {}

// xlint: allow(no-such-rule, reason text)
fn unknown_slug() {}

// xlint: allow(wall-clock, )
fn empty_reason() {}

// xlint: deny(wall-clock, nope)
fn wrong_verb() {}
