//! Self-test corpus: every rule must fire on its deliberately-bad fixture
//! (linted under the strictest scope, an algorithm crate's `src/` tree),
//! every well-formed escape hatch must suppress, and every malformed one
//! must be an error. The fixture files live under `tests/fixtures/`,
//! which [`xlint::lint_workspace`] skips — the corpus can never dirty the
//! workspace gate that `repro lint` enforces.

use xlint::lint_source;

fn hits(name: &str, src: &str) -> Vec<(usize, &'static str)> {
    lint_source(&format!("crates/hopset/src/{name}"), src)
        .into_iter()
        .map(|d| (d.line, d.rule.id()))
        .collect()
}

#[test]
fn d1_hash_iteration_fires() {
    let src = include_str!("fixtures/d1_hash_iter.rs");
    assert_eq!(hits("d1_hash_iter.rs", src), vec![(6, "D1")]);
}

#[test]
fn d2_thread_spawn_fires() {
    let src = include_str!("fixtures/d2_thread_spawn.rs");
    assert_eq!(hits("d2_thread_spawn.rs", src), vec![(3, "D2")]);
}

#[test]
fn d3_wall_clock_fires() {
    let src = include_str!("fixtures/d3_wall_clock.rs");
    assert_eq!(hits("d3_wall_clock.rs", src), vec![(3, "D3")]);
}

#[test]
fn d4_undocumented_unsafe_fires() {
    let src = include_str!("fixtures/d4_undocumented_unsafe.rs");
    assert_eq!(hits("d4_undocumented_unsafe.rs", src), vec![(3, "D4")]);
}

#[test]
fn d5_float_fold_fires_per_reduction() {
    let src = include_str!("fixtures/d5_float_fold.rs");
    assert_eq!(hits("d5_float_fold.rs", src), vec![(3, "D5"), (7, "D5")]);
}

#[test]
fn d6_ambient_threads_fires() {
    let src = include_str!("fixtures/d6_ambient_threads.rs");
    assert_eq!(hits("d6_ambient_threads.rs", src), vec![(3, "D6")]);
}

#[test]
fn well_formed_allows_suppress_everything() {
    let src = include_str!("fixtures/allow_clean.rs");
    assert_eq!(hits("allow_clean.rs", src), vec![]);
}

#[test]
fn malformed_allows_each_report_a0() {
    let src = include_str!("fixtures/allow_malformed.rs");
    assert_eq!(
        hits("allow_malformed.rs", src),
        vec![(4, "A0"), (7, "A0"), (10, "A0"), (13, "A0")]
    );
}

#[test]
fn fixtures_are_scope_sensitive() {
    // The same sources linted as harness/test code: only D4 survives.
    let spawn = include_str!("fixtures/d2_thread_spawn.rs");
    assert_eq!(lint_source("crates/xbench/src/load.rs", spawn), vec![]);
    let unsafe_src = include_str!("fixtures/d4_undocumented_unsafe.rs");
    assert_eq!(
        lint_source("crates/xbench/src/raw.rs", unsafe_src)
            .iter()
            .map(|d| d.rule.id())
            .collect::<Vec<_>>(),
        vec!["D4"]
    );
}

#[test]
fn diagnostics_render_rustc_style() {
    let src = include_str!("fixtures/d2_thread_spawn.rs");
    let d = lint_source("crates/hopset/src/d2_thread_spawn.rs", src);
    let rendered = d[0].to_string();
    assert!(
        rendered.starts_with("error[D2/thread-spawn]:"),
        "{rendered}"
    );
    assert!(
        rendered.contains("--> crates/hopset/src/d2_thread_spawn.rs:3"),
        "{rendered}"
    );
    assert!(rendered.contains("= note:"), "{rendered}");
}
