//! The determinism-contract rules (DESIGN.md §10) and the line-aware
//! engine that applies them to one scrubbed source file.
//!
//! Every rule is named, numbered, and carries an escape hatch: a
//! `// xlint: allow(<slug>, <reason>)` annotation on the offending line
//! (or on its own line directly above) suppresses the diagnostic — the
//! reason is mandatory, and a malformed annotation is itself an error.

use crate::lexer::{scrub, ScrubbedLine};
use std::fmt;

/// How many lines above an `unsafe` token the engine searches for a
/// `// SAFETY:` comment (D4). Wide enough for a multi-line statement
/// whose justification sits above the statement head; narrow enough that
/// one comment cannot silently cover an unrelated site.
const SAFETY_LOOKBACK: usize = 12;

/// A named determinism-contract rule. The `D<n>` ids match DESIGN.md §10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1: no `HashMap`/`HashSet` *iteration* in algorithm crates.
    HashIter,
    /// D2: no thread spawning outside `pram::pool` and `xbench`.
    ThreadSpawn,
    /// D3: no wall-clock reads in algorithm crates.
    WallClock,
    /// D4: every `unsafe` must sit under a `// SAFETY:` comment.
    UndocumentedUnsafe,
    /// D5: no bare floating-point `sum`/`fold` reductions in algorithm
    /// crates (outside the pool's order-fixed merge primitives).
    FloatFold,
    /// D6: no ambient thread-count/environment reads in library crates.
    AmbientThreads,
    /// A0: an `xlint:` annotation that does not parse, names an unknown
    /// rule, or omits the reason.
    MalformedAllow,
}

/// Every real rule, in id order (excludes [`Rule::MalformedAllow`], which
/// is annotation hygiene rather than a contract rule).
pub const ALL_RULES: [Rule; 6] = [
    Rule::HashIter,
    Rule::ThreadSpawn,
    Rule::WallClock,
    Rule::UndocumentedUnsafe,
    Rule::FloatFold,
    Rule::AmbientThreads,
];

impl Rule {
    /// The `D<n>` id used in diagnostics and the DESIGN.md §10 table.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashIter => "D1",
            Rule::ThreadSpawn => "D2",
            Rule::WallClock => "D3",
            Rule::UndocumentedUnsafe => "D4",
            Rule::FloatFold => "D5",
            Rule::AmbientThreads => "D6",
            Rule::MalformedAllow => "A0",
        }
    }

    /// The slug accepted by `// xlint: allow(<slug>, <reason>)`.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::WallClock => "wall-clock",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::FloatFold => "float-fold",
            Rule::AmbientThreads => "ambient-threads",
            Rule::MalformedAllow => "malformed-allow",
        }
    }

    fn from_slug(slug: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.slug() == slug)
    }

    /// One-line rationale, shown with every diagnostic.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::HashIter => {
                "hash iteration order is nondeterministic; iterate a sorted \
                 structure (BTreeMap/sorted Vec) instead — keyed lookup is fine"
            }
            Rule::ThreadSpawn => {
                "all parallelism must flow through pram::pool's deterministic \
                 chunked rounds (DESIGN.md \u{a7}5)"
            }
            Rule::WallClock => "algorithm crates must be schedule-blind; timing lives in xbench",
            Rule::UndocumentedUnsafe => {
                "every unsafe site carries a // SAFETY: comment stating the \
                 invariant that makes it sound"
            }
            Rule::FloatFold => {
                "f64 addition is non-associative, so a bare sum/fold leaks chunk \
                 boundaries into results; use the pool's order-fixed merges"
            }
            Rule::AmbientThreads => {
                "execution-time reads of ambient thread counts break the \
                 explicit-Executor contract (DESIGN.md \u{a7}5)"
            }
            Rule::MalformedAllow => {
                "xlint annotations are machine-read; the grammar is \
                 `xlint: allow(<slug>, <reason>)` with a non-empty reason"
            }
        }
    }
}

/// One finding: where, which rule, and what matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// What was found on the line.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "error[{}/{}]: {}",
            self.rule.id(),
            self.rule.slug(),
            self.message
        )?;
        writeln!(f, "  --> {}:{}", self.path, self.line)?;
        write!(f, "   = note: {}", self.rule.rationale())
    }
}

/// The rule scope a file falls into, derived from its workspace-relative
/// path. Rules D1/D3/D5/D6 apply to the four algorithm crates' library
/// code; D2 applies everywhere except the two sanctioned spawn sites;
/// D4 applies to every scanned file.
#[derive(Debug, Clone, Copy)]
struct Scope {
    /// `crates/{pram,hopset,pgraph,sssp}/src/**`.
    algo: bool,
    /// Anywhere under `crates/xbench/` (the measurement harness may
    /// spawn load-generator threads and read clocks).
    xbench: bool,
    /// `crates/pram/src/pool.rs` — defines the runtime, so it is the one
    /// library file allowed to spawn threads and read ambient knobs.
    pool: bool,
    /// `crates/pram/src/prim.rs` — the pool's order-fixed merge
    /// primitives (exempt from D5 so they can host the sanctioned
    /// reductions).
    merge_prims: bool,
    /// Integration tests / benches / examples: scheduling scaffolding is
    /// legitimate there (D2/D3/D5/D6 skip; D4 still applies).
    test_path: bool,
}

impl Scope {
    fn from_path(path: &str) -> Scope {
        let p = path.replace('\\', "/");
        let algo = ["pram", "hopset", "pgraph", "sssp"]
            .iter()
            .any(|c| p.starts_with(&format!("crates/{c}/src/")));
        Scope {
            algo,
            xbench: p.starts_with("crates/xbench/"),
            pool: p == "crates/pram/src/pool.rs",
            merge_prims: p == "crates/pram/src/prim.rs",
            test_path: ["/tests/", "/benches/", "/examples/"]
                .iter()
                .any(|d| p.contains(d))
                || p.starts_with("tests/")
                || p.starts_with("benches/")
                || p.starts_with("examples/"),
        }
    }
}

/// Lint one file's source. `rel_path` is the workspace-relative path and
/// selects which rules apply (see the scope table in the crate docs).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let lines = scrub(src);
    let scope = Scope::from_path(rel_path);
    let in_test = test_region_mask(&lines);
    let (allows, mut diags) = collect_allows(rel_path, &lines);

    let hash_idents = if scope.algo {
        collect_hash_idents(&lines)
    } else {
        Vec::new()
    };

    let mut emit = |line_no: usize, rule: Rule, message: String| {
        let allowed = allows
            .get(&line_no)
            .is_some_and(|slugs| slugs.iter().any(|s| s == rule.slug()));
        if !allowed {
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line: line_no + 1,
                rule,
                message,
            });
        }
    };

    for (i, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        let lib_code = !scope.test_path && !in_test[i];

        // D1 — hash iteration in algorithm crates.
        if scope.algo && lib_code {
            if let Some(m) = find_hash_iteration(code, &hash_idents) {
                emit(i, Rule::HashIter, m);
            }
        }

        // D2 — thread spawning outside pool/xbench.
        if !scope.pool && !scope.xbench && lib_code {
            for pat in ["thread::spawn", "thread::Builder", "thread::scope"] {
                if code.contains(pat) {
                    emit(
                        i,
                        Rule::ThreadSpawn,
                        format!("`{pat}` outside `pram::pool`/`xbench`"),
                    );
                }
            }
        }

        // D3 — wall-clock reads in algorithm crates.
        if scope.algo && lib_code {
            for pat in ["Instant", "SystemTime"] {
                if find_word(code, pat).is_some() {
                    emit(i, Rule::WallClock, format!("`{pat}` in an algorithm crate"));
                }
            }
        }

        // D4 — undocumented unsafe (all scanned files).
        if find_word(code, "unsafe").is_some() {
            let covered = lines[i.saturating_sub(SAFETY_LOOKBACK)..=i]
                .iter()
                .any(|l| l.comment.contains("SAFETY:"));
            if !covered {
                emit(
                    i,
                    Rule::UndocumentedUnsafe,
                    "`unsafe` with no `// SAFETY:` comment in the preceding lines".to_string(),
                );
            }
        }

        // D5 — bare floating-point reductions in algorithm crates.
        if scope.algo && lib_code && !scope.pool && !scope.merge_prims {
            if let Some(m) = find_float_fold(code) {
                emit(i, Rule::FloatFold, m);
            }
        }

        // D6 — ambient thread-count/env reads in library crates. Plain
        // `use` re-exports are declarations, not reads.
        if scope.algo && lib_code && !scope.pool {
            let t = code.trim_start();
            if !t.starts_with("use ") && !t.starts_with("pub use ") {
                for pat in [
                    "Executor::current",
                    "Executor::default",
                    "current_threads",
                    "with_threads",
                    "set_global_threads",
                    "env::var",
                ] {
                    if code.contains(pat) {
                        emit(
                            i,
                            Rule::AmbientThreads,
                            format!("ambient execution-state read `{pat}` in a library crate"),
                        );
                    }
                }
            }
        }
    }

    diags.sort_by_key(|a| (a.line, a.rule));
    diags
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

/// Parse every `xlint: allow(slug, reason)` annotation. Returns a map
/// from the line the annotation *applies to* (its own line if it shares
/// it with code, otherwise the next code-bearing line) to the allowed
/// slugs, plus diagnostics for malformed annotations.
#[allow(clippy::type_complexity)]
fn collect_allows(
    rel_path: &str,
    lines: &[ScrubbedLine],
) -> (
    std::collections::BTreeMap<usize, Vec<String>>,
    Vec<Diagnostic>,
) {
    let mut map: std::collections::BTreeMap<usize, Vec<String>> = Default::default();
    let mut diags = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        // An annotation is a comment that *starts with* `xlint:` (after
        // whitespace): `// xlint: allow(..)`. Mentions of the grammar
        // mid-prose (or in doc comments, whose text starts with `/` or
        // `!`) are not annotations.
        let Some(body) = line.comment.trim_start().strip_prefix("xlint:") else {
            continue;
        };
        let body = body.trim_start();
        let slug = match parse_allow(body) {
            Ok(slug) => slug,
            Err(why) => {
                diags.push(Diagnostic {
                    path: rel_path.to_string(),
                    line: i + 1,
                    rule: Rule::MalformedAllow,
                    message: why,
                });
                continue;
            }
        };
        // Attach: same line if it carries code, else the next code line.
        let target = if line.code.trim().is_empty() {
            lines[i + 1..]
                .iter()
                .position(|l| !l.code.trim().is_empty())
                .map(|off| i + 1 + off)
        } else {
            Some(i)
        };
        if let Some(t) = target {
            map.entry(t).or_default().push(slug);
        }
    }
    (map, diags)
}

/// Parse `allow(<slug>, <reason>)`; returns the slug or an error message.
fn parse_allow(body: &str) -> Result<String, String> {
    let Some(args) = body.strip_prefix("allow(") else {
        return Err("expected `allow(<slug>, <reason>)` after `xlint:`".to_string());
    };
    let Some(close) = args.find(')') else {
        return Err("unclosed `allow(` annotation".to_string());
    };
    let inner = &args[..close];
    let Some((slug, reason)) = inner.split_once(',') else {
        return Err(format!(
            "`allow({inner})` has no reason — the reason is mandatory"
        ));
    };
    let slug = slug.trim();
    if Rule::from_slug(slug).is_none() {
        let known: Vec<&str> = ALL_RULES.iter().map(|r| r.slug()).collect();
        return Err(format!(
            "unknown rule `{slug}` (known: {})",
            known.join(", ")
        ));
    }
    if reason.trim().is_empty() {
        return Err(format!("`allow({slug}, )` has an empty reason"));
    }
    Ok(slug.to_string())
}

// ---------------------------------------------------------------------------
// Test-region tracking
// ---------------------------------------------------------------------------

/// Mark the lines belonging to `#[cfg(test)]` / `#[test]` items: the
/// attribute line, any further attribute lines, and the item's whole
/// brace block. Determined purely from scrubbed code (brace counting),
/// so strings and comments cannot confuse it.
fn test_region_mask(lines: &[ScrubbedLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Depth at which an active test region ends, if any.
    let mut region_floor: Option<i64> = None;
    let mut pending_attr = false;
    for (i, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        let is_test_attr = code.contains("#[cfg(test)]")
            || code.contains("#[cfg(all(test")
            || code.contains("#[cfg(any(test")
            || code.contains("#[test]");

        if region_floor.is_none() {
            if is_test_attr {
                pending_attr = true;
            }
            if pending_attr {
                mask[i] = true;
                if code.contains('{') {
                    // The item body opens here; region lasts until depth
                    // returns to its pre-line value.
                    region_floor = Some(depth);
                    pending_attr = false;
                } else if code.contains(';') && !is_test_attr {
                    // Braceless item (e.g. `#[cfg(test)] mod tests;`).
                    pending_attr = false;
                }
            }
        } else {
            mask[i] = true;
        }

        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(floor) = region_floor {
            if depth <= floor {
                region_floor = None;
            }
        }
    }
    mask
}

// ---------------------------------------------------------------------------
// D1 helpers
// ---------------------------------------------------------------------------

/// Identifiers bound to a `HashMap`/`HashSet` anywhere in the file: `let`
/// bindings, fn parameters, and struct fields whose type names one.
fn collect_hash_idents(lines: &[ScrubbedLine]) -> Vec<String> {
    let mut idents: Vec<String> = Vec::new();
    for line in lines {
        let code = line.code.as_str();
        let has_hash = find_word(code, "HashMap").is_some() || find_word(code, "HashSet").is_some();
        if !has_hash {
            continue;
        }
        // `let [mut] name … = HashMap::…` / `let name: HashSet<…> = …`.
        if let Some(pos) = find_word(code, "let") {
            let rest = code[pos + 3..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            if let Some(name) = leading_ident(rest) {
                idents.push(name.to_string());
            }
        }
        // `name: [&[mut]] [path::]Hash{Map,Set}<…>` (params and fields).
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0usize;
            while let Some(off) = find_word(&code[from..], ty) {
                let pos = from + off;
                if let Some(name) = binding_before_type(&code[..pos]) {
                    idents.push(name);
                }
                from = pos + ty.len();
            }
        }
    }
    idents.sort();
    idents.dedup();
    idents
}

/// Given text ending just before a `HashMap`/`HashSet` token, walk back
/// over the type path / reference sigils to the `:` and return the bound
/// identifier, if the shape matches `name: &mut path::` etc.
fn binding_before_type(before: &str) -> Option<String> {
    let mut s = before.trim_end();
    // Strip path segments: `std::collections::`.
    while let Some(stripped) = s.strip_suffix("::") {
        let t = stripped.trim_end_matches(|c: char| c.is_alphanumeric() || c == '_');
        s = t;
    }
    let s = s.trim_end();
    let s = s.strip_suffix("mut").map(str::trim_end).unwrap_or(s);
    let s = s.trim_end_matches('&').trim_end();
    let s = s.strip_suffix(':')?;
    // Reject `::` (path, not a binding) — already stripped above, so a
    // remaining ':' means a second colon.
    if s.ends_with(':') {
        return None;
    }
    let s = s.trim_end();
    let name = trailing_ident(s)?;
    Some(name.to_string())
}

/// Detect iteration over any tracked hash identifier on one line, or
/// inline iteration over a constructed hash value.
fn find_hash_iteration(code: &str, idents: &[String]) -> Option<String> {
    const ITER_METHODS: [&str; 10] = [
        ".iter()",
        ".iter_mut()",
        ".into_iter()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_keys()",
        ".into_values()",
        ".drain(",
        ".retain(",
    ];
    for ident in idents {
        let mut from = 0usize;
        while let Some(off) = find_word(&code[from..], ident) {
            let pos = from + off;
            let after = &code[pos + ident.len()..];
            if let Some(m) = ITER_METHODS.iter().find(|m| after.starts_with(**m)) {
                return Some(format!("hash structure `{ident}` iterated via `{m}`"));
            }
            let before = code[..pos].trim_end();
            let for_loop = before.ends_with(" in")
                || before.ends_with(" in &")
                || before.ends_with(" in &mut")
                || before == "in";
            if for_loop {
                return Some(format!("hash structure `{ident}` iterated by a `for` loop"));
            }
            if before.ends_with(".extend(") || before.ends_with(".extend(&") {
                return Some(format!(
                    "hash structure `{ident}` drained into another collection via `.extend`"
                ));
            }
            from = pos + ident.len();
        }
    }
    // Inline: `for x in HashSet::from(…)` — no binding to track.
    if find_word(code, "for").is_some()
        && find_word(code, "in").is_some()
        && (find_word(code, "HashMap").is_some() || find_word(code, "HashSet").is_some())
    {
        return Some("`for` loop over an inline-constructed hash structure".to_string());
    }
    None
}

// ---------------------------------------------------------------------------
// D5 helper
// ---------------------------------------------------------------------------

/// Bare floating-point reductions: an explicit f32/f64 `sum`/`product`
/// turbofish, or a `fold` seeded with a float literal / float constant.
fn find_float_fold(code: &str) -> Option<String> {
    for pat in [
        "sum::<f64>",
        "sum::<f32>",
        "product::<f64>",
        "product::<f32>",
    ] {
        if code.contains(pat) {
            return Some(format!("floating-point reduction `{pat}`"));
        }
    }
    let mut from = 0usize;
    while let Some(off) = code[from..].find(".fold(") {
        let pos = from + off;
        let arg = code[pos + ".fold(".len()..].trim_start();
        let arg = arg.strip_prefix('-').unwrap_or(arg);
        if arg.starts_with("f64::") || arg.starts_with("f32::") || is_float_literal_head(arg) {
            return Some("`.fold` seeded with a floating-point accumulator".to_string());
        }
        from = pos + ".fold(".len();
    }
    None
}

/// Does `s` begin with a float literal (`0.0`, `1.5e3`, `0f64`, `2_f32`)?
fn is_float_literal_head(s: &str) -> bool {
    let digits = s.len()
        - s.trim_start_matches(|c: char| c.is_ascii_digit() || c == '_')
            .len();
    if digits == 0 {
        return false;
    }
    let rest = &s[digits..];
    rest.starts_with("f64") || rest.starts_with("f32") || {
        rest.starts_with('.') && rest[1..].starts_with(|c: char| c.is_ascii_digit())
    }
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// First occurrence of `word` in `code` with non-identifier characters
/// (or the text boundary) on both sides.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(off) = code[from..].find(word) {
        let pos = from + off;
        let left_ok = pos == 0 || !code[..pos].chars().next_back().is_some_and(is_ident_char);
        let right_ok = !code[pos + word.len()..]
            .chars()
            .next()
            .is_some_and(is_ident_char);
        if left_ok && right_ok {
            return Some(pos);
        }
        from = pos + word.len();
    }
    None
}

/// The identifier at the start of `s`, if any.
fn leading_ident(s: &str) -> Option<&str> {
    let end = s
        .char_indices()
        .find(|&(_, c)| !is_ident_char(c))
        .map_or(s.len(), |(i, _)| i);
    (end > 0 && !s.starts_with(|c: char| c.is_ascii_digit())).then(|| &s[..end])
}

/// The identifier at the end of `s`, if any.
fn trailing_ident(s: &str) -> Option<&str> {
    let start = s
        .char_indices()
        .rev()
        .take_while(|&(_, c)| is_ident_char(c))
        .last()
        .map(|(i, _)| i)?;
    let ident = &s[start..];
    (!ident.is_empty() && !ident.starts_with(|c: char| c.is_ascii_digit())).then_some(ident)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALGO: &str = "crates/hopset/src/somefile.rs";

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src)
            .into_iter()
            .map(|d| d.rule.id())
            .collect()
    }

    #[test]
    fn keyed_lookup_is_clean_but_iteration_is_not() {
        let keyed = "fn f() {\n    let mut m = std::collections::HashMap::new();\n    m.insert(1, 2);\n    let x = m[&1] + m.get(&2).unwrap();\n}\n";
        assert!(rules_hit(ALGO, keyed).is_empty());
        let iterated = "fn f() {\n    let mut m = std::collections::HashMap::new();\n    m.insert(1, 2);\n    for (k, v) in m.iter() { dbg(k, v); }\n}\n";
        assert_eq!(rules_hit(ALGO, iterated), vec!["D1"]);
    }

    #[test]
    fn for_loop_over_hash_param_is_flagged() {
        let src = "fn f(seen: &std::collections::HashSet<u32>) {\n    for v in seen { g(v); }\n}\n";
        assert_eq!(rules_hit(ALGO, src), vec!["D1"]);
        let contains_only =
            "fn f(seen: &std::collections::HashSet<u32>) {\n    if seen.contains(&3) { g(); }\n}\n";
        assert!(rules_hit(ALGO, contains_only).is_empty());
    }

    #[test]
    fn collect_into_hash_set_is_clean() {
        // The `.iter()` belongs to the slice, not the set: keyed use only.
        let src = "fn f(u: &[u32]) {\n    let in_u: std::collections::HashSet<u32> = u.iter().copied().collect();\n    let _ = in_u.contains(&1);\n}\n";
        assert!(rules_hit(ALGO, src).is_empty());
    }

    #[test]
    fn spawn_flagged_everywhere_but_pool_xbench_and_tests() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_hit(ALGO, src), vec!["D2"]);
        assert_eq!(rules_hit("src/lib.rs", src), vec!["D2"]);
        assert!(rules_hit("crates/pram/src/pool.rs", src).is_empty());
        assert!(rules_hit("crates/xbench/src/exp_serve.rs", src).is_empty());
        assert!(rules_hit("tests/serving.rs", src).is_empty());
        let in_test_mod =
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn f() { std::thread::spawn(|| {}); }\n}\n";
        assert!(rules_hit(ALGO, in_test_mod).is_empty());
    }

    #[test]
    fn code_after_test_mod_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::spawn(|| {}); }\n}\nfn g() { std::thread::spawn(|| {}); }\n";
        let d = lint_source(ALGO, src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn wall_clock_in_algo_crate() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(rules_hit(ALGO, src), vec!["D3"]);
        assert!(rules_hit("crates/xbench/src/table.rs", src).is_empty());
    }

    #[test]
    fn undocumented_unsafe_and_the_safety_escape() {
        let bad = "fn f(p: *mut u8) { unsafe { *p = 0 }; }\n";
        assert_eq!(rules_hit(ALGO, bad), vec!["D4"]);
        let good = "fn f(p: *mut u8) {\n    // SAFETY: p is valid for writes by contract.\n    unsafe { *p = 0 };\n}\n";
        assert!(rules_hit(ALGO, good).is_empty());
        // A SAFETY comment in a string must not count.
        let fake = "fn f(p: *mut u8) { let s = \"// SAFETY: no\"; unsafe { *p = 0 }; }\n";
        assert_eq!(rules_hit(ALGO, fake), vec!["D4"]);
    }

    #[test]
    fn float_folds() {
        assert_eq!(
            rules_hit(ALGO, "fn f(x: &[f64]) -> f64 { x.iter().sum::<f64>() }\n"),
            vec!["D5"]
        );
        assert_eq!(
            rules_hit(
                ALGO,
                "fn f(x: &[f64]) -> f64 { x.iter().fold(0.0, |a, b| a + b) }\n"
            ),
            vec!["D5"]
        );
        assert_eq!(
            rules_hit(
                ALGO,
                "fn f(x: &[f64]) -> f64 { x.iter().fold(f64::MIN, |a, &b| a.max(b)) }\n"
            ),
            vec!["D5"]
        );
        // Integer reductions are fine.
        assert!(rules_hit(ALGO, "fn f(x: &[u64]) -> u64 { x.iter().sum::<u64>() }\n").is_empty());
        assert!(rules_hit(
            ALGO,
            "fn f(x: &[u64]) -> u64 { x.iter().fold(0u64, |a, b| a + b) }\n"
        )
        .is_empty());
        // The pool's merge primitives host the sanctioned reductions.
        assert!(rules_hit(
            "crates/pram/src/prim.rs",
            "fn f(x: &[f64]) -> f64 { x.iter().sum::<f64>() }\n"
        )
        .is_empty());
    }

    #[test]
    fn ambient_reads() {
        let src = "fn f() { let e = Executor::current(); }\n";
        assert_eq!(rules_hit(ALGO, src), vec!["D6"]);
        assert!(rules_hit("crates/pram/src/pool.rs", src).is_empty());
        // Re-exports are declarations, not reads.
        assert!(rules_hit(ALGO, "pub use pool::{current_threads, with_threads};\n").is_empty());
        assert_eq!(
            rules_hit(ALGO, "fn f() { let v = std::env::var(\"X\"); }\n"),
            vec!["D6"]
        );
    }

    #[test]
    fn allow_annotations_suppress_with_reason() {
        let same_line = "fn f() { let e = Executor::current(); } // xlint: allow(ambient-threads, legacy wrapper)\n";
        assert!(rules_hit(ALGO, same_line).is_empty());
        let line_above = "fn f() {\n    // xlint: allow(ambient-threads, legacy wrapper)\n    let e = Executor::current();\n}\n";
        assert!(rules_hit(ALGO, line_above).is_empty());
        // Wrong slug does not suppress.
        let wrong = "fn f() {\n    // xlint: allow(hash-iter, wrong rule)\n    let e = Executor::current();\n}\n";
        assert_eq!(rules_hit(ALGO, wrong), vec!["D6"]);
    }

    #[test]
    fn malformed_allows_are_errors() {
        assert_eq!(
            rules_hit(ALGO, "// xlint: allow(ambient-threads)\nfn f() {}\n"),
            vec!["A0"]
        );
        assert_eq!(
            rules_hit(ALGO, "// xlint: allow(no-such-rule, reason)\nfn f() {}\n"),
            vec!["A0"]
        );
        assert_eq!(
            rules_hit(ALGO, "// xlint: allos(x, y)\nfn f() {}\n"),
            vec!["A0"]
        );
    }

    #[test]
    fn display_is_rustc_style() {
        let d = lint_source(ALGO, "fn f() { std::thread::spawn(|| {}); }\n");
        let s = d[0].to_string();
        assert!(s.starts_with("error[D2/thread-spawn]:"), "{s}");
        assert!(s.contains(&format!("--> {ALGO}:1")), "{s}");
    }
}
