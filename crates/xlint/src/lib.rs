#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # xlint — the determinism-contract static analyzer
//!
//! Elkin–Matar's headline guarantee is *determinism*: every output of the
//! reproduction is bit-identical at any thread count (DESIGN.md §5). That
//! contract used to be enforced only after the fact, by `to_bits`
//! equality suites. This crate enforces it *before* the fact: a
//! zero-dependency static-analysis pass (a minimal Rust surface lexer
//! plus a line-aware rule engine — no `syn`, the registry is
//! unreachable) that scans every workspace source file and reports
//! violations of six named rules (the full table with rationale and
//! escapes lives in DESIGN.md §10):
//!
//! | id | slug | scope | rule |
//! |----|------|-------|------|
//! | D1 | `hash-iter` | algorithm crates | no `HashMap`/`HashSet` *iteration* (keyed lookup is fine) |
//! | D2 | `thread-spawn` | everywhere but `pram::pool`, `xbench` | no thread spawning outside the deterministic runtime |
//! | D3 | `wall-clock` | algorithm crates | no `Instant`/`SystemTime` (timing lives in `xbench`) |
//! | D4 | `undocumented-unsafe` | every file | every `unsafe` carries a `// SAFETY:` comment |
//! | D5 | `float-fold` | algorithm crates | no bare f32/f64 `sum`/`fold` reductions |
//! | D6 | `ambient-threads` | library crates | no ambient thread-count/env reads |
//!
//! **Escape hatch.** A diagnostic is suppressed by an annotation on the
//! offending line, or alone on the line directly above it:
//!
//! ```text
//! // xlint: allow(<slug>, <reason>)
//! ```
//!
//! The reason is mandatory; a malformed annotation (unknown slug, missing
//! or empty reason) is itself an error (`A0/malformed-allow`).
//!
//! **Scope rules.** The algorithm crates are `pram`, `hopset`, `pgraph`,
//! `sssp` (their `src/` trees). `crates/pram/src/pool.rs` — the runtime
//! itself — is exempt from D2/D5/D6 (it *defines* the sanctioned
//! spawn/merge/ambient sites), `crates/pram/src/prim.rs` from D5 (the
//! order-fixed merge primitives live there), and `xbench` from everything
//! but D4 (the harness measures time and spawns load generators by
//! design). Test code (`tests/`, `benches/`, `examples/` paths and
//! `#[cfg(test)]`/`#[test]` regions) is skipped for all rules except D4.
//!
//! **Running it.** `cargo run --release -p xbench --bin repro -- lint`
//! prints rustc-style `file:line` diagnostics and exits nonzero if any
//! fire — the CI gate. The dynamic complement — races a static pass
//! cannot see — is the debug-build chunk-overlap detector in
//! `pram::pool::overlap`.
//!
//! ```
//! let diags = xlint::lint_source(
//!     "crates/hopset/src/demo.rs",
//!     "fn f() { let t = std::time::Instant::now(); }\n",
//! );
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule.id(), "D3");
//! ```

mod lexer;
mod rules;

pub use rules::{lint_source, Diagnostic, Rule, ALL_RULES};

use std::path::{Path, PathBuf};

/// The result of linting a file tree: what was scanned and what fired.
#[derive(Debug)]
pub struct LintReport {
    /// Workspace-relative paths of every scanned file, sorted.
    pub files: Vec<String>,
    /// Every diagnostic, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Directories never scanned: build output, vendored dependency shims
/// (external API mirrors, not subject to this workspace's contract), VCS
/// metadata, and the lint's own deliberately-bad fixture corpus.
const SKIP_DIRS: [&str; 4] = ["target", "shims", ".git", "fixtures"];

/// Lint every `.rs` file under `root` (a workspace checkout). File order,
/// and therefore diagnostic order, is sorted — the analyzer obeys the
/// contract it enforces.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut files: Vec<PathBuf> = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut report = LintReport {
        files: Vec::with_capacity(files.len()),
        diagnostics: Vec::new(),
    };
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        report.diagnostics.extend(lint_source(&rel, &src));
        report.files.push(rel);
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_list_is_pinned() {
        // fixtures/ holds deliberately-bad corpus files; shims/ mirrors
        // external APIs. Scanning either would make the workspace run
        // meaningless, so the skip list is part of the tool's contract.
        assert!(SKIP_DIRS.contains(&"fixtures"));
        assert!(SKIP_DIRS.contains(&"shims"));
        assert!(SKIP_DIRS.contains(&"target"));
    }

    #[test]
    fn rule_ids_and_slugs_are_stable() {
        let ids: Vec<&str> = ALL_RULES.iter().map(|r| r.id()).collect();
        assert_eq!(ids, ["D1", "D2", "D3", "D4", "D5", "D6"]);
        let slugs: Vec<&str> = ALL_RULES.iter().map(|r| r.slug()).collect();
        assert_eq!(
            slugs,
            [
                "hash-iter",
                "thread-spawn",
                "wall-clock",
                "undocumented-unsafe",
                "float-fold",
                "ambient-threads"
            ]
        );
    }
}
