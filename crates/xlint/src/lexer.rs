//! A minimal Rust surface lexer: split a source file into per-line *code*
//! and *comment* streams, with string/char literal contents blanked out.
//!
//! The rule engine (see [`crate::rules`]) matches determinism-contract
//! violations on token-ish text, so the one job of this pass is to make
//! sure a pattern like `thread::spawn` can never match inside a comment,
//! a string literal, or a doc example — and conversely that a
//! `// SAFETY:` or `// xlint: allow(..)` marker can never be faked from
//! inside a string. No external parser (`syn` et al.) is available in
//! this environment (the registry is unreachable), and none is needed:
//! the six rules only require comment/literal-aware line scanning.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes (including multi-line strings), raw strings `r"…"` / `r#"…"#`
//! (any hash count), byte and byte-raw strings, C strings (`c"…"`), char
//! literals (including escapes), and the char-vs-lifetime ambiguity
//! (`'a'` vs `'a`).

/// One source line, split into scrubbed code and extracted comment text.
#[derive(Debug, Clone, Default)]
pub struct ScrubbedLine {
    /// The line's code with comments removed and literal contents
    /// replaced by spaces. Quote characters are kept, so adjacent tokens
    /// never merge across a blanked literal.
    pub code: String,
    /// Concatenated text of every comment that lies on (or spans) this
    /// line, in source order.
    pub comment: String,
}

/// Lexer mode carried across lines.
enum Mode {
    Code,
    /// Inside `/* … */`, with nesting depth.
    Block(u32),
    /// Inside a `"…"` string (escapes possible, may span lines).
    Str,
    /// Inside a raw string, closed by `"` followed by this many `#`s.
    Raw(u32),
}

/// Scrub `src` into per-line code/comment streams. Lines are indexed from
/// zero here; diagnostics add one when printing.
pub fn scrub(src: &str) -> Vec<ScrubbedLine> {
    let bytes = src.as_bytes();
    let mut lines: Vec<ScrubbedLine> = Vec::new();
    let mut cur = ScrubbedLine::default();
    let mut mode = Mode::Code;
    let mut i = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Block(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    if depth == 1 {
                        mode = Mode::Code;
                        // Keep a space so tokens don't merge across the
                        // removed comment.
                        cur.code.push(' ');
                    } else {
                        mode = Mode::Block(depth - 1);
                    }
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(b as char);
                    i += 1;
                }
            }
            Mode::Str => match b {
                b'\\' => {
                    // An escape consumes the next byte too (sufficient
                    // for scrubbing even for multi-byte escapes: the
                    // remainder is blanked as ordinary contents). A
                    // backslash at end of line continues the string.
                    cur.code.push(' ');
                    if bytes.get(i + 1).is_some_and(|&n| n != b'\n') {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                b'"' => {
                    cur.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                }
                _ => {
                    cur.code.push(' ');
                    i += 1;
                }
            },
            Mode::Raw(hashes) => {
                if b == b'"' && count_hashes(bytes, i + 1) >= hashes {
                    cur.code.push('"');
                    for _ in 0..hashes {
                        cur.code.push('#');
                    }
                    i += 1 + hashes as usize;
                    mode = Mode::Code;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            Mode::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    // Line comment: capture to end of line.
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\n' {
                        cur.comment.push(bytes[i] as char);
                        i += 1;
                    }
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    mode = Mode::Block(1);
                    i += 2;
                }
                b'"' => {
                    cur.code.push('"');
                    mode = Mode::Str;
                    i += 1;
                }
                b'r' | b'b' | b'c' if is_literal_prefix(bytes, i) => {
                    // One of r"", r#""#, b"", br"", rb#""#, c"", etc.
                    // Emit the prefix letters, then enter the right mode.
                    let mut j = i;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_alphabetic() {
                        cur.code.push(bytes[j] as char);
                        j += 1;
                    }
                    let raw = bytes[i..j].contains(&b'r');
                    if raw {
                        let hashes = count_hashes(bytes, j);
                        for _ in 0..hashes {
                            cur.code.push('#');
                        }
                        cur.code.push('"');
                        i = j + hashes as usize + 1;
                        mode = Mode::Raw(hashes);
                    } else {
                        cur.code.push('"');
                        i = j + 1;
                        mode = Mode::Str;
                    }
                }
                b'\'' => {
                    i = lex_quote(bytes, i, &mut cur);
                }
                _ => {
                    cur.code.push(b as char);
                    i += 1;
                }
            },
        }
    }
    // Final unterminated line (no trailing newline).
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Number of consecutive `#` bytes starting at `i`.
fn count_hashes(bytes: &[u8], i: usize) -> u32 {
    let mut n = 0u32;
    while bytes.get(i + n as usize) == Some(&b'#') {
        n += 1;
    }
    n
}

/// True if the alphabetic run starting at `i` is a string-literal prefix
/// (`r`, `b`, `br`, `rb`, `c`, `cr`, …) immediately followed by `"` or,
/// for raw forms, by `#…"`.
fn is_literal_prefix(bytes: &[u8], i: usize) -> bool {
    // A preceding identifier char means this run is the tail of a longer
    // name (`her"` can't happen, but `var b"x"` vs `web"` style slips
    // could), not a literal prefix.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    while j < bytes.len() && (bytes[j] as char).is_ascii_alphabetic() {
        j += 1;
        // Real prefixes are at most two letters; a longer run is an
        // identifier like `crate` or `branch`.
        if j - i > 2 {
            return false;
        }
    }
    let run = &bytes[i..j];
    if !run.iter().all(|&b| matches!(b, b'r' | b'b' | b'c')) {
        return false;
    }
    let raw = run.contains(&b'r');
    let j = j + count_hashes(bytes, j) as usize * usize::from(raw);
    bytes.get(j) == Some(&b'"')
}

/// Lex a `'` at `i`: either a char literal (blank its contents) or a
/// lifetime (emit as-is). Returns the index after the construct.
fn lex_quote(bytes: &[u8], i: usize, cur: &mut ScrubbedLine) -> usize {
    // Escaped char literal: '\x7f', '\n', '\'', …
    if bytes.get(i + 1) == Some(&b'\\') {
        cur.code.push('\'');
        let mut j = i + 2;
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            cur.code.push(' ');
            j += 1;
        }
        if bytes.get(j) == Some(&b'\'') {
            cur.code.push('\'');
            j += 1;
        }
        return j;
    }
    // Plain char literal: a short non-quote run then a closing quote
    // (`'x'`, `'é'`, `'('`). A quote followed by an identifier with no
    // closing quote nearby is a lifetime (`'a`, `'static`).
    let mut j = i + 1;
    let mut len = 0usize;
    while j < bytes.len() && len <= 4 {
        if bytes[j] == b'\'' && len > 0 {
            cur.code.push('\'');
            for _ in 0..len {
                cur.code.push(' ');
            }
            cur.code.push('\'');
            return j + 1;
        }
        if bytes[j] == b'\n' || bytes[j] == b' ' || bytes[j] == b'\'' {
            break;
        }
        j += 1;
        len += 1;
    }
    // Lifetime (or stray quote): emit the quote alone, code continues.
    cur.code.push('\'');
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scrub(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped_and_captured() {
        let lines = scrub("let x = 1; // SAFETY: not really\nlet y = 2;\n");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert!(lines[0].comment.contains("SAFETY: not really"));
        assert_eq!(lines[1].code, "let y = 2;");
    }

    #[test]
    fn nested_block_comments() {
        let lines = scrub("a /* x /* y */ z */ b\n");
        assert_eq!(lines[0].code, "a   b");
        assert!(lines[0].comment.contains('y'));
    }

    #[test]
    fn strings_are_blanked_but_quotes_kept() {
        let lines = scrub("call(\"thread::spawn // SAFETY:\");\n");
        assert!(!lines[0].code.contains("spawn"));
        assert!(lines[0].comment.is_empty());
        assert!(lines[0].code.contains('"'));
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let v = codes("f(\"a \\\" thread::spawn \\\" b\"); g();\n");
        assert!(!v[0].contains("spawn"));
        assert!(v[0].contains("g();"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let v = codes("let s = r#\"HashMap \"quoted\" iter()\"#; tail()\n");
        assert!(!v[0].contains("HashMap"));
        assert!(v[0].contains("tail()"));
    }

    #[test]
    fn byte_and_c_strings() {
        let v = codes("f(b\"spawn\", br#\"spawn\"#, c\"spawn\");\n");
        assert!(!v[0].contains("spawn"));
        assert!(v[0].starts_with("f(b"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let v = codes("let c: char = 'x'; fn f<'a>(s: &'a str) {}\n");
        assert!(!v[0].contains('x'), "{}", v[0]);
        assert!(v[0].contains("<'a>"));
        assert!(v[0].contains("&'a str"));
        // Escapes and multi-byte chars.
        let v = codes("let q = '\\''; let u = 'é';\n");
        assert!(v[0].contains("let q"));
        assert!(v[0].contains("let u"));
        assert!(!v[0].contains('é'));
    }

    #[test]
    fn multi_line_strings_keep_line_count() {
        let src = "let s = \"one\ntwo spawn\nthree\";\nafter();\n";
        let v = codes(src);
        assert_eq!(v.len(), 4);
        assert_eq!(v[3], "after();");
        assert!(!v[1].contains("spawn"));
    }

    #[test]
    fn multi_line_block_comment_keeps_line_count() {
        let src = "before();\n/* one\ntwo SAFETY: here\n*/ after();\n";
        let lines = scrub(src);
        assert_eq!(lines.len(), 4);
        assert!(lines[2].comment.contains("SAFETY: here"));
        assert_eq!(lines[3].code.trim(), "after();");
    }

    #[test]
    fn identifier_starting_with_prefix_letters_is_not_a_literal() {
        let v = codes("let branch = crate::c; r.push(b);\n");
        assert!(v[0].contains("branch"));
        assert!(v[0].contains("crate::c"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let lines = scrub("/// uses thread::spawn internally\nfn f() {}\n");
        assert!(!lines[0].code.contains("spawn"));
        assert!(lines[0].comment.contains("spawn"));
    }
}
