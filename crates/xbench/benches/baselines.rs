//! Criterion bench: the backends behind the `DistanceOracle` trait —
//! hopset oracle vs sequential Dijkstra vs Δ-stepping — plus bare
//! hop-limited Bellman–Ford (the E10 comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use pgraph::{gen, UnionView};
use pram::{Executor, Ledger};
use sssp::{DeltaSteppingOracle, DijkstraOracle, DistanceOracle, Oracle};
use std::hint::black_box;
use std::sync::Arc;

fn bench_query_vs_baselines(c: &mut Criterion) {
    let n = 4096usize;
    let g = Arc::new(gen::road_grid(64, 64, 7, 1.0, 10.0));
    let backends: Vec<Box<dyn DistanceOracle>> = vec![
        Box::new(
            Oracle::builder(Arc::clone(&g))
                .eps(0.25)
                .kappa(4)
                .build()
                .unwrap(),
        ),
        Box::new(DijkstraOracle::new(Arc::clone(&g))),
        Box::new(DeltaSteppingOracle::new(Arc::clone(&g))),
    ];

    let mut group = c.benchmark_group("baselines/road-grid-4096");
    group.sample_size(20);
    for backend in &backends {
        group.bench_function(backend.name(), |b| {
            b.iter(|| black_box(backend.distances_from(0).unwrap()))
        });
    }
    let exec = Executor::current();
    group.bench_function("bare-bf-to-convergence", |b| {
        b.iter(|| {
            let view = UnionView::base_only(&g);
            let mut ledger = Ledger::new();
            black_box(pram::bellman_ford(&exec, &view, &[0], n, &mut ledger))
        })
    });
    group.finish();
}

fn bench_bf_round_counts(c: &mut Criterion) {
    // Not a timing comparison: demonstrates the *round* (depth) advantage.
    // The bare path graph needs n-1 rounds; G ∪ H needs the β budget.
    let g = Arc::new(gen::path(4096));
    let oracle = Oracle::builder(Arc::clone(&g))
        .eps(0.25)
        .kappa(4)
        .build()
        .unwrap();

    let mut group = c.benchmark_group("baselines/path-4096-rounds");
    group.sample_size(10);
    let exec = Executor::current();
    group.bench_function("bare-bf-full-rounds", |b| {
        b.iter(|| {
            let view = UnionView::base_only(&g);
            let mut ledger = Ledger::new();
            black_box(pram::bellman_ford(&exec, &view, &[0], 4096, &mut ledger))
        })
    });
    group.bench_function("hopset-bf-beta-rounds", |b| {
        b.iter(|| black_box(oracle.distances_from(0).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_query_vs_baselines, bench_bf_round_counts);
criterion_main!(benches);
