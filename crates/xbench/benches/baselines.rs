//! Criterion bench: hopset query vs the baselines — sequential Dijkstra
//! (exact) and bare hop-limited Bellman–Ford (the E10 comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use pgraph::{exact, gen, UnionView};
use pram::Ledger;
use sssp::ApproxShortestPaths;
use std::hint::black_box;

fn bench_query_vs_baselines(c: &mut Criterion) {
    let n = 4096usize;
    let g = gen::road_grid(64, 64, 7, 1.0, 10.0);
    let engine = ApproxShortestPaths::build(&g, 0.25, 4).unwrap();

    let mut group = c.benchmark_group("baselines/road-grid-4096");
    group.sample_size(20);
    group.bench_function("hopset-query", |b| {
        b.iter(|| black_box(engine.distances_from(0)))
    });
    group.bench_function("dijkstra-exact", |b| {
        b.iter(|| black_box(exact::dijkstra(&g, 0)))
    });
    group.bench_function("bare-bf-to-convergence", |b| {
        b.iter(|| {
            let view = UnionView::base_only(&g);
            let mut ledger = Ledger::new();
            black_box(pram::bellman_ford(&view, &[0], n, &mut ledger))
        })
    });
    group.finish();
}

fn bench_bf_round_counts(c: &mut Criterion) {
    // Not a timing comparison: demonstrates the *round* (depth) advantage.
    // The bare path graph needs n-1 rounds; G ∪ H needs the β budget.
    let g = gen::path(4096);
    let engine = ApproxShortestPaths::build(&g, 0.25, 4).unwrap();
    let overlay = engine.built().overlay();

    let mut group = c.benchmark_group("baselines/path-4096-rounds");
    group.sample_size(10);
    group.bench_function("bare-bf-full-rounds", |b| {
        b.iter(|| {
            let view = UnionView::base_only(&g);
            let mut ledger = Ledger::new();
            black_box(pram::bellman_ford(&view, &[0], 4096, &mut ledger))
        })
    });
    group.bench_function("hopset-bf-beta-rounds", |b| {
        b.iter(|| {
            let view = UnionView::with_extra(&g, &overlay);
            let mut ledger = Ledger::new();
            black_box(pram::bellman_ford(
                &view,
                &[0],
                engine.query_hops(),
                &mut ledger,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_query_vs_baselines, bench_bf_round_counts);
criterion_main!(benches);
