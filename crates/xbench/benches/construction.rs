//! Criterion bench: hopset construction wall-clock across sizes, families
//! and modes (the timing companion of experiments E1/E3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hopset::{build_hopset, BuildOptions, HopsetParams, ParamMode};
use pgraph::gen;
use std::hint::black_box;

fn params(g: &pgraph::Graph, eps: f64) -> HopsetParams {
    HopsetParams::new(
        g.num_vertices(),
        eps,
        4,
        0.3,
        ParamMode::Practical,
        g.aspect_ratio_bound(),
        None,
    )
    .unwrap()
}

fn bench_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction/gnm");
    group.sample_size(10);
    for &n in &[256usize, 512, 1024, 2048] {
        let g = gen::gnm_connected(n, 4 * n, 7, 1.0, 16.0);
        let p = params(&g, 0.25);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(build_hopset(&g, &p, BuildOptions::default())))
        });
    }
    group.finish();
}

fn bench_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction/family");
    group.sample_size(10);
    let n = 1024usize;
    let cases: Vec<(&str, pgraph::Graph)> = vec![
        ("gnm", gen::gnm_connected(n, 4 * n, 7, 1.0, 16.0)),
        ("road-grid", gen::road_grid(32, 32, 5, 1.0, 10.0)),
        ("clique-chain", gen::clique_chain(64, 16, 2.0)),
        ("path", gen::path(n)),
    ];
    for (name, g) in &cases {
        let p = params(g, 0.25);
        group.bench_function(*name, |b| {
            b.iter(|| black_box(build_hopset(g, &p, BuildOptions::default())))
        });
    }
    group.finish();
}

fn bench_path_reporting_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction/path-reporting");
    group.sample_size(10);
    let g = gen::clique_chain(32, 16, 2.0);
    let p = params(&g, 0.25);
    group.bench_function("plain", |b| {
        b.iter(|| {
            black_box(build_hopset(
                &g,
                &p,
                BuildOptions {
                    record_paths: false,
                },
            ))
        })
    });
    group.bench_function("with-paths", |b| {
        b.iter(|| black_box(build_hopset(&g, &p, BuildOptions { record_paths: true })))
    });
    group.finish();
}

fn bench_vs_random_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction/vs-random");
    group.sample_size(10);
    let g = gen::gnm_connected(1024, 4096, 23, 1.0, 12.0);
    let p = params(&g, 0.25);
    group.bench_function("deterministic", |b| {
        b.iter(|| black_box(build_hopset(&g, &p, BuildOptions::default())))
    });
    group.bench_function("randomized-sampling", |b| {
        b.iter(|| black_box(hopset::baseline::build_random_hopset(&g, &p, 42)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sizes,
    bench_families,
    bench_path_reporting_overhead,
    bench_vs_random_baseline
);
criterion_main!(benches);
