//! Criterion bench: query latency — β-hop Bellman–Ford over `G ∪ H`
//! (aSSSD / aMSSD, Theorem 3.8) and SPT extraction (Theorem 4.6), all
//! served by the owned `sssp::Oracle`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgraph::gen;
use sssp::{DistanceOracle, Oracle};
use std::hint::black_box;

fn bench_single_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("query/sssd");
    for &n in &[1024usize, 4096] {
        let g = gen::gnm_connected(n, 4 * n, 7, 1.0, 16.0);
        let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(oracle.distances_from(0).unwrap()))
        });
    }
    group.finish();
}

fn bench_multi_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("query/amssd");
    group.sample_size(20);
    let n = 2048usize;
    let g = gen::gnm_connected(n, 4 * n, 9, 1.0, 16.0);
    let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
    for &s in &[1usize, 4, 16] {
        let sources: Vec<u32> = (0..s).map(|i| (i * n / s) as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, _| {
            b.iter(|| black_box(oracle.distances_multi(&sources).unwrap()))
        });
    }
    group.finish();
}

fn bench_spt(c: &mut Criterion) {
    let mut group = c.benchmark_group("query/spt");
    group.sample_size(20);
    let g = gen::clique_chain(32, 16, 2.0);
    let oracle = Oracle::builder(g)
        .eps(0.25)
        .kappa(4)
        .paths(true)
        .build()
        .unwrap();
    group.bench_function("clique-chain-512", |b| {
        b.iter(|| black_box(oracle.spt(0).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_single_source, bench_multi_source, bench_spt);
criterion_main!(benches);
