//! Criterion bench: per-round dispatch latency — the retired scoped-spawn
//! execution model (one OS-thread spawn per chunk per round) against the
//! persistent worker pool (condvar wake + barrier per round) — on the
//! sub-millisecond rounds the oracle pipeline actually issues. The
//! `repro pool-overhead` experiment prints the same comparison as a table;
//! recorded numbers live in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pram::{pool, Executor};
use std::hint::black_box;
use xbench::exp_pool::{persistent_round, scoped_round};

fn bench_dispatch_overhead(c: &mut Criterion) {
    let len = 1 << 16; // 64k u64 sums: well under a millisecond per round
    let data: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(31) % 257).collect();

    let mut scoped = c.benchmark_group("pool_overhead/scoped-spawn");
    scoped.sample_size(20);
    for &t in &[1usize, 2, 4, 8] {
        let bounds = pool::chunk_bounds(len, t);
        scoped.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| black_box(scoped_round(&bounds, &data)))
        });
    }
    scoped.finish();

    let mut persistent = c.benchmark_group("pool_overhead/persistent");
    persistent.sample_size(20);
    for &t in &[1usize, 2, 4, 8] {
        let bounds = pool::chunk_bounds(len, t);
        let exec = Executor::new(t);
        persistent.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| black_box(persistent_round(&exec, &bounds, &data)))
        });
    }
    persistent.finish();
}

criterion_group!(benches, bench_dispatch_overhead);
criterion_main!(benches);
