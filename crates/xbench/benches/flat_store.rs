//! Criterion bench: the flat data plane vs the retired AoS layout — the
//! timing companion of the `flat-store` experiment (see `xbench::exp_flat`
//! for the reference implementations and the equality assertions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgraph::{gen, Graph};
use pram::Executor;
use std::hint::black_box;
use xbench::exp_flat::{
    arena_detect_singletons, old_detect_singletons, replay_store_aos, replay_store_soa,
    synth_edges_for_bench,
};

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_store/store_replay");
    group.sample_size(10);
    let scales = 32u32; // match the flat-store experiment's shape
    for &n in &[4096usize, 16384] {
        let edges = synth_edges_for_bench(n, scales, n / 8);
        let base = Graph::empty(n);
        let exec = Executor::current();
        group.bench_with_input(BenchmarkId::new("aos", n), &n, |b, _| {
            b.iter(|| black_box(replay_store_aos(&edges, &base, scales)))
        });
        group.bench_with_input(BenchmarkId::new("soa", n), &n, |b, _| {
            b.iter(|| black_box(replay_store_soa(&edges, &base, scales, &exec)))
        });
    }
    group.finish();
}

fn bench_pulse(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_store/pulse");
    group.sample_size(10);
    let n = 8192usize;
    let g = gen::gnm_connected(n, 3 * n, 17, 1.0, 2.0);
    let exec = Executor::current();
    group.bench_function("vec_of_vec", |b| {
        let view = pgraph::UnionView::base_only(&g);
        b.iter(|| black_box(old_detect_singletons(&exec, &view, 4, 4.0, 6)))
    });
    group.bench_function("label_arena", |b| {
        b.iter(|| arena_detect_singletons(&g, &exec, 4, 4.0, 6))
    });
    group.finish();
}

criterion_group!(benches, bench_store, bench_pulse);
criterion_main!(benches);
