//! Criterion bench: thread scaling — the wall-clock counterpart of the
//! PRAM parallelism claims, running on `pram::pool`'s persistent worker
//! pool through explicit `Executor` handles (deterministic chunked
//! scheduling). Results are bit-identical across thread counts
//! (determinism contract, DESIGN.md §5); only the wall clock changes. On
//! a single-core host the threads timeslice, so expect flat curves there
//! — the speedup claim needs real cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hopset::{build_hopset_on, BuildOptions, HopsetParams, ParamMode};
use pgraph::gen;
use pram::Executor;
use std::hint::black_box;

fn bench_thread_scaling(c: &mut Criterion) {
    let n = 2048usize;
    let g = gen::gnm_connected(n, 4 * n, 7, 1.0, 16.0);
    let p = HopsetParams::new(
        n,
        0.25,
        4,
        0.3,
        ParamMode::Practical,
        g.aspect_ratio_bound(),
        None,
    )
    .unwrap();

    let mut group = c.benchmark_group("scaling/threads-gnm-2048");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        // One persistent pool per bench point, created outside the timing
        // loop: per-iteration cost is wake + barrier, never spawn.
        let exec = Executor::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| black_box(build_hopset_on(&exec, &g, &p, BuildOptions::default())))
        });
    }
    group.finish();
}

fn bench_query_thread_scaling(c: &mut Criterion) {
    use sssp::DistanceOracle;
    let n = 4096usize;
    let g = gen::gnm_connected(n, 6 * n, 3, 1.0, 16.0);
    let sources: Vec<u32> = (0..8).map(|i| (i * n / 8) as u32).collect();

    let mut group = c.benchmark_group("scaling/amssd-threads");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        // The builder's `.threads(t)` gives the oracle its own persistent
        // pool for construction and every query — the serving-system
        // configuration path (no ambient state at any point).
        let oracle = sssp::Oracle::builder(g.clone())
            .eps(0.25)
            .kappa(4)
            .threads(threads)
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| black_box(oracle.distances_multi(&sources).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_query_thread_scaling);
criterion_main!(benches);
