//! Ablations A1/A2: the design choices DESIGN.md §4 calls out.
//!
//! * **A1** — the δ-schedule erratum: the paper's printed
//!   `α = ℓ·2^{k+1}` (δ growing *past* the scale from phase 0) versus the
//!   erratum-corrected geometric schedule `δ_i = 2^{k+1}·ε^{ℓ-1-i}` that
//!   Lemma 2.8 / Corollary 3.5 actually require.
//! * **A2** — `ParamMode::Theory` (the paper's constants verbatim,
//!   including the §3.4 ε-rescaling) versus `ParamMode::Practical`
//!   (identical algorithm, measured constants).

use crate::table::{f, n as fmt_n, Table};
use crate::Config;
use hopset::validate::measure_stretch;
use hopset::{build_hopset, BuildOptions, DeltaSchedule, HopsetParams, ParamMode};
use pgraph::{gen, Graph};
use sssp::eval::spread_sources;

/// A1 — PaperLiteral vs Corrected δ-schedule.
pub fn a1_delta(cfg: &Config) {
    let nn = cfg.sz(512);
    let mut t = Table::new(&[
        "family",
        "schedule",
        "|H|",
        "work",
        "max-stretch",
        "undershoot",
    ]);
    let families: Vec<(&str, Graph)> = vec![
        ("gnm", gen::gnm_connected(nn, 4 * nn, 3, 1.0, 16.0)),
        ("clique-chain", gen::clique_chain(nn / 16, 16, 2.0)),
        (
            "weighted-path",
            gen::path_weighted(nn, |i| 1.0 + (i % 11) as f64),
        ),
    ];
    for (name, g) in &families {
        for sched in [DeltaSchedule::Corrected, DeltaSchedule::PaperLiteral] {
            let mut p = HopsetParams::new(
                g.num_vertices(),
                0.25,
                4,
                0.3,
                ParamMode::Practical,
                g.aspect_ratio_bound(),
                None,
            )
            .expect("params");
            p.delta_schedule = sched;
            let built = build_hopset(g, &p, BuildOptions::default());
            let rep = measure_stretch(
                g,
                &built.hopset,
                &spread_sources(g.num_vertices(), 3),
                p.query_hops,
            );
            t.row(vec![
                name.to_string(),
                format!("{sched:?}"),
                fmt_n(built.hopset.len()),
                fmt_n(built.ledger.work() as usize),
                f(rep.max_stretch),
                rep.undershoots.to_string(),
            ]);
        }
    }
    t.print("A1 delta-schedule ablation: printed alpha = l*2^{k+1} vs erratum-corrected geometric (DESIGN.md §4)");
}

/// A2 — Theory vs Practical constants (small n; Theory's β is capped at n).
pub fn a2_mode(cfg: &Config) {
    let nn = cfg.sz(128).min(128);
    let mut t = Table::new(&[
        "mode",
        "eps_int",
        "beta",
        "|H|",
        "work",
        "max edge w",
        "max-stretch",
    ]);
    let g = gen::gnm_connected(nn, 3 * nn, 9, 1.0, 8.0);
    for mode in [ParamMode::Practical, ParamMode::Theory] {
        let p = HopsetParams::new(
            g.num_vertices(),
            0.25,
            4,
            0.3,
            mode,
            g.aspect_ratio_bound(),
            None,
        )
        .expect("params");
        let built = build_hopset(&g, &p, BuildOptions::default());
        let max_w = built.hopset.ws().iter().copied().fold(0.0f64, f64::max);
        let rep = measure_stretch(
            &g,
            &built.hopset,
            &spread_sources(g.num_vertices(), 3),
            p.query_hops,
        );
        t.row(vec![
            format!("{mode:?}"),
            f(p.eps_int),
            if p.beta == usize::MAX {
                "inf".into()
            } else {
                fmt_n(p.beta)
            },
            fmt_n(built.hopset.len()),
            fmt_n(built.ledger.work() as usize),
            f(max_w),
            f(rep.max_stretch),
        ]);
    }
    t.print("A2 mode ablation: Theory (paper constants, formula weights) vs Practical (realized weights)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_run_quick() {
        let cfg = Config {
            quick: true,
            ..Default::default()
        };
        a1_delta(&cfg);
        a2_mode(&cfg);
    }
}
