//! `lint` — the determinism-contract static analyzer as a registry entry.
//!
//! Not a measurement: a *gate*. Runs [`xlint::lint_workspace`] over the
//! checkout this binary was built from, prints every diagnostic in
//! rustc style, and exits nonzero if any fired — so `repro lint` is the
//! CI command that keeps DESIGN.md §10's rule table enforced. It rides
//! in the registry (rather than a separate binary) so `repro list`
//! stays the one index of everything the reproduction can run.

use crate::Config;
use std::path::Path;

/// Lint the whole workspace; exit 1 on any diagnostic, 2 if the source
/// tree is unreadable (e.g. the binary moved away from its checkout).
pub fn lint(_cfg: &Config) {
    // Compile-time anchor: xbench's manifest dir is crates/xbench.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let t0 = std::time::Instant::now();
    let report = match xlint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: cannot walk workspace at {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    println!(
        "lint: {} files scanned, {} diagnostic(s) in {:.1?}",
        report.files.len(),
        report.diagnostics.len(),
        t0.elapsed()
    );
    if !report.is_clean() {
        std::process::exit(1);
    }
}
