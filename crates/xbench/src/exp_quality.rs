//! Experiments E6–E9: ruling-set quality, path-reporting SPTs, the weight
//! reduction, and the derandomization-cost comparison (DESIGN.md §6).

use crate::table::{f, n as fmt_n, Table};
use crate::Config;
use hopset::baseline::build_random_hopset;
use hopset::path_report::validate_spt;
use hopset::reduction::build_reduced_hopset;
use hopset::ruling::{ruling_set, verify_ruling};
use hopset::validate::measure_stretch;
use hopset::virtual_bfs::{ExploreScratch, Explorer};
use hopset::{build_hopset, BuildOptions, ClusterMemory, HopsetParams, ParamMode, Partition};
use pgraph::{gen, Graph, UnionView};
use pram::Ledger;
use sssp::eval::spread_sources;

fn practical(g: &Graph, eps: f64, kappa: usize, rho: f64) -> HopsetParams {
    HopsetParams::new(
        g.num_vertices(),
        eps,
        kappa,
        rho,
        ParamMode::Practical,
        g.aspect_ratio_bound(),
        None,
    )
    .expect("valid params")
}

/// E6 — Corollary B.4: `(3, 2·log n)`-ruling sets: measured separation ≥ 3
/// and covering radius ≤ 2·log2 n across graphs and thresholds.
pub fn e6_ruling(cfg: &Config) {
    let nn = cfg.sz(256);
    let mut t = Table::new(&[
        "graph",
        "threshold",
        "|W|",
        "|Q|",
        "min-sep",
        "max-cover",
        "2log n",
    ]);
    let graphs: Vec<(&str, Graph)> = vec![
        ("gnm", gen::gnm_connected(nn, 3 * nn, 3, 1.0, 4.0)),
        ("grid", gen::unit_grid(16, nn / 16)),
        ("path", gen::path(nn)),
    ];
    for (name, g) in &graphs {
        let part = Partition::singletons(g.num_vertices());
        let cm = ClusterMemory::trivial(g.num_vertices(), false);
        let view = UnionView::base_only(g);
        let exec = pram::Executor::current();
        for &thr in &[1.5f64, 3.0, 6.0] {
            let mut scratch = ExploreScratch::new();
            let ex = Explorer {
                exec: &exec,
                view: &view,
                part: &part,
                cm: &cm,
                threshold: thr,
                hop_limit: 16,
                record_paths: false,
            };
            let w: Vec<u32> = (0..g.num_vertices() as u32).collect();
            let mut led = Ledger::new();
            let q = ruling_set(&ex, &w, &mut scratch, &mut led, None);
            let (sep, cover) = verify_ruling(
                &ex,
                &q,
                &w,
                4 * pgraph::ceil_log2(nn) as usize,
                &mut scratch,
                &mut led,
            );
            t.row(vec![
                name.to_string(),
                f(thr),
                fmt_n(w.len()),
                fmt_n(q.len()),
                if sep == usize::MAX {
                    "inf".into()
                } else {
                    sep.to_string()
                },
                cover.to_string(),
                (2 * pgraph::ceil_log2(nn)).to_string(),
            ]);
        }
    }
    t.print("E6 ruling sets (Cor B.4): min-sep >= 3, max-cover <= 2 log2 n");
}

/// E7 — Theorem 4.6: path-reporting SPTs: validity, stretch, and memory
/// overhead σ against eq. (20).
pub fn e7_spt(cfg: &Config) {
    let nn = cfg.sz(512);
    let mut t = Table::new(&[
        "family",
        "n",
        "|H|",
        "max path len",
        "sigma bound",
        "tree-in-G",
        "stretch",
        "mismatch",
    ]);
    let families: Vec<(&str, Graph)> = vec![
        ("clique-chain", gen::clique_chain(nn / 16, 16, 2.0)),
        ("gnm", gen::gnm_connected(nn, 3 * nn, 5, 1.0, 8.0)),
        (
            "weighted-path",
            gen::path_weighted(nn, |i| 1.0 + (i % 5) as f64),
        ),
    ];
    for (name, g) in &families {
        let p = practical(g, 0.25, 4, 0.3);
        let built = build_hopset(g, &p, BuildOptions { record_paths: true });
        let max_plen = built
            .hopset
            .paths
            .iter()
            .map(|q| q.len())
            .max()
            .unwrap_or(0);
        let spt = hopset::path_report::build_spt(g, &built, 0);
        let val = validate_spt(g, &spt);
        t.row(vec![
            name.to_string(),
            fmt_n(g.num_vertices()),
            fmt_n(built.hopset.len()),
            fmt_n(max_plen),
            fmt_n(p.sigma.min(1_000_000_000)),
            (val.non_graph_edges == 0).to_string(),
            f(val.max_stretch),
            (val.distance_mismatches + val.weight_mismatches + val.missing).to_string(),
        ]);
    }
    t.print("E7 path-reporting SPT (Thm 4.6): tree-in-G, stretch <= 1.25, path length <= sigma (eq. 20)");
}

/// E8 — Appendix C: weight-reduction invariants on huge-aspect inputs:
/// eq. (22) per-level weight ratio, eq. (24) star count, eq. (26) node sum.
pub fn e8_reduction(cfg: &Config) {
    let mut t = Table::new(&[
        "graph",
        "n",
        "levels",
        "sum nodes",
        "n log n",
        "|S|",
        "max Gk ratio",
        "O(n/eps)",
        "stretch",
    ]);
    let nn = cfg.sz(256);
    let eps = 0.4;
    let graphs: Vec<(&str, Graph)> = vec![
        ("exp-path", gen::exponential_path(nn.min(96), 3.0)),
        ("wide-weights", gen::wide_weights(nn, 2 * nn, 16, 5)),
        ("wide-dense", gen::wide_weights(nn, 4 * nn, 24, 8)),
    ];
    for (name, g) in &graphs {
        let r = build_reduced_hopset(
            g,
            eps,
            4,
            0.3,
            ParamMode::Practical,
            BuildOptions::default(),
        )
        .expect("params");
        let n_f = g.num_vertices() as f64;
        let sum_nodes: usize = r.levels.iter().map(|l| l.non_isolated_nodes).sum();
        let max_ratio = r
            .levels
            .iter()
            .filter(|l| l.edges > 0)
            .map(|l| l.aspect_ratio)
            .fold(1.0f64, f64::max);
        let rep = measure_stretch(
            g,
            &r.hopset,
            &spread_sources(g.num_vertices(), 3),
            r.query_hops,
        );
        t.row(vec![
            name.to_string(),
            fmt_n(g.num_vertices()),
            r.levels.len().to_string(),
            fmt_n(sum_nodes),
            fmt_n((n_f * n_f.log2()) as usize),
            fmt_n(r.star_edges),
            f(max_ratio),
            f((1.0 + eps / 3.0) * n_f / (eps / 6.0)),
            f(rep.max_stretch),
        ]);
    }
    t.print("E8 weight reduction (App C): sum-nodes & |S| <= n log n (eqs. 24/26), Gk ratio = O(n/eps) (eq. 22)");
}

/// E9 — the headline trade: deterministic (ruling sets) vs randomized
/// (sampling) superclustering — size, counted work, stretch.
pub fn e9_vs_random(cfg: &Config) {
    let nn = cfg.sz(512);
    let mut t = Table::new(&[
        "family",
        "det |H|",
        "rnd |H| (avg3)",
        "size ratio",
        "det work",
        "rnd work",
        "det stretch",
        "rnd stretch",
    ]);
    let families: Vec<(&str, Graph)> = vec![
        ("gnm", gen::gnm_connected(nn, 4 * nn, 23, 1.0, 12.0)),
        ("clique-chain", gen::clique_chain(nn / 16, 16, 2.0)),
        ("road-grid", gen::road_grid(16, nn / 16, 3, 1.0, 8.0)),
    ];
    for (name, g) in &families {
        let p = practical(g, 0.25, 4, 0.3);
        let det = build_hopset(g, &p, BuildOptions::default());
        let sources = spread_sources(g.num_vertices(), 3);
        let det_rep = measure_stretch(g, &det.hopset, &sources, p.query_hops);

        let mut rnd_sizes = 0usize;
        let mut rnd_work = 0u64;
        let mut rnd_worst: f64 = 1.0;
        for seed in [1u64, 2, 3] {
            let r = build_random_hopset(g, &p, seed);
            rnd_sizes += r.hopset.len();
            rnd_work += r.ledger.work();
            let rep = measure_stretch(g, &r.hopset, &sources, p.query_hops);
            rnd_worst = rnd_worst.max(rep.max_stretch);
        }
        let rnd_avg = rnd_sizes as f64 / 3.0;
        t.row(vec![
            name.to_string(),
            fmt_n(det.hopset.len()),
            f(rnd_avg),
            f(det.hopset.len() as f64 / rnd_avg.max(1.0)),
            fmt_n(det.ledger.work() as usize),
            fmt_n((rnd_work / 3) as usize),
            f(det_rep.max_stretch),
            f(rnd_worst),
        ]);
    }
    t.print("E9 derandomization cost: deterministic vs sampling baseline (ratios near 1 = 'no asymptotic cost')");
}
