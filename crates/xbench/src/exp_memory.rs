//! `memory` — construction at scale: per-phase heap audit + peak RSS.
//!
//! ROADMAP item 3: the evidence for *slightly super-linear work* topped
//! out at n = 64k because the construction path's memory footprint, not
//! the algorithm, was the ceiling. This experiment builds gnm oracles at
//! n up to 10⁷ under the counting allocator ([`crate::alloc`]) with the
//! phase collector armed, and reports
//!
//! * per phase (`gen`, `detect`, `supercluster`, `interconnect`,
//!   `overlay-csr`, `oracle-assembly`): invocation count, allocation
//!   events, peak live heap bytes while open, and net live-byte change;
//! * per size: wall time, edges/sec, peak live heap over the whole
//!   build, and the kernel's `VmHWM` (peak RSS) for the process.
//!
//! Construction parameters follow the at-scale precedent of the
//! `snapshot` experiment (ε = 0.5, κ = 8, hop budgets capped at 32):
//! the point is the construction envelope — bytes/edge and edges/sec —
//! not stretch. `--quick` runs a small single size so every CI leg can
//! smoke the whole accounting path in seconds.
//!
//! Caveat on `VmHWM`: it is a process-lifetime high-water mark, so in a
//! multi-size run only the largest size's value is meaningful; the
//! per-size heap peak comes from the resettable allocator watermark.

use crate::alloc;
use crate::json::{self, Record};
use crate::table::Table;
use crate::Config;
use pgraph::gen;
use sssp::Oracle;

/// One size's measurement.
struct SizeRow {
    n: usize,
    m: usize,
    hopset: usize,
    ms: f64,
    peak_bytes: u64,
    vm_hwm: u64,
    edges_per_sec: f64,
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), 0 where the file is absent (non-Linux).
fn vm_hwm_bytes() -> u64 {
    let Ok(s) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in s.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb = rest.trim().trim_end_matches("kB").trim();
            return kb.parse::<u64>().unwrap_or(0) * 1024;
        }
    }
    0
}

fn fmt_mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

fn fmt_mib_i(bytes: i64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Build one gnm oracle at size `n` with the phase collector armed and
/// return the summary row plus the drained per-phase report.
fn measure(n: usize, seed: u64) -> (SizeRow, Vec<alloc::PhaseStats>) {
    let m = 2 * n;
    let _ = alloc::take_phase_report(); // drop stats from a previous size
    alloc::reset_watermark();
    let t0 = std::time::Instant::now();
    let g = {
        let _ph = pram::phase::PhaseScope::enter("gen");
        gen::gnm_connected(n, m, seed, 1.0, 8.0)
    };
    let oracle = Oracle::builder(g)
        .eps(0.5)
        .kappa(8)
        .hop_cap(32)
        .build()
        .expect("oracle construction");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let row = SizeRow {
        n,
        m,
        hopset: oracle.hopset_size(),
        ms,
        peak_bytes: alloc::watermark(),
        vm_hwm: vm_hwm_bytes(),
        edges_per_sec: m as f64 / (ms / 1e3),
    };
    drop(oracle);
    let mut phases = alloc::take_phase_report();
    // First-completion order interleaves scales; sort by peak so the big
    // consumers (LabelArena slots, overlay CSR blocks) lead the table.
    phases.sort_by_key(|p| std::cmp::Reverse(p.peak_bytes));
    (row, phases)
}

/// Entry point for `repro memory [--quick] [--json <path>]`.
pub fn memory(cfg: &Config) {
    alloc::install_phase_collector();
    let sizes: &[usize] = if cfg.quick {
        &[8_192]
    } else {
        &[65_536, 1_048_576, 10_000_000]
    };
    let threads = pram::Executor::current().threads();

    let mut summary: Vec<SizeRow> = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let (row, phases) = measure(n, 90 + i as u64);
        let mut records: Vec<Record> = Vec::new();

        let mut t = Table::new(&["phase", "count", "allocs", "peak MiB", "net MiB"]);
        for p in &phases {
            t.row(vec![
                p.name.to_string(),
                p.count.to_string(),
                p.allocs.to_string(),
                fmt_mib(p.peak_bytes),
                fmt_mib_i(p.net_bytes),
            ]);
            records.push(
                Record::new("memory-phase")
                    .u64("n", n as u64)
                    .str("phase", p.name)
                    .u64("count", p.count)
                    .u64("allocs", p.allocs)
                    .u64("peak_bytes", p.peak_bytes)
                    .i64("net_bytes", p.net_bytes),
            );
        }
        t.print(&format!(
            "memory: per-phase heap audit, gnm n = {n}, m = {} (peaks are live-heap high-water marks)",
            row.m
        ));
        records.push(
            Record::new("memory")
                .u64("n", n as u64)
                .u64("m", row.m as u64)
                .u64("threads", threads as u64)
                .f64("ms", row.ms)
                .u64("peak_bytes", row.peak_bytes)
                .u64("vm_hwm_bytes", row.vm_hwm)
                .u64("hopset_edges", row.hopset as u64)
                .f64("edges_per_sec", row.edges_per_sec),
        );
        // Per size, not once at the end: an hours-long multi-size run
        // must not lose every record to a failure at the largest n.
        json::emit(cfg, &records);
        summary.push(row);
    }

    let mut t = Table::new(&[
        "n",
        "m",
        "|H|",
        "s",
        "edges/s",
        "heap peak MiB",
        "B/edge",
        "VmHWM MiB",
    ]);
    for r in &summary {
        t.row(vec![
            r.n.to_string(),
            r.m.to_string(),
            r.hopset.to_string(),
            format!("{:.1}", r.ms / 1e3),
            format!("{:.0}", r.edges_per_sec),
            fmt_mib(r.peak_bytes),
            format!("{:.0}", r.peak_bytes as f64 / r.m as f64),
            fmt_mib(r.vm_hwm),
        ]);
    }
    t.print(&format!(
        "memory: gnm construction envelope (eps 0.5, kappa 8, hop cap 32, threads {threads})"
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_memory_runs_and_reports_phases() {
        alloc::install_phase_collector();
        let (row, phases) = measure(2_048, 7);
        assert_eq!(row.m, 4_096);
        assert!(row.hopset > 0, "a 2k gnm oracle must have hopset edges");
        assert!(row.peak_bytes > 0 && row.edges_per_sec > 0.0);
        // The construction phases must all have fired under the collector.
        for want in [
            "gen",
            "detect",
            "supercluster",
            "interconnect",
            "oracle-assembly",
        ] {
            assert!(
                phases.iter().any(|p| p.name == want),
                "phase {want} missing from report: {:?}",
                phases.iter().map(|p| p.name).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn vm_hwm_parses_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(vm_hwm_bytes() > 0);
        }
    }
}
