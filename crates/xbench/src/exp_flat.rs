//! Flat-data-plane experiment: the retired array-of-structs layout vs the
//! scale-indexed SoA store, incremental overlay builder, and label arena.
//!
//! Three costs dominated the construction data plane before the flat
//! refactor, and each has a faithful reference implementation here:
//!
//! 1. **per-scale slicing** — `overlay_scale(k)` linearly scanned all of
//!    `H` and allocated a filtered copy (plus an id side-table) per scale;
//!    the SoA store answers the same query with offset arithmetic and
//!    zero-copy column slices;
//! 2. **overlay bucketing** — every scale re-bucketed its overlay list
//!    into a fresh CSR from the copied triples; the incremental
//!    [`pgraph::OverlayCsrBuilder`] counting-sorts only the new scale's columns;
//! 3. **pulse label tables** — the exploration engine kept
//!    `Vec<Vec<Label>>` tables and allocated a fresh candidate vector and
//!    result vector *per vertex per step*; the [`hopset::LabelArena`] engine
//!    allocates per chunk, reduces in place, and writes into fixed
//!    regions.
//!
//! Both sides of each comparison are asserted to produce identical
//! results, and both wall-clock and exact allocation counts (via the
//! harness's counting allocator) are reported. Recorded numbers live in
//! EXPERIMENTS.md.

use crate::alloc::alloc_count;
use crate::json::{self, Record};
use crate::table::Table;
use crate::Config;
use hopset::{
    reduce_labels, ClusterMemory, EdgeKind, ExploreScratch, Explorer, Hopset, HopsetEdge, Label,
    Partition,
};
use pgraph::{gen, EdgeTag, Graph, OverlayCsr, OverlayCsrBuilder, UnionView, VId, Weight};
use pram::{prim, scan, Executor, Ledger};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Reference: the retired AoS store
// ---------------------------------------------------------------------------

/// The retired layout: one `Vec` of edge records, per-scale queries by
/// linear scan + filtered copy (verbatim port of the pre-flat `Hopset`).
pub struct AosStore {
    /// All edge records, push order.
    pub edges: Vec<HopsetEdge>,
}

impl AosStore {
    /// Empty store.
    pub fn new() -> Self {
        AosStore { edges: Vec::new() }
    }

    /// Append an edge.
    pub fn push(&mut self, e: HopsetEdge) {
        self.edges.push(e);
    }

    /// The retired `overlay_scale`: O(|H|) scan, two allocated outputs.
    pub fn overlay_scale(&self, k: u32) -> (Vec<(VId, VId, Weight)>, Vec<u32>) {
        let mut overlay = Vec::new();
        let mut ids = Vec::new();
        for (i, e) in self.edges.iter().enumerate() {
            if e.scale == k {
                overlay.push((e.u, e.v, e.w));
                ids.push(i as u32);
            }
        }
        (overlay, ids)
    }
}

impl Default for AosStore {
    fn default() -> Self {
        Self::new()
    }
}

/// A deterministic synthetic multi-scale edge stream: `per_scale` edges at
/// each of `scales` ascending scales over `n` vertices (LCG endpoints,
/// weights in (0, 8]). Public for the `flat_store` criterion bench.
pub fn synth_edges_for_bench(n: usize, scales: u32, per_scale: usize) -> Vec<HopsetEdge> {
    let mut out = Vec::with_capacity(scales as usize * per_scale);
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 16
    };
    for k in 0..scales {
        for _ in 0..per_scale {
            let u = (next() % n as u64) as VId;
            let mut v = (next() % n as u64) as VId;
            if v == u {
                v = (v + 1) % n as VId;
            }
            let w = 1.0 + (next() % 7000) as f64 / 1000.0;
            out.push(HopsetEdge {
                u,
                v,
                w,
                scale: k,
                kind: EdgeKind::Interconnect { phase: 0 },
                path: None,
            });
        }
    }
    out
}

/// Outcome of one store-side measurement.
#[derive(Clone, Copy, Debug)]
pub struct StoreRow {
    /// Wall-clock nanoseconds for the whole push + per-scale-view replay.
    pub ns: u64,
    /// Heap allocations charged to the replay.
    pub allocs: u64,
    /// Checksum over the produced per-scale adjacency (equality witness).
    pub checksum: u64,
}

fn checksum_view(view: &UnionView<'_>, ids: impl Fn(u32) -> u32) -> u64 {
    let mut acc = 0u64;
    for v in 0..view.num_vertices() as VId {
        view.for_each_neighbor(v, |nb, w, tag| {
            if let EdgeTag::Extra(i) = tag {
                acc = acc
                    .wrapping_mul(1099511628211)
                    .wrapping_add(nb as u64)
                    .wrapping_add(w.to_bits())
                    .wrapping_add(ids(i) as u64);
            }
        });
    }
    acc
}

/// Replay the construction data plane on the retired layout: AoS pushes,
/// then per scale an `overlay_scale` scan + a from-scratch CSR bucket,
/// then the query layer's union — the retired oracle materialized
/// `overlay_all()` (a full triple copy) and bucketed it from scratch.
pub fn replay_store_aos(edges: &[HopsetEdge], base: &Graph, scales: u32) -> StoreRow {
    let n = base.num_vertices();
    let a0 = alloc_count();
    let t0 = Instant::now();
    let mut store = AosStore::new();
    let mut acc = 0u64;
    let mut cursor = 0usize;
    for k in 0..scales {
        while cursor < edges.len() && edges[cursor].scale == k {
            store.push(edges[cursor]);
            cursor += 1;
        }
        let (overlay, ids) = store.overlay_scale(k);
        let csr = OverlayCsr::build(n, &overlay);
        let view = UnionView::with_csr(base, &csr);
        acc ^= checksum_view(&view, |i| ids[i as usize]);
    }
    // Query setup, retired path: overlay_all() copy + from-scratch bucket.
    let all: Vec<(VId, VId, Weight)> = store.edges.iter().map(|e| (e.u, e.v, e.w)).collect();
    let union = OverlayCsr::build(n, &all);
    acc ^= checksum_view(&UnionView::with_csr(base, &union), |i| i);
    StoreRow {
        ns: t0.elapsed().as_nanos() as u64,
        allocs: alloc_count() - a0,
        checksum: acc,
    }
}

/// Replay the same data plane on the flat layout: SoA pushes, zero-copy
/// scale slices, rolling one-block-per-scale bucketing (only the newest
/// block is retained, matching the construction), and the query union
/// bucketed once straight from the store's columns — the flat side skips
/// the per-scale scans, the filtered copies, and the `overlay_all()`
/// triple-list materialization, not the final union bucket itself.
pub fn replay_store_soa(
    edges: &[HopsetEdge],
    base: &Graph,
    scales: u32,
    exec: &Executor,
) -> StoreRow {
    let n = base.num_vertices();
    let a0 = alloc_count();
    let t0 = Instant::now();
    let mut store = Hopset::new();
    let mut builder = OverlayCsrBuilder::rolling(n);
    let mut ledger = Ledger::new();
    let mut acc = 0u64;
    let mut cursor = 0usize;
    for k in 0..scales {
        while cursor < edges.len() && edges[cursor].scale == k {
            store.push(edges[cursor]);
            cursor += 1;
        }
        let sl = store.scale_slice(k);
        let start = sl.start();
        let block = builder.append_scale(sl.us(), sl.vs(), sl.ws(), |deg| {
            scan::exclusive_prefix_sum(exec, deg, &mut ledger).0
        });
        let view = UnionView::with_csr(base, block);
        // Block tags are already global; the AoS side's scan-order mapping
        // resolves to the same global ids, so the checksums must match.
        acc ^= checksum_view(&view, |i| i);
        debug_assert!(start <= builder.num_extra() as u32);
    }
    // Query setup, flat path: bucket the store's columns directly.
    let union = OverlayCsr::build_columns(n, store.us(), store.vs(), store.ws());
    acc ^= checksum_view(&UnionView::with_csr(base, &union), |i| i);
    StoreRow {
        ns: t0.elapsed().as_nanos() as u64,
        allocs: alloc_count() - a0,
        checksum: acc,
    }
}

// ---------------------------------------------------------------------------
// Reference: the retired Vec<Vec<Label>> pulse engine
// ---------------------------------------------------------------------------

/// The retired exploration inner loop (verbatim port of the pre-arena
/// `propagate` + singleton aggregation): `Vec<Vec<Label>>` table, one
/// candidate vector and one result vector allocated per vertex per step,
/// stable two-pass allocating reduce.
pub fn old_detect_singletons(
    exec: &Executor,
    view: &UnionView<'_>,
    x: usize,
    threshold: Weight,
    hop_limit: usize,
) -> Vec<Vec<Label>> {
    fn old_reduce(mut cands: Vec<Label>, x: usize) -> Vec<Label> {
        if cands.is_empty() {
            return cands;
        }
        cands.sort_by_key(|l| (l.src, l.dist.to_bits(), l.pw.to_bits()));
        cands.dedup_by(|b, a| b.src == a.src);
        cands.sort_by_key(|l| (l.dist.to_bits(), l.src));
        cands.truncate(x);
        cands
    }
    let n = view.num_vertices();
    let mut labels: Vec<Vec<Label>> = vec![Vec::new(); n];
    for (v, list) in labels.iter_mut().enumerate() {
        list.push(Label {
            src: v as VId,
            dist: 0.0,
            pw: 0.0,
            path: None,
        });
    }
    let mut changed = vec![true; n];
    let mut next_changed = vec![false; n];
    for _ in 0..hop_limit {
        if !changed.iter().any(|&c| c) {
            break;
        }
        let prev = &labels;
        let prev_changed = &changed;
        let next: Vec<Option<Vec<Label>>> = prim::par_map_range(exec, n, |v| {
            let vid = v as VId;
            let mut any = false;
            view.for_each_neighbor(vid, |u, _, _| any |= prev_changed[u as usize]);
            if !any {
                return None;
            }
            let mut cands: Vec<Label> = prev[v].clone();
            view.for_each_neighbor(vid, |u, w, _| {
                for l in &prev[u as usize] {
                    let nd = l.dist + w;
                    if nd > threshold {
                        continue;
                    }
                    cands.push(Label {
                        src: l.src,
                        dist: nd,
                        pw: l.pw + w,
                        path: None,
                    });
                }
            });
            Some(old_reduce(cands, x))
        });
        for b in next_changed.iter_mut() {
            *b = false;
        }
        for (v, slot) in next.into_iter().enumerate() {
            if let Some(list) = slot {
                if !hopset::label::labels_equal(&list, &labels[v]) {
                    next_changed[v] = true;
                    labels[v] = list;
                }
            }
        }
        std::mem::swap(&mut changed, &mut next_changed);
    }
    // Singleton aggregation: every cluster is its one member, lift is the
    // identity (trivial cluster memory), so m(C) = reduce(labels[v]).
    labels.into_iter().map(|l| reduce_labels(l, x)).collect()
}

/// One arena-engine exploration (the "new side" alone, for benches).
pub fn arena_detect_singletons(
    g: &Graph,
    exec: &Executor,
    x: usize,
    threshold: Weight,
    hop_limit: usize,
) {
    let view = UnionView::base_only(g);
    let n = g.num_vertices();
    let part = Partition::singletons(n);
    let cm = ClusterMemory::trivial(n, false);
    let ex = Explorer {
        exec,
        view: &view,
        part: &part,
        cm: &cm,
        threshold,
        hop_limit,
        record_paths: false,
    };
    let mut scratch = ExploreScratch::new();
    let mut led = Ledger::new();
    std::hint::black_box(ex.detect_neighbors(x, &mut scratch, &mut led));
}

/// Outcome of one pulse-side measurement.
#[derive(Clone, Copy, Debug)]
pub struct PulseRow {
    /// Wall-clock nanoseconds.
    pub ns: u64,
    /// Heap allocations charged.
    pub allocs: u64,
}

/// Run both pulse engines on the same exploration and assert equal labels.
/// Returns (old, new).
pub fn measure_pulse(
    g: &Graph,
    exec: &Executor,
    x: usize,
    threshold: Weight,
    hop_limit: usize,
) -> (PulseRow, PulseRow) {
    let view = UnionView::base_only(g);
    let n = g.num_vertices();
    let part = Partition::singletons(n);
    let cm = ClusterMemory::trivial(n, false);
    let ex = Explorer {
        exec,
        view: &view,
        part: &part,
        cm: &cm,
        threshold,
        hop_limit,
        record_paths: false,
    };
    // Warm both paths once (page faults, pool parked-worker wake).
    let _ = old_detect_singletons(exec, &view, x, threshold, 1);
    let mut scratch = ExploreScratch::new();
    let mut led = Ledger::new();
    let _ = ex.detect_neighbors(x, &mut scratch, &mut led);

    let a0 = alloc_count();
    let t0 = Instant::now();
    let old = old_detect_singletons(exec, &view, x, threshold, hop_limit);
    let old_row = PulseRow {
        ns: t0.elapsed().as_nanos() as u64,
        allocs: alloc_count() - a0,
    };

    let a1 = alloc_count();
    let t1 = Instant::now();
    let new = ex.detect_neighbors(x, &mut scratch, &mut led);
    let new_row = PulseRow {
        ns: t1.elapsed().as_nanos() as u64,
        allocs: alloc_count() - a1,
    };

    assert_eq!(new.num_lists(), old.len());
    for (v, reference) in old.iter().enumerate() {
        assert!(
            hopset::label::labels_equal(new.labels(v), reference),
            "layouts disagree at vertex {v}"
        );
    }
    (old_row, new_row)
}

/// The `flat-store` experiment: both tables, old vs new, with speedup and
/// allocation ratios (recorded in EXPERIMENTS.md).
pub fn flat_store(cfg: &Config) {
    let exec = Executor::current();

    // ---- store + overlay data plane.
    let n = 16 * cfg.sz(4096); // 64k full / 16k quick
    let scales = 32u32; // a realistic λ − k₀: the old O(|H|) scan per scale bites
    let per_scale = n / 8;
    let edges = synth_edges_for_bench(n, scales, per_scale);
    let base = Graph::empty(n);
    // Warm both sides once (allocator + page faults), then measure.
    let _ = replay_store_aos(&edges, &base, scales);
    let _ = replay_store_soa(&edges, &base, scales, &exec);
    let aos = replay_store_aos(&edges, &base, scales);
    let soa = replay_store_soa(&edges, &base, scales, &exec);
    assert_eq!(
        aos.checksum, soa.checksum,
        "layouts built different overlays"
    );
    let mut t = Table::new(&["layout", "ms", "allocs", "vs AoS"]);
    t.row(vec![
        "AoS scan+rebucket".into(),
        format!("{:.1}", aos.ns as f64 / 1e6),
        aos.allocs.to_string(),
        "1.00x".into(),
    ]);
    t.row(vec![
        "SoA slice+append".into(),
        format!("{:.1}", soa.ns as f64 / 1e6),
        soa.allocs.to_string(),
        format!("{:.2}x", aos.ns as f64 / soa.ns as f64),
    ]);
    t.print(&format!(
        "flat-store A: store+overlay data plane, per-scale views + final query union \
         (n = {n}, {scales} scales x {per_scale} edges; identical overlays asserted; \
         both sides warmed before timing)"
    ));

    // ---- pulse label tables.
    let pn = 16 * cfg.sz(4096);
    let g = gen::gnm_connected(pn, 3 * pn, 17, 1.0, 2.0);
    let (old, new) = measure_pulse(&g, &exec, 4, 4.0, 6);
    let mut t = Table::new(&["engine", "ms", "allocs", "vs Vec<Vec>"]);
    t.row(vec![
        "Vec<Vec<Label>> pulses".into(),
        format!("{:.1}", old.ns as f64 / 1e6),
        old.allocs.to_string(),
        "1.00x".into(),
    ]);
    t.row(vec![
        "LabelArena pulses".into(),
        format!("{:.1}", new.ns as f64 / 1e6),
        new.allocs.to_string(),
        format!("{:.2}x", old.ns as f64 / new.ns as f64),
    ]);
    t.print(&format!(
        "flat-store B: exploration pulses, retired per-vertex-alloc engine vs label arena \
         (n = {pn}, m = {}, x = 4, 6 hops; identical labels asserted)",
        g.num_edges()
    ));

    json::emit(
        cfg,
        &[
            Record::new("flat-store")
                .str("side", "store-aos")
                .u64("n", n as u64)
                .f64("ms", aos.ns as f64 / 1e6)
                .u64("allocs", aos.allocs),
            Record::new("flat-store")
                .str("side", "store-soa")
                .u64("n", n as u64)
                .f64("ms", soa.ns as f64 / 1e6)
                .u64("allocs", soa.allocs),
            Record::new("flat-store")
                .str("side", "pulse-vecvec")
                .u64("n", pn as u64)
                .f64("ms", old.ns as f64 / 1e6)
                .u64("allocs", old.allocs),
            Record::new("flat-store")
                .str("side", "pulse-arena")
                .u64("n", pn as u64)
                .f64("ms", new.ns as f64 / 1e6)
                .u64("allocs", new.allocs),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_replays_agree_and_count_allocs() {
        let n = 512;
        let edges = synth_edges_for_bench(n, 4, 64);
        let base = Graph::empty(n);
        let exec = Executor::sequential();
        let a = replay_store_aos(&edges, &base, 4);
        let b = replay_store_soa(&edges, &base, 4, &exec);
        assert_eq!(a.checksum, b.checksum);
        assert!(a.allocs > 0 && b.allocs > 0);
    }

    #[test]
    fn pulse_engines_agree() {
        let g = gen::gnm_connected(96, 240, 3, 1.0, 2.0);
        let exec = Executor::shared(2);
        let (old, new) = measure_pulse(&g, &exec, 3, 3.0, 5);
        assert!(old.ns > 0 && new.ns > 0);
    }
}
