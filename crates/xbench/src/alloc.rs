//! Counting global allocator for the experiment harness.
//!
//! The flat-store experiment's claim is partly an *allocation-count*
//! reduction (the retired layout allocated per vertex per pulse and per
//! scale slice); wall-clock alone under-sells it on a noisy container.
//! This wraps the system allocator with one relaxed atomic increment per
//! `alloc`/`realloc` — exact (not sampled). It is installed for the whole
//! harness (experiments, benches, `repro`): the hot loops this workspace
//! measures are allocation-free by design, so the counter adds a few
//! nanoseconds to the rare allocation, not to the measured rounds — the
//! `pool-overhead` table re-recorded under the counting allocator matches
//! the PR-4 numbers within run-to-run noise (see EXPERIMENTS.md). If a
//! future bench becomes allocation-bound, gate this behind a feature.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// The counting wrapper around [`System`].
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counter has no effect
// on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; forwarded to
    // `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` came from `System.alloc` via the method above,
    // so forwarding the pair back to `System` is sound.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same forwarding argument as `dealloc` — the pointer being
    // reallocated was produced by `System` through this wrapper.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations (`alloc` + `realloc` calls) since process start.
/// Subtract two readings to charge a region of code.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_advances_on_allocation() {
        let before = alloc_count();
        let v: Vec<u64> = (0..1024).collect();
        std::hint::black_box(&v);
        assert!(alloc_count() > before);
    }
}
