//! Counting global allocator + per-phase memory accounting.
//!
//! The flat-store experiment's claim is partly an *allocation-count*
//! reduction (the retired layout allocated per vertex per pulse and per
//! scale slice); wall-clock alone under-sells it on a noisy container.
//! PR 9 extends the counter into a full heap audit: live bytes, absolute
//! peak bytes, and a resettable *high-water mark* that lets a scoped
//! phase guard (`pram::phase::PhaseScope`) attribute peak usage to one
//! construction phase
//! (LabelArena slabs, per-scale CSR blocks, oracle assembly — ROADMAP
//! item 3).
//!
//! Costs: one relaxed `fetch_add` + two relaxed `fetch_max` per `alloc`,
//! one `fetch_sub` per `dealloc` — exact, not sampled. The hot loops this
//! workspace measures are allocation-free by design, so the bookkeeping
//! rides on the rare allocation, not on the measured rounds (the
//! `pool-overhead` table re-recorded under the counting allocator matched
//! the PR-4 numbers within noise; see EXPERIMENTS.md). If a future bench
//! becomes allocation-bound, gate this behind a feature.
//!
//! ## Phase attribution
//!
//! [`install_phase_collector`] hooks `pram::phase` (the seam the
//! algorithm crates bracket their construction phases with) and records,
//! per phase name: invocation count, allocation count, net bytes, and the
//! high-water mark of live heap bytes observed while the phase ran. The
//! watermark is a single global cell reset on phase entry; worker threads
//! allocating concurrently are *included* in the phase that is open —
//! that is the point (the pulse engine's arena grows on worker threads).
//! Nested phases fold their peak into the parent on exit so the parent's
//! watermark never under-reports. The collector is measurement-only: it
//! can overstate a child's peak by at most the parent's true peak under
//! concurrent allocation races, and it never affects computed values.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pram::phase::{install_phase_hook, PhaseEvent};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Live heap bytes right now (alloc adds, dealloc subtracts).
static BYTES: AtomicU64 = AtomicU64::new(0);
/// Absolute peak of `BYTES` since process start. Never reset.
static PEAK: AtomicU64 = AtomicU64::new(0);
/// Resettable high-water mark of `BYTES` — the phase-scoped peak.
static WATER: AtomicU64 = AtomicU64::new(0);

#[inline]
fn on_grow(sz: u64) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let cur = BYTES.fetch_add(sz, Ordering::Relaxed) + sz;
    PEAK.fetch_max(cur, Ordering::Relaxed);
    WATER.fetch_max(cur, Ordering::Relaxed);
}

/// The counting wrapper around [`System`].
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counters have no
// effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; forwarded to
    // `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_grow(layout.size() as u64);
        }
        p
    }

    // SAFETY: `ptr`/`layout` came from `System.alloc` via the method above,
    // so forwarding the pair back to `System` is sound.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    // SAFETY: same forwarding argument as `dealloc` — the pointer being
    // reallocated was produced by `System` through this wrapper.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Charge the delta so BYTES stays exact; count it as one
            // allocation event either way.
            let old = layout.size() as u64;
            let new = new_size as u64;
            if new >= old {
                on_grow(new - old);
            } else {
                ALLOCS.fetch_add(1, Ordering::Relaxed);
                BYTES.fetch_sub(old - new, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations (`alloc` + `realloc` calls) since process start.
/// Subtract two readings to charge a region of code.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Live heap bytes right now.
pub fn current_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Absolute peak of live heap bytes since process start (never reset).
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// The resettable high-water mark: max live bytes since the last
/// [`reset_watermark`]. Equals [`peak_bytes`] if never reset.
pub fn watermark() -> u64 {
    WATER.load(Ordering::Relaxed)
}

/// Reset the high-water mark to the current live-byte count and return
/// the value it had. The absolute [`peak_bytes`] is unaffected.
pub fn reset_watermark() -> u64 {
    // An allocation racing the swap re-raises WATER via fetch_max; at
    // worst the new interval inherits a few in-flight bytes, never loses
    // a peak.
    WATER.swap(BYTES.load(Ordering::Relaxed), Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Phase collector
// ---------------------------------------------------------------------------

/// Aggregated statistics for one named construction phase.
#[derive(Clone, Debug)]
pub struct PhaseStats {
    /// Phase name as passed to `pram::phase::PhaseScope::enter`.
    pub name: &'static str,
    /// Times the phase was entered.
    pub count: u64,
    /// Heap allocation events while the phase was open.
    pub allocs: u64,
    /// Max live heap bytes observed while the phase was open (absolute
    /// value, i.e. including memory allocated before the phase).
    pub peak_bytes: u64,
    /// Net live-byte change across the phase (can be negative when a
    /// phase frees more than it allocates).
    pub net_bytes: i64,
}

/// One open phase frame on the collector stack.
struct Frame {
    name: &'static str,
    allocs_at_enter: u64,
    bytes_at_enter: u64,
    /// High-water mark of the *enclosing* interval, saved so the parent's
    /// peak survives the child's watermark reset.
    outer_water: u64,
}

#[derive(Default)]
struct Collector {
    stack: Vec<Frame>,
    done: Vec<PhaseStats>,
}

static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);

fn phase_observer(ev: PhaseEvent, name: &'static str) {
    let mut guard = match COLLECTOR.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let Some(col) = guard.as_mut() else { return };
    match ev {
        PhaseEvent::Enter => {
            let outer_water = reset_watermark();
            col.stack.push(Frame {
                name,
                allocs_at_enter: alloc_count(),
                bytes_at_enter: current_bytes(),
                outer_water,
            });
        }
        PhaseEvent::Exit => {
            // Scopes are LIFO per thread and construction phases run on
            // the coordinating thread, so the top frame is ours. A
            // mismatched name means interleaved scopes from another
            // thread; drop the event rather than mis-attribute.
            let matches = col
                .stack
                .last()
                .is_some_and(|f| std::ptr::eq(f.name.as_ptr(), name.as_ptr()) || f.name == name);
            if !matches {
                return;
            }
            let f = col.stack.pop().expect("checked non-empty");
            let this_peak = watermark();
            let allocs = alloc_count() - f.allocs_at_enter;
            let net = current_bytes() as i64 - f.bytes_at_enter as i64;
            // Fold this interval's peak back so the parent's watermark
            // accounts for the child's usage.
            WATER.fetch_max(f.outer_water.max(this_peak), Ordering::Relaxed);
            match col.done.iter_mut().find(|s| s.name == name) {
                Some(s) => {
                    s.count += 1;
                    s.allocs += allocs;
                    s.peak_bytes = s.peak_bytes.max(this_peak);
                    s.net_bytes += net;
                }
                None => col.done.push(PhaseStats {
                    name,
                    count: 1,
                    allocs,
                    peak_bytes: this_peak,
                    net_bytes: net,
                }),
            }
        }
    }
}

/// Arm per-phase accounting: installs the `pram::phase` hook (first call
/// in the process wins; the harness calls this once at experiment start)
/// and activates the collector. Idempotent.
pub fn install_phase_collector() {
    {
        let mut guard = match COLLECTOR.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if guard.is_none() {
            *guard = Some(Collector::default());
        }
    }
    install_phase_hook(phase_observer);
}

/// Drain the aggregated phase report (in first-completion order) and
/// clear it for the next measured region. Returns an empty vec if
/// [`install_phase_collector`] was never called.
pub fn take_phase_report() -> Vec<PhaseStats> {
    let mut guard = match COLLECTOR.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    match guard.as_mut() {
        Some(col) => std::mem::take(&mut col.done),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_advances_on_allocation() {
        let before = alloc_count();
        let v: Vec<u64> = (0..1024).collect();
        std::hint::black_box(&v);
        assert!(alloc_count() > before);
    }

    #[test]
    fn bytes_track_live_heap_and_peak_is_monotone() {
        let live0 = current_bytes();
        let peak0 = peak_bytes();
        let v: Vec<u64> = vec![0; 1 << 16]; // 512 KiB
        std::hint::black_box(&v);
        let live1 = current_bytes();
        assert!(
            live1 >= live0 + (1 << 19),
            "512 KiB allocation must show up in live bytes ({live0} -> {live1})"
        );
        assert!(peak_bytes() >= peak0.max(live1));
        drop(v);
        assert!(current_bytes() < live1, "dealloc must subtract");
        assert!(peak_bytes() >= live1, "absolute peak never decreases");
    }

    #[test]
    fn watermark_resets_but_peak_does_not() {
        let v: Vec<u8> = vec![0; 1 << 20];
        std::hint::black_box(&v);
        drop(v);
        let peak = peak_bytes();
        reset_watermark();
        let w = watermark();
        // Watermark restarts from current live bytes, strictly below the
        // 1 MiB spike we just freed; absolute peak keeps it.
        assert!(
            w <= current_bytes() + (1 << 16),
            "watermark {w} should restart near live"
        );
        assert!(peak_bytes() >= peak);
        let v2: Vec<u8> = vec![0; 1 << 18];
        std::hint::black_box(&v2);
        assert!(watermark() >= current_bytes());
    }

    #[test]
    fn phase_collector_attributes_spikes() {
        install_phase_collector();
        let _ = take_phase_report(); // discard anything from other tests
        {
            let _outer = pram::phase::PhaseScope::enter("t-outer");
            {
                let _inner = pram::phase::PhaseScope::enter("t-inner");
                let v: Vec<u8> = vec![0; 1 << 21]; // 2 MiB spike inside inner
                std::hint::black_box(&v);
            }
        }
        let report = take_phase_report();
        let inner = report.iter().find(|s| s.name == "t-inner");
        let outer = report.iter().find(|s| s.name == "t-outer");
        // The collector only works if *this* process's hook install won
        // the race (other tests in the binary may have installed theirs
        // first — but within this crate ours is the only installer).
        if let (Some(inner), Some(outer)) = (inner, outer) {
            assert_eq!(inner.count, 1);
            assert!(inner.allocs >= 1);
            assert!(
                inner.peak_bytes >= (1 << 21),
                "2 MiB spike must be visible in inner peak ({})",
                inner.peak_bytes
            );
            // Folding: the parent's peak must cover the child's.
            assert!(outer.peak_bytes >= inner.peak_bytes);
        }
    }
}
