#![warn(missing_docs)]
//! # xbench — the experiment harness
//!
//! One module per experiment family; every experiment regenerates one
//! "table" or "figure series" of the reproduction (the paper is pure
//! theory, so the tables are its formal claims measured — see DESIGN.md §6
//! for the index and EXPERIMENTS.md for recorded results).
//!
//! Run everything: `cargo run --release -p xbench --bin repro -- all`
//! Run one: `cargo run --release -p xbench --bin repro -- e2-stretch`
//! Quick mode (smaller sizes): append `--quick`.

pub mod alloc;
pub mod exp_ablation;
pub mod exp_core;
pub mod exp_end;
pub mod exp_flat;
pub mod exp_lint;
pub mod exp_memory;
pub mod exp_pool;
pub mod exp_quality;
pub mod exp_serve;
pub mod exp_snapshot;
pub mod json;
pub mod table;

/// Global experiment configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Shrink sizes for fast smoke runs.
    pub quick: bool,
    /// Append machine-readable JSON-lines records here (`--json <path>`).
    pub json: Option<std::path::PathBuf>,
}

impl Config {
    /// Scale a size down in quick mode.
    pub fn sz(&self, full: usize) -> usize {
        if self.quick {
            (full / 4).max(32)
        } else {
            full
        }
    }
}

/// The registry of experiments: (id, description, runner).
pub type Runner = fn(&Config);

/// All experiments in DESIGN.md §6 order.
pub fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        (
            "e1-size",
            "Thm 3.7: hopset size vs ceil(log L)*n^{1+1/k}",
            exp_core::e1_size,
        ),
        (
            "e2-stretch",
            "Thm 3.7/Cor 3.5: stretch at hop budget",
            exp_core::e2_stretch,
        ),
        (
            "e2b-scale",
            "Lemma 2.1/3.3: per-scale coverage",
            exp_core::e2b_scale,
        ),
        (
            "e3-work",
            "Thm 3.7: counted work/depth vs bounds",
            exp_core::e3_work,
        ),
        (
            "e4-msssd",
            "Thm 3.8: multi-source scaling",
            exp_core::e4_msssd,
        ),
        (
            "e5-phases",
            "Lemmas 2.5-2.7: cluster-count decay",
            exp_core::e5_phases,
        ),
        (
            "e6-ruling",
            "Cor B.4: ruling-set quality",
            exp_quality::e6_ruling,
        ),
        ("e7-spt", "Thm 4.6: path-reporting SPT", exp_quality::e7_spt),
        (
            "e8-reduction",
            "App C: weight-reduction invariants",
            exp_quality::e8_reduction,
        ),
        (
            "e9-vs-random",
            "derandomization cost vs sampling baseline",
            exp_quality::e9_vs_random,
        ),
        (
            "e10-sssp",
            "Thm 3.8 end-to-end vs baselines",
            exp_end::e10_sssp,
        ),
        (
            "f1-reach",
            "Fig 1/Lemma 2.1: exploration reach",
            exp_end::f1_reach,
        ),
        (
            "f2-hops",
            "Figs 4-5/eq 18: stretch-vs-hop-budget curves",
            exp_end::f2_hops,
        ),
        (
            "f9-knockout",
            "Fig 9: ruling-set knockout recursion",
            exp_end::f9_knockout,
        ),
        (
            "f11-peeling",
            "Fig 11: peeling composition series",
            exp_end::f11_peeling,
        ),
        (
            "a1-delta",
            "ablation: printed vs corrected delta schedule",
            exp_ablation::a1_delta,
        ),
        (
            "a2-mode",
            "ablation: Theory vs Practical constants",
            exp_ablation::a2_mode,
        ),
        (
            "pool-overhead",
            "runtime: dispatch latency, scoped spawn vs persistent pool",
            exp_pool::pool_overhead,
        ),
        (
            "flat-store",
            "data plane: AoS scans + rebuckets vs SoA slices + label arena",
            exp_flat::flat_store,
        ),
        (
            "serve",
            "serving: landmark-certified p2p, batched aMSSD, LRU source cache under load",
            exp_serve::serve,
        ),
        (
            "serve-open",
            "serving: open-loop arrival sweep, admission gate bounding p99 (DESIGN.md §9)",
            exp_serve::serve_open,
        ),
        (
            "snapshot",
            "persistence: construct-vs-load wall times and bytes (DESIGN.md §11)",
            exp_snapshot::snapshot,
        ),
        (
            "memory",
            "construction at scale: per-phase heap audit + peak RSS (DESIGN.md §12)",
            exp_memory::memory,
        ),
        (
            "lint",
            "gate: xlint determinism-contract static analysis (DESIGN.md §10)",
            exp_lint::lint,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique() {
        let reg = registry();
        let mut ids: Vec<_> = reg.iter().map(|r| r.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reg.len());
        assert_eq!(reg.len(), 24);
    }

    #[test]
    fn quick_mode_shrinks() {
        let c = Config {
            quick: true,
            ..Default::default()
        };
        assert_eq!(c.sz(1024), 256);
        assert_eq!(c.sz(64), 32);
        let f = Config::default();
        assert_eq!(f.sz(1024), 1024);
    }
}
