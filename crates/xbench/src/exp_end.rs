//! Experiments E10 and the figure series F1/F2/F9/F11 (DESIGN.md §6).

use crate::table::{f, n as fmt_n, Table};
use crate::Config;
use hopset::ruling::{ruling_set, RulingTrace};
use hopset::virtual_bfs::{ExploreScratch, Explorer};
use hopset::{
    build_hopset, BuildOptions, ClusterMemory, HopsetParams, ParamMode, Partition, ScaleParams,
};
use pgraph::{exact, gen, Graph, UnionView, INF};
use pram::Ledger;
use sssp::eval::{spread_sources, stretch_vs_hops};
use sssp::{DeltaSteppingOracle, DijkstraOracle, DistanceOracle, Oracle};
use std::sync::Arc;
use std::time::Instant;

fn practical(g: &Graph, eps: f64, kappa: usize, rho: f64) -> HopsetParams {
    HopsetParams::new(
        g.num_vertices(),
        eps,
        kappa,
        rho,
        ParamMode::Practical,
        g.aspect_ratio_bound(),
        None,
    )
    .expect("valid params")
}

/// E10 — Theorem 3.8 end-to-end: all three backends behind the one
/// [`DistanceOracle`] trait — hopset (β-round), Δ-stepping
/// (`Θ(diam/Δ)`-round, exact), sequential Dijkstra (exact) — measured
/// generically, plus the bare Bellman–Ford round count per family.
pub fn e10_sssp(cfg: &Config) {
    let mut t = Table::new(&[
        "family",
        "backend",
        "n",
        "m",
        "build ms",
        "query ms",
        "query work",
        "query depth",
        "bound",
        "stretch",
    ]);
    let nn = cfg.sz(4096);
    let families: Vec<(&str, Graph)> = vec![
        ("path", gen::path(nn)),
        ("road-grid", gen::road_grid(64, nn / 64, 7, 1.0, 10.0)),
        ("gnm", gen::gnm_connected(nn, 4 * nn, 5, 1.0, 16.0)),
    ];
    for (name, g) in families {
        let src = 0u32;
        let bare_rounds = sssp::baseline::bf_rounds_to_converge(&g, src);
        let (n, m) = (g.num_vertices(), g.num_edges());
        let ex = exact::dijkstra(&g, src).dist;
        let g = Arc::new(g);

        // The three backends through the one trait; per-backend build time
        // measured around each constructor.
        let mut backends: Vec<(Box<dyn DistanceOracle>, f64)> = Vec::new();
        let t0 = Instant::now();
        let oracle = Oracle::builder(Arc::clone(&g))
            .eps(0.25)
            .kappa(4)
            .build()
            .expect("params");
        backends.push((Box::new(oracle), t0.elapsed().as_secs_f64() * 1e3));
        let t1 = Instant::now();
        let dstep = DeltaSteppingOracle::new(Arc::clone(&g));
        backends.push((Box::new(dstep), t1.elapsed().as_secs_f64() * 1e3));
        let t2 = Instant::now();
        let dij = DijkstraOracle::new(Arc::clone(&g));
        backends.push((Box::new(dij), t2.elapsed().as_secs_f64() * 1e3));

        for (backend, build_ms) in &backends {
            let tq = Instant::now();
            let (approx, qledger) = backend
                .distances_from_with_ledger(src)
                .expect("source in range");
            let query_ms = tq.elapsed().as_secs_f64() * 1e3;
            let mut worst: f64 = 1.0;
            for v in 0..n {
                if ex[v] > 0.0 && ex[v].is_finite() && approx[v].is_finite() {
                    worst = worst.max(approx[v] / ex[v]);
                }
            }
            t.row(vec![
                name.to_string(),
                backend.name().to_string(),
                fmt_n(n),
                fmt_n(m),
                f(*build_ms),
                f(query_ms),
                fmt_n(qledger.work() as usize),
                fmt_n(qledger.depth() as usize),
                f(backend.stretch_bound()),
                f(worst),
            ]);
        }
        println!("[e10] {name}: bare Bellman-Ford needs {bare_rounds} rounds to converge");
    }
    t.print(
        "E10 end-to-end SSSP via the DistanceOracle trait: query depth — \
         hopset beta, delta-stepping Theta(diam/Delta), dijkstra sequential (= work)",
    );
}

/// F1 — Figure 1 / Lemma 2.1: exploration reach — hop-limited distances in
/// `G_{k-1} = G ∪ H_{k-1}` stay within `(1+ε_{k-1})` for `d ≤ 2^{k+1}`.
pub fn f1_reach(cfg: &Config) {
    let nn = cfg.sz(512);
    let g = gen::gnm_connected(nn, 3 * nn, 13, 1.0, 24.0);
    let p = practical(&g, 0.25, 4, 0.3);
    let built = build_hopset(&g, &p, BuildOptions::default());
    let sources = spread_sources(nn, 3);
    let mut t = Table::new(&[
        "scale k",
        "1+eps_{k-1}",
        "pairs",
        "max d^(2b+1)/d",
        "unreached",
    ]);
    let mut eps_prev = 0.0f64;
    for k in built.k0..=built.lambda {
        let sl = built.hopset.scale_slice(k.saturating_sub(1));
        let view = if k == built.k0 {
            UnionView::base_only(&g)
        } else {
            UnionView::with_overlay_columns(&g, sl.us(), sl.vs(), sl.ws())
        };
        let ceil = 2f64.powi(k as i32 + 1);
        let mut worst: f64 = 1.0;
        let mut pairs = 0usize;
        let mut unreached = 0usize;
        for &s in &sources {
            let ex = exact::dijkstra(&g, s).dist;
            let ap = exact::bellman_ford_hops(&view, &[s], p.hop_limit);
            for v in 0..nn {
                if ex[v] > 0.0 && ex[v] <= ceil {
                    pairs += 1;
                    if ap[v] == INF {
                        unreached += 1;
                    } else {
                        worst = worst.max(ap[v] / ex[v]);
                    }
                }
            }
        }
        t.row(vec![
            k.to_string(),
            f(1.0 + eps_prev),
            fmt_n(pairs),
            f(worst),
            unreached.to_string(),
        ]);
        eps_prev = (1.0 + eps_prev) * (1.0 + p.eps_scale) - 1.0;
    }
    t.print("F1 exploration reach (Lemma 2.1): hop-limited G_{k-1} distances vs exact");
}

/// F2 — Figures 4–5 / eq. (18): the stretch-vs-hop-budget trade-off curve,
/// with and without the hopset.
pub fn f2_hops(cfg: &Config) {
    let nn = cfg.sz(1024);
    let budgets = [8usize, 16, 24, 32, 48, 64, 96, 128];
    let mut t = Table::new(&[
        "family",
        "hops",
        "with H: stretch",
        "with H: unreached",
        "bare: unreached",
    ]);
    let families: Vec<(&str, Graph)> = vec![
        ("path", gen::path(nn)),
        ("grid", gen::unit_grid(32, nn / 32)),
        ("road-grid", gen::road_grid(32, nn / 32, 3, 1.0, 10.0)),
    ];
    for (name, g) in families {
        let g = Arc::new(g);
        let sources = spread_sources(g.num_vertices(), 2);
        // "with H" goes through the owned oracle (its pre-built union CSR);
        // the bare curve measures the graph alone.
        let oracle = Oracle::builder(Arc::clone(&g))
            .eps(0.25)
            .kappa(4)
            .rho(0.3) // match F1/F9's practical(.., 0.3) parameterization
            .build()
            .expect("params");
        let with = oracle
            .stretch_curve(&sources, &budgets)
            .expect("sources in range");
        let bare = stretch_vs_hops(&g, &[], &sources, &budgets);
        for (w, b) in with.iter().zip(&bare) {
            t.row(vec![
                name.to_string(),
                w.hops.to_string(),
                f(w.max_stretch),
                w.unreached.to_string(),
                b.unreached.to_string(),
            ]);
        }
    }
    t.print("F2 stretch vs hop budget (the eq. (2) trade-off, measured): hopset turns unreachable into (1+eps)");
}

/// F9 — Figure 9: the ruling-set knock-out recursion, level by level.
pub fn f9_knockout(cfg: &Config) {
    let nn = cfg.sz(512);
    let g = gen::gnm_connected(nn, 3 * nn, 7, 1.0, 4.0);
    let part = Partition::singletons(nn);
    let cm = ClusterMemory::trivial(nn, false);
    let view = UnionView::base_only(&g);
    let exec = pram::Executor::current();
    let ex = Explorer {
        exec: &exec,
        view: &view,
        part: &part,
        cm: &cm,
        threshold: 2.5,
        hop_limit: 16,
        record_paths: false,
    };
    let w: Vec<u32> = (0..nn as u32).collect();
    let mut led = Ledger::new();
    let mut trace = RulingTrace::default();
    let q = ruling_set(
        &ex,
        &w,
        &mut ExploreScratch::new(),
        &mut led,
        Some(&mut trace),
    );
    let mut t = Table::new(&[
        "level (bit)",
        "sources B0",
        "candidates B1",
        "knocked out",
        "alive",
    ]);
    for l in &trace.levels {
        t.row(vec![
            l.level.to_string(),
            fmt_n(l.sources),
            fmt_n(l.candidates),
            fmt_n(l.knocked_out),
            fmt_n(l.alive_after),
        ]);
    }
    t.print(&format!(
        "F9 knock-out recursion (Fig. 9): |W| = {} -> |Q| = {} over {} bit levels",
        nn,
        q.len(),
        trace.levels.len()
    ));
}

/// F11 — Figure 11: the peeling process — edge-type composition of the
/// working tree per iteration.
pub fn f11_peeling(cfg: &Config) {
    let nn = cfg.sz(512);
    let g = gen::clique_chain(nn / 16, 16, 2.0);
    let p = practical(&g, 0.25, 4, 0.3);
    let built = build_hopset(&g, &p, BuildOptions { record_paths: true });
    let spt = hopset::path_report::build_spt(&g, &built, 0);
    let mut t = Table::new(&[
        "iteration (scale)",
        "graph edges",
        "hopset edges",
        "replaced",
        "triplets",
        "improved",
    ]);
    for st in &spt.peel_stats {
        t.row(vec![
            st.scale.to_string(),
            fmt_n(st.graph_edges),
            fmt_n(st.hopset_edges),
            fmt_n(st.replaced),
            fmt_n(st.triplets),
            fmt_n(st.improved),
        ]);
    }
    let val = hopset::path_report::validate_spt(&g, &spt);
    t.print(&format!(
        "F11 peeling composition (Fig. 11): hopset edges -> 0; final tree in G = {}, stretch = {:.4}",
        val.non_graph_edges == 0,
        val.max_stretch
    ));
    // Unused import guard for ScaleParams (kept for future ablations).
    let _ = std::marker::PhantomData::<ScaleParams>;
}
