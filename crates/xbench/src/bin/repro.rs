//! `repro` — regenerate every experiment table/figure of the reproduction.
//!
//! ```sh
//! cargo run --release -p xbench --bin repro -- all            # everything
//! cargo run --release -p xbench --bin repro -- e2-stretch     # one table
//! cargo run --release -p xbench --bin repro -- all --quick    # small sizes
//! cargo run --release -p xbench --bin repro -- list           # registry
//! cargo run --release -p xbench --bin repro -- memory --json BENCH_memory.json
//! ```

use xbench::{registry, Config};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut json: Option<std::path::PathBuf> = None;
    let mut wanted: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => match it.next() {
                Some(p) => json = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("--json needs a path argument");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}; try `repro list`");
                std::process::exit(2);
            }
            _ => wanted.push(a),
        }
    }
    let cfg = Config { quick, json };

    let reg = registry();
    if wanted.is_empty() || wanted[0] == "list" {
        println!("experiments (see DESIGN.md §6):");
        for (id, desc, _) in &reg {
            println!("  {id:<14} {desc}");
        }
        println!("\nusage: repro <id>|all [--quick] [--json <path>]");
        return;
    }

    let run_all = wanted.iter().any(|w| *w == "all");
    let t0 = std::time::Instant::now();
    let mut ran = 0usize;
    for (id, _, runner) in &reg {
        if run_all || wanted.iter().any(|w| w == id) {
            let t = std::time::Instant::now();
            runner(&cfg);
            eprintln!("[{id} done in {:?}]", t.elapsed());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("unknown experiment(s) {wanted:?}; try `repro list`");
        std::process::exit(1);
    }
    eprintln!("\n[{ran} experiment(s) in {:?}]", t0.elapsed());
}
