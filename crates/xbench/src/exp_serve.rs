//! Experiments SERVE / SERVE-OPEN — the query plane under load
//! (DESIGN.md §6, §9).
//!
//! **`serve`** (closed loop) measures the serving fast paths over one
//! built oracle on a road-grid instance:
//!
//! 1. **landmark-certified p2p vs early-exit exploration** — the
//!    headline: a cold `distance(u, v)` answered from the landmark plane
//!    in `O(L)` must sit orders of magnitude below the early-exit
//!    exploration it replaces, with the landmark-answer rate and
//!    composed-stretch spot checks (vs exact Dijkstra) recorded;
//! 2. **batched vs looped aMSSD** — `distances_multi` (one union view +
//!    one scratch per batch) against the same sources row by row;
//! 3. **closed-loop cache serving** — 1/2/4 client threads over an
//!    `Arc<CachedOracle>` with the landmark plane attached, issuing a
//!    deterministic 80/20 hot-row / cold-p2p mix, reporting p50/p99,
//!    throughput, and the full extended counter set
//!    (hits/misses/landmark_answers/fallbacks).
//!
//! **`serve-open`** (open loop) is the capacity experiment: requests
//! arrive on a *fixed* SplitMix64-seeded schedule (`t_i = i/rate`,
//! rate swept), not when the previous answer returns, so queueing delay
//! is visible instead of hidden by client back-off. The cache runs with
//! the admission gate in reject mode; the sweep shows the gate bounding
//! p99 at overload — rejections rise instead of latency collapsing.
//! One JSON record is emitted **per rate point**, not at the end: a
//! failure at the highest rate must not lose the records already earned
//! (the same rule `repro memory` follows per size).
//!
//! Latencies are wall-clock and machine-dependent; the *correctness* of
//! every answer served here — bit-identity of the fast paths, the
//! `(1+δ)` stretch of landmark answers — is pinned by `tests/serving.rs`
//! and `tests/landmark.rs`, not measured.

use crate::json::{emit, Record};
use crate::table::{f, n as fmt_n, Table};
use crate::Config;
use pgraph::gen;
use sssp::{
    CacheConfig, CachedOracle, DistanceOracle, FillPolicy, LandmarkConfig, LandmarkPlane, Oracle,
    SsspError,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// SplitMix64: small, seedable, deterministic request-sequence generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// `p`-th percentile of an ascending-sorted latency list (nearest rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn sort_lat(lat: &mut [f64]) {
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
}

/// One table row from a sorted latency list (µs) and the workload wall
/// time: p50/p99/mean latency and closed-loop throughput.
fn lat_row(t: &mut Table, workload: &str, clients: usize, lat: &mut [f64], wall_s: f64) -> f64 {
    sort_lat(lat);
    let mean = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
    let p50 = percentile(lat, 0.50);
    t.row(vec![
        workload.to_string(),
        clients.to_string(),
        fmt_n(lat.len()),
        f(p50),
        f(percentile(lat, 0.99)),
        f(mean),
        f(lat.len() as f64 / wall_s),
    ]);
    p50
}

/// The serving instance both experiments share: a road grid (landmark
/// triangle bounds are informative on metrically spread graphs — on an
/// expander all distances concentrate and the lower bounds collapse),
/// the oracle, and the landmark plane.
fn build_stack(cfg: &Config, landmarks: usize) -> (usize, Arc<Oracle>, Arc<LandmarkPlane>) {
    let side = if cfg.quick { 64 } else { 253 };
    let n = side * side; // 64 009 full / 4 096 quick
    let g = gen::road_grid(side, side, 11, 1.0, 10.0);
    let t_build = Instant::now();
    let oracle = Arc::new(
        Oracle::builder(g)
            .eps(0.25)
            .kappa(4)
            .build()
            .expect("params"),
    );
    let built_s = t_build.elapsed().as_secs_f64();
    let t_plane = Instant::now();
    let plane = Arc::new(
        LandmarkPlane::build(&oracle, &LandmarkConfig::new(landmarks, 1.0)).expect("landmarks"),
    );
    println!(
        "[serve] built {}x{} road grid (n = {}, m = {}): |H| = {}, beta = {}, {:.1} s; \
         landmark plane L = {}, delta = {:.2}, {:.1} s",
        side,
        side,
        fmt_n(n),
        fmt_n(oracle.graph().num_edges()),
        fmt_n(oracle.hopset_size()),
        oracle.query_hops(),
        built_s,
        plane.landmarks().len(),
        plane.delta(),
        t_plane.elapsed().as_secs_f64()
    );
    (n, oracle, plane)
}

/// The `serve` experiment: build once, serve three closed-loop
/// workloads, record latency/throughput tables (EXPERIMENTS.md).
pub fn serve(cfg: &Config) {
    let (n, oracle, plane) = build_stack(cfg, 16);

    let mut t = Table::new(&[
        "workload", "clients", "ops", "p50 us", "p99 us", "mean us", "ops/s",
    ]);

    // ---- workload 1: cold p2p — landmark-certified vs exploration.
    // Probe a large deterministic pair sample through the plane (cheap),
    // then pay the exploration only for a subsample of the fallbacks.
    let probes = if cfg.quick { 1024 } else { 4096 };
    let mut rng = Rng(7);
    let pairs: Vec<(u32, u32)> = (0..probes)
        .map(|_| (rng.below(n) as u32, rng.below(n) as u32))
        .collect();
    let mut lm_lat = Vec::new();
    let mut certified: Vec<(u32, u32, f64)> = Vec::new();
    let mut fallback_pairs: Vec<(u32, u32)> = Vec::new();
    let w0 = Instant::now();
    for &(u, v) in &pairs {
        let q0 = Instant::now();
        let ans = plane.certify(u, v);
        let el = q0.elapsed().as_secs_f64() * 1e6;
        match ans {
            Some(d) => {
                lm_lat.push(el);
                certified.push((u, v, d));
            }
            None => fallback_pairs.push((u, v)),
        }
    }
    let probe_wall = w0.elapsed().as_secs_f64();
    let lm_rate = certified.len() as f64 / pairs.len() as f64;
    let lm_p50 = lat_row(
        &mut t,
        "p2p landmark-certified O(L)",
        1,
        &mut lm_lat,
        probe_wall,
    );

    let ex_ops = if cfg.quick { 12 } else { 32 };
    let sample: Vec<(u32, u32)> = if fallback_pairs.is_empty() {
        pairs.iter().copied().take(ex_ops).collect()
    } else {
        fallback_pairs.iter().copied().take(ex_ops).collect()
    };
    let _ = oracle.distance(0, (n - 1) as u32).expect("warm-up");
    let mut lat = Vec::with_capacity(sample.len());
    let w0 = Instant::now();
    for &(u, v) in &sample {
        let q0 = Instant::now();
        let _ = oracle.distance(u, v).expect("in range");
        lat.push(q0.elapsed().as_secs_f64() * 1e6);
    }
    let ex_p50 = lat_row(
        &mut t,
        "p2p early-exit exploration",
        1,
        &mut lat,
        w0.elapsed().as_secs_f64(),
    );
    println!(
        "[serve] landmark answer rate = {:.1}% of {} cold pairs; \
         landmark p50 = {:.2} us vs exploration p50 = {:.0} us ({:.0}x)",
        100.0 * lm_rate,
        fmt_n(pairs.len()),
        lm_p50,
        ex_p50,
        ex_p50 / lm_p50.max(1e-9)
    );

    // Composed-stretch spot checks: a certified answer must sit in
    // [d_exact, (1+delta) * d_exact] (DESIGN.md §9 — the deflated lower
    // bound absorbs the rows' (1+eps) error).
    let mut max_ratio: f64 = 1.0;
    let mut checks = 0usize;
    for &(u, v, d) in certified.iter().take(8) {
        let exact = pgraph::exact::dijkstra(oracle.graph(), u).dist[v as usize];
        if exact > 0.0 && exact.is_finite() {
            assert!(
                d >= exact - 1e-9 && d <= plane.stretch_bound() * exact + 1e-9,
                "certified answer {d} outside [{exact}, {}] for ({u}, {v})",
                plane.stretch_bound() * exact
            );
            max_ratio = max_ratio.max(d / exact);
            checks += 1;
        }
    }
    println!(
        "[serve] composed stretch on {} certified pairs: max answer/exact = {:.4} \
         (documented bound {:.2})",
        checks,
        max_ratio,
        plane.stretch_bound()
    );
    emit(
        cfg,
        &[Record::new("serve")
            .str("workload", "p2p-landmark-vs-exploration")
            .u64("n", n as u64)
            .u64("landmarks", plane.landmarks().len() as u64)
            .f64("delta", plane.delta())
            .u64("probes", pairs.len() as u64)
            .f64("landmark_answer_rate", lm_rate)
            .f64("landmark_p50_us", lm_p50)
            .f64("exploration_p50_us", ex_p50)
            .f64("speedup", ex_p50 / lm_p50.max(1e-9))
            .f64("max_stretch_observed", max_ratio)
            .f64("stretch_bound", plane.stretch_bound())],
    );

    // ---- workload 2: batched vs looped aMSSD (8 sources per request).
    let batches = if cfg.quick { 2 } else { 4 };
    let batch: Vec<u32> = (0..8).map(|_| rng.below(n) as u32).collect();
    let _ = oracle.distances_multi(&batch).expect("warm-up");
    let mut lat = Vec::with_capacity(batches);
    let w0 = Instant::now();
    for _ in 0..batches {
        let q0 = Instant::now();
        let _ = oracle.distances_multi(&batch).expect("in range");
        lat.push(q0.elapsed().as_secs_f64() * 1e6);
    }
    lat_row(
        &mut t,
        "aMSSD batched (8 sources/op)",
        1,
        &mut lat,
        w0.elapsed().as_secs_f64(),
    );
    let mut lat = Vec::with_capacity(batches);
    let w0 = Instant::now();
    for _ in 0..batches {
        let q0 = Instant::now();
        for &s in &batch {
            let _ = oracle.distances_from(s).expect("in range");
        }
        lat.push(q0.elapsed().as_secs_f64() * 1e6);
    }
    lat_row(
        &mut t,
        "aMSSD looped (8 x distances_from)",
        1,
        &mut lat,
        w0.elapsed().as_secs_f64(),
    );

    // ---- workload 3: closed-loop clients over the landmark-backed cache.
    let ops_per_client = if cfg.quick { 20 } else { 50 };
    let hot: Vec<u32> = (0..4).map(|i| (i * n / 4) as u32).collect();
    for clients in [1usize, 2, 4] {
        let served = Arc::new(
            CachedOracle::with_config(
                Arc::clone(&oracle),
                CacheConfig::new(8)
                    .policy(FillPolicy::LandmarkOnly)
                    .landmark_plane(Arc::clone(&plane)),
            )
            .expect("config"),
        );
        let w0 = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let s = Arc::clone(&served);
                let hot = hot.clone();
                std::thread::spawn(move || {
                    let mut rng = Rng(0xC0FF_EE00 + 7919 * c as u64);
                    let mut lat = Vec::with_capacity(ops_per_client);
                    for _ in 0..ops_per_client {
                        let q0 = Instant::now();
                        if rng.below(10) < 8 {
                            // Hot traffic: a cached row (after the first touch).
                            let src = hot[rng.below(hot.len())];
                            let _ = s.row(src).expect("in range");
                        } else {
                            // Cold traffic: landmark-certified or fallback. Steer
                            // the source off the hot rows so every cold query
                            // misses regardless of client interleaving — that
                            // keeps the landmark/fallback counters pure
                            // functions of the per-client request sequences.
                            let mut u = rng.below(n) as u32;
                            if (u as usize).is_multiple_of(n / 4) {
                                u += 1;
                            }
                            let v = rng.below(n) as u32;
                            let _ = s.distance(u, v).expect("in range");
                        }
                        lat.push(q0.elapsed().as_secs_f64() * 1e6);
                    }
                    lat
                })
            })
            .collect();
        let mut lat: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect();
        let wall = w0.elapsed().as_secs_f64();
        let p50 = lat_row(&mut t, "cached 80/20 hot/cold mix", clients, &mut lat, wall);
        let st = served.stats();
        // With concurrent clients the hit/miss *split* on a hot row's first
        // touch depends on which client inserts it — only the sum is a pure
        // function of the request sequences, so print the sum (the
        // per-counter splits are pinned sequentially in tests/serving.rs).
        println!(
            "[serve] {} client(s): lookups = {}, landmark answers = {}, \
             fallbacks = {}, evictions = {}, resident = {}/{}",
            clients,
            st.hits + st.misses,
            st.landmark_answers,
            st.fallbacks,
            st.evictions,
            st.len,
            st.capacity
        );
        emit(
            cfg,
            &[Record::new("serve")
                .str("workload", "closed-loop-mix")
                .u64("n", n as u64)
                .u64("clients", clients as u64)
                .u64("ops", (clients * ops_per_client) as u64)
                .f64("p50_us", p50)
                .u64("lookups", st.hits + st.misses)
                .u64("landmark_answers", st.landmark_answers)
                .u64("fallbacks", st.fallbacks)],
        );
    }

    t.print(&format!(
        "serve: query plane under load (n = {}, closed-loop; fast-path \
         bit-identity pinned in tests/serving.rs, landmark stretch in \
         tests/landmark.rs)",
        fmt_n(n)
    ));
}

/// One request of the deterministic open-loop mix.
#[derive(Clone, Copy)]
enum Request {
    /// Hot traffic: a full cached row.
    Row(u32),
    /// Cold traffic: a point-to-point pair.
    Pair(u32, u32),
}

/// The deterministic 80/20 hot-row / cold-p2p mix: a pure function of
/// `(n, hot, ops, seed)` — the schedule never depends on timing.
fn request_mix(n: usize, hot: &[u32], ops: usize, seed: u64) -> Vec<Request> {
    let mut rng = Rng(seed);
    (0..ops)
        .map(|_| {
            if rng.below(10) < 8 {
                Request::Row(hot[rng.below(hot.len())])
            } else {
                Request::Pair(rng.below(n) as u32, rng.below(n) as u32)
            }
        })
        .collect()
}

/// Measurements of one open-loop rate point.
struct RatePoint {
    rate: f64,
    ops: usize,
    accepted: usize,
    rejected: u64,
    p50_us: f64,
    p99_us: f64,
    stats: sssp::CacheStats,
}

/// Run one open-loop rate point: requests arrive at `t_i = i / rate`
/// regardless of completions; `workers` threads pull the next request
/// index, sleep until its scheduled arrival, and issue it. Latency is
/// measured from the *scheduled* arrival (queueing delay included — the
/// whole point of open loop). Rejections come from the admission gate.
fn open_loop_point(
    served: &Arc<CachedOracle<Arc<Oracle>>>,
    requests: &[Request],
    rate: f64,
    workers: usize,
) -> (Vec<f64>, u64) {
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    let (lat, rejected) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let served = Arc::clone(served);
                let next = &next;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    let mut rejected = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= requests.len() {
                            break;
                        }
                        let sched_s = i as f64 / rate;
                        let now_s = start.elapsed().as_secs_f64();
                        if now_s < sched_s {
                            std::thread::sleep(Duration::from_secs_f64(sched_s - now_s));
                        }
                        let res = match requests[i] {
                            Request::Row(s) => served.row(s).map(|_| ()),
                            Request::Pair(u, v) => served.distance(u, v).map(|_| ()),
                        };
                        let done_s = start.elapsed().as_secs_f64();
                        match res {
                            Ok(()) => lat.push((done_s - sched_s) * 1e6),
                            Err(SsspError::Overloaded { .. }) => rejected += 1,
                            Err(e) => panic!("open-loop request failed: {e}"),
                        }
                    }
                    (lat, rejected)
                })
            })
            .collect();
        let mut lat = Vec::with_capacity(requests.len());
        let mut rejected = 0u64;
        for h in handles {
            let (l, r) = h.join().expect("open-loop worker");
            lat.extend(l);
            rejected += r;
        }
        (lat, rejected)
    });
    (lat, rejected)
}

/// Sweep the arrival rates; emit the JSON record for each rate point
/// **as soon as it completes** (a failure at the next rate must not lose
/// it), then return the points for the summary table.
fn open_loop_sweep(
    cfg: &Config,
    oracle: &Arc<Oracle>,
    plane: &Arc<LandmarkPlane>,
    rates: &[f64],
    secs: f64,
    max_inflight: usize,
    workers: usize,
) -> Vec<RatePoint> {
    let n = oracle.num_vertices();
    let hot: Vec<u32> = (0..4).map(|i| (i * n / 4) as u32).collect();
    let mut points = Vec::with_capacity(rates.len());
    for &rate in rates {
        // Fresh cache per rate point (counters start at zero), one shared
        // landmark plane (built once — the expensive part).
        let served = Arc::new(
            CachedOracle::with_config(
                Arc::clone(oracle),
                CacheConfig::new(8)
                    .policy(FillPolicy::LandmarkOnly)
                    .landmark_plane(Arc::clone(plane))
                    .admission(max_inflight, false),
            )
            .expect("config"),
        );
        for &h in &hot {
            let _ = served.row(h).expect("prewarm"); // hot rows resident
        }
        let ops = ((rate * secs) as usize).clamp(20, 10_000);
        let requests = request_mix(n, &hot, ops, 0xA11C_E000 + rate as u64);
        let (mut lat, rejected) = open_loop_point(&served, &requests, rate, workers);
        sort_lat(&mut lat);
        let point = RatePoint {
            rate,
            ops,
            accepted: lat.len(),
            rejected,
            p50_us: percentile(&lat, 0.50),
            p99_us: percentile(&lat, 0.99),
            stats: served.stats(),
        };
        // Per rate point, not once at the end: a failed or killed sweep
        // keeps every record already earned.
        emit(
            cfg,
            &[Record::new("serve-open")
                .u64("n", n as u64)
                .f64("rate_per_s", point.rate)
                .u64("ops", point.ops as u64)
                .u64("accepted", point.accepted as u64)
                .u64("rejected", point.rejected)
                .f64("p50_us", point.p50_us)
                .f64("p99_us", point.p99_us)
                .u64("hits", point.stats.hits)
                .u64("landmark_answers", point.stats.landmark_answers)
                .u64("fallbacks", point.stats.fallbacks)
                .u64("rejections", point.stats.rejections)
                .u64("max_inflight", max_inflight as u64)],
        );
        println!(
            "[serve-open] rate {:>6.0}/s: {} ops, {} ok, {} rejected, \
             p50 = {:.0} us, p99 = {:.0} us",
            point.rate, point.ops, point.accepted, point.rejected, point.p50_us, point.p99_us
        );
        points.push(point);
    }
    points
}

/// The `serve-open` experiment: open-loop arrival-rate sweep over the
/// landmark-backed, admission-gated cache (EXPERIMENTS.md).
pub fn serve_open(cfg: &Config) {
    let (n, oracle, plane) = build_stack(cfg, 16);
    let rates: &[f64] = if cfg.quick {
        &[50.0, 200.0]
    } else {
        &[100.0, 400.0, 1600.0, 6400.0]
    };
    let secs = if cfg.quick { 0.4 } else { 1.5 };
    let max_inflight = 4;
    let workers = 8;
    let points = open_loop_sweep(cfg, &oracle, &plane, rates, secs, max_inflight, workers);

    let mut t = Table::new(&[
        "rate/s", "ops", "ok", "rejected", "hits", "lm", "fallback", "p50 us", "p99 us",
    ]);
    for p in &points {
        t.row(vec![
            f(p.rate),
            fmt_n(p.ops),
            fmt_n(p.accepted),
            fmt_n(p.rejected as usize),
            fmt_n(p.stats.hits as usize),
            fmt_n(p.stats.landmark_answers as usize),
            fmt_n(p.stats.fallbacks as usize),
            f(p.p50_us),
            f(p.p99_us),
        ]);
    }
    t.print(&format!(
        "serve-open: open-loop arrival sweep (n = {}, {} workers, admission \
         gate = {} in-flight explorations, reject mode; latency measured \
         from scheduled arrival)",
        fmt_n(n),
        workers,
        max_inflight
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression (PR 10 satellite): the open-loop sweep must emit its
    /// JSON record per rate point as each completes — a late failure
    /// must not lose earlier records. Runs the real sweep on a tiny
    /// instance and counts the lines in the artifact.
    #[test]
    fn open_loop_sweep_emits_one_json_record_per_rate_point() {
        let g = gen::road_grid(8, 8, 3, 1.0, 4.0);
        let oracle = Arc::new(Oracle::builder(g).eps(0.5).kappa(4).build().unwrap());
        let plane = Arc::new(LandmarkPlane::build(&oracle, &LandmarkConfig::new(4, 1.0)).unwrap());
        let dir = std::env::temp_dir().join(format!("xbench-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve_open.json");
        let _ = std::fs::remove_file(&path);
        let cfg = Config {
            quick: true,
            json: Some(path.clone()),
        };
        let rates = [500.0, 1000.0];
        let points = open_loop_sweep(&cfg, &oracle, &plane, &rates, 0.05, 2, 2);
        assert_eq!(points.len(), rates.len());
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), rates.len(), "one JSON record per rate point");
        for (line, rate) in lines.iter().zip(rates) {
            assert!(line.contains("\"experiment\":\"serve-open\""));
            assert!(line.contains(&format!("\"rate_per_s\":{rate}")));
        }
        // Every request was either answered or typed-rejected — none lost.
        for p in &points {
            assert_eq!(p.accepted + p.rejected as usize, p.ops);
        }
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    /// The open-loop mix is a pure function of its seed.
    #[test]
    fn request_mix_is_deterministic() {
        let hot = [0u32, 7, 13];
        let a = request_mix(100, &hot, 64, 42);
        let b = request_mix(100, &hot, 64, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (Request::Row(s), Request::Row(t)) => assert_eq!(s, t),
                (Request::Pair(u1, v1), Request::Pair(u2, v2)) => {
                    assert_eq!((u1, v1), (u2, v2))
                }
                _ => panic!("mix diverged between identical seeds"),
            }
        }
    }
}
