//! Experiment SNAPSHOT — the persistence plane (DESIGN.md §6, §11).
//!
//! The oracle is the expensive artifact: construction dominates, queries
//! are cheap. This experiment measures what the snapshot container buys:
//!
//! 1. **construct vs load** — build a road-grid oracle, save it with
//!    [`Oracle::save_snapshot`], reload it with
//!    [`OracleBuilder::from_snapshot`], and compare wall times. The
//!    headline: loading must sit an order of magnitude below constructing
//!    at n = 64k (the acceptance bar), and stay flat-cheap at n = 1M.
//! 2. **bytes on disk** — the container is the SoA columns verbatim plus
//!    a checksummed header, so size is predictable; the table records it
//!    next to |E| and |H|.
//! 3. **bit-identity spot checks** — a handful of `distance(u, v)` probes
//!    on the loaded oracle must equal the original to the bit (the full
//!    contract is pinned by `tests/snapshot.rs`; here we just refuse to
//!    print numbers for a snapshot that lies).
//!
//! Scenarios are road grids (the paper's motivating graph family for
//! serving): 256×256 (n = 65,536) at serving-grade parameters for the
//! speedup bar, and 1024×1024 (n = 1,048,576) for the at-scale run —
//! the latter with sparser construction parameters (κ = 8, hop budgets
//! capped) to keep the one-off construction affordable on one machine.

use crate::table::{f, n as fmt_n, Table};
use crate::Config;
use pgraph::gen;
use sssp::{DistanceOracle, Oracle, OracleBuilder};
use std::time::Instant;

/// Spot-check probe pairs: near the corners and the middle (early-exit
/// point-to-point keeps these cheap even at n = 1M).
fn probe_pairs(n: usize) -> Vec<(u32, u32)> {
    let n = n as u32;
    vec![(0, 1), (0, n / 2), (n / 2, n / 2 + 1), (n - 2, n - 1)]
}

/// One scenario: build a `rows × cols` road-grid oracle, snapshot it to a
/// temp file, reload, verify, and append a table row. Returns
/// (construct seconds, load seconds).
fn scenario(
    t: &mut Table,
    label: &str,
    rows: usize,
    cols: usize,
    eps: f64,
    kappa: usize,
    hop_cap: Option<usize>,
) -> (f64, f64) {
    let g = gen::road_grid(rows, cols, 7, 1.0, 10.0);
    let (n, m) = (g.num_vertices(), g.num_edges());
    let t0 = Instant::now();
    let mut b = Oracle::builder(g).eps(eps).kappa(kappa);
    if let Some(cap) = hop_cap {
        b = b.hop_cap(cap);
    }
    let oracle = b.build().expect("params");
    let construct_s = t0.elapsed().as_secs_f64();

    let path = std::env::temp_dir().join(format!("pram-sssp-snapshot-{n}.bin"));
    let t0 = Instant::now();
    oracle.save_snapshot(&path).expect("save snapshot");
    let save_s = t0.elapsed().as_secs_f64();
    let bytes = std::fs::metadata(&path).expect("snapshot file").len();
    assert_eq!(bytes, oracle.snapshot_size(), "declared size is exact");

    let t0 = Instant::now();
    let loaded = OracleBuilder::from_snapshot(&path).expect("load snapshot");
    let load_s = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);

    for (u, v) in probe_pairs(n) {
        let a = oracle.distance(u, v).expect("in range");
        let b = loaded.distance(u, v).expect("in range");
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "loaded oracle must answer bit-identically (pair {u}-{v})"
        );
    }

    t.row(vec![
        label.to_string(),
        fmt_n(n),
        fmt_n(m),
        fmt_n(oracle.hopset_size()),
        f(construct_s),
        f(save_s),
        f(load_s),
        format!("{:.1}", bytes as f64 / (1024.0 * 1024.0)),
        format!("{:.0}x", construct_s / load_s.max(1e-9)),
    ]);
    (construct_s, load_s)
}

/// The `snapshot` experiment: persistence-plane wall times and sizes
/// (EXPERIMENTS.md).
pub fn snapshot(cfg: &Config) {
    let mut t = Table::new(&[
        "scenario",
        "n",
        "m",
        "|H|",
        "construct s",
        "save s",
        "load s",
        "MiB",
        "speedup",
    ]);
    if cfg.quick {
        // CI smoke: one small grid, same code path end to end.
        scenario(&mut t, "grid 48x48", 48, 48, 0.25, 4, None);
    } else {
        // The speedup bar: serving-grade parameters at n = 64k.
        let (c64k, l64k) = scenario(&mut t, "grid 256x256", 256, 256, 0.25, 4, None);
        println!(
            "[snapshot] n = 64k: load is {:.0}x faster than construction \
             ({:.2} s -> {:.3} s)",
            c64k / l64k.max(1e-9),
            c64k,
            l64k
        );
        // The at-scale run: 1M vertices with sparser construction
        // parameters (κ = 8 ⇒ |H| ~ n^{1+1/8}, hop budgets capped at 32)
        // so the one-off build stays affordable on one machine — the
        // point here is the persistence plane at scale, not stretch.
        scenario(
            &mut t,
            "grid 1024x1024 (k=8 cap=32)",
            1024,
            1024,
            0.5,
            8,
            Some(32),
        );
    }
    t.print(
        "snapshot: construct once, load forever (bit-identity spot-checked \
         here; the full round-trip contract is pinned in tests/snapshot.rs)",
    );
}
