//! Minimal fixed-width table printer for experiment output.

/// A simple table accumulator that prints aligned columns.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str("| ");
                out.push_str(c);
                out.push_str(&" ".repeat(width[i] - c.len() + 1));
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.headers);
        for w in &width {
            out.push('|');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("|\n");
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }

    /// Print with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n## {title}\n");
        print!("{}", self.render());
    }
}

/// Format an f64 compactly.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

/// Format a usize with thousands separators.
pub fn n(x: usize) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn formatters() {
        assert_eq!(f(0.25), "0.2500");
        assert_eq!(f(1.5e7), "1.500e7");
        assert_eq!(n(1234567), "1_234_567");
        assert_eq!(n(42), "42");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
