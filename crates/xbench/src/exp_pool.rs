//! Pool-overhead experiment: dispatch latency of the retired scoped-spawn
//! execution model vs the persistent worker pool, on sub-millisecond
//! rounds — the workload shape of the whole oracle pipeline (thousands of
//! tiny β-limited Bellman–Ford pulses and ruling-set rounds).
//!
//! This is a **wall-clock** measurement (the one thing the `Ledger`
//! deliberately does not capture): the per-round cost of *starting* a
//! parallel round. The scoped reference implementation below reproduces
//! the pre-persistent-pool execution model exactly — `bounds.len() − 1`
//! fresh `std::thread::scope` spawns per round, caller takes chunk 0 —
//! so the comparison isolates dispatch overhead: both sides run the same
//! chunk boundaries and the same per-chunk work, and both return the same
//! sum (asserted).

use crate::table::Table;
use crate::Config;
use pram::{pool, Executor};
use std::hint::black_box;
use std::ops::Range;
use std::time::Instant;

/// One measured thread count.
#[derive(Clone, Copy, Debug)]
pub struct OverheadRow {
    /// Thread count.
    pub threads: usize,
    /// Chunks per round at this count.
    pub chunks: usize,
    /// Mean ns per round, scoped-spawn execution (spawn per round).
    pub scoped_ns: f64,
    /// Mean ns per round, persistent pool (wake + barrier per round).
    pub persistent_ns: f64,
}

/// One round of the retired scoped-spawn model: spawn a fresh scoped
/// thread per chunk `1..`, caller takes chunk 0 — exactly what every
/// primitive call paid before the persistent pool.
pub fn scoped_round(bounds: &[Range<usize>], data: &[u64]) -> u64 {
    if bounds.len() <= 1 {
        return bounds
            .iter()
            .map(|r| data[r.clone()].iter().sum::<u64>())
            .sum();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = bounds[1..]
            .iter()
            .map(|r| {
                let r = r.clone();
                s.spawn(move || data[r].iter().sum::<u64>())
            })
            .collect();
        let mut total = data[bounds[0].clone()].iter().sum::<u64>();
        for h in handles {
            total += h.join().expect("scoped worker");
        }
        total
    })
}

/// One round on the persistent pool.
pub fn persistent_round(exec: &Executor, bounds: &[Range<usize>], data: &[u64]) -> u64 {
    exec.run_chunks(bounds, |r| data[r].iter().sum::<u64>())
        .into_iter()
        .sum()
}

/// Measure mean per-round wall-clock of both models over `rounds` rounds
/// of a length-`len` reduction, at t ∈ {1, 2, 4, 8}.
pub fn measure(len: usize, rounds: usize) -> Vec<OverheadRow> {
    let data: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(31) % 257).collect();
    let expect: u64 = data.iter().sum();
    let mut rows = Vec::new();
    for &t in &[1usize, 2, 4, 8] {
        let bounds = pool::chunk_bounds(len, t);
        let exec = Executor::new(t);
        // Warm-up: fault pages in, park the workers once.
        for _ in 0..3 {
            assert_eq!(black_box(scoped_round(&bounds, &data)), expect);
            assert_eq!(black_box(persistent_round(&exec, &bounds, &data)), expect);
        }
        let t0 = Instant::now();
        for _ in 0..rounds {
            black_box(scoped_round(&bounds, &data));
        }
        let scoped_ns = t0.elapsed().as_nanos() as f64 / rounds as f64;
        let t1 = Instant::now();
        for _ in 0..rounds {
            black_box(persistent_round(&exec, &bounds, &data));
        }
        let persistent_ns = t1.elapsed().as_nanos() as f64 / rounds as f64;
        rows.push(OverheadRow {
            threads: t,
            chunks: bounds.len(),
            scoped_ns,
            persistent_ns,
        });
    }
    rows
}

/// The `pool-overhead` experiment: print the dispatch-latency table and
/// the scoped/persistent ratio (recorded in EXPERIMENTS.md).
pub fn pool_overhead(cfg: &Config) {
    let len = 16 * cfg.sz(4096); // 64k full / 16k quick: sub-ms rounds
    let rounds = if cfg.quick { 200 } else { 1000 };
    let rows = measure(len, rounds);
    let mut t = Table::new(&[
        "threads",
        "chunks",
        "scoped ns/round",
        "persistent ns/round",
        "scoped/persistent",
    ]);
    for r in &rows {
        t.row(vec![
            r.threads.to_string(),
            r.chunks.to_string(),
            format!("{:.0}", r.scoped_ns),
            format!("{:.0}", r.persistent_ns),
            format!("{:.2}x", r.scoped_ns / r.persistent_ns),
        ]);
    }
    t.print(&format!(
        "pool-overhead: per-round dispatch latency, scoped spawn vs persistent pool \
         (len = {len}, {rounds} rounds; wall-clock, not a PRAM claim)"
    ));
    let records: Vec<crate::json::Record> = rows
        .iter()
        .map(|r| {
            crate::json::Record::new("pool-overhead")
                .u64("n", len as u64)
                .u64("threads", r.threads as u64)
                .u64("chunks", r.chunks as u64)
                .f64("scoped_ns", r.scoped_ns)
                .f64("persistent_ns", r.persistent_ns)
        })
        .collect();
    crate::json::emit(cfg, &records);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_models_compute_the_same_reduction() {
        let data: Vec<u64> = (0..10_000).collect();
        let bounds = pool::chunk_bounds(data.len(), 4);
        let exec = Executor::new(4);
        assert_eq!(
            scoped_round(&bounds, &data),
            persistent_round(&exec, &bounds, &data)
        );
    }

    #[test]
    fn measure_produces_all_thread_counts() {
        let rows = measure(8192, 5);
        assert_eq!(
            rows.iter().map(|r| r.threads).collect::<Vec<_>>(),
            [1, 2, 4, 8]
        );
        assert!(rows
            .iter()
            .all(|r| r.scoped_ns > 0.0 && r.persistent_ns > 0.0));
    }
}
