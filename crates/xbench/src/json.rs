//! Minimal JSON-lines emission for machine-readable benchmark records.
//!
//! `repro --json <path>` makes every participating experiment append one
//! JSON object per measurement to `<path>` (JSON lines: independent
//! objects separated by newlines, so reruns append and partial files stay
//! parseable). The format mirrors the `BENCH_scaling.json` convention:
//! flat objects with an `"experiment"` discriminator plus numeric fields
//! (`n`, `m`, `threads`, `ms`, `peak_bytes`, `edges_per_sec`, ...).
//!
//! Hand-rolled on purpose: the workspace has no serde (no registry
//! access), records are flat, and the writer is ~60 lines. Non-finite
//! floats encode as `null` (JSON has no NaN/Inf).

use std::io::{self, Write};
use std::path::Path;

/// One flat JSON object, field order preserved.
#[derive(Clone, Debug)]
pub struct Record {
    fields: Vec<(String, Value)>,
}

#[derive(Clone, Debug)]
enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Record {
    /// Start a record with its `"experiment"` discriminator.
    pub fn new(experiment: &str) -> Self {
        Record {
            fields: vec![("experiment".into(), Value::Str(experiment.into()))],
        }
    }

    /// Append an unsigned integer field.
    pub fn u64(mut self, key: &str, v: u64) -> Self {
        self.fields.push((key.into(), Value::U64(v)));
        self
    }

    /// Append a signed integer field.
    pub fn i64(mut self, key: &str, v: i64) -> Self {
        self.fields.push((key.into(), Value::I64(v)));
        self
    }

    /// Append a float field (`null` if non-finite).
    pub fn f64(mut self, key: &str, v: f64) -> Self {
        self.fields.push((key.into(), Value::F64(v)));
        self
    }

    /// Append a string field.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.fields.push((key.into(), Value::Str(v.into())));
        self
    }

    /// Encode as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push('{');
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape(k, &mut out);
            out.push(':');
            match v {
                Value::U64(x) => out.push_str(&x.to_string()),
                Value::I64(x) => out.push_str(&x.to_string()),
                Value::F64(x) if x.is_finite() => out.push_str(&format!("{x}")),
                Value::F64(_) => out.push_str("null"),
                Value::Str(s) => escape(s, &mut out),
            }
        }
        out.push('}');
        out
    }
}

/// Append `records` to `path` as JSON lines (creates the file if absent).
pub fn append_records(path: &Path, records: &[Record]) -> io::Result<()> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut buf = String::new();
    for r in records {
        buf.push_str(&r.to_json());
        buf.push('\n');
    }
    f.write_all(buf.as_bytes())?;
    f.flush()
}

/// Emit `records` to the config's JSON sink, if one was requested with
/// `repro --json <path>`. Errors are reported, not fatal — a benchmark
/// run should not die on a full disk after hours of measurement.
pub fn emit(cfg: &crate::Config, records: &[Record]) {
    if let Some(path) = &cfg.json {
        if let Err(e) = append_records(path, records) {
            eprintln!("[json] failed to append to {}: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_flat_objects_with_types_and_escapes() {
        let r = Record::new("memory")
            .u64("n", 65536)
            .i64("net", -12)
            .f64("ms", 1.5)
            .f64("bad", f64::NAN)
            .str("phase", "overlay \"csr\"\n");
        assert_eq!(
            r.to_json(),
            r#"{"experiment":"memory","n":65536,"net":-12,"ms":1.5,"bad":null,"phase":"overlay \"csr\"\n"}"#
        );
    }

    #[test]
    fn append_is_json_lines() {
        let dir = std::env::temp_dir().join(format!("xbench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let _ = std::fs::remove_file(&path);
        append_records(&path, &[Record::new("a").u64("x", 1)]).unwrap();
        append_records(&path, &[Record::new("b").u64("x", 2)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"a\"") && lines[1].contains("\"x\":2"));
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }
}
