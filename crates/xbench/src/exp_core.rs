//! Experiments E1–E5: size, stretch, per-scale coverage, counted
//! work/depth, multi-source scaling, and phase decay (DESIGN.md §6).

use crate::table::{f, n as fmt_n, Table};
use crate::Config;
use hopset::validate::measure_stretch;
use hopset::{build_hopset, BuildOptions, HopsetParams, ParamMode};
use pgraph::{exact, gen, Graph, UnionView};
use sssp::eval::spread_sources;
use sssp::DistanceOracle;

fn practical(g: &Graph, eps: f64, kappa: usize, rho: f64) -> HopsetParams {
    HopsetParams::new(
        g.num_vertices(),
        eps,
        kappa,
        rho,
        ParamMode::Practical,
        g.aspect_ratio_bound(),
        None,
    )
    .expect("valid params")
}

/// E1 — Theorem 3.7 / eq. (10): `|H| ≤ ⌈log Λ⌉ · n^{1+1/κ}`.
pub fn e1_size(cfg: &Config) {
    let mut t = Table::new(&[
        "n",
        "m",
        "kappa",
        "|H|",
        "bound",
        "|H|/bound",
        "super",
        "inter",
    ]);
    for &nn in &[cfg.sz(256), cfg.sz(512), cfg.sz(1024), cfg.sz(2048)] {
        for &kappa in &[2usize, 3, 4, 6] {
            let g = gen::gnm_connected(nn, 4 * nn, 7, 1.0, 16.0);
            let rho = (1.0 / kappa as f64).min(0.4999);
            let p = practical(&g, 0.25, kappa, rho);
            let built = build_hopset(&g, &p, BuildOptions::default());
            let bound = built.size_bound();
            let (s, i, _) = built.hopset.kind_counts();
            t.row(vec![
                fmt_n(nn),
                fmt_n(g.num_edges()),
                kappa.to_string(),
                fmt_n(built.hopset.len()),
                f(bound),
                f(built.hopset.len() as f64 / bound),
                fmt_n(s),
                fmt_n(i),
            ]);
        }
    }
    t.print("E1 size: |H| vs ceil(log L)*n^{1+1/kappa} (eq. 10) — ratio must be < 1");
}

/// E2 — Theorem 3.7 / Corollary 3.5: stretch at the query hop budget.
pub fn e2_stretch(cfg: &Config) {
    let mut t = Table::new(&[
        "family",
        "n",
        "eps",
        "hop cap",
        "beta",
        "max-stretch",
        "mean",
        "undershoot",
        "unreached",
    ]);
    let nn = cfg.sz(1024);
    let families: Vec<(&str, Graph)> = vec![
        ("gnm", gen::gnm_connected(nn, 4 * nn, 3, 1.0, 16.0)),
        ("road-grid", gen::road_grid(32, nn / 32, 5, 1.0, 10.0)),
        ("clique-chain", gen::clique_chain(nn / 16, 16, 2.0)),
        (
            "weighted-path",
            gen::path_weighted(nn, |i| 1.0 + (i % 11) as f64),
        ),
    ];
    for (name, g) in &families {
        for &eps in &[0.1, 0.25, 0.5] {
            // Uncapped (the theorem's budget) and a practical 48-hop cap.
            for cap in [None, Some(48usize)] {
                let p = HopsetParams::new(
                    g.num_vertices(),
                    eps,
                    4,
                    0.3,
                    ParamMode::Practical,
                    g.aspect_ratio_bound(),
                    cap,
                )
                .expect("valid params");
                let built = build_hopset(g, &p, BuildOptions::default());
                let sources = spread_sources(g.num_vertices(), 4);
                let rep = measure_stretch(g, &built.hopset, &sources, p.query_hops);
                t.row(vec![
                    name.to_string(),
                    fmt_n(g.num_vertices()),
                    f(eps),
                    cap.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
                    fmt_n(p.query_hops),
                    f(rep.max_stretch),
                    f(rep.mean_stretch),
                    rep.undershoots.to_string(),
                    rep.unreached.to_string(),
                ]);
            }
        }
    }
    t.print("E2 stretch at hop budget beta (contract: max-stretch <= 1+eps at budget beta, undershoot = 0)");
}

/// E2b — Lemmas 2.1/3.3: a single-scale hopset `H_k` together with `G`
/// serves *all* distances `≤ 2^{k+1}`, not only its own band.
pub fn e2b_scale(cfg: &Config) {
    let nn = cfg.sz(512);
    let g = gen::gnm_connected(nn, 3 * nn, 9, 1.0, 24.0);
    let p = practical(&g, 0.25, 4, 0.3);
    let built = build_hopset(&g, &p, BuildOptions::default());
    let sources = spread_sources(nn, 3);
    let mut t = Table::new(&[
        "scale k",
        "|H_k|",
        "pairs<=2^{k+1}",
        "max-stretch",
        "unreached",
    ]);
    for k in built.k0..=built.lambda {
        let sl = built.hopset.scale_slice(k);
        let sz = sl.len();
        let view = UnionView::with_overlay_columns(&g, sl.us(), sl.vs(), sl.ws());
        let ceil = 2f64.powi(k as i32 + 1);
        let mut max_stretch: f64 = 1.0;
        let mut pairs = 0usize;
        let mut unreached = 0usize;
        for &s in &sources {
            let ex = exact::dijkstra(&g, s).dist;
            let ap = exact::bellman_ford_hops(&view, &[s], p.query_hops);
            for v in 0..nn {
                if ex[v] > 0.0 && ex[v] <= ceil {
                    pairs += 1;
                    if ap[v].is_finite() {
                        max_stretch = max_stretch.max(ap[v] / ex[v]);
                    } else {
                        unreached += 1;
                    }
                }
            }
        }
        t.row(vec![
            k.to_string(),
            fmt_n(sz),
            fmt_n(pairs),
            f(max_stretch),
            unreached.to_string(),
        ]);
    }
    t.print("E2b per-scale coverage: G + H_k alone serves all d <= 2^{k+1}");
}

/// E3 — Theorem 3.7: counted work `O((|E|+n^{1+1/κ})·n^ρ·polylog)` and
/// polylogarithmic depth.
pub fn e3_work(cfg: &Config) {
    let mut t = Table::new(&[
        "n",
        "m",
        "rho",
        "work",
        "work/unit",
        "depth",
        "depth/log^3 n",
    ]);
    for &nn in &[
        cfg.sz(256),
        cfg.sz(512),
        cfg.sz(1024),
        cfg.sz(2048),
        cfg.sz(4096),
    ] {
        for &rho in &[0.26, 0.3, 0.4] {
            let g = gen::gnm_connected(nn, 4 * nn, 11, 1.0, 16.0);
            let p = practical(&g, 0.25, 4, rho);
            let built = build_hopset(&g, &p, BuildOptions::default());
            let unit = (g.num_edges() as f64 + (nn as f64).powf(1.25)) * (nn as f64).powf(rho);
            let lg = (nn as f64).log2();
            t.row(vec![
                fmt_n(nn),
                fmt_n(g.num_edges()),
                f(rho),
                fmt_n(built.ledger.work() as usize),
                f(built.ledger.work() as f64 / unit),
                fmt_n(built.ledger.depth() as usize),
                f(built.ledger.depth() as f64 / lg.powi(3)),
            ]);
        }
    }
    t.print(
        "E3 counted PRAM cost: work/((m+n^{1+1/k})n^rho) must stay polylog-flat; depth/log^3 n bounded",
    );
}

/// E4 — Theorem 3.8: aMSSD — work grows ~linearly with |S|, depth doesn't.
pub fn e4_msssd(cfg: &Config) {
    let nn = cfg.sz(1024);
    let g = gen::gnm_connected(nn, 4 * nn, 17, 1.0, 12.0);
    let oracle = sssp::Oracle::builder(g)
        .eps(0.25)
        .kappa(4)
        .build()
        .expect("params");
    let mut t = Table::new(&["|S|", "work", "work/|S|", "depth", "max-stretch"]);
    for &s in &[1usize, 2, 4, 8, 16] {
        let sources = spread_sources(nn, s);
        let r = oracle.distances_multi(&sources).expect("sources in range");
        let mut worst: f64 = 1.0;
        for (i, &src) in sources.iter().enumerate() {
            let ex = exact::dijkstra(oracle.graph(), src).dist;
            let row = r.dist.row(i);
            #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
            for v in 0..nn {
                if ex[v] > 0.0 && ex[v].is_finite() && row[v].is_finite() {
                    worst = worst.max(row[v] / ex[v]);
                }
            }
        }
        t.row(vec![
            s.to_string(),
            fmt_n(r.ledger.work() as usize),
            fmt_n((r.ledger.work() / s as u64) as usize),
            fmt_n(r.ledger.depth() as usize),
            f(worst),
        ]);
    }
    t.print("E4 aMSSD scaling: work ~ |S|, depth flat (parallel explorations)");
}

/// E5 — Lemmas 2.5–2.7 / eq. (5): per-phase cluster counts against the
/// paper's decay bounds, on two families: a clique chain (one dense scale)
/// and a hierarchical-community graph (dense at every scale, which drives
/// the phase loop through several rounds of superclustering).
pub fn e5_phases(cfg: &Config) {
    let nn = cfg.sz(1024);
    let families: Vec<(&str, Graph)> = vec![
        ("clique-chain", gen::clique_chain(nn / 16, 16, 2.0)),
        (
            "hierarchical",
            gen::hierarchical(4, if cfg.quick { 4 } else { 5 }, 6.0),
        ),
    ];
    for (name, g) in &families {
        let p = practical(g, 0.25, 4, 0.3);
        let built = build_hopset(g, &p, BuildOptions::default());
        // Representative scale: the one with the most phases executed.
        let rep = built
            .scales
            .iter()
            .max_by_key(|s| (s.phases.len(), s.edges_added))
            .expect("at least one scale");
        let n_f = g.num_vertices() as f64;
        let mut t = Table::new(&[
            "phase i", "deg_i", "|P_i|", "bound", "popular", "|Q_i|", "|U_i|", "s-edges", "i-edges",
        ]);
        for ph in &rep.phases {
            let i = ph.phase as f64;
            let i0 = p.i0 as f64;
            // Lemma 2.6 for the exponential stage, Lemma 2.7 afterwards.
            let bound = if (ph.phase as isize) <= p.i0 {
                n_f.powf(1.0 - (2f64.powf(i) - 1.0) / p.kappa as f64)
            } else {
                n_f.powf(1.0 + 1.0 / p.kappa as f64 - (i - i0) * p.rho)
            };
            t.row(vec![
                ph.phase.to_string(),
                fmt_n(ph.degree),
                fmt_n(ph.clusters),
                f(bound.min(n_f)),
                fmt_n(ph.popular),
                fmt_n(ph.ruling),
                fmt_n(ph.unclustered),
                fmt_n(ph.super_edges),
                fmt_n(ph.inter_edges),
            ]);
        }
        t.print(&format!(
            "E5 phase decay at scale k={} ({name} n={}): |P_i| <= bound (Lemmas 2.6/2.7)",
            rep.k,
            g.num_vertices()
        ));
    }
}
