//! Property tests for the graph substrate.

use pgraph::exact::{bellman_ford_hops, dijkstra};
use pgraph::{gen, io, EdgeTag, Graph, GraphBuilder, OverlayCsrBuilder, UnionView, INF};
use proptest::prelude::*;

/// Random overlay edge batches over `n` vertices: a list of "scales", each
/// a list of `(u, v, w)` with `u != v`.
fn arb_scale_batches(n: usize) -> impl Strategy<Value = Vec<Vec<(u32, u32, f64)>>> {
    let edge = (0..n as u32, 1..n as u32, 1u32..50).prop_map(move |(u, d, w)| {
        let v = (u + d) % n as u32;
        (u.min(v), u.max(v), w as f64)
    });
    proptest::collection::vec(proptest::collection::vec(edge, 0..12), 1..5)
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (8usize..60, 0usize..4, any::<u64>(), 1u32..20)
        .prop_map(|(n, d, seed, wmax)| gen::gnm(n, n * d + 1, seed, 1.0, wmax as f64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Text-format round trip is the identity on canonical edge lists.
    #[test]
    fn io_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        io::write_graph(&g, &mut buf).unwrap();
        let h = io::read_graph(buf.as_slice()).unwrap();
        prop_assert_eq!(g.num_vertices(), h.num_vertices());
        prop_assert_eq!(g.edges(), h.edges());
    }

    /// Dijkstra distances satisfy the triangle inequality over edges and
    /// are symmetric (undirected graphs).
    #[test]
    fn dijkstra_triangle_and_symmetry(g in arb_graph()) {
        let n = g.num_vertices();
        let d0 = dijkstra(&g, 0).dist;
        // Edge relaxation is tight at a fixpoint.
        for &(u, v, w) in g.edges() {
            if d0[u as usize].is_finite() {
                prop_assert!(d0[v as usize] <= d0[u as usize] + w + 1e-9);
            }
            if d0[v as usize].is_finite() {
                prop_assert!(d0[u as usize] <= d0[v as usize] + w + 1e-9);
            }
        }
        // Symmetry: d(0, x) == d(x, 0).
        for x in [n / 2, n - 1] {
            let dx = dijkstra(&g, x as u32).dist;
            prop_assert!(
                (d0[x] - dx[0]).abs() < 1e-9
                    || (d0[x] == INF && dx[0] == INF)
            );
        }
    }

    /// Shortest paths reconstructed from parents realize the distances.
    #[test]
    fn dijkstra_paths_realize_distances(g in arb_graph()) {
        let r = dijkstra(&g, 0);
        for v in 0..g.num_vertices() as u32 {
            let Some(path) = r.path_to(v) else { continue };
            let mut acc = 0.0;
            for w in path.windows(2) {
                acc += g.edge_weight(w[0], w[1]).expect("path edge");
            }
            prop_assert!((acc - r.dist[v as usize]).abs() < 1e-9);
        }
    }

    /// Hop-bounded distances interpolate between direct edges and Dijkstra.
    #[test]
    fn bounded_bf_sandwich(g in arb_graph(), hops in 1usize..8) {
        let view = UnionView::base_only(&g);
        let exact = dijkstra(&g, 0).dist;
        let bounded = bellman_ford_hops(&view, &[0], hops);
        let full = bellman_ford_hops(&view, &[0], g.num_vertices());
        for v in 0..g.num_vertices() {
            prop_assert!(bounded[v] >= full[v] - 1e-9);
            prop_assert!(full[v] <= exact[v] + 1e-9);
            prop_assert!(
                (full[v] - exact[v]).abs() < 1e-9
                    || (full[v] == INF && exact[v] == INF)
            );
        }
    }

    /// The builder's parallel-edge dedup keeps the lightest copy, whatever
    /// the insertion order.
    #[test]
    fn builder_dedup_keeps_min(mut ws in proptest::collection::vec(1.0f64..100.0, 1..10)) {
        let mut b = GraphBuilder::new(2);
        for &w in &ws {
            b.add_edge(0, 1, w);
        }
        let g = b.build().unwrap();
        ws.sort_by(|a, b| a.total_cmp(b));
        prop_assert_eq!(g.num_edges(), 1);
        prop_assert_eq!(g.edge_weight(0, 1), Some(ws[0]));
    }

    /// Generators honor their seed contract: same seed same graph,
    /// different seeds (almost always) different graphs.
    #[test]
    fn generator_seed_contract(n in 10usize..50, seed in any::<u64>()) {
        let a = gen::gnm(n, 2 * n, seed, 1.0, 5.0);
        let b = gen::gnm(n, 2 * n, seed, 1.0, 5.0);
        prop_assert_eq!(a.edges(), b.edges());
    }

    /// UnionView::edge_weight equals the min over both layers.
    #[test]
    fn union_view_min_weight(g in arb_graph(), w in 0.5f64..50.0) {
        if g.num_vertices() < 2 { return Ok(()); }
        let extra = vec![(0u32, 1u32, w)];
        let view = UnionView::with_extra(&g, &extra);
        let base = g.edge_weight(0, 1);
        let expect = match base {
            Some(b) => b.min(w),
            None => w,
        };
        prop_assert_eq!(view.edge_weight(0, 1), Some(expect));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The incremental `OverlayCsrBuilder` is semantics-preserving: its
    /// merged union equals a from-scratch `OverlayCsr::build` over the
    /// concatenated batches, per-scale blocks equal per-batch builds with
    /// global index offsets, and block-prefix stacks ("scales ≤ k") equal
    /// from-scratch builds over the concatenated prefix.
    #[test]
    fn overlay_builder_matches_vec_reference(
        n in 4usize..24,
        batches in arb_scale_batches(16),
    ) {
        let n = n.max(16); // batches address vertices 0..16
        let g = Graph::empty(n);
        let mut builder = OverlayCsrBuilder::new(n);
        let mut all: Vec<(u32, u32, f64)> = Vec::new();
        for batch in &batches {
            let us: Vec<u32> = batch.iter().map(|e| e.0).collect();
            let vs: Vec<u32> = batch.iter().map(|e| e.1).collect();
            let ws: Vec<f64> = batch.iter().map(|e| e.2).collect();
            let base = builder.num_extra() as u32;
            builder.append_scale_seq(&us, &vs, &ws);
            // Per-block view == with_extra over the batch, ids shifted.
            let blk = builder.block(builder.num_scales() - 1);
            let blk_view = UnionView::with_csr(&g, blk);
            let ref_view = UnionView::with_extra(&g, batch);
            for v in 0..n as u32 {
                let a: Vec<_> = blk_view.neighbors(v).collect();
                let b: Vec<_> = ref_view
                    .neighbors(v)
                    .map(|(nb, w, t)| match t {
                        EdgeTag::Extra(i) => (nb, w, EdgeTag::Extra(base + i)),
                        t => (nb, w, t),
                    })
                    .collect();
                prop_assert_eq!(a, b, "block mismatch at vertex {}", v);
            }
            all.extend_from_slice(batch);
            // Prefix stack ("scales ≤ current") == from-scratch union so far.
            let stack_view = UnionView::with_stack(&g, builder.blocks());
            let union_view = UnionView::with_extra(&g, &all);
            prop_assert_eq!(stack_view.num_extra(), union_view.num_extra());
            for v in 0..n as u32 {
                let a: Vec<_> = stack_view.neighbors(v).map(|(nb, w, t)| (nb, w.to_bits(), t)).collect();
                let mut b: Vec<_> = union_view.neighbors(v).map(|(nb, w, t)| (nb, w.to_bits(), t)).collect();
                // Stack order is block-major; the reference is globally
                // (nb, idx)-sorted. Same multiset, and per neighbor the idx
                // order matches — normalize both to sorted order.
                b.sort_by_key(|&(nb, _, t)| (nb, match t { EdgeTag::Extra(i) => i as u64, EdgeTag::Base => u64::MAX }));
                let mut a2 = a.clone();
                a2.sort_by_key(|&(nb, _, t)| (nb, match t { EdgeTag::Extra(i) => i as u64, EdgeTag::Base => u64::MAX }));
                prop_assert_eq!(a2, b, "stack mismatch at vertex {}", v);
            }
        }
        // Merged union == from-scratch build over everything, exactly.
        let merged = builder.union_all();
        let merged_view = UnionView::with_csr(&g, &merged);
        let ref_view = UnionView::with_extra(&g, &all);
        for v in 0..n as u32 {
            let a: Vec<_> = merged_view.neighbors(v).collect();
            let b: Vec<_> = ref_view.neighbors(v).collect();
            prop_assert_eq!(a, b, "union mismatch at vertex {}", v);
        }
    }
}
