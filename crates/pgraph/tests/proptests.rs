//! Property tests for the graph substrate.

use pgraph::exact::{bellman_ford_hops, dijkstra};
use pgraph::{gen, io, Graph, GraphBuilder, UnionView, INF};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (8usize..60, 0usize..4, any::<u64>(), 1u32..20)
        .prop_map(|(n, d, seed, wmax)| gen::gnm(n, n * d + 1, seed, 1.0, wmax as f64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Text-format round trip is the identity on canonical edge lists.
    #[test]
    fn io_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        io::write_graph(&g, &mut buf).unwrap();
        let h = io::read_graph(buf.as_slice()).unwrap();
        prop_assert_eq!(g.num_vertices(), h.num_vertices());
        prop_assert_eq!(g.edges(), h.edges());
    }

    /// Dijkstra distances satisfy the triangle inequality over edges and
    /// are symmetric (undirected graphs).
    #[test]
    fn dijkstra_triangle_and_symmetry(g in arb_graph()) {
        let n = g.num_vertices();
        let d0 = dijkstra(&g, 0).dist;
        // Edge relaxation is tight at a fixpoint.
        for &(u, v, w) in g.edges() {
            if d0[u as usize].is_finite() {
                prop_assert!(d0[v as usize] <= d0[u as usize] + w + 1e-9);
            }
            if d0[v as usize].is_finite() {
                prop_assert!(d0[u as usize] <= d0[v as usize] + w + 1e-9);
            }
        }
        // Symmetry: d(0, x) == d(x, 0).
        for x in [n / 2, n - 1] {
            let dx = dijkstra(&g, x as u32).dist;
            prop_assert!(
                (d0[x] - dx[0]).abs() < 1e-9
                    || (d0[x] == INF && dx[0] == INF)
            );
        }
    }

    /// Shortest paths reconstructed from parents realize the distances.
    #[test]
    fn dijkstra_paths_realize_distances(g in arb_graph()) {
        let r = dijkstra(&g, 0);
        for v in 0..g.num_vertices() as u32 {
            let Some(path) = r.path_to(v) else { continue };
            let mut acc = 0.0;
            for w in path.windows(2) {
                acc += g.edge_weight(w[0], w[1]).expect("path edge");
            }
            prop_assert!((acc - r.dist[v as usize]).abs() < 1e-9);
        }
    }

    /// Hop-bounded distances interpolate between direct edges and Dijkstra.
    #[test]
    fn bounded_bf_sandwich(g in arb_graph(), hops in 1usize..8) {
        let view = UnionView::base_only(&g);
        let exact = dijkstra(&g, 0).dist;
        let bounded = bellman_ford_hops(&view, &[0], hops);
        let full = bellman_ford_hops(&view, &[0], g.num_vertices());
        for v in 0..g.num_vertices() {
            prop_assert!(bounded[v] >= full[v] - 1e-9);
            prop_assert!(full[v] <= exact[v] + 1e-9);
            prop_assert!(
                (full[v] - exact[v]).abs() < 1e-9
                    || (full[v] == INF && exact[v] == INF)
            );
        }
    }

    /// The builder's parallel-edge dedup keeps the lightest copy, whatever
    /// the insertion order.
    #[test]
    fn builder_dedup_keeps_min(mut ws in proptest::collection::vec(1.0f64..100.0, 1..10)) {
        let mut b = GraphBuilder::new(2);
        for &w in &ws {
            b.add_edge(0, 1, w);
        }
        let g = b.build().unwrap();
        ws.sort_by(|a, b| a.total_cmp(b));
        prop_assert_eq!(g.num_edges(), 1);
        prop_assert_eq!(g.edge_weight(0, 1), Some(ws[0]));
    }

    /// Generators honor their seed contract: same seed same graph,
    /// different seeds (almost always) different graphs.
    #[test]
    fn generator_seed_contract(n in 10usize..50, seed in any::<u64>()) {
        let a = gen::gnm(n, 2 * n, seed, 1.0, 5.0);
        let b = gen::gnm(n, 2 * n, seed, 1.0, 5.0);
        prop_assert_eq!(a.edges(), b.edges());
    }

    /// UnionView::edge_weight equals the min over both layers.
    #[test]
    fn union_view_min_weight(g in arb_graph(), w in 0.5f64..50.0) {
        if g.num_vertices() < 2 { return Ok(()); }
        let extra = vec![(0u32, 1u32, w)];
        let view = UnionView::with_extra(&g, &extra);
        let base = g.edge_weight(0, 1);
        let expect = match base {
            Some(b) => b.min(w),
            None => w,
        };
        prop_assert_eq!(view.edge_weight(0, 1), Some(expect));
    }
}
