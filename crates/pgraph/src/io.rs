//! A tiny DIMACS-like text format for weighted undirected graphs.
//!
//! ```text
//! c comment lines start with 'c'
//! p <num_vertices> <num_edges>
//! e <u> <v> <weight>
//! ```
//!
//! Self-contained (no serde) and line-oriented so experiment inputs and
//! outputs can be versioned and diffed.

use crate::{Graph, GraphBuilder, VId, Weight};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

pub mod dimacs;
pub mod edge_list;

/// Errors raised while parsing the text format.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the text, with 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The edge list violated graph invariants.
    Graph(crate::csr::GraphError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IoError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Write `g` in the text format.
pub fn write_graph(g: &Graph, w: impl Write) -> Result<(), IoError> {
    let mut out = BufWriter::new(w);
    writeln!(out, "p {} {}", g.num_vertices(), g.num_edges())?;
    for &(u, v, wt) in g.edges() {
        writeln!(out, "e {u} {v} {wt}")?;
    }
    out.flush()?;
    Ok(())
}

/// Write `g` to a file path.
pub fn save_graph(g: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_graph(g, std::fs::File::create(path)?)
}

/// Read a graph in the text format.
pub fn read_graph(r: impl Read) -> Result<Graph, IoError> {
    let reader = BufReader::new(r);
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_edges = 0usize;
    let mut line_str = String::new();
    let mut reader = reader;
    let mut lineno = 0usize;
    loop {
        line_str.clear();
        let read = reader.read_line(&mut line_str)?;
        if read == 0 {
            break;
        }
        lineno += 1;
        let line = line_str.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(IoError::Parse {
                        line: lineno,
                        msg: "duplicate 'p' line".into(),
                    });
                }
                let n: usize = parse_field(it.next(), lineno, "n")?;
                declared_edges = parse_field(it.next(), lineno, "m")?;
                builder = Some(GraphBuilder::with_capacity(n, declared_edges));
            }
            Some("e") => {
                let b = builder.as_mut().ok_or(IoError::Parse {
                    line: lineno,
                    msg: "'e' before 'p'".into(),
                })?;
                let u: VId = parse_field(it.next(), lineno, "u")?;
                let v: VId = parse_field(it.next(), lineno, "v")?;
                let w: Weight = parse_field(it.next(), lineno, "w")?;
                b.add_edge(u, v, w);
            }
            Some(tok) => {
                return Err(IoError::Parse {
                    line: lineno,
                    msg: format!("unknown record '{tok}'"),
                })
            }
            None => unreachable!("non-empty line has a token"),
        }
    }
    // Report line 1 for empty input: `lineno` is still 0 when no line was
    // ever read, and "line 0" points at nothing.
    let b = builder.ok_or_else(|| IoError::Parse {
        line: lineno.max(1),
        msg: if lineno == 0 {
            "empty input (missing 'p' line)".into()
        } else {
            "missing 'p' line".into()
        },
    })?;
    if b.len() != declared_edges {
        return Err(IoError::Parse {
            line: lineno,
            msg: format!("declared {declared_edges} edges, found {}", b.len()),
        });
    }
    b.build().map_err(IoError::Graph)
}

/// Load a graph from a file path.
pub fn load_graph(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    read_graph(std::fs::File::open(path)?)
}

fn parse_field<T: std::str::FromStr>(
    tok: Option<&str>,
    line: usize,
    name: &str,
) -> Result<T, IoError> {
    let tok = tok.ok_or_else(|| IoError::Parse {
        line,
        msg: format!("missing field '{name}'"),
    })?;
    tok.parse().map_err(|_| IoError::Parse {
        line,
        msg: format!("bad value '{tok}' for field '{name}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip() {
        let g = gen::gnm(30, 60, 1, 1.0, 5.0);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let h = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g.num_vertices(), h.num_vertices());
        assert_eq!(g.edges(), h.edges());
    }

    #[test]
    fn comments_and_blank_lines_ok() {
        let text = "c hello\n\np 3 2\nc mid\ne 0 1 1.5\ne 1 2 2.5\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(1, 2), Some(2.5));
    }

    #[test]
    fn rejects_edge_before_header() {
        let err = read_graph("e 0 1 1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }));
    }

    #[test]
    fn rejects_wrong_edge_count() {
        let err = read_graph("p 3 2\ne 0 1 1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }));
    }

    #[test]
    fn rejects_unknown_record() {
        let err = read_graph("p 2 0\nx 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }));
    }

    #[test]
    fn rejects_invalid_graph() {
        let err = read_graph("p 2 1\ne 0 0 1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Graph(_)));
    }

    #[test]
    fn empty_input_reports_line_one() {
        // Regression: `lineno` stays 0 when no line is read, and the old
        // code reported "parse error at line 0".
        let err = read_graph("".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, msg } => {
                assert_eq!(line, 1, "empty input must point at line 1, not 0");
                assert!(msg.contains("empty input"), "got: {msg}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn comment_only_input_reports_last_line() {
        let err = read_graph("c nothing here\nc still nothing\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("missing 'p' line"), "got: {msg}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }
}
