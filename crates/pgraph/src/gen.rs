//! Deterministic graph generators for tests, examples and experiments.
//!
//! Every randomized generator takes an explicit `seed`; the deterministic
//! hopset algorithm itself never consumes randomness (see the workspace
//! determinism contract in DESIGN.md §5).
//!
//! Families are chosen to exercise the paper's machinery:
//! * paths/cycles/grids — long shortest paths (many hops) that a hopset must
//!   shortcut: the adversarial case for hop-limited Bellman–Ford;
//! * `clique_chain` — dense areas chained together: exercises
//!   superclustering (dense areas become superclusters, §2.1);
//! * `gnm`/`geometric` — the generic weighted inputs of the experiments;
//! * `exponential_path`/`wide_weights` — huge aspect ratio Λ: exercises the
//!   Klein–Sairam weight reduction (Appendix C).

use crate::{Graph, GraphBuilder, VId, Weight};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Path `0 - 1 - ... - n-1` with unit weights.
pub fn path(n: usize) -> Graph {
    path_weighted(n, |_| 1.0)
}

/// Path with edge `i – i+1` weighted by `w(i)`.
pub fn path_weighted(n: usize, w: impl Fn(usize) -> Weight) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 0..n.saturating_sub(1) {
        b.add_edge(i as VId, (i + 1) as VId, w(i));
    }
    b.build().expect("path is valid")
}

/// Cycle on `n >= 3` vertices with unit weights.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs >= 3 vertices");
    let mut b = GraphBuilder::with_capacity(n, n);
    for i in 0..n {
        b.add_edge(i as VId, ((i + 1) % n) as VId, 1.0);
    }
    b.build().expect("cycle is valid")
}

/// Star: vertex 0 connected to all others with unit weights.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for i in 1..n {
        b.add_edge(0, i as VId, 1.0);
    }
    b.build().expect("star is valid")
}

/// Complete graph with weight `w` on every edge.
pub fn complete(n: usize, w: Weight) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as VId, v as VId, w);
        }
    }
    b.build().expect("complete graph is valid")
}

/// `rows × cols` grid; horizontal/vertical edges, weights from `w(u, v)`.
pub fn grid(rows: usize, cols: usize, w: impl Fn(VId, VId) -> Weight) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VId;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                let (u, v) = (id(r, c), id(r, c + 1));
                b.add_edge(u, v, w(u, v));
            }
            if r + 1 < rows {
                let (u, v) = (id(r, c), id(r + 1, c));
                b.add_edge(u, v, w(u, v));
            }
        }
    }
    b.build().expect("grid is valid")
}

/// Unit-weight grid.
pub fn unit_grid(rows: usize, cols: usize) -> Graph {
    grid(rows, cols, |_, _| 1.0)
}

/// A grid with seeded random weights in `[lo, hi]` — a stand-in for
/// road-network-like inputs (planar-ish, bounded degree, weight jitter).
pub fn road_grid(rows: usize, cols: usize, seed: u64, lo: Weight, hi: Weight) -> Graph {
    assert!(lo > 0.0 && hi >= lo);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VId;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), rng.random_range(lo..=hi));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), rng.random_range(lo..=hi));
            }
        }
    }
    b.build().expect("road grid is valid")
}

/// 2-D torus (grid with wraparound), unit weights.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs >= 3 per dimension");
    let n = rows * cols;
    let id = |r: usize, c: usize| ((r % rows) * cols + (c % cols)) as VId;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, c + 1), 1.0);
            b.add_edge(id(r, c), id(r + 1, c), 1.0);
        }
    }
    b.build().expect("torus is valid")
}

/// Seeded Erdős–Rényi G(n, m) with weights uniform in `[lo, hi]`.
/// Duplicate draws are collapsed by the builder (min weight wins), so the
/// edge count may be slightly below `m`.
///
/// Contract: the rejection loop is capped at `20m + 100` attempts; hitting
/// the cap without drawing `m` non-loop pairs is astronomically unlikely for
/// `n >= 2` (each draw succeeds with probability `>= 1/2`), and is treated
/// as a generator bug — loud in debug builds via `debug_assert`.
pub fn gnm(n: usize, m: usize, seed: u64, lo: Weight, hi: Weight) -> Graph {
    assert!(n >= 2 && lo > 0.0 && hi >= lo);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < m && attempts < 20 * m + 100 {
        let u = rng.random_range(0..n) as VId;
        let v = rng.random_range(0..n) as VId;
        attempts += 1;
        if u != v {
            b.add_edge(u, v, rng.random_range(lo..=hi));
            added += 1;
        }
    }
    debug_assert!(
        added == m,
        "gnm attempts cap hit after drawing {added}/{m} edges (n = {n})"
    );
    b.build().expect("gnm is valid")
}

/// G(n, m) plus a random-weight Hamiltonian path, guaranteeing connectivity.
/// Requires `n >= 2` (as `gnm` does — asserted here before any arithmetic so
/// the failure names this function, not an underflow inside it).
pub fn gnm_connected(n: usize, m: usize, seed: u64, lo: Weight, hi: Weight) -> Graph {
    assert!(n >= 2, "gnm_connected needs n >= 2, got n = {n}");
    let g = gnm(n, m.saturating_sub(n - 1), seed, lo, hi);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let mut b = GraphBuilder::with_capacity(n, m + n);
    b.extend_edges(g.edges().iter().copied());
    for i in 0..n - 1 {
        b.add_edge(i as VId, (i + 1) as VId, rng.random_range(lo..=hi));
    }
    b.build().expect("gnm_connected is valid")
}

/// Random geometric graph on the unit square: vertices at seeded random
/// points, edges between pairs closer than `radius`, weight = Euclidean
/// distance scaled so the minimum is >= 1.
pub fn geometric(n: usize, radius: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            let d = (dx * dx + dy * dy).sqrt();
            if d <= radius && d > 0.0 {
                b.add_edge(u as VId, v as VId, d);
            }
        }
    }
    let g = b.build().expect("geometric is valid");
    g.scaled_to_unit_min()
}

/// A chain of `k` cliques of size `s`, consecutive cliques bridged by a
/// single edge of weight `bridge_w`. Dense areas (cliques) are exactly what
/// the superclustering step is designed to swallow (§2.1), so this family
/// stresses the supercluster/interconnect split.
pub fn clique_chain(k: usize, s: usize, bridge_w: Weight) -> Graph {
    assert!(k >= 1 && s >= 2 && bridge_w > 0.0);
    let n = k * s;
    let mut b = GraphBuilder::new(n);
    for c in 0..k {
        let base = c * s;
        for i in 0..s {
            for j in (i + 1)..s {
                b.add_edge((base + i) as VId, (base + j) as VId, 1.0);
            }
        }
        if c + 1 < k {
            b.add_edge((base + s - 1) as VId, (base + s) as VId, bridge_w);
        }
    }
    b.build().expect("clique chain is valid")
}

/// Path whose `i`-th edge weighs `base^i`: aspect ratio `base^(n-2)`,
/// the adversarial input for aspect-ratio-dependent constructions and the
/// motivating case for the Klein–Sairam reduction (Appendix C).
pub fn exponential_path(n: usize, base: Weight) -> Graph {
    assert!(base > 1.0);
    path_weighted(n, |i| base.powi(i as i32))
}

/// Hierarchical communities: `branching^levels` vertices; level-1 groups of
/// `branching` vertices are unit-weight cliques; at each higher level `j`,
/// the leaders (smallest ids) of the `branching` sub-groups form a clique
/// of weight `weight_base^(j-1)`.
///
/// Density is *recursive*: every scale of distances sees dense areas, so
/// the superclustering-and-interconnection phase loop (§2.1) engages at
/// many scales and through several phases — the richest input for the E5
/// phase-decay experiment.
pub fn hierarchical(branching: usize, levels: u32, weight_base: Weight) -> Graph {
    assert!(branching >= 2 && levels >= 1 && weight_base >= 1.0);
    let n = branching.pow(levels);
    let mut b = GraphBuilder::new(n);
    for j in 1..=levels {
        let group = branching.pow(j); // group size at level j
        let sub = group / branching; // sub-group size
        let w = weight_base.powi(j as i32 - 1);
        for g0 in (0..n).step_by(group) {
            // Leaders of the sub-groups are their smallest members.
            for a in 0..branching {
                for c in (a + 1)..branching {
                    b.add_edge((g0 + a * sub) as VId, (g0 + c * sub) as VId, w);
                }
            }
        }
    }
    b.build().expect("hierarchical is valid")
}

/// G(n, m) whose weights are `2^j` for seeded random `j ∈ [0, levels)`:
/// wide weight spectrum with every scale populated.
pub fn wide_weights(n: usize, m: usize, levels: u32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m + n - 1);
    for i in 0..n - 1 {
        let j = rng.random_range(0..levels);
        b.add_edge(i as VId, (i + 1) as VId, f64::powi(2.0, j as i32));
    }
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < m && attempts < 20 * m + 100 {
        let u = rng.random_range(0..n) as VId;
        let v = rng.random_range(0..n) as VId;
        attempts += 1;
        if u != v {
            let j = rng.random_range(0..levels);
            b.add_edge(u, v, f64::powi(2.0, j as i32));
            added += 1;
        }
    }
    b.build().expect("wide_weights is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{bfs_hops, dijkstra};

    #[test]
    fn path_distances() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        let d = dijkstra(&g, 0).dist;
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn cycle_has_two_way_distances() {
        let g = cycle(6);
        let d = dijkstra(&g, 0).dist;
        assert_eq!(d[3], 3.0);
        assert_eq!(d[5], 1.0);
    }

    #[test]
    fn star_diameter_two() {
        let g = star(10);
        let h = bfs_hops(&g, 1);
        assert_eq!(h[0], 1);
        assert!(h[2..].iter().all(|&x| x == 2));
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(6, 2.0);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.min_weight(), Some(2.0));
    }

    #[test]
    fn grid_shape() {
        let g = unit_grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // (rows-1)*cols + rows*(cols-1) = 2*4 + 3*3 = 17
        assert_eq!(g.num_edges(), 17);
        let d = dijkstra(&g, 0).dist;
        assert_eq!(d[11], 5.0); // manhattan distance corner-to-corner
    }

    #[test]
    fn torus_wraps() {
        let g = torus(4, 4);
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.num_edges(), 32);
        let d = bfs_hops(&g, 0);
        assert_eq!(d[3], 1); // wraparound
    }

    #[test]
    fn gnm_is_seed_deterministic() {
        let a = gnm(50, 120, 7, 1.0, 4.0);
        let b = gnm(50, 120, 7, 1.0, 4.0);
        assert_eq!(a.edges(), b.edges());
        let c = gnm(50, 120, 8, 1.0, 4.0);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn gnm_connected_is_connected() {
        let g = gnm_connected(40, 60, 3, 1.0, 2.0);
        let d = bfs_hops(&g, 0);
        assert!(d.iter().all(|&x| x != usize::MAX));
    }

    #[test]
    #[should_panic(expected = "gnm_connected needs n >= 2")]
    fn gnm_connected_rejects_n_zero_with_clear_message() {
        // Regression: `m.saturating_sub(n - 1)` evaluated `n - 1` first,
        // so n == 0 died with a raw subtract-overflow in debug builds.
        gnm_connected(0, 10, 1, 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "gnm_connected needs n >= 2")]
    fn gnm_connected_rejects_n_one_with_clear_message() {
        gnm_connected(1, 10, 1, 1.0, 2.0);
    }

    #[test]
    fn gnm_fills_requested_edge_count() {
        // The attempts cap must not silently under-fill in realistic use
        // (duplicate draws still count as `added`; only self loops retry).
        let g = gnm(16, 40, 5, 1.0, 2.0);
        // After min-weight dedup the count may shrink, but the builder saw
        // exactly m draws — spot-check the graph is substantial.
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn geometric_unit_min() {
        let g = geometric(30, 0.4, 5);
        if g.num_edges() > 0 {
            assert!((g.min_weight().unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn clique_chain_structure() {
        let g = clique_chain(3, 4, 5.0);
        assert_eq!(g.num_vertices(), 12);
        // 3 cliques of C(4,2)=6 edges + 2 bridges
        assert_eq!(g.num_edges(), 20);
        assert_eq!(g.edge_weight(3, 4), Some(5.0));
    }

    #[test]
    fn exponential_path_aspect_ratio() {
        let g = exponential_path(10, 2.0);
        assert_eq!(g.min_weight(), Some(1.0));
        assert_eq!(g.max_weight(), Some(256.0));
        assert!(g.aspect_ratio_bound() >= 256.0);
    }

    #[test]
    fn hierarchical_structure() {
        let g = hierarchical(4, 3, 8.0);
        assert_eq!(g.num_vertices(), 64);
        // Each level contributes C(4,2) cliques per group:
        // level 1: 16 groups * 6; level 2: 4 * 6; level 3: 1 * 6.
        assert_eq!(g.num_edges(), 16 * 6 + 4 * 6 + 6);
        // Level-1 edges weigh 1, level-3 edges weigh 64.
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(0, 16), Some(64.0));
        // Connected through the leader hierarchy.
        let d = dijkstra(&g, 0).dist;
        assert!(d.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn wide_weights_has_power_of_two_weights() {
        let g = wide_weights(32, 64, 6, 11);
        for &(_, _, w) in g.edges() {
            assert_eq!(w.log2().fract(), 0.0, "weight {w} not a power of two");
        }
        let d = bfs_hops(&g, 0);
        assert!(
            d.iter().all(|&x| x != usize::MAX),
            "backbone keeps it connected"
        );
    }
}
