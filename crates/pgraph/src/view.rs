//! Union adjacency views over `E ∪ H`.
//!
//! Every exploration in the paper runs on the graph `G_{k-1} = (V, E ∪
//! H_{k-1}, ω_{k-1})`, where `H_{k-1}` is the hopset of the previous scale
//! (§2). Rather than materializing a merged CSR for every scale, we overlay
//! the base graph with an *extra* edge set and iterate both. Parallel edges
//! between the two layers are resolved by the paper's rule `ω_k(u,v) =
//! min{ω(u,v), ω_{H_k}(u,v)}` implicitly: explorations simply relax both.
//!
//! The overlay keeps the *index* of each extra edge, so downstream consumers
//! (path-reporting, §4) can attribute a relaxation to a specific hopset edge.
//!
//! Two flavors exist:
//!
//! * [`UnionView`] — borrows the base graph (`&'g Graph`); the working type
//!   of the construction, where every scale overlays a different edge set;
//! * [`UnionGraph`] — **owns** the base graph via `Arc<Graph>` plus the
//!   overlay CSR. Built once, it hands out borrowed [`UnionView`]s for free
//!   (no re-sorting, no re-bucketing), which is what a long-lived query
//!   engine serving many concurrent queries wants. `UnionGraph` is
//!   `Send + Sync`, so it can sit behind an `Arc` and be queried from many
//!   threads.

use crate::{Graph, VId, Weight};
use std::borrow::Cow;
use std::sync::Arc;

/// Identifies which layer an adjacency entry came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeTag {
    /// An edge of the base graph `E`.
    Base,
    /// The `i`-th edge of the overlay (e.g. hopset edge index).
    Extra(u32),
}

/// The overlay half of a union view: a CSR over the extra edge set, built
/// once and shareable between [`UnionView`] (borrowed) and [`UnionGraph`]
/// (owned).
#[derive(Clone, Debug, Default)]
pub struct OverlayCsr {
    /// `off[v]..off[v+1]` indexes `adj` for vertex `v`.
    off: Vec<usize>,
    /// (neighbor, weight, overlay edge index)
    adj: Vec<(VId, Weight, u32)>,
    extra_count: usize,
}

impl OverlayCsr {
    /// An empty overlay for an `n`-vertex base graph.
    pub fn empty(n: usize) -> Self {
        OverlayCsr {
            off: vec![0; n + 1],
            adj: Vec::new(),
            extra_count: 0,
        }
    }

    /// Bucket `extra` (undirected edges `(u, v, w)`) into a CSR over `n`
    /// vertices, with a deterministic per-vertex order.
    ///
    /// Panics if an overlay endpoint is out of range or a weight is not
    /// positive and finite — overlay edges are produced by this workspace's
    /// own algorithms, so a violation is a logic error, not bad input.
    pub fn build(n: usize, extra: &[(VId, VId, Weight)]) -> Self {
        let mut deg = vec![0usize; n + 1];
        for &(u, v, w) in extra {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "overlay endpoint out of range"
            );
            assert!(w.is_finite() && w > 0.0, "overlay weight must be positive");
            assert_ne!(u, v, "overlay self loop");
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let off = deg;
        let mut cursor = off.clone();
        let mut adj = vec![(0 as VId, 0.0, 0u32); 2 * extra.len()];
        for (i, &(u, v, w)) in extra.iter().enumerate() {
            adj[cursor[u as usize]] = (v, w, i as u32);
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = (u, w, i as u32);
            cursor[v as usize] += 1;
        }
        // Deterministic iteration order within the overlay.
        for v in 0..n {
            adj[off[v]..off[v + 1]].sort_by(|a, b| a.0.cmp(&b.0).then(a.2.cmp(&b.2)));
        }
        OverlayCsr {
            off,
            adj,
            extra_count: extra.len(),
        }
    }
}

/// A read-only adjacency view over a base [`Graph`] plus an overlay edge set.
pub struct UnionView<'g> {
    base: &'g Graph,
    csr: Cow<'g, OverlayCsr>,
}

impl<'g> UnionView<'g> {
    /// View of the base graph alone.
    pub fn base_only(base: &'g Graph) -> Self {
        UnionView {
            csr: Cow::Owned(OverlayCsr::empty(base.num_vertices())),
            base,
        }
    }

    /// Overlay `extra` (undirected edges `(u, v, w)`) on `base`.
    ///
    /// Panics if an overlay endpoint is out of range or a weight is not
    /// positive and finite — overlay edges are produced by this workspace's
    /// own algorithms, so a violation is a logic error, not bad input.
    ///
    /// This builds (buckets + sorts) the overlay CSR; callers issuing many
    /// queries over the same `G ∪ H` should build a [`UnionGraph`] once and
    /// reuse its [`UnionGraph::view`] instead.
    pub fn with_extra(base: &'g Graph, extra: &[(VId, VId, Weight)]) -> Self {
        UnionView {
            csr: Cow::Owned(OverlayCsr::build(base.num_vertices(), extra)),
            base,
        }
    }

    /// View over a pre-built overlay CSR (no copying, no sorting).
    pub fn with_csr(base: &'g Graph, csr: &'g OverlayCsr) -> Self {
        debug_assert_eq!(csr.off.len(), base.num_vertices() + 1);
        UnionView {
            base,
            csr: Cow::Borrowed(csr),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Number of undirected edges in the union (base + overlay; parallel
    /// edges between the layers are counted twice, matching the PRAM
    /// processor-allocation accounting of §1.5.1).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.csr.extra_count
    }

    /// Number of overlay edges.
    #[inline]
    pub fn num_extra(&self) -> usize {
        self.csr.extra_count
    }

    /// The base graph.
    #[inline]
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// Total degree of `v` in the union.
    #[inline]
    pub fn degree(&self, v: VId) -> usize {
        let off = &self.csr.off;
        self.base.degree(v) + (off[v as usize + 1] - off[v as usize])
    }

    /// Visit every `(neighbor, weight, tag)` of `v`: base edges first (sorted
    /// by neighbor), then overlay edges (sorted by neighbor, then index).
    #[inline]
    pub fn for_each_neighbor(&self, v: VId, mut f: impl FnMut(VId, Weight, EdgeTag)) {
        for (nb, w) in self.base.neighbors(v) {
            f(nb, w, EdgeTag::Base);
        }
        let csr = &*self.csr;
        for &(nb, w, idx) in &csr.adj[csr.off[v as usize]..csr.off[v as usize + 1]] {
            f(nb, w, EdgeTag::Extra(idx));
        }
    }

    /// Iterate neighbors of `v` as an iterator (allocation-free).
    pub fn neighbors(&self, v: VId) -> impl Iterator<Item = (VId, Weight, EdgeTag)> + '_ {
        let csr = &*self.csr;
        let base = self.base.neighbors(v).map(|(nb, w)| (nb, w, EdgeTag::Base));
        let extra = csr.adj[csr.off[v as usize]..csr.off[v as usize + 1]]
            .iter()
            .map(|&(nb, w, idx)| (nb, w, EdgeTag::Extra(idx)));
        base.chain(extra)
    }

    /// The minimum weight of an edge `(u, v)` in the union, if any.
    pub fn edge_weight(&self, u: VId, v: VId) -> Option<Weight> {
        let csr = &*self.csr;
        let base = self.base.edge_weight(u, v);
        let extra = csr.adj[csr.off[u as usize]..csr.off[u as usize + 1]]
            .iter()
            .filter(|e| e.0 == v)
            .map(|e| e.1)
            .min_by(crate::wcmp);
        match (base, extra) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// An **owned** union graph `G ∪ H`: the base graph behind an `Arc` plus a
/// pre-built overlay CSR.
///
/// This is the storage a long-lived query engine wants: no graph lifetime
/// parameter, `Send + Sync` (everything inside is plain owned data), and
/// [`UnionGraph::view`] is free — the expensive bucketing/sorting of
/// [`UnionView::with_extra`] happens exactly once, at construction.
#[derive(Clone, Debug)]
pub struct UnionGraph {
    base: Arc<Graph>,
    csr: OverlayCsr,
}

impl UnionGraph {
    /// Own `base` and overlay `extra` on it (builds the overlay CSR once).
    ///
    /// Panics on invalid overlay edges, exactly like
    /// [`UnionView::with_extra`].
    pub fn new(base: Arc<Graph>, extra: &[(VId, VId, Weight)]) -> Self {
        let csr = OverlayCsr::build(base.num_vertices(), extra);
        UnionGraph { base, csr }
    }

    /// Own `base` with an empty overlay.
    pub fn base_only(base: Arc<Graph>) -> Self {
        let csr = OverlayCsr::empty(base.num_vertices());
        UnionGraph { base, csr }
    }

    /// A borrowed [`UnionView`] over the owned data — O(1), no allocation.
    #[inline]
    pub fn view(&self) -> UnionView<'_> {
        UnionView::with_csr(&self.base, &self.csr)
    }

    /// The base graph.
    #[inline]
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The base graph's `Arc` (cheap to clone, shareable across threads).
    #[inline]
    pub fn base_arc(&self) -> &Arc<Graph> {
        &self.base
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Number of overlay edges.
    #[inline]
    pub fn num_extra(&self) -> usize {
        self.csr.extra_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path3() -> Graph {
        Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap()
    }

    #[test]
    fn base_only_mirrors_graph() {
        let g = path3();
        let v = UnionView::base_only(&g);
        assert_eq!(v.num_edges(), 3);
        assert_eq!(v.degree(1), 2);
        let mut seen = Vec::new();
        v.for_each_neighbor(1, |nb, w, t| seen.push((nb, w, t)));
        assert_eq!(seen, vec![(0, 1.0, EdgeTag::Base), (2, 1.0, EdgeTag::Base)]);
    }

    #[test]
    fn overlay_edges_visible_and_tagged() {
        let g = path3();
        let extra = vec![(0, 3, 2.5), (1, 3, 9.0)];
        let v = UnionView::with_extra(&g, &extra);
        assert_eq!(v.num_edges(), 5);
        assert_eq!(v.num_extra(), 2);
        assert_eq!(v.degree(3), 3);
        let mut tags = Vec::new();
        v.for_each_neighbor(3, |nb, _, t| tags.push((nb, t)));
        assert_eq!(
            tags,
            vec![
                (2, EdgeTag::Base),
                (0, EdgeTag::Extra(0)),
                (1, EdgeTag::Extra(1))
            ]
        );
        assert_eq!(v.edge_weight(0, 3), Some(2.5));
    }

    #[test]
    fn union_edge_weight_takes_min_across_layers() {
        let g = path3();
        // overlay a *heavier* parallel edge: base must win
        let v = UnionView::with_extra(&g, &[(0, 1, 10.0)]);
        assert_eq!(v.edge_weight(0, 1), Some(1.0));
        // overlay a lighter parallel edge: overlay must win
        let v2 = UnionView::with_extra(&g, &[(0, 1, 0.5)]);
        assert_eq!(v2.edge_weight(0, 1), Some(0.5));
    }

    #[test]
    fn neighbors_iterator_matches_for_each() {
        let g = path3();
        let extra = vec![(1, 3, 4.0)];
        let v = UnionView::with_extra(&g, &extra);
        for u in 0..4 {
            let mut a = Vec::new();
            v.for_each_neighbor(u, |nb, w, t| a.push((nb, w, t)));
            let b: Vec<_> = v.neighbors(u).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "overlay weight must be positive")]
    fn overlay_rejects_bad_weight() {
        let g = path3();
        let _ = UnionView::with_extra(&g, &[(0, 1, -1.0)]);
    }

    #[test]
    fn owned_union_graph_matches_borrowed_view() {
        let g = Arc::new(path3());
        let extra = vec![(0u32, 3u32, 2.5), (1, 3, 9.0)];
        let owned = UnionGraph::new(Arc::clone(&g), &extra);
        let borrowed = UnionView::with_extra(&g, &extra);
        assert_eq!(owned.num_extra(), 2);
        for v in 0..4 {
            let a: Vec<_> = owned.view().neighbors(v).collect();
            let b: Vec<_> = borrowed.neighbors(v).collect();
            assert_eq!(a, b, "vertex {v}");
        }
        assert_eq!(owned.view().edge_weight(0, 3), Some(2.5));
    }

    #[test]
    fn union_graph_is_send_sync_and_shareable() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let ug = UnionGraph::base_only(Arc::new(path3()));
        assert_send_sync(&ug);
        let shared = Arc::new(ug);
        let s2 = Arc::clone(&shared);
        let handle = std::thread::spawn(move || s2.view().degree(1));
        assert_eq!(handle.join().unwrap(), 2);
    }
}
