//! Union adjacency views over `E ∪ H`.
//!
//! Every exploration in the paper runs on the graph `G_{k-1} = (V, E ∪
//! H_{k-1}, ω_{k-1})`, where `H_{k-1}` is the hopset of the previous scale
//! (§2). Rather than materializing a merged CSR for every scale, we overlay
//! the base graph with an *extra* edge set and iterate both. Parallel edges
//! between the two layers are resolved by the paper's rule `ω_k(u,v) =
//! min{ω(u,v), ω_{H_k}(u,v)}` implicitly: explorations simply relax both.
//!
//! The overlay keeps the *index* of each extra edge, so downstream consumers
//! (path-reporting, §4) can attribute a relaxation to a specific hopset edge.
//!
//! Storage comes in three flavors:
//!
//! * [`OverlayCsr`] — one bucketed CSR block over an extra edge set, built
//!   either from an edge list ([`OverlayCsr::build`]) or zero-copy from
//!   structure-of-arrays columns ([`OverlayCsr::build_columns`]);
//! * [`OverlayCsrBuilder`] — the **incremental** construction-side store: one
//!   CSR block per appended scale, each bucketed exactly once (counting-sort
//!   over a caller-supplied prefix-sum — the oracle's executor in practice),
//!   never re-bucketing earlier scales. Any prefix of blocks is a zero-copy
//!   "base + scales ≤ k" view ([`UnionView::with_stack`]), and
//!   [`OverlayCsrBuilder::union_all`] merges the blocks into the single CSR
//!   a from-scratch [`OverlayCsr::build`] over the whole edge set would
//!   produce — per-vertex merges of already-sorted runs, no global re-sort;
//! * [`UnionView`] / [`UnionGraph`] — borrowed and owned (Arc-backed,
//!   `Send + Sync`) views over a base graph plus one block or a block stack.

use crate::{Graph, VId, Weight};
use std::borrow::Cow;
use std::sync::Arc;

/// Identifies which layer an adjacency entry came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeTag {
    /// An edge of the base graph `E`.
    Base,
    /// The `i`-th edge of the overlay (e.g. hopset edge index). Blocks
    /// produced by [`OverlayCsrBuilder::append_scale`] carry the **global**
    /// overlay index (the hopset's edge id), not a block-local one.
    Extra(u32),
}

/// The overlay half of a union view: a CSR over an extra edge set, built
/// once and shareable between [`UnionView`] (borrowed) and [`UnionGraph`]
/// (owned).
#[derive(Clone, Debug, Default)]
pub struct OverlayCsr {
    /// `off[v]..off[v+1]` indexes `adj` for vertex `v`.
    off: Vec<usize>,
    /// (neighbor, weight, overlay edge index)
    adj: Vec<(VId, Weight, u32)>,
    extra_count: usize,
}

/// Sequential exclusive prefix sum (the fallback scan for callers without
/// an executor in scope; `pram::scan::exclusive_prefix_sum` is the parallel
/// one — same values by the determinism contract).
fn seq_exclusive_scan(xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0u64;
    for &x in xs {
        out.push(acc);
        acc += x;
    }
    out
}

impl OverlayCsr {
    /// An empty overlay for an `n`-vertex base graph.
    pub fn empty(n: usize) -> Self {
        OverlayCsr {
            off: vec![0; n + 1],
            adj: Vec::new(),
            extra_count: 0,
        }
    }

    /// Bucket `extra` (undirected edges `(u, v, w)`) into a CSR over `n`
    /// vertices, with a deterministic per-vertex order (neighbor, then
    /// overlay index).
    ///
    /// Panics if an overlay endpoint is out of range or a weight is not
    /// positive and finite — overlay edges are produced by this workspace's
    /// own algorithms, so a violation is a logic error, not bad input.
    pub fn build(n: usize, extra: &[(VId, VId, Weight)]) -> Self {
        let mut deg = vec![0u64; n];
        for &(u, v, w) in extra {
            validate_overlay_edge(n, u, v, w);
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let offsets = seq_exclusive_scan(&deg);
        let mut csr = Self::place(n, &offsets, 2 * extra.len(), extra.len(), |put| {
            for (i, &(u, v, w)) in extra.iter().enumerate() {
                put(u, v, w, i as u32);
            }
        });
        csr.sort_runs();
        csr
    }

    /// [`OverlayCsr::build`] from structure-of-arrays columns (the hopset
    /// store's native layout) — no `(u, v, w)` triple list is materialized.
    pub fn build_columns(n: usize, us: &[VId], vs: &[VId], ws: &[Weight]) -> Self {
        Self::build_block(n, us, vs, ws, 0, seq_exclusive_scan)
    }

    /// One builder block: columns bucketed by a caller-supplied exclusive
    /// prefix sum over the per-vertex degree array (counting-sort), with
    /// overlay indices `base..base + us.len()` — the **global** ids the
    /// block's [`EdgeTag::Extra`] entries report.
    fn build_block(
        n: usize,
        us: &[VId],
        vs: &[VId],
        ws: &[Weight],
        base: u32,
        scan: impl FnOnce(&[u64]) -> Vec<u64>,
    ) -> Self {
        assert_eq!(us.len(), vs.len(), "overlay columns must align");
        assert_eq!(us.len(), ws.len(), "overlay columns must align");
        let m = us.len();
        let mut deg = vec![0u64; n];
        for i in 0..m {
            validate_overlay_edge(n, us[i], vs[i], ws[i]);
            deg[us[i] as usize] += 1;
            deg[vs[i] as usize] += 1;
        }
        let offsets = scan(&deg);
        assert_eq!(offsets.len(), n, "scan must return one offset per vertex");
        let mut csr = Self::place(n, &offsets, 2 * m, m, |put| {
            for i in 0..m {
                put(us[i], vs[i], ws[i], base + i as u32);
            }
        });
        csr.sort_runs();
        csr
    }

    /// Shared placement step: turn exclusive per-vertex offsets into `off`
    /// and scatter both directions of every edge via the `put` callback.
    fn place(
        n: usize,
        offsets: &[u64],
        slots: usize,
        extra_count: usize,
        fill: impl FnOnce(&mut dyn FnMut(VId, VId, Weight, u32)),
    ) -> Self {
        // `offsets` already count adjacency entries (each undirected edge
        // was charged to both endpoints' degrees).
        let mut off: Vec<usize> = Vec::with_capacity(n + 1);
        off.extend(offsets.iter().map(|&x| x as usize));
        off.push(slots);
        let mut cursor = off[..n].to_vec();
        let mut adj = vec![(0 as VId, 0.0, 0u32); slots];
        fill(&mut |u, v, w, idx| {
            adj[cursor[u as usize]] = (v, w, idx);
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = (u, w, idx);
            cursor[v as usize] += 1;
        });
        OverlayCsr {
            off,
            adj,
            extra_count,
        }
    }

    /// Deterministic iteration order within the overlay: (neighbor, index).
    /// Keys are unique (an index appears at most once per vertex run), so an
    /// unstable sort is exact.
    fn sort_runs(&mut self) {
        let n = self.off.len() - 1;
        for v in 0..n {
            self.adj[self.off[v]..self.off[v + 1]].sort_unstable_by_key(|e| (e.0, e.2));
        }
    }

    /// Number of overlay edges in this block.
    #[inline]
    pub fn num_extra(&self) -> usize {
        self.extra_count
    }

    /// The `(neighbor, weight, overlay index)` run of vertex `v`.
    #[inline]
    fn run(&self, v: VId) -> &[(VId, Weight, u32)] {
        &self.adj[self.off[v as usize]..self.off[v as usize + 1]]
    }
}

#[inline]
fn validate_overlay_edge(n: usize, u: VId, v: VId, w: Weight) {
    assert!(
        (u as usize) < n && (v as usize) < n,
        "overlay endpoint out of range"
    );
    assert!(w.is_finite() && w > 0.0, "overlay weight must be positive");
    assert_ne!(u, v, "overlay self loop");
}

/// Incremental overlay store for the multi-scale construction: one
/// [`OverlayCsr`] block per appended scale, appended in ascending scale
/// order and bucketed exactly once.
///
/// Invariants (what makes the blocks composable):
///
/// * overlay indices are **global and contiguous**: the `i`-th appended
///   block tags its edges `base..base + len` where `base` is the total edge
///   count of all earlier blocks — matching the hopset's global edge ids
///   when scales are appended in push order;
/// * within a block, per-vertex runs are sorted by (neighbor, index) —
///   exactly [`OverlayCsr::build`]'s order;
/// * across blocks, index ranges ascend, so concatenating per-vertex runs
///   block by block keeps same-neighbor entries index-sorted. That is why
///   [`OverlayCsrBuilder::union_all`] only needs a stable per-vertex merge
///   (no global re-sort) to reproduce `OverlayCsr::build` over the union,
///   and why any block prefix is a valid "base + scales ≤ k" overlay
///   ([`UnionView::with_stack`]) without copying anything.
///
/// Retention: [`OverlayCsrBuilder::new`] keeps every block (the prefix-view
/// and [`OverlayCsrBuilder::union_all`] capability);
/// [`OverlayCsrBuilder::rolling`] keeps only the newest — the construction
/// hot path's mode, since a scale-`k` exploration reads exactly `H_{k-1}`
/// and a dense per-block offset array retained per scale would cost
/// `O(scales · n)` memory for nothing.
#[derive(Clone, Debug)]
pub struct OverlayCsrBuilder {
    n: usize,
    base: u32,
    blocks: Vec<OverlayCsr>,
    rolling: bool,
}

impl OverlayCsrBuilder {
    /// An empty builder over an `n`-vertex base graph, retaining every
    /// appended block.
    pub fn new(n: usize) -> Self {
        OverlayCsrBuilder {
            n,
            base: 0,
            blocks: Vec::new(),
            rolling: false,
        }
    }

    /// An empty builder retaining only the most recently appended block
    /// (earlier blocks are dropped on append). Global index assignment is
    /// unchanged; [`OverlayCsrBuilder::blocks`]/`blocks_upto`/`union_all`
    /// see only the retained suffix ([`union_all`](Self::union_all) panics
    /// in this mode — derive the full union from the source columns with
    /// [`OverlayCsr::build_columns`] instead).
    pub fn rolling(n: usize) -> Self {
        OverlayCsrBuilder {
            n,
            base: 0,
            blocks: Vec::new(),
            rolling: true,
        }
    }

    /// Number of vertices of the base graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Total overlay edges appended so far (= the next block's index base).
    #[inline]
    pub fn num_extra(&self) -> usize {
        self.base as usize
    }

    /// Number of appended scale blocks.
    #[inline]
    pub fn num_scales(&self) -> usize {
        self.blocks.len()
    }

    /// Append one scale's edges (structure-of-arrays columns) as a new CSR
    /// block, bucketing **only** these edges — earlier blocks are never
    /// touched. `scan` supplies the exclusive prefix sum over the per-vertex
    /// degree array (the counting-sort offsets); pass
    /// `pram::scan::exclusive_prefix_sum` on the construction's executor to
    /// run it as a parallel round, or [`OverlayCsrBuilder::append_scale_seq`]
    /// when no executor is in scope. Returns the new block; its
    /// [`EdgeTag::Extra`] entries carry global indices
    /// `num_extra()..num_extra() + us.len()` (evaluated before the append).
    pub fn append_scale(
        &mut self,
        us: &[VId],
        vs: &[VId],
        ws: &[Weight],
        scan: impl FnOnce(&[u64]) -> Vec<u64>,
    ) -> &OverlayCsr {
        let block = OverlayCsr::build_block(self.n, us, vs, ws, self.base, scan);
        self.base += us.len() as u32;
        if self.rolling {
            self.blocks.clear();
        }
        self.blocks.push(block);
        self.blocks.last().expect("just pushed")
    }

    /// [`OverlayCsrBuilder::append_scale`] with a sequential prefix sum.
    pub fn append_scale_seq(&mut self, us: &[VId], vs: &[VId], ws: &[Weight]) -> &OverlayCsr {
        self.append_scale(us, vs, ws, seq_exclusive_scan)
    }

    /// All appended blocks, in append (= ascending scale) order.
    #[inline]
    pub fn blocks(&self) -> &[OverlayCsr] {
        &self.blocks
    }

    /// Block `i` (the `i`-th appended scale).
    #[inline]
    pub fn block(&self, i: usize) -> &OverlayCsr {
        &self.blocks[i]
    }

    /// The zero-copy block prefix covering the first `count` appended scales
    /// — "base + scales ≤ k" for [`UnionView::with_stack`].
    #[inline]
    pub fn blocks_upto(&self, count: usize) -> &[OverlayCsr] {
        &self.blocks[..count]
    }

    /// Merge every block into the single [`OverlayCsr`] that
    /// [`OverlayCsr::build`] over the whole (global-index-ordered) edge set
    /// would produce: per-vertex stable merge of already-sorted runs. Cost
    /// is linear in the output plus the per-vertex sorts of same-neighbor
    /// ties — no global re-bucket.
    pub fn union_all(&self) -> OverlayCsr {
        assert!(
            !self.rolling,
            "union_all needs every block; a rolling builder dropped all but the last \
             (build the union from the source columns with OverlayCsr::build_columns)"
        );
        let n = self.n;
        let total: usize = self.blocks.iter().map(|b| b.adj.len()).sum();
        // Degree accumulation and placement stream each block linearly
        // (block-major passes) rather than touching every block per vertex.
        let mut off = vec![0usize; n + 1];
        for b in &self.blocks {
            for v in 0..n {
                off[v + 1] += b.off[v + 1] - b.off[v];
            }
        }
        for v in 0..n {
            off[v + 1] += off[v];
        }
        let mut cursor = off[..n].to_vec();
        let mut adj: Vec<(VId, Weight, u32)> = vec![(0, 0.0, 0); total];
        for b in &self.blocks {
            for v in 0..n {
                let run = b.run(v as VId);
                adj[cursor[v]..cursor[v] + run.len()].copy_from_slice(run);
                cursor[v] += run.len();
            }
        }
        // Stable by neighbor: per-vertex regions hold the blocks' runs in
        // block order, so same-neighbor entries are already index-ascending
        // (within and across blocks) — sorting yields exactly the
        // (neighbor, index) order of `OverlayCsr::build`.
        for v in 0..n {
            adj[off[v]..off[v + 1]].sort_by_key(|e| e.0);
        }
        OverlayCsr {
            off,
            adj,
            extra_count: self.base as usize,
        }
    }
}

/// The overlay side of a [`UnionView`]: one CSR (owned or borrowed) or a
/// borrowed stack of builder blocks.
enum OverlayPart<'g> {
    One(Cow<'g, OverlayCsr>),
    Stack(&'g [OverlayCsr]),
}

/// A read-only adjacency view over a base [`Graph`] plus an overlay edge set.
pub struct UnionView<'g> {
    base: &'g Graph,
    overlay: OverlayPart<'g>,
    extra_total: usize,
}

impl<'g> UnionView<'g> {
    /// View of the base graph alone.
    pub fn base_only(base: &'g Graph) -> Self {
        UnionView {
            overlay: OverlayPart::One(Cow::Owned(OverlayCsr::empty(base.num_vertices()))),
            extra_total: 0,
            base,
        }
    }

    /// Overlay `extra` (undirected edges `(u, v, w)`) on `base`.
    ///
    /// Panics if an overlay endpoint is out of range or a weight is not
    /// positive and finite — overlay edges are produced by this workspace's
    /// own algorithms, so a violation is a logic error, not bad input.
    ///
    /// This builds (buckets + sorts) the overlay CSR; callers issuing many
    /// queries over the same `G ∪ H` should build a [`UnionGraph`] once and
    /// reuse its [`UnionGraph::view`] instead.
    pub fn with_extra(base: &'g Graph, extra: &[(VId, VId, Weight)]) -> Self {
        let csr = OverlayCsr::build(base.num_vertices(), extra);
        UnionView {
            extra_total: csr.extra_count,
            overlay: OverlayPart::One(Cow::Owned(csr)),
            base,
        }
    }

    /// Like [`UnionView::with_extra`], but straight from structure-of-arrays
    /// columns (no `(u, v, w)` triple list).
    pub fn with_overlay_columns(base: &'g Graph, us: &[VId], vs: &[VId], ws: &[Weight]) -> Self {
        let csr = OverlayCsr::build_columns(base.num_vertices(), us, vs, ws);
        UnionView {
            extra_total: csr.extra_count,
            overlay: OverlayPart::One(Cow::Owned(csr)),
            base,
        }
    }

    /// View over a pre-built overlay CSR (no copying, no sorting).
    pub fn with_csr(base: &'g Graph, csr: &'g OverlayCsr) -> Self {
        debug_assert_eq!(csr.off.len(), base.num_vertices() + 1);
        UnionView {
            base,
            extra_total: csr.extra_count,
            overlay: OverlayPart::One(Cow::Borrowed(csr)),
        }
    }

    /// View over a stack of pre-built blocks (no copying, no sorting):
    /// "base + scales ≤ k" is `with_stack(g, builder.blocks_upto(k))`.
    /// Adjacency order is base edges, then each block's run in stack order
    /// (ascending scale); [`EdgeTag::Extra`] reports each block's stored
    /// (global) indices.
    pub fn with_stack(base: &'g Graph, blocks: &'g [OverlayCsr]) -> Self {
        debug_assert!(blocks
            .iter()
            .all(|b| b.off.len() == base.num_vertices() + 1));
        UnionView {
            base,
            extra_total: blocks.iter().map(|b| b.extra_count).sum(),
            overlay: OverlayPart::Stack(blocks),
        }
    }

    /// The overlay blocks, unified: one slice whatever the storage flavor.
    #[inline]
    fn blocks(&self) -> &[OverlayCsr] {
        match &self.overlay {
            OverlayPart::One(c) => std::slice::from_ref(c.as_ref()),
            OverlayPart::Stack(s) => s,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Number of undirected edges in the union (base + overlay; parallel
    /// edges between the layers are counted twice, matching the PRAM
    /// processor-allocation accounting of §1.5.1).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.extra_total
    }

    /// Number of overlay edges.
    #[inline]
    pub fn num_extra(&self) -> usize {
        self.extra_total
    }

    /// The base graph.
    #[inline]
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// Total degree of `v` in the union.
    #[inline]
    pub fn degree(&self, v: VId) -> usize {
        self.base.degree(v) + self.blocks().iter().map(|b| b.run(v).len()).sum::<usize>()
    }

    /// Visit every `(neighbor, weight, tag)` of `v`: base edges first
    /// (sorted by neighbor), then overlay edges block by block (each block
    /// sorted by neighbor, then index).
    #[inline]
    pub fn for_each_neighbor(&self, v: VId, mut f: impl FnMut(VId, Weight, EdgeTag)) {
        for (nb, w) in self.base.neighbors(v) {
            f(nb, w, EdgeTag::Base);
        }
        for b in self.blocks() {
            for &(nb, w, idx) in b.run(v) {
                f(nb, w, EdgeTag::Extra(idx));
            }
        }
    }

    /// Iterate neighbors of `v` as an iterator (allocation-free).
    pub fn neighbors(&self, v: VId) -> impl Iterator<Item = (VId, Weight, EdgeTag)> + '_ {
        let base = self.base.neighbors(v).map(|(nb, w)| (nb, w, EdgeTag::Base));
        let extra = self.blocks().iter().flat_map(move |b| {
            b.run(v)
                .iter()
                .map(|&(nb, w, idx)| (nb, w, EdgeTag::Extra(idx)))
        });
        base.chain(extra)
    }

    /// The minimum weight of an edge `(u, v)` in the union, if any.
    pub fn edge_weight(&self, u: VId, v: VId) -> Option<Weight> {
        let base = self.base.edge_weight(u, v);
        let extra = self
            .blocks()
            .iter()
            .flat_map(|b| b.run(u).iter())
            .filter(|e| e.0 == v)
            .map(|e| e.1)
            .min_by(crate::wcmp);
        match (base, extra) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// An **owned** union graph `G ∪ H`: the base graph behind an `Arc` plus a
/// pre-built overlay CSR.
///
/// This is the storage a long-lived query engine wants: no graph lifetime
/// parameter, `Send + Sync` (everything inside is plain owned data), and
/// [`UnionGraph::view`] is free — the expensive bucketing/sorting of
/// [`UnionView::with_extra`] happens exactly once, at construction.
#[derive(Clone, Debug)]
pub struct UnionGraph {
    base: Arc<Graph>,
    csr: OverlayCsr,
}

impl UnionGraph {
    /// Own `base` and overlay `extra` on it (builds the overlay CSR once).
    ///
    /// Panics on invalid overlay edges, exactly like
    /// [`UnionView::with_extra`].
    pub fn new(base: Arc<Graph>, extra: &[(VId, VId, Weight)]) -> Self {
        let csr = OverlayCsr::build(base.num_vertices(), extra);
        UnionGraph { base, csr }
    }

    /// Own `base` with a pre-built overlay CSR — e.g. a construction-side
    /// [`OverlayCsrBuilder::union_all`], so nothing is re-bucketed at query
    /// setup. Panics if the CSR was built for a different vertex count.
    pub fn from_csr(base: Arc<Graph>, csr: OverlayCsr) -> Self {
        assert_eq!(
            csr.off.len(),
            base.num_vertices() + 1,
            "overlay CSR built for a different vertex count"
        );
        UnionGraph { base, csr }
    }

    /// Own `base` with an empty overlay.
    pub fn base_only(base: Arc<Graph>) -> Self {
        let csr = OverlayCsr::empty(base.num_vertices());
        UnionGraph { base, csr }
    }

    /// A borrowed [`UnionView`] over the owned data — O(1), no allocation.
    #[inline]
    pub fn view(&self) -> UnionView<'_> {
        UnionView::with_csr(&self.base, &self.csr)
    }

    /// The base graph.
    #[inline]
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The base graph's `Arc` (cheap to clone, shareable across threads).
    #[inline]
    pub fn base_arc(&self) -> &Arc<Graph> {
        &self.base
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Number of overlay edges.
    #[inline]
    pub fn num_extra(&self) -> usize {
        self.csr.extra_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path3() -> Graph {
        Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap()
    }

    #[test]
    fn base_only_mirrors_graph() {
        let g = path3();
        let v = UnionView::base_only(&g);
        assert_eq!(v.num_edges(), 3);
        assert_eq!(v.degree(1), 2);
        let mut seen = Vec::new();
        v.for_each_neighbor(1, |nb, w, t| seen.push((nb, w, t)));
        assert_eq!(seen, vec![(0, 1.0, EdgeTag::Base), (2, 1.0, EdgeTag::Base)]);
    }

    #[test]
    fn overlay_edges_visible_and_tagged() {
        let g = path3();
        let extra = vec![(0, 3, 2.5), (1, 3, 9.0)];
        let v = UnionView::with_extra(&g, &extra);
        assert_eq!(v.num_edges(), 5);
        assert_eq!(v.num_extra(), 2);
        assert_eq!(v.degree(3), 3);
        let mut tags = Vec::new();
        v.for_each_neighbor(3, |nb, _, t| tags.push((nb, t)));
        assert_eq!(
            tags,
            vec![
                (2, EdgeTag::Base),
                (0, EdgeTag::Extra(0)),
                (1, EdgeTag::Extra(1))
            ]
        );
        assert_eq!(v.edge_weight(0, 3), Some(2.5));
    }

    #[test]
    fn columns_match_edge_list_build() {
        let g = path3();
        let extra = vec![(0u32, 3u32, 2.5), (1, 3, 9.0), (0, 2, 4.0)];
        let us: Vec<VId> = extra.iter().map(|e| e.0).collect();
        let vs: Vec<VId> = extra.iter().map(|e| e.1).collect();
        let ws: Vec<Weight> = extra.iter().map(|e| e.2).collect();
        let a = UnionView::with_extra(&g, &extra);
        let b = UnionView::with_overlay_columns(&g, &us, &vs, &ws);
        for v in 0..4 {
            let x: Vec<_> = a.neighbors(v).collect();
            let y: Vec<_> = b.neighbors(v).collect();
            assert_eq!(x, y, "vertex {v}");
        }
    }

    #[test]
    fn union_edge_weight_takes_min_across_layers() {
        let g = path3();
        // overlay a *heavier* parallel edge: base must win
        let v = UnionView::with_extra(&g, &[(0, 1, 10.0)]);
        assert_eq!(v.edge_weight(0, 1), Some(1.0));
        // overlay a lighter parallel edge: overlay must win
        let v2 = UnionView::with_extra(&g, &[(0, 1, 0.5)]);
        assert_eq!(v2.edge_weight(0, 1), Some(0.5));
    }

    #[test]
    fn neighbors_iterator_matches_for_each() {
        let g = path3();
        let extra = vec![(1, 3, 4.0)];
        let v = UnionView::with_extra(&g, &extra);
        for u in 0..4 {
            let mut a = Vec::new();
            v.for_each_neighbor(u, |nb, w, t| a.push((nb, w, t)));
            let b: Vec<_> = v.neighbors(u).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "overlay weight must be positive")]
    fn overlay_rejects_bad_weight() {
        let g = path3();
        let _ = UnionView::with_extra(&g, &[(0, 1, -1.0)]);
    }

    #[test]
    fn builder_blocks_carry_global_indices() {
        let g = path3();
        let mut b = OverlayCsrBuilder::new(4);
        b.append_scale_seq(&[0, 1], &[2, 3], &[5.0, 6.0]); // ids 0, 1
        b.append_scale_seq(&[0], &[3], &[7.0]); // id 2
        assert_eq!(b.num_extra(), 3);
        let blk = b.block(b.num_scales() - 1);
        assert_eq!(blk.num_extra(), 1);
        let v = UnionView::with_csr(&g, blk);
        let mut tags = Vec::new();
        v.for_each_neighbor(0, |nb, _, t| tags.push((nb, t)));
        assert_eq!(tags, vec![(1, EdgeTag::Base), (3, EdgeTag::Extra(2))]);
    }

    #[test]
    fn builder_union_matches_from_scratch_build() {
        let g = path3();
        let all = vec![(0u32, 2u32, 5.0), (1, 3, 6.0), (0, 3, 7.0), (0, 2, 8.0)];
        let mut b = OverlayCsrBuilder::new(4);
        b.append_scale_seq(&[0, 1], &[2, 3], &[5.0, 6.0]);
        b.append_scale_seq(&[0, 0], &[3, 2], &[7.0, 8.0]);
        let merged = b.union_all();
        let reference = UnionView::with_extra(&g, &all);
        let view = UnionView::with_csr(&g, &merged);
        assert_eq!(view.num_extra(), 4);
        for v in 0..4 {
            let x: Vec<_> = view.neighbors(v).collect();
            let y: Vec<_> = reference.neighbors(v).collect();
            assert_eq!(x, y, "vertex {v}");
        }
    }

    #[test]
    fn stacked_view_slices_scales_without_copying() {
        let g = path3();
        let mut b = OverlayCsrBuilder::new(4);
        b.append_scale_seq(&[0], &[2], &[5.0]); // "scale 0"
        b.append_scale_seq(&[1], &[3], &[6.0]); // "scale 1"
        b.append_scale_seq(&[0], &[3], &[7.0]); // "scale 2"
                                                // Base + scales ≤ 1 (two blocks), zero-copy.
        let v = UnionView::with_stack(&g, b.blocks_upto(2));
        assert_eq!(v.num_extra(), 2);
        assert_eq!(v.edge_weight(0, 2), Some(5.0));
        assert_eq!(v.edge_weight(1, 3), Some(6.0));
        assert_eq!(v.edge_weight(0, 3), None, "scale 2 not in the prefix");
        // The full stack sees everything, with global tags.
        let full = UnionView::with_stack(&g, b.blocks());
        assert_eq!(full.num_extra(), 3);
        let mut tags = Vec::new();
        full.for_each_neighbor(0, |nb, _, t| tags.push((nb, t)));
        assert_eq!(
            tags,
            vec![
                (1, EdgeTag::Base),
                (2, EdgeTag::Extra(0)),
                (3, EdgeTag::Extra(2))
            ]
        );
        assert_eq!(full.degree(0), 3);
    }

    #[test]
    fn rolling_builder_keeps_only_the_newest_block() {
        let g = path3();
        let mut b = OverlayCsrBuilder::rolling(4);
        b.append_scale_seq(&[0], &[2], &[5.0]); // id 0
        b.append_scale_seq(&[1], &[3], &[6.0]); // id 1
        assert_eq!(b.num_scales(), 1, "earlier blocks dropped");
        assert_eq!(b.num_extra(), 2, "global index assignment unchanged");
        let v = UnionView::with_csr(&g, b.block(0));
        let mut tags = Vec::new();
        v.for_each_neighbor(3, |nb, _, t| tags.push((nb, t)));
        assert_eq!(tags, vec![(2, EdgeTag::Base), (1, EdgeTag::Extra(1))]);
    }

    #[test]
    #[should_panic(expected = "union_all needs every block")]
    fn rolling_builder_refuses_union_all() {
        let mut b = OverlayCsrBuilder::rolling(4);
        b.append_scale_seq(&[0], &[2], &[5.0]);
        b.append_scale_seq(&[1], &[3], &[6.0]);
        let _ = b.union_all();
    }

    #[test]
    fn owned_union_graph_matches_borrowed_view() {
        let g = Arc::new(path3());
        let extra = vec![(0u32, 3u32, 2.5), (1, 3, 9.0)];
        let owned = UnionGraph::new(Arc::clone(&g), &extra);
        let borrowed = UnionView::with_extra(&g, &extra);
        assert_eq!(owned.num_extra(), 2);
        for v in 0..4 {
            let a: Vec<_> = owned.view().neighbors(v).collect();
            let b: Vec<_> = borrowed.neighbors(v).collect();
            assert_eq!(a, b, "vertex {v}");
        }
        assert_eq!(owned.view().edge_weight(0, 3), Some(2.5));
    }

    #[test]
    fn union_graph_from_prebuilt_csr() {
        let g = Arc::new(path3());
        let mut b = OverlayCsrBuilder::new(4);
        b.append_scale_seq(&[0], &[3], &[2.5]);
        let owned = UnionGraph::from_csr(Arc::clone(&g), b.union_all());
        assert_eq!(owned.num_extra(), 1);
        assert_eq!(owned.view().edge_weight(0, 3), Some(2.5));
    }

    #[test]
    fn union_graph_is_send_sync_and_shareable() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let ug = UnionGraph::base_only(Arc::new(path3()));
        assert_send_sync(&ug);
        let shared = Arc::new(ug);
        let s2 = Arc::clone(&shared);
        let handle = std::thread::spawn(move || s2.view().degree(1));
        assert_eq!(handle.join().unwrap(), 2);
    }
}
