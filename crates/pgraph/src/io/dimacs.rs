//! Ingestion of the standard DIMACS shortest-path challenge format (`.gr`).
//!
//! ```text
//! c comment
//! p sp <n> <m>
//! a <u> <v> <w>     (1-based ids, one directed arc per line)
//! ```
//!
//! Real road-network releases (the 9th DIMACS Implementation Challenge)
//! list each undirected road segment as *two* directed arcs. This parser
//! streams arcs straight into a [`GraphBuilder`] — never materializing a
//! triple list — and the builder's min-weight dedup folds each arc pair
//! into one undirected edge (asymmetric pairs keep the lighter direction,
//! the standard undirected relaxation).

use super::{parse_field, IoError};
use crate::{Graph, GraphBuilder, VId, Weight};
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Read a DIMACS `.gr` graph (see module docs). Arc endpoints are 1-based
/// in the file and shifted to this crate's 0-based ids.
pub fn read_dimacs(r: impl Read) -> Result<Graph, IoError> {
    let mut reader = BufReader::new(r);
    let mut builder: Option<GraphBuilder> = None;
    let mut n = 0usize;
    let mut declared_arcs = 0usize;
    let mut seen_arcs = 0usize;
    let mut line_str = String::new();
    let mut lineno = 0usize;
    loop {
        line_str.clear();
        if reader.read_line(&mut line_str)? == 0 {
            break;
        }
        lineno += 1;
        let line = line_str.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("p") => {
                if builder.is_some() {
                    return Err(IoError::Parse {
                        line: lineno,
                        msg: "duplicate 'p' line".into(),
                    });
                }
                match it.next() {
                    Some("sp") => {}
                    other => {
                        return Err(IoError::Parse {
                            line: lineno,
                            msg: format!(
                                "expected 'p sp <n> <m>', found problem kind {:?}",
                                other.unwrap_or("")
                            ),
                        })
                    }
                }
                n = parse_field(it.next(), lineno, "n")?;
                declared_arcs = parse_field(it.next(), lineno, "m")?;
                // Arc pairs fold, so at most `m` undirected edges result.
                builder = Some(GraphBuilder::with_capacity(n, declared_arcs));
            }
            Some("a") => {
                let b = builder.as_mut().ok_or(IoError::Parse {
                    line: lineno,
                    msg: "'a' before 'p sp' line".into(),
                })?;
                let u: u64 = parse_field(it.next(), lineno, "u")?;
                let v: u64 = parse_field(it.next(), lineno, "v")?;
                let w: Weight = parse_field(it.next(), lineno, "w")?;
                for (name, id) in [("u", u), ("v", v)] {
                    if id == 0 || id > n as u64 {
                        return Err(IoError::Parse {
                            line: lineno,
                            msg: format!("vertex {name} = {id} out of 1..={n}"),
                        });
                    }
                }
                b.add_edge((u - 1) as VId, (v - 1) as VId, w);
                seen_arcs += 1;
            }
            Some(tok) => {
                return Err(IoError::Parse {
                    line: lineno,
                    msg: format!("unknown record '{tok}'"),
                })
            }
            None => unreachable!("non-empty line has a token"),
        }
    }
    let b = builder.ok_or_else(|| IoError::Parse {
        line: lineno.max(1),
        msg: if lineno == 0 {
            "empty input (missing 'p sp' line)".into()
        } else {
            "missing 'p sp' line".into()
        },
    })?;
    if seen_arcs != declared_arcs {
        return Err(IoError::Parse {
            line: lineno.max(1),
            msg: format!("declared {declared_arcs} arcs, found {seen_arcs}"),
        });
    }
    b.build().map_err(IoError::Graph)
}

/// Load a DIMACS `.gr` file from a path.
pub fn load_dimacs(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    read_dimacs(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    // A 4-vertex diamond listed as directed arc pairs, DIMACS style.
    const FIXTURE: &str = "\
c 9th DIMACS-style fixture
p sp 4 8
a 1 2 3
a 2 1 3
a 1 3 5
a 3 1 5
a 2 4 4
a 4 2 4
a 3 4 1
a 4 3 1
";

    #[test]
    fn parses_fixture_and_folds_arc_pairs() {
        let g = read_dimacs(FIXTURE.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4, "8 arcs fold into 4 undirected edges");
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
        assert_eq!(g.edge_weight(2, 3), Some(1.0));
    }

    #[test]
    fn asymmetric_pair_keeps_lighter_direction() {
        let text = "p sp 2 2\na 1 2 7\na 2 1 3\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
    }

    #[test]
    fn rejects_zero_based_id() {
        let err = read_dimacs("p sp 2 1\na 0 2 1\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("out of 1..=2"), "got: {msg}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn rejects_id_above_n() {
        let err = read_dimacs("p sp 3 1\na 1 4 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_wrong_problem_kind() {
        let err = read_dimacs("p max 3 1\na 1 2 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_arc_count_mismatch() {
        let err = read_dimacs("p sp 2 3\na 1 2 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }));
    }

    #[test]
    fn empty_input_reports_line_one() {
        let err = read_dimacs("".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, msg } => {
                assert_eq!(line, 1);
                assert!(msg.contains("empty input"), "got: {msg}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }
}
