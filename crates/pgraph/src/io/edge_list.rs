//! Ingestion of plain edge-list files (`.el` / `.csv`).
//!
//! The de-facto exchange format of graph repositories (SNAP, network
//! collections, spreadsheet exports): one edge per line,
//!
//! ```text
//! # comment ('%' and 'c' comments are accepted too)
//! u v w          (whitespace- or comma-separated)
//! u,v,w
//! u v            (weight omitted: defaults to 1.0)
//! ```
//!
//! There is no header; the vertex count is inferred as `max id + 1`
//! (after base adjustment). Files in the wild disagree on whether ids
//! start at 0 or 1, so the caller states it explicitly with
//! [`IndexBase`] — guessing silently shifts every id on half of all
//! inputs. Like [`super::dimacs`], lines stream straight into a
//! [`GraphBuilder`] (duplicate edges fold to the minimum weight) and
//! every failure is a typed [`IoError`] carrying the 1-based line
//! number.

use super::{parse_field, IoError};
use crate::Graph;
use crate::{GraphBuilder, VId, Weight};
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Whether the file numbers its vertices from 0 or from 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexBase {
    /// Ids are used as-is.
    Zero,
    /// Ids are shifted down by one; an id of 0 is a per-line error.
    One,
}

/// Read an edge list (see module docs). `base` states the file's id
/// numbering; the returned graph is always 0-based.
pub fn read_edge_list(r: impl Read, base: IndexBase) -> Result<Graph, IoError> {
    let mut reader = BufReader::new(r);
    let mut edges: Vec<(VId, VId, Weight)> = Vec::new();
    let mut max_id: u64 = 0;
    let mut line_str = String::new();
    let mut lineno = 0usize;
    loop {
        line_str.clear();
        if reader.read_line(&mut line_str)? == 0 {
            break;
        }
        lineno += 1;
        let line = line_str.trim();
        if line.is_empty()
            || line.starts_with('#')
            || line.starts_with('%')
            || line.starts_with("c ")
            || line == "c"
        {
            continue;
        }
        let mut it = line
            .split(|ch: char| ch == ',' || ch.is_whitespace())
            .filter(|s| !s.is_empty());
        let u: u64 = parse_field(it.next(), lineno, "u")?;
        let v: u64 = parse_field(it.next(), lineno, "v")?;
        let w: Weight = match it.next() {
            Some(tok) => parse_field(Some(tok), lineno, "w")?,
            None => 1.0,
        };
        if let Some(extra) = it.next() {
            return Err(IoError::Parse {
                line: lineno,
                msg: format!("trailing field {extra:?} after 'u v w'"),
            });
        }
        let shift = match base {
            IndexBase::Zero => 0,
            IndexBase::One => 1,
        };
        for (name, id) in [("u", u), ("v", v)] {
            if id < shift {
                return Err(IoError::Parse {
                    line: lineno,
                    msg: format!("vertex {name} = {id} in a 1-based file"),
                });
            }
            if id - shift > u32::MAX as u64 {
                return Err(IoError::Parse {
                    line: lineno,
                    msg: format!("vertex {name} = {id} exceeds u32 ids"),
                });
            }
        }
        let (u, v) = ((u - shift) as VId, (v - shift) as VId);
        max_id = max_id.max(u as u64).max(v as u64);
        edges.push((u, v, w));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    b.extend_edges(edges);
    b.build().map_err(IoError::Graph)
}

/// Load an edge-list file from a path.
pub fn load_edge_list(path: impl AsRef<Path>, base: IndexBase) -> Result<Graph, IoError> {
    read_edge_list(std::fs::File::open(path)?, base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_whitespace_el() {
        let text = "# header\n0 1 2.5\n1 2 1.0\n\n% footer\n";
        let g = read_edge_list(text.as_bytes(), IndexBase::Zero).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(2.5));
    }

    #[test]
    fn parses_csv_with_comments() {
        let text = "# u,v,w\n0,1,2.5\n1,2,1.5\n";
        let g = read_edge_list(text.as_bytes(), IndexBase::Zero).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(1, 2), Some(1.5));
    }

    #[test]
    fn one_based_ids_shift_down() {
        let g = read_edge_list("1 2 3.0\n2 3 4.0\n".as_bytes(), IndexBase::One).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
        assert_eq!(g.edge_weight(1, 2), Some(4.0));
    }

    #[test]
    fn zero_id_in_one_based_file_is_per_line_error() {
        let err = read_edge_list("1 2 1.0\n0 2 1.0\n".as_bytes(), IndexBase::One).unwrap_err();
        match err {
            IoError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("1-based"), "got: {msg}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn missing_weight_defaults_to_one() {
        let g = read_edge_list("0 1\n".as_bytes(), IndexBase::Zero).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn bad_field_reports_line_and_name() {
        let err = read_edge_list("0 1 1.0\n0 x 1.0\n".as_bytes(), IndexBase::Zero).unwrap_err();
        match err {
            IoError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains('v'), "got: {msg}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn trailing_field_is_rejected() {
        let err = read_edge_list("0 1 1.0 9\n".as_bytes(), IndexBase::Zero).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn duplicate_edges_fold_to_min_and_invariants_are_typed() {
        let g = read_edge_list("0 1 5.0\n1 0 2.0\n".as_bytes(), IndexBase::Zero).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
        let err = read_edge_list("0 0 1.0\n".as_bytes(), IndexBase::Zero).unwrap_err();
        assert!(matches!(err, IoError::Graph(_)));
        let err = read_edge_list("0 1 -2.0\n".as_bytes(), IndexBase::Zero).unwrap_err();
        assert!(matches!(err, IoError::Graph(_)));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes(), IndexBase::Zero).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
