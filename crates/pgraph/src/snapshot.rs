//! Versioned little-endian binary snapshots — the persistence plane.
//!
//! The flat SoA data plane (DESIGN.md §8) stores everything in plain
//! `u32`/`u64`/`f64` columns, which makes an on-disk format a matter of
//! *framing*, not encoding: a snapshot is the columns themselves, streamed
//! out verbatim and read back with `read_exact` into preallocated buffers —
//! no per-edge decoding on either side (DESIGN.md §11).
//!
//! ## Container layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic            (per container type, e.g. "PSSGRAPH")
//! 8       4     format version   (u32, currently 2)
//! 12      4     header length    (u32, bytes of the header block)
//! 16      8     header checksum  (FNV-1a 64 over the header block)
//! 24      H     header block:
//!                 params length  (u32)
//!                 params bytes   (container-specific fixed-size fields)
//!                 section count  (u32)
//!                 per section:   tag [u8;4] | elem size u32 |
//!                                elem count u64 | byte offset u64
//! 24+H    ...   section data, concatenated in declared order
//! ```
//!
//! The header (params + section table) is checksummed; the column data is
//! not — it is validated *structurally* on load instead (bounds, sort
//! order, symmetry, finiteness), which catches the corruption classes that
//! would break the determinism contract. Loading is sequential (`Read`,
//! no `Seek`), so containers can nest: a larger container embeds a whole
//! graph or hopset snapshot as one raw section.
//!
//! This module provides the shared framing ([`ContainerWriter`],
//! [`ContainerReader`], [`SnapshotError`]) and the [`Graph`] container;
//! `hopset::snapshot` and `sssp::snapshot` build on it.

use crate::csr::Graph;
use crate::{EdgeIndex, VId, Weight};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

/// Snapshot container format version written by this build.
///
/// Version policy: the loader accepts exactly the versions it knows how to
/// decode ([`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`]) and fails with
/// [`SnapshotError::UnsupportedVersion`] otherwise — snapshots are
/// artifacts shipped between builds, so "guess and hope" is never correct.
/// Additive evolution (new trailing params fields, new sections) bumps the
/// version; old loaders reject new files rather than misread them.
///
/// Version history:
/// * 1 — original layout (PR 8). Graph offsets stored as `u64`.
/// * 2 — compact data plane (DESIGN.md §12). Graph params grow trailing
///   `id_width`/`offset_width`/`weight_width` bytes and the offsets column
///   is stored at `offset_width` (u32 when `2m ≤ u32::MAX`); the hopset
///   container grows `weight_width` (+ a quantization scale when weights
///   are stored as u32). Widths are properties of the *data*, not of the
///   writing build, so files are byte-identical across feature flags.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest container version this build still decodes.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Magic of the [`Graph`] container.
pub const GRAPH_MAGIC: [u8; 8] = *b"PSSGRAPH";

/// Size of the fixed prelude before the header block (magic + version +
/// header length + checksum).
const PRELUDE_BYTES: u64 = 24;

/// Per-section descriptor size in the header block.
const SECTION_DESC_BYTES: u64 = 24;

/// Hard sanity cap on the header block (params + section table are always
/// tiny; a multi-megabyte header is corruption, not data).
const MAX_HEADER_BYTES: u32 = 1 << 24;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed errors raised while writing or loading snapshot containers.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The leading magic did not match the expected container type.
    BadMagic {
        /// The 8 bytes found at the start of the stream.
        found: [u8; 8],
        /// The magic this loader expected.
        expected: [u8; 8],
    },
    /// The file's format version is not one this build can decode.
    UnsupportedVersion {
        /// The version recorded in the file.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The header bytes do not match their recorded checksum.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the header actually read.
        computed: u64,
    },
    /// The stream ended inside the named region.
    Truncated {
        /// Which region (header, params, or a section tag) was cut short.
        region: String,
    },
    /// A structural invariant of the decoded data does not hold (bounds,
    /// sort order, referential integrity, ...).
    Corrupt {
        /// What failed.
        what: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic { found, expected } => write!(
                f,
                "bad snapshot magic {:?} (expected {:?})",
                String::from_utf8_lossy(found),
                String::from_utf8_lossy(expected)
            ),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {supported})"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot header checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            SnapshotError::Truncated { region } => {
                write!(f, "snapshot truncated inside {region}")
            }
            SnapshotError::Corrupt { what } => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn corrupt(what: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt { what: what.into() }
}

fn map_eof(e: io::Error, region: &str) -> SnapshotError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        SnapshotError::Truncated {
            region: region.to_string(),
        }
    } else {
        SnapshotError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// FNV-1a 64 (header checksum; local implementation, no dependencies)
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit hash — the header checksum function (deterministic,
/// dependency-free, byte-order independent).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Params block helpers
// ---------------------------------------------------------------------------

/// Builder for a container's params block (fixed-size little-endian fields).
#[derive(Default)]
pub struct ParamsBuf(Vec<u8>);

impl ParamsBuf {
    /// Empty params block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.0.push(v);
        self
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `i64`.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f64` (bit pattern — round-trips exactly).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
        self
    }

    /// The encoded bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Number of encoded bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no fields were appended.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Cursor over a params block read back from a container header.
pub struct ParamsReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ParamsReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ParamsReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return Err(SnapshotError::Truncated {
                region: "params block".to_string(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` (bit pattern).
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

// ---------------------------------------------------------------------------
// Section table
// ---------------------------------------------------------------------------

/// One section of a container: a typed column (fixed `elem_size`) or a raw
/// byte region (`elem_size == 1`, `count` = byte length).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionDecl {
    /// Four-byte ASCII tag naming the section.
    pub tag: [u8; 4],
    /// Bytes per element (4 for `u32`, 8 for `u64`/`f64`, 1 for raw bytes).
    pub elem_size: u32,
    /// Number of elements.
    pub count: u64,
}

impl SectionDecl {
    /// Total bytes of the section's data.
    pub fn byte_len(&self) -> u64 {
        self.elem_size as u64 * self.count
    }
}

fn header_len(params_len: usize, sections: &[SectionDecl]) -> u64 {
    4 + params_len as u64 + 4 + SECTION_DESC_BYTES * sections.len() as u64
}

/// Exact byte size of a container with the given params block length and
/// section declarations — used to embed one container inside another.
pub fn container_size(params_len: usize, sections: &[SectionDecl]) -> u64 {
    PRELUDE_BYTES
        + header_len(params_len, sections)
        + sections.iter().map(SectionDecl::byte_len).sum::<u64>()
}

fn tag_str(tag: [u8; 4]) -> String {
    String::from_utf8_lossy(&tag).into_owned()
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming container writer: declare every section up front (sizes are
/// known — the columns already exist in memory), then write them in order.
pub struct ContainerWriter<'w, W: Write> {
    out: &'w mut W,
    sections: Vec<SectionDecl>,
    next: usize,
}

impl<'w, W: Write> ContainerWriter<'w, W> {
    /// Write the prelude + checksummed header and return a writer expecting
    /// the declared sections in order.
    pub fn begin(
        out: &'w mut W,
        magic: &[u8; 8],
        params: &[u8],
        sections: Vec<SectionDecl>,
    ) -> Result<Self, SnapshotError> {
        Self::begin_with_version(out, magic, FORMAT_VERSION, params, sections)
    }

    /// [`ContainerWriter::begin`] with an explicit format version. The
    /// header is checksummed, so compatibility tests cannot fabricate an
    /// old-version file by patching bytes — they write a genuine one here.
    #[doc(hidden)]
    pub fn begin_with_version(
        out: &'w mut W,
        magic: &[u8; 8],
        version: u32,
        params: &[u8],
        sections: Vec<SectionDecl>,
    ) -> Result<Self, SnapshotError> {
        let mut header = Vec::with_capacity(header_len(params.len(), &sections) as usize);
        header.extend_from_slice(&(params.len() as u32).to_le_bytes());
        header.extend_from_slice(params);
        header.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        let mut offset = 0u64;
        for s in &sections {
            header.extend_from_slice(&s.tag);
            header.extend_from_slice(&s.elem_size.to_le_bytes());
            header.extend_from_slice(&s.count.to_le_bytes());
            header.extend_from_slice(&offset.to_le_bytes());
            offset += s.byte_len();
        }
        out.write_all(magic)?;
        out.write_all(&version.to_le_bytes())?;
        out.write_all(&(header.len() as u32).to_le_bytes())?;
        out.write_all(&fnv1a64(&header).to_le_bytes())?;
        out.write_all(&header)?;
        Ok(ContainerWriter {
            out,
            sections,
            next: 0,
        })
    }

    fn expect(&mut self, tag: [u8; 4], elem_size: u32, count: u64) -> &mut W {
        let decl = self
            .sections
            .get(self.next)
            .unwrap_or_else(|| panic!("section '{}' written past the declaration", tag_str(tag)));
        assert_eq!(
            (decl.tag, decl.elem_size, decl.count),
            (tag, elem_size, count),
            "section '{}' written out of declared order or with a different shape",
            tag_str(tag)
        );
        self.next += 1;
        self.out
    }

    /// Write a `u32` column.
    pub fn col_u32(&mut self, tag: [u8; 4], col: &[u32]) -> Result<(), SnapshotError> {
        let out = self.expect(tag, 4, col.len() as u64);
        write_col(out, col, |v| v.to_le_bytes())
    }

    /// Write a `u8` column.
    pub fn col_u8(&mut self, tag: [u8; 4], col: &[u8]) -> Result<(), SnapshotError> {
        let out = self.expect(tag, 1, col.len() as u64);
        out.write_all(col)?;
        Ok(())
    }

    /// Write an `f64` column (bit patterns — round-trips exactly).
    pub fn col_f64(&mut self, tag: [u8; 4], col: &[f64]) -> Result<(), SnapshotError> {
        let out = self.expect(tag, 8, col.len() as u64);
        write_col(out, col, |v| v.to_bits().to_le_bytes())
    }

    /// Write a `usize` column as `u64` elements.
    pub fn col_usize_as_u64(&mut self, tag: [u8; 4], col: &[usize]) -> Result<(), SnapshotError> {
        let out = self.expect(tag, 8, col.len() as u64);
        write_col(out, col, |v| (v as u64).to_le_bytes())
    }

    /// Write an [`EdgeIndex`] column as `u32` elements. The caller must
    /// have verified every value fits (the graph writer picks this width
    /// from `2m`, never from the build's `EdgeIndex` type).
    #[allow(clippy::unnecessary_cast)] // identity casts under compact-ids
    pub fn col_index_as_u32(
        &mut self,
        tag: [u8; 4],
        col: &[EdgeIndex],
    ) -> Result<(), SnapshotError> {
        let out = self.expect(tag, 4, col.len() as u64);
        write_col(out, col, |v| {
            debug_assert!(v as u64 <= u32::MAX as u64);
            (v as u64 as u32).to_le_bytes()
        })
    }

    /// Write an [`EdgeIndex`] column as `u64` elements.
    #[allow(clippy::unnecessary_cast)] // identity casts under the usize width
    pub fn col_index_as_u64(
        &mut self,
        tag: [u8; 4],
        col: &[EdgeIndex],
    ) -> Result<(), SnapshotError> {
        let out = self.expect(tag, 8, col.len() as u64);
        write_col(out, col, |v| (v as u64).to_le_bytes())
    }

    /// Write a raw section through a closure. The closure must produce
    /// exactly the declared byte count (checked).
    pub fn raw(
        &mut self,
        tag: [u8; 4],
        f: impl FnOnce(&mut dyn Write) -> Result<(), SnapshotError>,
    ) -> Result<(), SnapshotError> {
        let declared = self
            .sections
            .get(self.next)
            .map(SectionDecl::byte_len)
            .unwrap_or(0);
        let out = self.expect(tag, 1, declared);
        let mut cw = CountWriter { inner: out, n: 0 };
        f(&mut cw)?;
        if cw.n != declared {
            return Err(corrupt(format!(
                "section '{}' wrote {} bytes but declared {declared}",
                tag_str(tag),
                cw.n
            )));
        }
        Ok(())
    }

    /// Assert every declared section was written.
    pub fn finish(self) -> Result<(), SnapshotError> {
        assert_eq!(
            self.next,
            self.sections.len(),
            "container finished with sections undeclared sections unwritten"
        );
        Ok(())
    }
}

struct CountWriter<'a, W: Write + ?Sized> {
    inner: &'a mut W,
    n: u64,
}

impl<W: Write + ?Sized> Write for CountWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let written = self.inner.write(buf)?;
        self.n += written as u64;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Stream a typed column through a bounded buffer (one `write_all` per
/// ~64 KiB, no full-column byte copy).
fn write_col<W, T, const K: usize>(
    out: &mut W,
    col: &[T],
    enc: impl Fn(T) -> [u8; K],
) -> Result<(), SnapshotError>
where
    W: Write + ?Sized,
    T: Copy,
{
    const CHUNK: usize = 64 * 1024;
    let mut buf = Vec::with_capacity(CHUNK.min(col.len() * K) + K);
    for &x in col {
        buf.extend_from_slice(&enc(x));
        if buf.len() >= CHUNK {
            out.write_all(&buf)?;
            buf.clear();
        }
    }
    if !buf.is_empty() {
        out.write_all(&buf)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Sequential container reader: validates magic, version, and the header
/// checksum on open, then hands back the declared sections in order.
pub struct ContainerReader<R: Read> {
    inner: R,
    version: u32,
    params: Vec<u8>,
    sections: Vec<SectionDecl>,
    next: usize,
}

impl<R: Read> ContainerReader<R> {
    /// Open a container: read and validate the prelude and header.
    pub fn open(mut inner: R, magic: &[u8; 8]) -> Result<Self, SnapshotError> {
        let mut found = [0u8; 8];
        inner
            .read_exact(&mut found)
            .map_err(|e| map_eof(e, "magic"))?;
        if &found != magic {
            return Err(SnapshotError::BadMagic {
                found,
                expected: *magic,
            });
        }
        let mut word = [0u8; 4];
        inner
            .read_exact(&mut word)
            .map_err(|e| map_eof(e, "version"))?;
        let version = u32::from_le_bytes(word);
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        inner
            .read_exact(&mut word)
            .map_err(|e| map_eof(e, "header length"))?;
        let hlen = u32::from_le_bytes(word);
        if hlen > MAX_HEADER_BYTES {
            return Err(corrupt(format!("header length {hlen} exceeds sanity cap")));
        }
        let mut sum = [0u8; 8];
        inner
            .read_exact(&mut sum)
            .map_err(|e| map_eof(e, "header checksum"))?;
        let stored = u64::from_le_bytes(sum);
        let mut header = vec![0u8; hlen as usize];
        inner
            .read_exact(&mut header)
            .map_err(|e| map_eof(e, "header block"))?;
        let computed = fnv1a64(&header);
        if computed != stored {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }

        let mut hr = ParamsReader::new(&header);
        let plen = hr.u32()? as usize;
        if plen > hr.remaining() {
            return Err(corrupt("params length exceeds header"));
        }
        let params = hr.take(plen)?.to_vec();
        let nsec = hr.u32()? as usize;
        if hr.remaining() != nsec * SECTION_DESC_BYTES as usize {
            return Err(corrupt("section table size mismatch"));
        }
        let mut sections = Vec::with_capacity(nsec);
        let mut offset = 0u64;
        for _ in 0..nsec {
            let tag: [u8; 4] = hr.take(4)?.try_into().unwrap();
            let elem_size = hr.u32()?;
            let count = hr.u64()?;
            let declared_offset = hr.u64()?;
            if elem_size == 0 || elem_size > 8 {
                return Err(corrupt(format!(
                    "section '{}' has element size {elem_size}",
                    tag_str(tag)
                )));
            }
            if declared_offset != offset {
                return Err(corrupt(format!(
                    "section '{}' offset {declared_offset} does not match running total {offset}",
                    tag_str(tag)
                )));
            }
            let decl = SectionDecl {
                tag,
                elem_size,
                count,
            };
            offset = offset
                .checked_add(decl.byte_len())
                .ok_or_else(|| corrupt("section sizes overflow"))?;
            sections.push(decl);
        }
        Ok(ContainerReader {
            inner,
            version,
            params,
            sections,
            next: 0,
        })
    }

    /// The format version recorded in the file (within
    /// [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`]). Container decoders
    /// branch on this to pick the params layout and column widths.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The raw params block.
    pub fn params(&self) -> &[u8] {
        &self.params
    }

    /// The declared sections.
    pub fn sections(&self) -> &[SectionDecl] {
        &self.sections
    }

    fn expect(&mut self, tag: [u8; 4], elem_size: u32) -> Result<SectionDecl, SnapshotError> {
        let decl = *self.sections.get(self.next).ok_or_else(|| {
            corrupt(format!(
                "section '{}' requested past the section table",
                tag_str(tag)
            ))
        })?;
        if decl.tag != tag {
            return Err(corrupt(format!(
                "expected section '{}', found '{}'",
                tag_str(tag),
                tag_str(decl.tag)
            )));
        }
        if decl.elem_size != elem_size {
            return Err(corrupt(format!(
                "section '{}' has element size {} (expected {elem_size})",
                tag_str(tag),
                decl.elem_size
            )));
        }
        self.next += 1;
        Ok(decl)
    }

    /// Read a `u32` column.
    pub fn col_u32(&mut self, tag: [u8; 4]) -> Result<Vec<u32>, SnapshotError> {
        let decl = self.expect(tag, 4)?;
        read_col(
            &mut self.inner,
            decl.count,
            &tag_str(tag),
            u32::from_le_bytes,
        )
    }

    /// Read a `u8` column.
    pub fn col_u8(&mut self, tag: [u8; 4]) -> Result<Vec<u8>, SnapshotError> {
        let decl = self.expect(tag, 1)?;
        read_col(&mut self.inner, decl.count, &tag_str(tag), |b: [u8; 1]| {
            b[0]
        })
    }

    /// Read an `f64` column (bit patterns).
    pub fn col_f64(&mut self, tag: [u8; 4]) -> Result<Vec<f64>, SnapshotError> {
        let decl = self.expect(tag, 8)?;
        read_col(&mut self.inner, decl.count, &tag_str(tag), |b: [u8; 8]| {
            f64::from_bits(u64::from_le_bytes(b))
        })
    }

    /// Read a `u64` column.
    pub fn col_u64(&mut self, tag: [u8; 4]) -> Result<Vec<u64>, SnapshotError> {
        let decl = self.expect(tag, 8)?;
        read_col(
            &mut self.inner,
            decl.count,
            &tag_str(tag),
            u64::from_le_bytes,
        )
    }

    /// Read a `u64` column into `usize` elements (fails on 32-bit overflow).
    pub fn col_u64_as_usize(&mut self, tag: [u8; 4]) -> Result<Vec<usize>, SnapshotError> {
        let decl = self.expect(tag, 8)?;
        let raw: Vec<u64> = read_col(
            &mut self.inner,
            decl.count,
            &tag_str(tag),
            u64::from_le_bytes,
        )?;
        raw.into_iter()
            .map(|v| {
                usize::try_from(v).map_err(|_| {
                    corrupt(format!("value {v} in '{}' overflows usize", tag_str(tag)))
                })
            })
            .collect()
    }

    /// Read a raw section through a closure over a length-limited reader.
    /// The closure must consume the section exactly.
    pub fn raw<T>(
        &mut self,
        tag: [u8; 4],
        f: impl FnOnce(&mut dyn Read) -> Result<T, SnapshotError>,
    ) -> Result<T, SnapshotError> {
        let decl = self.expect(tag, 1)?;
        let mut lim = (&mut self.inner).take(decl.byte_len());
        let v = f(&mut lim)?;
        if lim.limit() != 0 {
            return Err(corrupt(format!(
                "section '{}' has {} unconsumed bytes",
                tag_str(tag),
                lim.limit()
            )));
        }
        Ok(v)
    }
}

/// Read a typed column with chunked `read_exact` + `from_le_bytes` decoding.
/// The vector grows as data actually arrives, so a corrupt count hits
/// [`SnapshotError::Truncated`] instead of a huge allocation.
fn read_col<R, T, const K: usize>(
    r: &mut R,
    count: u64,
    region: &str,
    dec: impl Fn([u8; K]) -> T,
) -> Result<Vec<T>, SnapshotError>
where
    R: Read + ?Sized,
{
    const CHUNK: usize = 64 * 1024; // divisible by every elem size
    let prealloc = count.min((32 * 1024 * 1024 / K) as u64) as usize;
    let mut out: Vec<T> = Vec::with_capacity(prealloc);
    let mut buf = [0u8; CHUNK];
    let mut rem = count
        .checked_mul(K as u64)
        .ok_or_else(|| corrupt(format!("column '{region}' size overflows")))?;
    while rem > 0 {
        let take = rem.min(CHUNK as u64) as usize;
        r.read_exact(&mut buf[..take])
            .map_err(|e| map_eof(e, region))?;
        for c in buf[..take].chunks_exact(K) {
            out.push(dec(c.try_into().unwrap()));
        }
        rem -= take as u64;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Graph container
// ---------------------------------------------------------------------------

// v1 was n u64 + m u64 (16 bytes); v2 appends id_width u8 +
// offset_width u8 + weight_width u8 (DESIGN.md §12).
const GRAPH_PARAMS_BYTES: usize = 19;

/// Stored width of the offsets column: a property of the *data* (`2m`),
/// never of the writing build — so default and `compact-ids` builds emit
/// byte-identical snapshots.
fn graph_offset_width(m: usize) -> u32 {
    if (2 * m) as u64 <= u32::MAX as u64 {
        4
    } else {
        8
    }
}

fn graph_sections(n: usize, m: usize) -> Vec<SectionDecl> {
    vec![
        SectionDecl {
            tag: *b"offs",
            elem_size: graph_offset_width(m),
            count: (n + 1) as u64,
        },
        SectionDecl {
            tag: *b"neig",
            elem_size: 4,
            count: (2 * m) as u64,
        },
        SectionDecl {
            tag: *b"wgts",
            elem_size: 8,
            count: (2 * m) as u64,
        },
    ]
}

/// Exact byte size [`write_graph_snapshot`] will emit for `g`.
pub fn graph_snapshot_size(g: &Graph) -> u64 {
    container_size(
        GRAPH_PARAMS_BYTES,
        &graph_sections(g.num_vertices(), g.num_edges()),
    )
}

/// Write `g` as a binary snapshot: the CSR columns streamed verbatim
/// (offsets at the narrowest width `2m` admits).
pub fn write_graph_snapshot(g: &Graph, mut w: impl Write) -> Result<(), SnapshotError> {
    let (n, m) = (g.num_vertices(), g.num_edges());
    let offw = graph_offset_width(m);
    let mut params = ParamsBuf::new();
    params.u64(n as u64).u64(m as u64);
    // id_width (VId is always u32), offset_width, weight_width (f64).
    params.u8(4).u8(offw as u8).u8(8);
    let mut cw = ContainerWriter::begin(
        &mut w,
        &GRAPH_MAGIC,
        params.as_slice(),
        graph_sections(n, m),
    )?;
    if offw == 4 {
        cw.col_index_as_u32(*b"offs", g.offsets())?;
    } else {
        cw.col_index_as_u64(*b"offs", g.offsets())?;
    }
    cw.col_u32(*b"neig", g.neighbor_column())?;
    cw.col_f64(*b"wgts", g.weight_column())?;
    cw.finish()
}

/// Save `g` to a snapshot file.
pub fn save_graph_snapshot(g: &Graph, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    let mut out = io::BufWriter::new(std::fs::File::create(path)?);
    write_graph_snapshot(g, &mut out)?;
    out.flush()?;
    Ok(())
}

/// Load a graph snapshot: `read_exact` straight into the CSR columns, then
/// one structural validation pass (no per-edge decoding, no re-sorting —
/// the loaded graph is bit-identical to the saved one).
pub fn read_graph_snapshot(r: impl Read) -> Result<Graph, SnapshotError> {
    let mut cr = ContainerReader::open(r, &GRAPH_MAGIC)?;
    let version = cr.version();
    let mut p = ParamsReader::new(cr.params());
    let n64 = p.u64()?;
    let m64 = p.u64()?;
    if n64 > u32::MAX as u64 {
        return Err(corrupt(format!("vertex count {n64} exceeds u32 ids")));
    }
    let n = n64 as usize;
    let m = usize::try_from(m64).map_err(|_| corrupt("edge count overflows usize"))?;

    // v1 stored offsets as u64 with no width fields; v2 records the widths.
    let offw = if version >= 2 {
        let idw = p.u8()?;
        let offw = p.u8()?;
        let ww = p.u8()?;
        if idw != 4 {
            return Err(corrupt(format!(
                "graph id width {idw} (only u32 ids exist)"
            )));
        }
        if ww != 8 {
            return Err(corrupt(format!(
                "graph weight width {ww} (weights are f64)"
            )));
        }
        if offw != 4 && offw != 8 {
            return Err(corrupt(format!(
                "graph offset width {offw} (expected 4 or 8)"
            )));
        }
        u32::from(offw)
    } else {
        8
    };
    let offsets: Vec<EdgeIndex> = if offw == 4 {
        cr.col_u32(*b"offs")?
            .into_iter()
            .map(|v| u64_to_edge_index(v as u64))
            .collect::<Result<_, _>>()?
    } else {
        cr.col_u64(*b"offs")?
            .into_iter()
            .map(u64_to_edge_index)
            .collect::<Result<_, _>>()?
    };
    let neigh = cr.col_u32(*b"neig")?;
    let wt = cr.col_f64(*b"wgts")?;
    validate_graph_columns(n, m, &offsets, &neigh, &wt)
        .map(|edges| Graph::from_raw_parts(n, offsets, neigh, wt, edges))
}

/// Narrow a stored offset to this build's [`EdgeIndex`]. Only reachable
/// under `compact-ids` loading a wide (v1 or `offset_width == 8`) file
/// whose offsets genuinely exceed u32 — a graph that build cannot hold.
fn u64_to_edge_index(v: u64) -> Result<EdgeIndex, SnapshotError> {
    EdgeIndex::try_from(v)
        .map_err(|_| corrupt(format!("offset {v} overflows this build's EdgeIndex width")))
}

/// Load a graph snapshot from a file path.
pub fn load_graph_snapshot(path: impl AsRef<Path>) -> Result<Graph, SnapshotError> {
    read_graph_snapshot(io::BufReader::new(std::fs::File::open(path)?))
}

/// Validate raw CSR columns and reconstruct the canonical edge list
/// (`u < v`, lexicographic — exactly the scan order of the CSR).
fn validate_graph_columns(
    n: usize,
    m: usize,
    offsets: &[EdgeIndex],
    neigh: &[VId],
    wt: &[Weight],
) -> Result<Vec<(VId, VId, Weight)>, SnapshotError> {
    let ix = crate::edge_index_usize;
    if offsets.len() != n + 1 {
        return Err(corrupt(format!(
            "offsets column has {} entries for n = {n}",
            offsets.len()
        )));
    }
    if neigh.len() != 2 * m || wt.len() != 2 * m {
        return Err(corrupt(format!(
            "adjacency columns have {} / {} entries for m = {m}",
            neigh.len(),
            wt.len()
        )));
    }
    if ix(offsets[0]) != 0 || ix(offsets[n]) != 2 * m {
        return Err(corrupt("offsets must run from 0 to 2m"));
    }
    let mut edges = Vec::with_capacity(m);
    for u in 0..n {
        let (lo, hi) = (ix(offsets[u]), ix(offsets[u + 1]));
        if lo > hi || hi > 2 * m {
            return Err(corrupt(format!("offsets not monotone at vertex {u}")));
        }
        let mut prev: Option<VId> = None;
        for i in lo..hi {
            let v = neigh[i];
            let w = wt[i];
            if v as usize >= n {
                return Err(corrupt(format!("neighbor {v} of vertex {u} out of range")));
            }
            if v as usize == u {
                return Err(corrupt(format!("self loop at vertex {u}")));
            }
            if prev.is_some_and(|p| p >= v) {
                return Err(corrupt(format!(
                    "adjacency of vertex {u} not strictly sorted"
                )));
            }
            if !(w.is_finite() && w > 0.0) {
                return Err(corrupt(format!("edge ({u}, {v}) has invalid weight {w}")));
            }
            if (u as VId) < v {
                edges.push((u as VId, v, w));
            }
            prev = Some(v);
        }
    }
    if edges.len() != m {
        return Err(corrupt(format!(
            "canonical edge count {} does not match declared m = {m}",
            edges.len()
        )));
    }
    // Symmetry: every canonical edge must appear with the same weight bits
    // in the mirror adjacency list.
    for &(u, v, w) in &edges {
        let (lo, hi) = (ix(offsets[v as usize]), ix(offsets[v as usize + 1]));
        match neigh[lo..hi].binary_search(&u) {
            Ok(i) if wt[lo + i].to_bits() == w.to_bits() => {}
            _ => {
                return Err(corrupt(format!(
                    "edge ({u}, {v}) is not symmetric in the adjacency columns"
                )))
            }
        }
    }
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn roundtrip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        write_graph_snapshot(g, &mut buf).unwrap();
        assert_eq!(buf.len() as u64, graph_snapshot_size(g));
        read_graph_snapshot(buf.as_slice()).unwrap()
    }

    #[test]
    fn graph_roundtrip_bit_identical() {
        for g in [
            gen::gnm(40, 100, 3, 1.0, 7.5),
            gen::road_grid(9, 11, 5, 1.0, 4.0),
            gen::geometric(48, 0.35, 9),
            Graph::empty(5),
            Graph::empty(0),
        ] {
            let h = roundtrip(&g);
            assert_eq!(g.num_vertices(), h.num_vertices());
            assert_eq!(g.edges().len(), h.edges().len());
            for (a, b) in g.edges().iter().zip(h.edges()) {
                assert_eq!((a.0, a.1), (b.0, b.1));
                assert_eq!(a.2.to_bits(), b.2.to_bits());
            }
            assert_eq!(g.offsets(), h.offsets());
            assert_eq!(g.neighbor_column(), h.neighbor_column());
        }
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn bad_magic_is_typed() {
        let g = gen::path(4);
        let mut buf = Vec::new();
        write_graph_snapshot(&g, &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_graph_snapshot(buf.as_slice()),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn wrong_version_is_typed() {
        let g = gen::path(4);
        let mut buf = Vec::new();
        write_graph_snapshot(&g, &mut buf).unwrap();
        buf[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_graph_snapshot(buf.as_slice()),
            Err(SnapshotError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let g = gen::path(4);
        let mut buf = Vec::new();
        write_graph_snapshot(&g, &mut buf).unwrap();
        buf[24] ^= 0xff; // first params byte
        assert!(matches!(
            read_graph_snapshot(buf.as_slice()),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let g = gen::gnm(20, 40, 1, 1.0, 2.0);
        let mut buf = Vec::new();
        write_graph_snapshot(&g, &mut buf).unwrap();
        for cut in [4usize, 20, buf.len() / 2, buf.len() - 3] {
            let r = read_graph_snapshot(&buf[..cut]);
            assert!(
                matches!(r, Err(SnapshotError::Truncated { .. })),
                "cut at {cut} gave {r:?}"
            );
        }
    }

    #[test]
    fn out_of_range_neighbor_is_corrupt() {
        let g = gen::path(4);
        let mut buf = Vec::new();
        write_graph_snapshot(&g, &mut buf).unwrap();
        // Find the data start (prelude + header) and patch the first
        // neighbor id (section order: offs (5×u32 — path(4) fits the
        // narrow width), then neig).
        let hlen = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
        let data = 24 + hlen;
        let neig0 = data + 5 * 4;
        buf[neig0..neig0 + 4].copy_from_slice(&250u32.to_le_bytes());
        assert!(matches!(
            read_graph_snapshot(buf.as_slice()),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    /// Emit a genuine version-1 graph snapshot (u64 offsets, 16-byte
    /// params) — the layout PR 8 shipped.
    fn write_graph_snapshot_v1(g: &Graph, w: &mut Vec<u8>) {
        let (n, m) = (g.num_vertices(), g.num_edges());
        let mut params = ParamsBuf::new();
        params.u64(n as u64).u64(m as u64);
        let sections = vec![
            SectionDecl {
                tag: *b"offs",
                elem_size: 8,
                count: (n + 1) as u64,
            },
            SectionDecl {
                tag: *b"neig",
                elem_size: 4,
                count: (2 * m) as u64,
            },
            SectionDecl {
                tag: *b"wgts",
                elem_size: 8,
                count: (2 * m) as u64,
            },
        ];
        let mut cw =
            ContainerWriter::begin_with_version(w, &GRAPH_MAGIC, 1, params.as_slice(), sections)
                .unwrap();
        cw.col_index_as_u64(*b"offs", g.offsets()).unwrap();
        cw.col_u32(*b"neig", g.neighbor_column()).unwrap();
        cw.col_f64(*b"wgts", g.weight_column()).unwrap();
        cw.finish().unwrap();
    }

    #[test]
    fn v1_snapshots_still_load() {
        let g = gen::gnm(30, 70, 11, 1.0, 5.0);
        let mut buf = Vec::new();
        write_graph_snapshot_v1(&g, &mut buf);
        let h = read_graph_snapshot(buf.as_slice()).unwrap();
        assert_eq!(g.offsets(), h.offsets());
        assert_eq!(g.neighbor_column(), h.neighbor_column());
        for (a, b) in g.weight_column().iter().zip(h.weight_column()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(g.edges(), h.edges());
    }

    #[test]
    fn v2_stores_narrow_offsets_when_they_fit() {
        // The width written is a function of 2m, not of the build's
        // EdgeIndex — both feature legs must produce this exact file.
        let g = gen::gnm(30, 70, 11, 1.0, 5.0);
        let mut buf = Vec::new();
        write_graph_snapshot(&g, &mut buf).unwrap();
        assert_eq!(
            u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            FORMAT_VERSION
        );
        let cr = ContainerReader::open(buf.as_slice(), &GRAPH_MAGIC).unwrap();
        assert_eq!(cr.version(), 2);
        assert_eq!(cr.params().len(), GRAPH_PARAMS_BYTES);
        assert_eq!(cr.sections()[0].elem_size, 4, "offs stored as u32");
        // And the widths recorded in params match.
        let mut p = ParamsReader::new(cr.params());
        let _ = p.u64().unwrap();
        let _ = p.u64().unwrap();
        assert_eq!(
            (p.u8().unwrap(), p.u8().unwrap(), p.u8().unwrap()),
            (4, 4, 8)
        );
    }

    #[test]
    fn asymmetric_weight_is_corrupt() {
        let g = gen::path(4);
        let mut buf = Vec::new();
        write_graph_snapshot(&g, &mut buf).unwrap();
        let hlen = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
        let data = 24 + hlen;
        // Patch the first weight only (its mirror entry keeps the old bits).
        // offs is 5×u32 (see above), neig 6×u32.
        let wgts0 = data + 5 * 4 + 6 * 4;
        buf[wgts0..wgts0 + 8].copy_from_slice(&2.5f64.to_bits().to_le_bytes());
        assert!(matches!(
            read_graph_snapshot(buf.as_slice()),
            Err(SnapshotError::Corrupt { .. })
        ));
    }
}
