//! Exact reference algorithms: Dijkstra, hop-limited Bellman–Ford, BFS.
//!
//! These are the sequential ground-truth oracles used to *measure* the
//! stretch of hopset-based approximate distances, and the sequential-work
//! baseline (Dijkstra) of experiment E10. They intentionally live apart from
//! the PRAM-instrumented parallel algorithms in the `pram` crate.

use crate::{Graph, UnionView, VId, Weight, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a single-source exact computation.
#[derive(Clone, Debug)]
pub struct SsspResult {
    /// `dist[v]` = exact distance from the source (INF if unreachable).
    pub dist: Vec<Weight>,
    /// `parent[v]` = predecessor on a shortest path (`None` for the source
    /// and unreachable vertices).
    pub parent: Vec<Option<VId>>,
}

impl SsspResult {
    /// Reconstruct the shortest path to `v` (source first). `None` if `v`
    /// is unreachable.
    pub fn path_to(&self, v: VId) -> Option<Vec<VId>> {
        if self.dist[v as usize] == INF {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur as usize] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Binary-heap Dijkstra on the base graph.
pub fn dijkstra(g: &Graph, src: VId) -> SsspResult {
    dijkstra_view(&UnionView::base_only(g), src)
}

/// Binary-heap Dijkstra over a [`UnionView`] (i.e. on `G ∪ H`): the exact
/// oracle for "could the hopset ever shorten a distance" checks
/// (Lemmas 2.3/2.9 state it cannot).
pub fn dijkstra_view(view: &UnionView<'_>, src: VId) -> SsspResult {
    let n = view.num_vertices();
    let mut dist = vec![INF; n];
    let mut parent = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, VId)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((dk, u))) = heap.pop() {
        let du = key_to_f64(dk);
        if du > dist[u as usize] {
            continue;
        }
        view.for_each_neighbor(u, |v, w, _| {
            let nd = du + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                parent[v as usize] = Some(u);
                heap.push(Reverse((f64_to_key(nd), v)));
            }
        });
    }
    SsspResult { dist, parent }
}

/// Point-to-point Dijkstra with pop-`target` early termination: when the
/// heap pops `target`, its label is final (the classical settled-vertex
/// invariant under positive weights), so the search stops there instead of
/// draining the heap. Labels are only ever overwritten by strict
/// improvements, so the answer is **bit-identical** to
/// `dijkstra(g, src).dist[target]` — including `INF` for unreachable
/// targets (the heap drains without popping `target`).
pub fn dijkstra_to(g: &Graph, src: VId, target: VId) -> Weight {
    let view = UnionView::base_only(g);
    let n = view.num_vertices();
    let mut dist = vec![INF; n];
    let mut heap: BinaryHeap<Reverse<(u64, VId)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((dk, u))) = heap.pop() {
        let du = key_to_f64(dk);
        if du > dist[u as usize] {
            continue;
        }
        if u == target {
            return du;
        }
        view.for_each_neighbor(u, |v, w, _| {
            let nd = du + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((f64_to_key(nd), v)));
            }
        });
    }
    dist[target as usize]
}

/// Dijkstra truncated at distance `limit`: vertices farther than `limit`
/// keep `INF`. Used to compute exact distances only inside a scale.
pub fn dijkstra_truncated(view: &UnionView<'_>, src: VId, limit: Weight) -> Vec<Weight> {
    let n = view.num_vertices();
    let mut dist = vec![INF; n];
    let mut heap: BinaryHeap<Reverse<(u64, VId)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((dk, u))) = heap.pop() {
        let du = key_to_f64(dk);
        if du > dist[u as usize] {
            continue;
        }
        view.for_each_neighbor(u, |v, w, _| {
            let nd = du + w;
            if nd <= limit && nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((f64_to_key(nd), v)));
            }
        });
    }
    dist
}

/// Order-preserving mapping from non-negative finite `f64` to `u64`, so the
/// binary heap can order keys without float wrappers.
#[inline]
fn f64_to_key(x: f64) -> u64 {
    debug_assert!(x >= 0.0);
    x.to_bits()
}

#[inline]
fn key_to_f64(k: u64) -> f64 {
    f64::from_bits(k)
}

/// Sequential hop-limited Bellman–Ford over a view: returns
/// `d^{(hops)}(src, ·)`, the minimum length of a path using at most `hops`
/// edges — the central quantity of the paper (the "β-bounded distance" of
/// eq. (1)).
pub fn bellman_ford_hops(view: &UnionView<'_>, sources: &[VId], hops: usize) -> Vec<Weight> {
    let n = view.num_vertices();
    let mut dist = vec![INF; n];
    for &s in sources {
        dist[s as usize] = 0.0;
    }
    let mut next = dist.clone();
    for _ in 0..hops {
        let mut changed = false;
        for u in 0..n as VId {
            let du = dist[u as usize];
            if du == INF {
                continue;
            }
            view.for_each_neighbor(u, |v, w, _| {
                let nd = du + w;
                if nd < next[v as usize] {
                    next[v as usize] = nd;
                    changed = true;
                }
            });
        }
        dist.copy_from_slice(&next);
        if !changed {
            break;
        }
    }
    dist
}

/// Unweighted BFS distances (number of hops) from `src` on the base graph.
pub fn bfs_hops(g: &Graph, src: VId) -> Vec<usize> {
    let n = g.num_vertices();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for (v, _) in g.neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The minimum number of edges over all *shortest* (by weight) `src → v`
/// paths, i.e. the hop count a hopset must beat. Computed by lexicographic
/// Dijkstra on (distance, hops).
pub fn shortest_path_hops(g: &Graph, src: VId) -> Vec<usize> {
    let view = UnionView::base_only(g);
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    let mut hops = vec![usize::MAX; n];
    let mut heap: BinaryHeap<Reverse<(u64, usize, VId)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    hops[src as usize] = 0;
    heap.push(Reverse((0, 0, src)));
    while let Some(Reverse((dk, h, u))) = heap.pop() {
        let du = key_to_f64(dk);
        if (du, h) > (dist[u as usize], hops[u as usize]) {
            continue;
        }
        view.for_each_neighbor(u, |v, w, _| {
            let nd = du + w;
            let nh = h + 1;
            if (nd, nh) < (dist[v as usize], hops[v as usize]) {
                dist[v as usize] = nd;
                hops[v as usize] = nh;
                heap.push(Reverse((f64_to_key(nd), nh, v)));
            }
        });
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn weighted_square() -> Graph {
        // 0-1 (1), 1-2 (1), 2-3 (1), 0-3 (10): shortest 0→3 is 3 hops, len 3.
        Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 10.0)]).unwrap()
    }

    #[test]
    fn dijkstra_simple() {
        let g = weighted_square();
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(r.path_to(3), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn dijkstra_unreachable() {
        let g = Graph::from_edges(3, [(0, 1, 1.0)]).unwrap();
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist[2], INF);
        assert_eq!(r.path_to(2), None);
    }

    #[test]
    fn dijkstra_on_union_view_uses_overlay() {
        let g = weighted_square();
        let extra = vec![(0, 3, 2.0)];
        let view = UnionView::with_extra(&g, &extra);
        let r = dijkstra_view(&view, 0);
        assert_eq!(r.dist[3], 2.0);
    }

    #[test]
    fn dijkstra_to_matches_full_run_bit_for_bit() {
        let g = gen::gnm(64, 192, 42, 1.0, 8.0);
        let full = dijkstra(&g, 5).dist;
        for target in [0u32, 5, 31, 63] {
            let d = dijkstra_to(&g, 5, target);
            assert_eq!(d.to_bits(), full[target as usize].to_bits(), "t={target}");
        }
        // Unreachable target reports INF like the full run.
        let g2 = Graph::from_edges(3, [(0, 1, 1.0)]).unwrap();
        assert_eq!(dijkstra_to(&g2, 0, 2), INF);
        // Source-as-target is 0.0 without any relaxation.
        assert_eq!(dijkstra_to(&g2, 0, 0).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn truncated_dijkstra_respects_limit() {
        let g = weighted_square();
        let view = UnionView::base_only(&g);
        let d = dijkstra_truncated(&view, 0, 2.0);
        assert_eq!(d, vec![0.0, 1.0, 2.0, INF]);
    }

    #[test]
    fn bellman_ford_hop_limits() {
        let g = weighted_square();
        let view = UnionView::base_only(&g);
        // With 1 hop, 0→3 can only use the direct heavy edge.
        let d1 = bellman_ford_hops(&view, &[0], 1);
        assert_eq!(d1[3], 10.0);
        // With 3 hops the light path is available.
        let d3 = bellman_ford_hops(&view, &[0], 3);
        assert_eq!(d3[3], 3.0);
        // Multi-source.
        let dm = bellman_ford_hops(&view, &[0, 3], 1);
        assert_eq!(dm[2], 1.0);
        assert_eq!(dm[1], 1.0);
    }

    #[test]
    fn bellman_ford_converges_to_dijkstra() {
        let g = gen::gnm(64, 192, 42, 1.0, 8.0);
        let view = UnionView::base_only(&g);
        let bf = bellman_ford_hops(&view, &[0], 64);
        let dj = dijkstra(&g, 0);
        #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
        for v in 0..64 {
            assert!(
                (bf[v] - dj.dist[v]).abs() < 1e-9 || (bf[v] == INF && dj.dist[v] == INF),
                "v={v}: bf={} dj={}",
                bf[v],
                dj.dist[v]
            );
        }
    }

    #[test]
    fn bfs_and_hop_counts() {
        let g = weighted_square();
        assert_eq!(bfs_hops(&g, 0), vec![0, 1, 2, 1]);
        // shortest (by weight) path to 3 has 3 hops even though BFS says 1.
        assert_eq!(shortest_path_hops(&g, 0), vec![0, 1, 2, 3]);
    }
}
