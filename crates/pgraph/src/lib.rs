#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # pgraph — graph substrate for the `pram-sssp` workspace
//!
//! This crate provides the graph machinery that the deterministic hopset
//! construction of Elkin–Matar (SPAA 2021) is built on:
//!
//! * [`Graph`] — a compact CSR representation of undirected, positively
//!   weighted graphs with `u32` vertex ids and `f64` weights,
//! * [`UnionView`] — a zero-copy adjacency view over `E ∪ H` (a base graph
//!   plus an overlay edge set, e.g. a hopset), which is the object all
//!   hop-limited explorations in the paper run on, and [`UnionGraph`] — its
//!   owned, `Arc`-backed, `Send + Sync` sibling for long-lived query engines,
//! * [`gen`] — deterministic graph generators used by tests, examples and
//!   the experiment harness,
//! * [`exact`] — exact reference algorithms (Dijkstra, hop-limited
//!   Bellman–Ford, BFS) used as ground truth when measuring stretch,
//! * [`io`] — a tiny DIMACS-like text format (no external dependencies) and
//!   [`io::dimacs`], ingestion of the standard DIMACS `.gr` challenge format,
//! * [`snapshot`] — versioned binary snapshots of the CSR columns
//!   (zero-decode load; DESIGN.md §11).
//!
//! Everything in this crate is deterministic; randomized generators take an
//! explicit seed.

pub mod csr;
pub mod exact;
pub mod gen;
pub mod io;
pub mod snapshot;
pub mod view;

pub use csr::{Graph, GraphBuilder, GraphStats};
pub use snapshot::SnapshotError;
pub use view::{EdgeTag, OverlayCsr, OverlayCsrBuilder, UnionGraph, UnionView};

/// Vertex identifier. Graphs are limited to `u32::MAX` vertices, which keeps
/// adjacency arrays compact (see the perf-book guidance on smaller integers).
pub type VId = u32;

/// Edge weight. The hopset construction requires strictly positive, finite
/// weights with minimum weight `>= 1` (the paper's normalization, §1.5).
pub type Weight = f64;

/// Index into the CSR edge columns (the element type of [`Graph`]'s
/// `offsets` array). Under the `compact-ids` feature this is `u32`,
/// halving the offsets column for graphs with `2m ≤ u32::MAX` directed
/// slots; otherwise it is `usize`. The choice is a *build-time* memory
/// trade only: every computed value is identical across the two widths
/// (pinned by the width-parity test in the hopset crate), and snapshots
/// always store the width the data needs, so files are byte-identical
/// across builds (DESIGN.md §12).
#[cfg(feature = "compact-ids")]
pub type EdgeIndex = u32;

/// Index into the CSR edge columns (the element type of [`Graph`]'s
/// `offsets` array). See the `compact-ids` variant for the contract.
#[cfg(not(feature = "compact-ids"))]
pub type EdgeIndex = usize;

/// Narrow a `usize` edge index to [`EdgeIndex`]. Overflow is impossible
/// for graphs admitted by [`GraphBuilder`] (which asserts the edge count
/// fits the build's width); debug builds still check.
#[inline]
#[allow(clippy::unnecessary_cast)] // identity cast under the default (usize) width
pub fn edge_index(i: usize) -> EdgeIndex {
    debug_assert!(
        i as u64 <= EdgeIndex::MAX as u64,
        "edge index {i} overflows EdgeIndex"
    );
    i as EdgeIndex
}

/// Widen an [`EdgeIndex`] back to `usize` for slicing.
#[inline]
#[allow(clippy::unnecessary_cast)] // identity cast under the default (usize) width
pub fn edge_index_usize(i: EdgeIndex) -> usize {
    i as usize
}

/// The "infinite" distance sentinel.
pub const INF: Weight = f64::INFINITY;

/// Compare two weights with a total order (no NaNs are ever produced by this
/// workspace; this is still total-order safe if they were). Takes references
/// so it can be passed straight to `sort_by`/`min_by`/`max_by`.
#[inline]
pub fn wcmp(a: &Weight, b: &Weight) -> std::cmp::Ordering {
    a.total_cmp(b)
}

/// `ceil(log2(x))` for `x >= 1`, as used all over the paper's parameter
/// arithmetic. `ceil_log2(1) == 0`.
#[inline]
pub fn ceil_log2(x: usize) -> u32 {
    debug_assert!(x >= 1);
    (usize::BITS - (x - 1).leading_zeros()).min(usize::BITS) * u32::from(x > 1)
}

/// `floor(log2(x))` for `x >= 1`.
#[inline]
pub fn floor_log2(x: usize) -> u32 {
    debug_assert!(x >= 1);
    usize::BITS - 1 - x.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_small_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn floor_log2_small_values() {
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(1023), 9);
        assert_eq!(floor_log2(1024), 10);
    }

    #[test]
    fn wcmp_total_order() {
        use std::cmp::Ordering::*;
        assert_eq!(wcmp(&1.0, &2.0), Less);
        assert_eq!(wcmp(&2.0, &1.0), Greater);
        assert_eq!(wcmp(&1.5, &1.5), Equal);
        assert_eq!(wcmp(&1.0, &INF), Less);
    }
}
