//! Compact CSR representation of undirected, positively weighted graphs.
//!
//! The hopset construction makes many synchronized passes over adjacency
//! lists, so the layout is optimized for streaming: one `offsets` array and
//! parallel `neigh`/`wt` arrays (structure-of-arrays, per the perf-book
//! guidance on cache-friendly layouts). Adjacency lists are sorted by
//! neighbor id, which makes `edge_weight` a binary search and makes all
//! iteration deterministic.

use crate::{edge_index, edge_index_usize, EdgeIndex, VId, Weight};
use std::fmt;

/// An immutable undirected weighted graph in CSR form.
///
/// Invariants (enforced by [`GraphBuilder`]):
/// * no self loops,
/// * parallel edges collapsed to the minimum weight,
/// * all weights strictly positive and finite,
/// * adjacency lists sorted by neighbor id.
#[derive(Clone, PartialEq)]
pub struct Graph {
    n: usize,
    /// `offsets[v]..offsets[v+1]` indexes `neigh`/`wt` for vertex `v`.
    /// [`EdgeIndex`]-typed: `u32` under `compact-ids`, `usize` otherwise.
    offsets: Vec<EdgeIndex>,
    neigh: Vec<VId>,
    wt: Vec<Weight>,
    /// Canonical edge list with `u < v`, sorted lexicographically.
    edges: Vec<(VId, VId, Weight)>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n)
            .field("m", &self.num_edges())
            .finish()
    }
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VId) -> usize {
        let v = v as usize;
        edge_index_usize(self.offsets[v + 1]) - edge_index_usize(self.offsets[v])
    }

    /// Iterate over `(neighbor, weight)` pairs of `v`, sorted by neighbor id.
    #[inline]
    pub fn neighbors(&self, v: VId) -> impl Iterator<Item = (VId, Weight)> + '_ {
        let v = v as usize;
        let r = edge_index_usize(self.offsets[v])..edge_index_usize(self.offsets[v + 1]);
        self.neigh[r.clone()]
            .iter()
            .copied()
            .zip(self.wt[r].iter().copied())
    }

    /// The canonical undirected edge list (`u < v`, lexicographically sorted).
    #[inline]
    pub fn edges(&self) -> &[(VId, VId, Weight)] {
        &self.edges
    }

    /// Weight of edge `(u, v)` if present.
    pub fn edge_weight(&self, u: VId, v: VId) -> Option<Weight> {
        let ui = u as usize;
        let lo = edge_index_usize(self.offsets[ui]);
        let hi = edge_index_usize(self.offsets[ui + 1]);
        let slice = &self.neigh[lo..hi];
        slice.binary_search(&v).ok().map(|i| self.wt[lo + i])
    }

    /// True if the graph contains edge `(u, v)`.
    #[inline]
    pub fn has_edge(&self, u: VId, v: VId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Minimum edge weight, or `None` for an edgeless graph.
    pub fn min_weight(&self) -> Option<Weight> {
        self.wt.iter().copied().min_by(crate::wcmp)
    }

    /// Maximum edge weight, or `None` for an edgeless graph.
    pub fn max_weight(&self) -> Option<Weight> {
        self.wt.iter().copied().max_by(crate::wcmp)
    }

    /// An upper bound on the diameter: `(n - 1) * max_weight`.
    ///
    /// The hopset construction only needs an upper bound on the aspect ratio
    /// Λ (it determines how many distance scales exist); using an upper bound
    /// adds empty scales but never weakens a guarantee.
    pub fn diameter_upper_bound(&self) -> Weight {
        match self.max_weight() {
            Some(w) => w * (self.n.max(2) - 1) as Weight,
            None => 0.0,
        }
    }

    /// Upper bound on the aspect ratio `Λ = max dist / min dist`, using
    /// `diameter_upper_bound / min_weight`.
    pub fn aspect_ratio_bound(&self) -> Weight {
        match self.min_weight() {
            Some(mn) if mn > 0.0 => self.diameter_upper_bound() / mn,
            _ => 1.0,
        }
    }

    /// Returns a copy of the graph with all weights scaled so that the
    /// minimum weight is exactly 1 (the paper's normalization, §1.5).
    /// Stretch is invariant under uniform scaling. No-op for edgeless graphs.
    pub fn scaled_to_unit_min(&self) -> Graph {
        let Some(mn) = self.min_weight() else {
            return self.clone();
        };
        if mn == 1.0 {
            return self.clone();
        }
        let inv = 1.0 / mn;
        let mut g = self.clone();
        for w in &mut g.wt {
            *w *= inv;
        }
        for e in &mut g.edges {
            e.2 *= inv;
        }
        g
    }

    /// Summary statistics used by the experiment harness.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            n: self.n,
            m: self.num_edges(),
            min_weight: self.min_weight().unwrap_or(0.0),
            max_weight: self.max_weight().unwrap_or(0.0),
            max_degree: (0..self.n as VId)
                .map(|v| self.degree(v))
                .max()
                .unwrap_or(0),
        }
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.2).sum()
    }

    /// The raw CSR offsets column (`n + 1` entries; `offsets[v]..offsets[v+1]`
    /// indexes the adjacency columns of vertex `v`). Exposed for the snapshot
    /// layer, which streams columns verbatim. Element type is [`EdgeIndex`]
    /// (`u32` under the `compact-ids` feature).
    #[inline]
    pub fn offsets(&self) -> &[EdgeIndex] {
        &self.offsets
    }

    /// The raw neighbor-id column (`2m` entries, each adjacency run sorted).
    #[inline]
    pub fn neighbor_column(&self) -> &[VId] {
        &self.neigh
    }

    /// The raw weight column, parallel to [`Graph::neighbor_column`].
    #[inline]
    pub fn weight_column(&self) -> &[Weight] {
        &self.wt
    }

    /// Assemble a graph directly from validated columns. Callers (the
    /// snapshot loader) must have checked every [`Graph`] invariant: the
    /// debug assertions here only spot-check shape.
    pub(crate) fn from_raw_parts(
        n: usize,
        offsets: Vec<EdgeIndex>,
        neigh: Vec<VId>,
        wt: Vec<Weight>,
        edges: Vec<(VId, VId, Weight)>,
    ) -> Graph {
        debug_assert_eq!(offsets.len(), n + 1);
        debug_assert_eq!(neigh.len(), 2 * edges.len());
        debug_assert_eq!(wt.len(), neigh.len());
        Graph {
            n,
            offsets,
            neigh,
            wt,
            edges,
        }
    }
}

/// Summary statistics of a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Minimum edge weight (0 for edgeless graphs).
    pub min_weight: Weight,
    /// Maximum edge weight (0 for edgeless graphs).
    pub max_weight: Weight,
    /// Maximum vertex degree.
    pub max_degree: usize,
}

/// Errors raised when assembling a [`Graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint id was `>= n`.
    VertexOutOfRange {
        /// The offending edge.
        edge: (VId, VId),
        /// The declared vertex count.
        n: usize,
    },
    /// A self loop was supplied.
    SelfLoop {
        /// The looping vertex.
        v: VId,
    },
    /// A non-positive or non-finite weight was supplied.
    BadWeight {
        /// The offending edge.
        edge: (VId, VId),
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { edge, n } => {
                write!(f, "edge ({}, {}) has endpoint >= n = {}", edge.0, edge.1, n)
            }
            GraphError::SelfLoop { v } => write!(f, "self loop at vertex {v}"),
            GraphError::BadWeight { edge } => write!(
                f,
                "edge ({}, {}) has non-positive or non-finite weight",
                edge.0, edge.1
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder for [`Graph`].
///
/// ```
/// use pgraph::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1, 1.0);
/// b.add_edge(1, 2, 2.0);
/// b.add_edge(2, 3, 1.5);
/// b.add_edge(2, 3, 9.0); // parallel edge: min weight wins
/// let g = b.build().unwrap();
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.edge_weight(2, 3), Some(1.5));
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VId, VId, Weight)>,
}

impl GraphBuilder {
    /// Start a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex ids are u32");
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Start a builder with capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Add an undirected edge. Order of endpoints does not matter.
    pub fn add_edge(&mut self, u: VId, v: VId, w: Weight) -> &mut Self {
        self.edges.push((u.min(v), u.max(v), w));
        self
    }

    /// Add every edge from an iterator.
    pub fn extend_edges(&mut self, it: impl IntoIterator<Item = (VId, VId, Weight)>) -> &mut Self {
        for (u, v, w) in it {
            self.add_edge(u, v, w);
        }
        self
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges were added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Validate and assemble the CSR graph.
    pub fn build(mut self) -> Result<Graph, GraphError> {
        let n = self.n;
        for &(u, v, w) in &self.edges {
            if u as usize >= n || v as usize >= n {
                return Err(GraphError::VertexOutOfRange { edge: (u, v), n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { v });
            }
            if !(w.is_finite() && w > 0.0) {
                return Err(GraphError::BadWeight { edge: (u, v) });
            }
        }
        // Deduplicate parallel edges keeping the lightest (deterministic).
        self.edges.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1.cmp(&b.1))
                .then(crate::wcmp(&a.2, &b.2))
        });
        self.edges
            .dedup_by(|next, prev| next.0 == prev.0 && next.1 == prev.1);

        let m = self.edges.len();
        assert!(
            (2 * m) as u64 <= EdgeIndex::MAX as u64,
            "graph has {m} edges; 2m overflows this build's EdgeIndex width \
             (build without the `compact-ids` feature)"
        );
        let mut deg = vec![0usize; n + 1];
        for &(u, v, _) in &self.edges {
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let offsets = deg;
        let mut cursor = offsets.clone();
        let mut neigh = vec![0 as VId; 2 * m];
        let mut wt = vec![0.0; 2 * m];
        for &(u, v, w) in &self.edges {
            let cu = cursor[u as usize];
            neigh[cu] = v;
            wt[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize];
            neigh[cv] = u;
            wt[cv] = w;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency list by neighbor id (weights follow).
        for v in 0..n {
            let r = offsets[v]..offsets[v + 1];
            let mut pairs: Vec<(VId, Weight)> = neigh[r.clone()]
                .iter()
                .copied()
                .zip(wt[r.clone()].iter().copied())
                .collect();
            pairs.sort_by_key(|a| a.0);
            for (i, (nb, w)) in pairs.into_iter().enumerate() {
                neigh[offsets[v] + i] = nb;
                wt[offsets[v] + i] = w;
            }
        }
        // Prefix sums and cursors run in `usize`; narrow once, at the end
        // (the assert above guarantees every offset fits).
        let offsets: Vec<EdgeIndex> = offsets.iter().map(|&o| edge_index(o)).collect();
        Ok(Graph {
            n,
            offsets,
            neigh,
            wt,
            edges: self.edges,
        })
    }
}

impl Graph {
    /// Convenience constructor from an edge list.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (VId, VId, Weight)>,
    ) -> Result<Graph, GraphError> {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(edges);
        b.build()
    }

    /// An edgeless graph on `n` vertices.
    pub fn empty(n: usize) -> Graph {
        GraphBuilder::new(n).build().expect("empty graph is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        Graph::from_edges(4, [(0, 1, 1.0), (0, 2, 2.0), (1, 3, 2.0), (2, 3, 1.0)]).unwrap()
    }

    #[test]
    fn csr_basics() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 2);
        let n0: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 1.0), (2, 2.0)]);
        assert_eq!(g.edge_weight(3, 1), Some(2.0));
        assert_eq!(g.edge_weight(0, 3), None);
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn parallel_edges_keep_min() {
        let g = Graph::from_edges(2, [(0, 1, 5.0), (1, 0, 2.0), (0, 1, 7.0)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
    }

    #[test]
    fn rejects_self_loop() {
        let e = Graph::from_edges(3, [(1, 1, 1.0)]).unwrap_err();
        assert_eq!(e, GraphError::SelfLoop { v: 1 });
    }

    #[test]
    fn rejects_out_of_range() {
        let e = Graph::from_edges(3, [(0, 3, 1.0)]).unwrap_err();
        assert!(matches!(e, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(matches!(
            Graph::from_edges(2, [(0, 1, 0.0)]).unwrap_err(),
            GraphError::BadWeight { .. }
        ));
        assert!(matches!(
            Graph::from_edges(2, [(0, 1, -1.0)]).unwrap_err(),
            GraphError::BadWeight { .. }
        ));
        assert!(matches!(
            Graph::from_edges(2, [(0, 1, f64::INFINITY)]).unwrap_err(),
            GraphError::BadWeight { .. }
        ));
        assert!(matches!(
            Graph::from_edges(2, [(0, 1, f64::NAN)]).unwrap_err(),
            GraphError::BadWeight { .. }
        ));
    }

    #[test]
    fn weight_extrema_and_bounds() {
        let g = diamond();
        assert_eq!(g.min_weight(), Some(1.0));
        assert_eq!(g.max_weight(), Some(2.0));
        assert_eq!(g.diameter_upper_bound(), 6.0);
        assert_eq!(g.aspect_ratio_bound(), 6.0);
        assert_eq!(Graph::empty(5).min_weight(), None);
    }

    #[test]
    fn scaling_normalizes_min_weight() {
        let g = Graph::from_edges(3, [(0, 1, 0.5), (1, 2, 2.0)]).unwrap();
        let s = g.scaled_to_unit_min();
        assert_eq!(s.min_weight(), Some(1.0));
        assert_eq!(s.edge_weight(1, 2), Some(4.0));
        // Already-normalized graphs are returned unchanged.
        let t = s.scaled_to_unit_min();
        assert_eq!(t, s);
    }

    #[test]
    fn stats_are_consistent() {
        let g = diamond();
        let s = g.stats();
        assert_eq!(s.n, 4);
        assert_eq!(s.m, 4);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.min_weight, 1.0);
        assert_eq!(g.total_weight(), 6.0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.neighbors(2).count(), 0);
    }

    #[test]
    fn edges_are_canonical() {
        let g = Graph::from_edges(4, [(3, 1, 1.0), (2, 0, 1.0)]).unwrap();
        assert_eq!(g.edges(), &[(0, 2, 1.0), (1, 3, 1.0)]);
    }
}
