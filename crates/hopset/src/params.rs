//! All parameters of the construction — the single source of truth.
//!
//! The paper's parameter zoo (§2, §2.1, §3.4):
//!
//! * `κ` governs hopset sparsity (`|H_k| ≤ n^{1+1/κ}`, eq. (9)),
//! * `ρ ∈ (0, 1/2)` governs work (`O((|E|+n^{1+1/κ})·n^ρ)` processors),
//! * `i₀ = ⌊log2 κρ⌋` ends the *exponential growth* stage,
//! * `ℓ = i₀ + ⌈(κ+1)/(κρ)⌉ − 1` is the last phase (eq. (5) then guarantees
//!   `|P_ℓ| ≤ n^ρ = deg_ℓ`, so phase ℓ has no popular clusters),
//! * `deg_i = n^{2^i/κ}` for `i ≤ i₀`, then `n^ρ` (§2.1),
//! * `δ_i` is the phase-`i` interconnection distance threshold,
//! * `R_i` bounds cluster radii (Lemma 2.2): `R_0 = 0`,
//!   `R_{i+1} = (2(1+ε_prev)δ_i + 4R_i)·log2 n + R_i`,
//! * `β` is the hopbound (eq. (2) in theory; the `h_i` recursion of
//!   Lemma 3.4 / eq. (17) in practical mode),
//! * `σ_i` bounds memory-path lengths for path reporting (§4.3):
//!   `σ_0 = 0`, `σ_{i+1} = (4·log2 n+1)σ_i + 2(2β+1)·log2 n`,
//!   `σ = 2σ_ℓ + 2β + 1` (eq. (20)).
//!
//! ## Erratum: the δ schedule
//!
//! §2.1 prints `δ_i = α·(1/ε)^i` with `α = ℓ·2^{k+1}`, under which δ₀
//! already exceeds the scale diameter — inconsistent with Lemma 2.8's step
//! "`d_G(C_u,C_v) ≤ δ_i ... thus d_G(C_u,C_v) ≤ 2^{k+1}`" and with
//! Corollary 3.5's identity `5·α·c(n)·(1/ε)^{ℓ-1} = 10·c(n)·2^k`, which
//! forces `α = 2^{k+1}·ε^{ℓ-1}`. We implement the consistent geometric
//! schedule `δ_i = 2^{k+1}·ε^{ℓ-1-i}` (so `δ_ℓ = 2^{k+1}/ε` covers the
//! scale), which is also the schedule of the randomized ancestor \[EN19\].
//! See DESIGN.md §4. [`DeltaSchedule::PaperLiteral`] retains the printed
//! `α = ℓ·2^{k+1}` for side-by-side comparison.

use pgraph::{ceil_log2, floor_log2, Weight};

/// How aggressively to instantiate the paper's constants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamMode {
    /// The paper's formulas verbatim (constant 1 where the paper writes
    /// `O(·)`), including the §3.4 rescaling of ε. Guarantees hold but the
    /// hop budget is astronomically conservative — use for small-n validation.
    Theory,
    /// Identical algorithm; the internal ε *is* the user ε and the hop
    /// budget comes from the `h_i` recursion (eq. (17)) capped at `n`.
    /// Stretch is then measured rather than pre-paid (it passes with wide
    /// margin throughout the experiment suite — see EXPERIMENTS.md E2).
    Practical,
}

/// Which δ-schedule to use (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaSchedule {
    /// `δ_i = 2^{k+1}·ε^{ℓ-1-i}` — the erratum-corrected schedule (default).
    Corrected,
    /// `δ_i = ℓ·2^{k+1}·(1/ε)^i` — exactly as printed in §2.1.
    PaperLiteral,
}

/// Errors from parameter validation.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamError {
    /// ε must lie in (0, 1).
    BadEps(f64),
    /// κ must be ≥ 2 (Theorem 3.7).
    BadKappa(usize),
    /// ρ must lie in (0, 1/2).
    BadRho(f64),
    /// Need at least 2 vertices.
    TooFewVertices(usize),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::BadEps(e) => write!(f, "eps must be in (0,1), got {e}"),
            ParamError::BadKappa(k) => write!(f, "kappa must be >= 2, got {k}"),
            ParamError::BadRho(r) => write!(f, "rho must be in (0, 1/2), got {r}"),
            ParamError::TooFewVertices(n) => write!(f, "need n >= 2 vertices, got {n}"),
        }
    }
}

impl std::error::Error for ParamError {}

/// Global (scale-independent) parameters.
#[derive(Clone, Debug)]
pub struct HopsetParams {
    /// Number of vertices of the input graph.
    pub n: usize,
    /// Target stretch is `1 + eps`.
    pub eps: f64,
    /// Sparsity parameter κ ≥ 2.
    pub kappa: usize,
    /// Work parameter ρ ∈ (0, 1/2) with κρ ≥ 1.
    pub rho: f64,
    /// Constant-instantiation mode.
    pub mode: ParamMode,
    /// δ-schedule selection (see module docs).
    pub delta_schedule: DeltaSchedule,
    /// `⌈log2 n⌉`.
    pub log2n: u32,
    /// End of the exponential-growth stage: `⌊log2 κρ⌋`. Negative when
    /// κρ < 1 (the exponential stage is then empty and every phase uses
    /// `deg_i = n^ρ` — the paper's schedule degenerates gracefully).
    pub i0: isize,
    /// Last phase index: `ℓ = i₀ + ⌈(κ+1)/(κρ)⌉ − 1`.
    pub ell: usize,
    /// `deg_i` for `i ∈ [0, ℓ]`.
    pub degrees: Vec<usize>,
    /// Internal ε driving the δ schedule (rescaled in Theory mode per §3.4).
    pub eps_int: f64,
    /// Per-scale stretch factor ε′ (Lemma 3.6 compounds `(1+ε′)` per scale).
    pub eps_scale: f64,
    /// The hopbound β.
    pub beta: usize,
    /// Hop budget actually used by explorations: `min(2β+1, n, hop_cap)`.
    /// A hop bound ≥ n−1 is exact, so the cap never weakens a guarantee.
    pub hop_limit: usize,
    /// Hop budget for answering queries over `G ∪ H`: `min(β, n, hop_cap)`.
    pub query_hops: usize,
    /// σ bound on memory-path lengths (path reporting, eq. (20)).
    pub sigma: usize,
}

impl HopsetParams {
    /// Validate and derive all quantities. `hop_cap` optionally clamps the
    /// exploration/query hop budgets (practical-scale runs).
    pub fn new(
        n: usize,
        eps: f64,
        kappa: usize,
        rho: f64,
        mode: ParamMode,
        aspect_ratio_bound: Weight,
        hop_cap: Option<usize>,
    ) -> Result<Self, ParamError> {
        if n < 2 {
            return Err(ParamError::TooFewVertices(n));
        }
        if !(eps > 0.0 && eps < 1.0) {
            return Err(ParamError::BadEps(eps));
        }
        if kappa < 2 {
            return Err(ParamError::BadKappa(kappa));
        }
        if !(rho > 0.0 && rho < 0.5) {
            return Err(ParamError::BadRho(rho));
        }
        let kr = kappa as f64 * rho;
        let log2n = ceil_log2(n).max(1);
        let i0 = kr.log2().floor() as isize; // ⌊log2 κρ⌋ (negative if κρ < 1)
        let ell = (i0 + ((kappa as f64 + 1.0) / kr).ceil() as isize - 1).max(1) as usize;
        let degrees: Vec<usize> = (0..=ell)
            .map(|i| {
                let expo = if (i as isize) <= i0 {
                    (1u64 << i) as f64 / kappa as f64
                } else {
                    rho
                };
                (n as f64).powf(expo).ceil() as usize
            })
            .collect();

        // Number of scales: λ = max(k0, ⌈log2 Λ⌉ − 1). Used by the Theory
        // rescaling (ε′ = ε″ / 2λ) and by β's log Λ factor.
        let log_lambda = (aspect_ratio_bound.max(2.0)).log2().ceil().max(1.0);

        let (eps_int, eps_scale) = match mode {
            ParamMode::Practical => (eps, eps),
            ParamMode::Theory => {
                // §3.4: ε″ = user ε; ε′ = ε″/(2λ); the construction's ε is
                // ε′/(20·log n·(ℓ+1)); also require ε < 1/(2(4 log n + 1)).
                let eps_scale = eps / (2.0 * log_lambda);
                let eps_int_raw = eps_scale / (20.0 * log2n as f64 * (ell as f64 + 1.0));
                let cap = 1.0 / (2.0 * (4.0 * log2n as f64 + 1.0));
                (eps_int_raw.min(cap * 0.999_999), eps_scale)
            }
        };

        let beta = match mode {
            ParamMode::Theory => {
                // eq. (2) with constant 1:
                // β = (log Λ · log n · (log κρ + 1/ρ) / ε)^ℓ
                let base = log_lambda * log2n as f64 * ((kr.log2().max(0.0)) + 1.0 / rho) / eps;
                saturating_pow(base, ell as u32)
            }
            ParamMode::Practical => {
                // h_i recursion of eq. (17): h_0 = 1,
                // h_i = (1/ε + 2)(h_{i-1} + 1) + 2i + 1 ; β = h_ℓ.
                let mut h = 1.0f64;
                for i in 1..=ell {
                    h = (1.0 / eps + 2.0) * (h + 1.0) + 2.0 * i as f64 + 1.0;
                }
                saturating_from_f64(h)
            }
        };

        let cap = hop_cap.unwrap_or(usize::MAX);
        let hop_limit = (2 * beta.min(usize::MAX / 2 - 1) + 1)
            .min(n)
            .min(cap.max(2));
        let query_hops = beta.min(n).min(cap.max(2));

        // σ (eq. 20): σ_0 = 0, σ_{i+1} = (4 log n + 1)σ_i + 2(2β+1) log n,
        // σ = 2σ_ℓ + 2β + 1, computed with the *capped* hop budget (we store
        // actual realized paths, whose length the cap bounds).
        let two_beta_one = hop_limit as f64;
        let mut sig = 0.0f64;
        for _ in 0..ell {
            sig = (4.0 * log2n as f64 + 1.0) * sig + 2.0 * two_beta_one * log2n as f64;
        }
        let sigma = saturating_from_f64(2.0 * sig + two_beta_one);

        Ok(HopsetParams {
            n,
            eps,
            kappa,
            rho,
            mode,
            delta_schedule: DeltaSchedule::Corrected,
            log2n,
            i0,
            ell,
            degrees,
            eps_int,
            eps_scale,
            beta,
            hop_limit,
            query_hops,
            sigma,
        })
    }

    /// Practical-mode parameters with the SSSP default ρ = 1/κ (the setting
    /// of the corollary after Theorem 3.8), aspect ratio from the graph.
    pub fn practical(n: usize, eps: f64, kappa: usize, aspect: Weight) -> Result<Self, ParamError> {
        let rho = (1.0 / kappa as f64).min(0.499_999);
        Self::new(n, eps, kappa, rho, ParamMode::Practical, aspect, None)
    }

    /// Override the exploration/query hop budgets (clamped to ≥ 2 and ≤ n).
    pub fn with_hop_cap(mut self, cap: usize) -> Self {
        self.hop_limit = self.hop_limit.min(cap.max(2));
        self.query_hops = self.query_hops.min(cap.max(2));
        self
    }

    /// The first scale with a non-empty hopset: `k₀ = ⌊log2 β⌋` (§2) —
    /// computed from the *effective* hop budget so that every distance below
    /// `2^{k₀+1}` is exactly reachable within the budget (min weight 1).
    pub fn k0(&self) -> u32 {
        floor_log2(self.query_hops.max(2))
    }

    /// The last scale index `λ` for a given aspect-ratio bound:
    /// scales `k ∈ [k₀, λ]` with `(2^k, 2^{k+1}]` covering all distances.
    pub fn lambda(&self, aspect_ratio_bound: Weight) -> u32 {
        let need = aspect_ratio_bound.max(2.0).log2().ceil() as u32;
        need.saturating_sub(1).max(self.k0())
    }

    /// δ_i for scale `k` (see module docs on the two schedules).
    ///
    /// The corrected schedule floors `δ_i` at
    /// `max(1, 2^{k+1} / (query_hops/4))`. Rationale: with the paper's
    /// uncapped `β = (1/ε+5)^ℓ` and `k ≥ k₀ = ⌊log β⌋`, `δ_0 =
    /// 2^{k+1}·ε^{ℓ-1} ≥ 2/ε > 1` holds automatically and every scale's
    /// phase-0 threshold is proportional to the scale over the hop budget.
    /// A practical hop cap pushes `k₀` below that regime; an unfloored
    /// `δ_0 < 1` then makes phase 0 edgeless, all clusters retire into
    /// `U_0`, and the scale produces nothing — so scale-`k` distances become
    /// unreachable within the budget. The floor restores the paper's
    /// invariant *scale/δ_0 = O(hop budget)*: even if every cluster retires
    /// at phase 0, chains of phase-0 interconnection edges (which have zero
    /// radius slack, `R_0 = 0`) cross the scale within `query_hops/4` hops.
    /// Raising δ only enlarges `G̃_i`, which strengthens every coverage
    /// property; edge counts stay bounded because clusters with ≥ `deg_i`
    /// neighbors are popular and get superclustered instead of
    /// interconnected (Lemma 2.4).
    pub fn delta(&self, k: u32, i: usize) -> Weight {
        let scale_top = exp2w(k + 1);
        match self.delta_schedule {
            DeltaSchedule::Corrected => {
                let chain_budget = (self.query_hops / 3).max(8) as Weight;
                // Lift the bottom rungs to keep chains within the hop
                // budget, but never above the ε-rung — collapsing the whole
                // ladder to one rung would trade the stretch for hops.
                let floor = (scale_top / chain_budget)
                    .min(scale_top * self.eps_int)
                    .max(1.0);
                (scale_top * self.eps_int.powi(self.ell as i32 - 1 - i as i32)).max(floor)
            }
            DeltaSchedule::PaperLiteral => {
                self.ell.max(1) as Weight * scale_top * (1.0 / self.eps_int).powi(i as i32)
            }
        }
    }

    /// Number of pulses of the superclustering BFS: `2·log2 n` (§2.1.1).
    pub fn supercluster_depth(&self) -> usize {
        2 * self.log2n as usize
    }
}

/// Per-scale derived quantities (depend on the stretch `1+ε_prev` that the
/// previous scale's graph `G_{k-1}` guarantees).
#[derive(Clone, Debug)]
pub struct ScaleParams {
    /// The scale index `k` (distances `(2^k, 2^{k+1}]`).
    pub k: u32,
    /// Stretch of `G_{k-1}`: `ε_{k-1}` of Lemma 3.6.
    pub eps_prev: f64,
    /// `δ_i` for `i ∈ [0, ℓ]`.
    pub deltas: Vec<Weight>,
    /// Neighbor thresholds `(1+ε_prev)·δ_i`.
    pub thresholds: Vec<Weight>,
    /// Radius bounds `R_i` for `i ∈ [0, ℓ+1]` (Lemma 2.2).
    pub radii: Vec<Weight>,
    /// Superclustering edge weights `2((1+ε_prev)δ_i + 2R_i)·log2 n` per
    /// phase (§2.1.1).
    pub supercluster_weights: Vec<Weight>,
}

impl ScaleParams {
    /// Derive the scale-`k` quantities.
    pub fn derive(p: &HopsetParams, k: u32, eps_prev: f64) -> ScaleParams {
        let ell = p.ell;
        let deltas: Vec<Weight> = (0..=ell).map(|i| p.delta(k, i)).collect();
        let thresholds: Vec<Weight> = deltas.iter().map(|d| (1.0 + eps_prev) * d).collect();
        let mut radii = Vec::with_capacity(ell + 2);
        radii.push(0.0);
        for i in 0..=ell {
            let r = radii[i];
            radii.push((2.0 * (1.0 + eps_prev) * deltas[i] + 4.0 * r) * p.log2n as f64 + r);
        }
        let supercluster_weights: Vec<Weight> = (0..=ell)
            .map(|i| 2.0 * ((1.0 + eps_prev) * deltas[i] + 2.0 * radii[i]) * p.log2n as f64)
            .collect();
        ScaleParams {
            k,
            eps_prev,
            deltas,
            thresholds,
            radii,
            supercluster_weights,
        }
    }

    /// Interconnection edge weight for a measured cluster distance `d` at
    /// phase `i`: `d + 2R_i` (§2.1.2).
    pub fn interconnect_weight(&self, i: usize, d: Weight) -> Weight {
        d + 2.0 * self.radii[i]
    }
}

#[inline]
fn exp2w(k: u32) -> Weight {
    (2.0f64).powi(k as i32)
}

#[inline]
fn saturating_from_f64(x: f64) -> usize {
    if !x.is_finite() || x >= usize::MAX as f64 {
        usize::MAX
    } else {
        x.max(1.0) as usize
    }
}

#[inline]
fn saturating_pow(base: f64, e: u32) -> usize {
    saturating_from_f64(base.max(1.0).powi(e as i32))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn practical(n: usize) -> HopsetParams {
        HopsetParams::new(n, 0.25, 4, 0.3, ParamMode::Practical, n as f64, None).unwrap()
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(matches!(
            HopsetParams::new(1, 0.1, 2, 0.5, ParamMode::Practical, 4.0, None),
            Err(ParamError::TooFewVertices(1))
        ));
        assert!(matches!(
            HopsetParams::new(16, 0.0, 2, 0.4, ParamMode::Practical, 4.0, None),
            Err(ParamError::BadEps(_))
        ));
        assert!(matches!(
            HopsetParams::new(16, 1.5, 2, 0.4, ParamMode::Practical, 4.0, None),
            Err(ParamError::BadEps(_))
        ));
        assert!(matches!(
            HopsetParams::new(16, 0.1, 1, 0.4, ParamMode::Practical, 4.0, None),
            Err(ParamError::BadKappa(1))
        ));
        assert!(matches!(
            HopsetParams::new(16, 0.1, 4, 0.6, ParamMode::Practical, 4.0, None),
            Err(ParamError::BadRho(_))
        ));
        // κρ < 1 is allowed: the exponential stage is empty (i0 < 0).
        let p = HopsetParams::new(16, 0.1, 4, 0.1, ParamMode::Practical, 4.0, None).unwrap();
        assert!(p.i0 < 0);
        assert!(p
            .degrees
            .iter()
            .all(|&d| d == (16f64.powf(0.1)).ceil() as usize));
    }

    #[test]
    fn phase_schedule_matches_paper() {
        // κ = 4, ρ = 0.3 : κρ = 1.2, i0 = 0, ℓ = 0 + ⌈5/1.2⌉ − 1 = 4.
        let p = practical(256);
        assert_eq!(p.i0, 0);
        assert_eq!(p.ell, 4);
        assert_eq!(p.degrees.len(), 5);
        // deg_0 = n^{1/4} = 4; deg_{i>0} = n^{0.3} = ceil(5.27) = 6.
        assert_eq!(p.degrees[0], 4);
        assert!(p.degrees[1..].iter().all(|&d| d == 6));
    }

    #[test]
    fn exponential_stage_squares_degrees() {
        // κ = 8, ρ = 0.49: κρ = 3.92, i0 = 1, exponential degrees n^{1/8}, n^{1/4}.
        let p = HopsetParams::new(4096, 0.2, 8, 0.49, ParamMode::Practical, 4096.0, None).unwrap();
        assert_eq!(p.i0, 1);
        assert_eq!(p.degrees[0], (4096f64.powf(1.0 / 8.0)).ceil() as usize);
        assert_eq!(p.degrees[1], (4096f64.powf(2.0 / 8.0)).ceil() as usize);
        assert_eq!(p.degrees[2], (4096f64.powf(0.49)).ceil() as usize);
        // ℓ − i0 = ⌈(κ+1)/(κρ)⌉ − 1 = ⌈9/3.92⌉ − 1 = 3 − 1 = 2.
        assert_eq!(p.ell, 3);
    }

    #[test]
    fn final_phase_has_few_clusters_guarantee() {
        // eq. (5): 1 + 1/κ − (ℓ−i0)·ρ ≤ ρ must hold for valid params.
        for (kappa, rho) in [(2usize, 0.499), (3, 0.34), (4, 0.3), (6, 0.25), (8, 0.49)] {
            let p = HopsetParams::new(1024, 0.2, kappa, rho, ParamMode::Practical, 1024.0, None)
                .unwrap();
            let lhs = 1.0 + 1.0 / kappa as f64 - (p.ell as isize - p.i0) as f64 * rho;
            assert!(
                lhs <= rho + 1e-9,
                "eq. (5) violated for kappa={kappa} rho={rho}: {lhs} > {rho}"
            );
        }
    }

    #[test]
    fn corrected_deltas_are_geometric_and_cover_scale() {
        let p = practical(256);
        let k = 6;
        for i in 0..p.ell {
            let ratio = p.delta(k, i + 1) / p.delta(k, i);
            assert!((ratio - 1.0 / p.eps_int).abs() < 1e-6);
        }
        // δ_ℓ = 2^{k+1}/ε ≥ 2^{k+1}: the top phase covers the scale.
        assert!(p.delta(k, p.ell) >= 2f64.powi(k as i32 + 1));
        // δ_{ℓ-1} = 2^{k+1} exactly.
        assert!((p.delta(k, p.ell - 1) - 2f64.powi(k as i32 + 1)).abs() < 1e-9);
    }

    #[test]
    fn paper_literal_deltas_grow_from_alpha() {
        let mut p = practical(256);
        p.delta_schedule = DeltaSchedule::PaperLiteral;
        let k = 5;
        let alpha = p.ell as f64 * 2f64.powi(k as i32 + 1);
        assert!((p.delta(k, 0) - alpha).abs() < 1e-9);
        assert!((p.delta(k, 2) - alpha * (1.0 / p.eps_int).powi(2)).abs() < 1e-6);
    }

    #[test]
    fn radii_satisfy_recurrence() {
        let p = practical(128);
        let sp = ScaleParams::derive(&p, 5, 0.0);
        assert_eq!(sp.radii[0], 0.0);
        for i in 0..=p.ell {
            let expect = (2.0 * sp.deltas[i] + 4.0 * sp.radii[i]) * p.log2n as f64 + sp.radii[i];
            assert!((sp.radii[i + 1] - expect).abs() < 1e-6);
        }
        // Monotone increasing.
        for w in sp.radii.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn radii_bound_from_eq_11() {
        // eq. (11): R_i ≤ 4(1+ε_prev)·α·log n·(1/ε)^{i-1} when
        // ε < 1/(2(4 log n + 1)) — check in Theory mode where that holds.
        let p = HopsetParams::new(256, 0.3, 4, 0.3, ParamMode::Theory, 256.0, None).unwrap();
        assert!(p.eps_int < 1.0 / (2.0 * (4.0 * p.log2n as f64 + 1.0)));
        let sp = ScaleParams::derive(&p, 8, 0.0);
        let alpha = p.delta(8, 0); // α = δ_0 in the geometric schedule
        let c = 4.0 * (1.0 + sp.eps_prev) * p.log2n as f64;
        for i in 1..=p.ell {
            let bound = c * alpha * (1.0 / p.eps_int).powi(i as i32 - 1);
            assert!(
                sp.radii[i] <= bound * (1.0 + 1e-9),
                "R_{i} = {} exceeds eq.(11) bound {}",
                sp.radii[i],
                bound
            );
        }
    }

    #[test]
    fn beta_practical_matches_h_recursion() {
        let p = practical(256);
        // h_0=1, h_i=(1/0.25+2)(h+1)+2i+1 = 6(h+1)+2i+1
        let mut h = 1.0f64;
        for i in 1..=p.ell {
            h = 6.0 * (h + 1.0) + 2.0 * i as f64 + 1.0;
        }
        assert_eq!(p.beta, h as usize);
        // eq. (18): h_ℓ ≤ (1/ε + 5)^ℓ
        assert!(p.beta as f64 <= (1.0 / p.eps + 5.0).powi(p.ell as i32));
    }

    #[test]
    fn hop_limit_capped_at_n() {
        let p = practical(64);
        assert!(p.hop_limit <= 64);
        assert!(p.query_hops <= 64);
        let p2 = practical(64).with_hop_cap(10);
        assert_eq!(p2.hop_limit, 10);
        assert_eq!(p2.query_hops, 10);
    }

    #[test]
    fn theory_mode_rescales_eps() {
        let p = HopsetParams::new(256, 0.5, 4, 0.3, ParamMode::Theory, 256.0, None).unwrap();
        assert!(p.eps_int < p.eps);
        assert!(p.eps_int < 1.0 / (2.0 * (4.0 * p.log2n as f64 + 1.0)));
        assert!(p.eps_scale < p.eps);
        // Theory β is enormous; the hop budget must still be capped at n.
        assert!(p.hop_limit <= 256);
    }

    #[test]
    fn scales_cover_aspect_ratio() {
        let p = practical(256);
        let lambda = p.lambda(1000.0); // ⌈log2 1000⌉ − 1 = 9
        assert_eq!(lambda, 9.max(p.k0()));
        assert!(p.k0() <= lambda);
        // 2^{λ+1} ≥ Λ: the last scale covers the largest distance.
        assert!(2f64.powi(lambda as i32 + 1) >= 1000.0);
    }

    #[test]
    fn interconnect_weight_adds_radius_slack() {
        let p = practical(128);
        let sp = ScaleParams::derive(&p, 5, 0.1);
        let w = sp.interconnect_weight(2, 10.0);
        assert!((w - (10.0 + 2.0 * sp.radii[2])).abs() < 1e-12);
    }

    #[test]
    fn sigma_positive_and_grows_with_ell() {
        let p = practical(256);
        assert!(p.sigma >= p.hop_limit);
    }
}
