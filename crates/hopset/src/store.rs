//! The hopset edge store, with per-edge provenance and optional memory paths.

use crate::path::MemoryPath;
use pgraph::{VId, Weight};

/// Why an edge was inserted (§2.1: superclustering vs interconnection;
/// Appendix C adds star edges).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Superclustering edge from a cluster center to its supercluster's
    /// center, added in the given phase (§2.1.1).
    Supercluster {
        /// Phase `i ∈ [0, ℓ−1]` that created the edge.
        phase: u8,
    },
    /// Interconnection edge between centers of neighboring `U_i` clusters
    /// (§2.1.2).
    Interconnect {
        /// Phase `i ∈ [0, ℓ]` that created the edge.
        phase: u8,
    },
    /// Star edge from a node center to a node member (Appendix C.3).
    Star,
}

/// One hopset edge.
#[derive(Clone, Debug)]
pub struct HopsetEdge {
    /// One endpoint.
    pub u: VId,
    /// Other endpoint.
    pub v: VId,
    /// Weight `ω_H(u, v)` — never shorter than `d_G(u, v)` (Lemmas 2.3/2.9;
    /// validated in tests).
    pub w: Weight,
    /// The scale `k` whose single-scale hopset `H_k` contains this edge.
    pub scale: u32,
    /// Provenance.
    pub kind: EdgeKind,
    /// Index into [`Hopset::paths`] when built path-reporting (§4).
    pub path: Option<u32>,
}

/// The accumulated hopset `H = ⋃_k H_k`.
#[derive(Clone, Debug, Default)]
pub struct Hopset {
    /// All edges, grouped by ascending scale (edges of scale `k` are
    /// contiguous and their memory paths reference only lower scales).
    pub edges: Vec<HopsetEdge>,
    /// Memory-path arena (§4.1's arrays `A(u, v)`).
    pub paths: Vec<MemoryPath>,
}

impl Hopset {
    /// Empty hopset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// All edges as an overlay list for [`pgraph::UnionView`]; the overlay
    /// index of edge `i` is exactly `i`, so `EdgeTag::Extra(i)` maps back to
    /// `self.edges[i]`.
    pub fn overlay_all(&self) -> Vec<(VId, VId, Weight)> {
        self.edges.iter().map(|e| (e.u, e.v, e.w)).collect()
    }

    /// The edges of a single scale `k` as an overlay list, plus the global
    /// index of each overlay entry (to translate `EdgeTag::Extra` back).
    pub fn overlay_scale(&self, k: u32) -> (Vec<(VId, VId, Weight)>, Vec<u32>) {
        let mut overlay = Vec::new();
        let mut ids = Vec::new();
        for (i, e) in self.edges.iter().enumerate() {
            if e.scale == k {
                overlay.push((e.u, e.v, e.w));
                ids.push(i as u32);
            }
        }
        (overlay, ids)
    }

    /// Number of edges per scale, ascending by scale.
    pub fn size_by_scale(&self) -> Vec<(u32, usize)> {
        let mut counts: Vec<(u32, usize)> = Vec::new();
        for e in &self.edges {
            match counts.iter_mut().find(|(k, _)| *k == e.scale) {
                Some((_, c)) => *c += 1,
                None => counts.push((e.scale, 1)),
            }
        }
        counts.sort_unstable();
        counts
    }

    /// Count edges by kind: (supercluster, interconnect, star).
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut s = 0;
        let mut i = 0;
        let mut st = 0;
        for e in &self.edges {
            match e.kind {
                EdgeKind::Supercluster { .. } => s += 1,
                EdgeKind::Interconnect { .. } => i += 1,
                EdgeKind::Star => st += 1,
            }
        }
        (s, i, st)
    }

    /// Append an edge, returning its global index.
    pub fn push(&mut self, e: HopsetEdge) -> u32 {
        let id = self.edges.len() as u32;
        self.edges.push(e);
        id
    }

    /// Register a memory path, returning its arena index.
    pub fn push_path(&mut self, p: MemoryPath) -> u32 {
        let id = self.paths.len() as u32;
        self.paths.push(p);
        id
    }

    /// The memory path of edge `edge_idx`, if recorded.
    pub fn path_of(&self, edge_idx: u32) -> Option<&MemoryPath> {
        self.edges[edge_idx as usize]
            .path
            .map(|p| &self.paths[p as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::MemEdge;

    fn edge(u: VId, v: VId, w: Weight, scale: u32) -> HopsetEdge {
        HopsetEdge {
            u,
            v,
            w,
            scale,
            kind: EdgeKind::Interconnect { phase: 0 },
            path: None,
        }
    }

    #[test]
    fn overlay_index_identity() {
        let mut h = Hopset::new();
        h.push(edge(0, 1, 2.0, 3));
        h.push(edge(1, 2, 4.0, 4));
        let all = h.overlay_all();
        assert_eq!(all, vec![(0, 1, 2.0), (1, 2, 4.0)]);
        let (ov, ids) = h.overlay_scale(4);
        assert_eq!(ov, vec![(1, 2, 4.0)]);
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn size_and_kind_accounting() {
        let mut h = Hopset::new();
        h.push(edge(0, 1, 1.0, 3));
        h.push(edge(0, 2, 1.0, 3));
        h.push(HopsetEdge {
            u: 1,
            v: 2,
            w: 5.0,
            scale: 4,
            kind: EdgeKind::Supercluster { phase: 1 },
            path: None,
        });
        h.push(HopsetEdge {
            u: 3,
            v: 4,
            w: 5.0,
            scale: 4,
            kind: EdgeKind::Star,
            path: None,
        });
        assert_eq!(h.size_by_scale(), vec![(3, 2), (4, 2)]);
        assert_eq!(h.kind_counts(), (1, 2, 1));
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn memory_path_roundtrip() {
        let mut h = Hopset::new();
        let pid = h.push_path(MemoryPath {
            verts: vec![0, 3, 1],
            links: vec![(MemEdge::Base, 1.0), (MemEdge::Base, 2.0)],
        });
        let eid = h.push(HopsetEdge {
            u: 0,
            v: 1,
            w: 3.0,
            scale: 5,
            kind: EdgeKind::Interconnect { phase: 2 },
            path: Some(pid),
        });
        let p = h.path_of(eid).unwrap();
        assert_eq!(p.start(), 0);
        assert_eq!(p.end(), 1);
        assert!((p.weight() - 3.0).abs() < 1e-12);
        assert_eq!(h.path_of(eid).unwrap().len(), 2);
    }

    #[test]
    fn empty_hopset() {
        let h = Hopset::new();
        assert!(h.is_empty());
        assert!(h.overlay_all().is_empty());
        assert!(h.size_by_scale().is_empty());
    }
}
