//! The hopset edge store, with per-edge provenance and optional memory paths.
//!
//! Layout: a **scale-indexed structure of arrays**. Edge fields live in
//! flat parallel columns (`u`, `v`, `w`, `scale`, `kind`, `path`), and
//! edges are pushed in non-decreasing scale order (asserted), so the edges
//! of each scale occupy one contiguous index range recorded in a sparse
//! `scale_starts` offset table. The consequences, which the construction
//! hot path relies on (DESIGN.md §8):
//!
//! * [`Hopset::scale_slice`] / [`Hopset::all_slice`] are **zero-copy**
//!   column slices ([`ScaleSlice`]) — no per-scale `O(|H|)` scan, no
//!   filtered copies;
//! * the global edge ids of scale `k` are exactly
//!   `slice.start()..slice.start() + slice.len()`, so overlay CSR blocks
//!   built from a slice tag adjacency entries with the true hopset edge id
//!   (no side-table from overlay index to edge id);
//! * [`Hopset::size_by_scale`] and the peeling scale list
//!   ([`Hopset::scales_present`]) are offset arithmetic over
//!   `scale_starts`; [`Hopset::kind_counts`] is a running tally.
//!
//! The AoS record type [`HopsetEdge`] remains the unit of [`Hopset::push`]
//! and [`Hopset::edge`] — a `Copy` value assembled from (or scattered into)
//! the columns at the boundary.

use crate::path::MemoryPath;
use pgraph::{VId, Weight};

/// Why an edge was inserted (§2.1: superclustering vs interconnection;
/// Appendix C adds star edges).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Superclustering edge from a cluster center to its supercluster's
    /// center, added in the given phase (§2.1.1).
    Supercluster {
        /// Phase `i ∈ [0, ℓ−1]` that created the edge.
        phase: u8,
    },
    /// Interconnection edge between centers of neighboring `U_i` clusters
    /// (§2.1.2).
    Interconnect {
        /// Phase `i ∈ [0, ℓ]` that created the edge.
        phase: u8,
    },
    /// Star edge from a node center to a node member (Appendix C.3).
    Star,
}

/// One hopset edge, as a value (the push/read record of the columnar
/// [`Hopset`]).
#[derive(Clone, Copy, Debug)]
pub struct HopsetEdge {
    /// One endpoint.
    pub u: VId,
    /// Other endpoint.
    pub v: VId,
    /// Weight `ω_H(u, v)` — never shorter than `d_G(u, v)` (Lemmas 2.3/2.9;
    /// validated in tests).
    pub w: Weight,
    /// The scale `k` whose single-scale hopset `H_k` contains this edge.
    pub scale: u32,
    /// Provenance.
    pub kind: EdgeKind,
    /// Index into [`Hopset::paths`] when built path-reporting (§4).
    pub path: Option<u32>,
}

/// Column sentinel for "no memory path recorded" (see [`Hopset::NO_PATH`]).
const NO_PATH: u32 = u32::MAX;

/// A zero-copy view of one contiguous scale range of a [`Hopset`]: borrowed
/// column slices plus the global id of the first edge. This is what the
/// per-scale overlay of the construction consumes — `iter()` for edge
/// triples, `us()`/`vs()`/`ws()` for direct column access (e.g.
/// [`pgraph::OverlayCsrBuilder::append_scale`]), `start()` to translate a
/// slice-local index back to a global edge id.
#[derive(Clone, Copy, Debug)]
pub struct ScaleSlice<'a> {
    us: &'a [VId],
    vs: &'a [VId],
    ws: &'a [Weight],
    start: u32,
}

impl<'a> ScaleSlice<'a> {
    /// Number of edges in the slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.us.len()
    }

    /// True if the slice covers no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.us.is_empty()
    }

    /// Global edge id of the slice's first edge (the ids are
    /// `start()..start() + len()`); for an empty slice, the id the scale's
    /// first edge would have.
    #[inline]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Global edge id of slice-local edge `i`.
    #[inline]
    pub fn global_id(&self, i: usize) -> u32 {
        debug_assert!(i < self.len());
        self.start + i as u32
    }

    /// The `u` endpoint column.
    #[inline]
    pub fn us(&self) -> &'a [VId] {
        self.us
    }

    /// The `v` endpoint column.
    #[inline]
    pub fn vs(&self) -> &'a [VId] {
        self.vs
    }

    /// The weight column.
    #[inline]
    pub fn ws(&self) -> &'a [Weight] {
        self.ws
    }

    /// Iterate the slice's `(u, v, w)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (VId, VId, Weight)> + 'a {
        let (us, vs, ws) = (self.us, self.vs, self.ws);
        (0..us.len()).map(move |i| (us[i], vs[i], ws[i]))
    }

    /// Materialize the slice as an overlay edge list — the compatibility
    /// helper for call sites that genuinely need an owned list (e.g.
    /// [`pgraph::UnionView::with_extra`] in tests). Hot paths use the
    /// columns directly instead.
    pub fn to_overlay_vec(&self) -> Vec<(VId, VId, Weight)> {
        self.iter().collect()
    }
}

/// The accumulated hopset `H = ⋃_k H_k` in scale-indexed SoA layout (see
/// the module docs for the layout contract).
#[derive(Clone, Debug, Default)]
pub struct Hopset {
    us: Vec<VId>,
    vs: Vec<VId>,
    ws: Vec<Weight>,
    scales: Vec<u32>,
    kinds: Vec<EdgeKind>,
    /// Path arena index per edge, [`NO_PATH`] when absent.
    path_ids: Vec<u32>,
    /// `(scale, first edge index)` per distinct scale, both strictly
    /// ascending — the offset table behind every per-scale query.
    scale_starts: Vec<(u32, u32)>,
    /// Running (supercluster, interconnect, star) tally.
    kind_tally: [usize; 3],
    /// Memory-path arena (§4.1's arrays `A(u, v)`).
    pub paths: Vec<MemoryPath>,
}

impl Hopset {
    /// The `path_ids` column sentinel for "no memory path recorded" —
    /// public so the snapshot layer can stream the column verbatim.
    pub const NO_PATH: u32 = NO_PATH;

    /// Empty hopset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.us.len()
    }

    /// True if no edges.
    pub fn is_empty(&self) -> bool {
        self.us.is_empty()
    }

    /// The `u` endpoint column.
    #[inline]
    pub fn us(&self) -> &[VId] {
        &self.us
    }

    /// The `v` endpoint column.
    #[inline]
    pub fn vs(&self) -> &[VId] {
        &self.vs
    }

    /// The weight column.
    #[inline]
    pub fn ws(&self) -> &[Weight] {
        &self.ws
    }

    /// The scale column (non-decreasing by the push contract).
    #[inline]
    pub fn scales(&self) -> &[u32] {
        &self.scales
    }

    /// The kind column.
    #[inline]
    pub fn kinds(&self) -> &[EdgeKind] {
        &self.kinds
    }

    /// The raw path-id column ([`Hopset::NO_PATH`] = none) — the snapshot
    /// layer streams this verbatim; use [`Hopset::path_id`] for typed access.
    #[inline]
    pub fn path_ids(&self) -> &[u32] {
        &self.path_ids
    }

    /// The sparse `(scale, first edge index)` offset table, both columns
    /// strictly ascending.
    #[inline]
    pub fn scale_starts(&self) -> &[(u32, u32)] {
        &self.scale_starts
    }

    /// Edge `i`, assembled from the columns.
    #[inline]
    pub fn edge(&self, i: u32) -> HopsetEdge {
        let i = i as usize;
        HopsetEdge {
            u: self.us[i],
            v: self.vs[i],
            w: self.ws[i],
            scale: self.scales[i],
            kind: self.kinds[i],
            path: self.path_id(i as u32),
        }
    }

    /// The scale of edge `i` (a column read — the peeling inner loop's
    /// query).
    #[inline]
    pub fn scale_of(&self, i: u32) -> u32 {
        self.scales[i as usize]
    }

    /// The path arena index of edge `i`, if recorded.
    #[inline]
    pub fn path_id(&self, i: u32) -> Option<u32> {
        match self.path_ids[i as usize] {
            NO_PATH => None,
            p => Some(p),
        }
    }

    /// Iterate all edges as values, in global id order.
    pub fn iter(&self) -> impl Iterator<Item = HopsetEdge> + '_ {
        (0..self.len() as u32).map(|i| self.edge(i))
    }

    /// Zero-copy slice covering every edge (global ids `0..len`).
    pub fn all_slice(&self) -> ScaleSlice<'_> {
        ScaleSlice {
            us: &self.us,
            vs: &self.vs,
            ws: &self.ws,
            start: 0,
        }
    }

    /// Zero-copy slice of scale `k`'s edges: a binary search in the
    /// `scale_starts` offset table plus column slicing — no edge scan. For
    /// a scale with no edges the slice is empty and `start()` reports the
    /// id its first edge would have (the insertion point), so cumulative
    /// consumers (e.g. an overlay builder appending scales in order) stay
    /// aligned with the global ids.
    pub fn scale_slice(&self, k: u32) -> ScaleSlice<'_> {
        let idx = self.scale_starts.partition_point(|&(s, _)| s < k);
        let (lo, hi) = match self.scale_starts.get(idx) {
            Some(&(s, st)) if s == k => {
                let end = self
                    .scale_starts
                    .get(idx + 1)
                    .map_or(self.len() as u32, |&(_, st2)| st2);
                (st, end)
            }
            Some(&(_, st)) => (st, st),
            None => (self.len() as u32, self.len() as u32),
        };
        ScaleSlice {
            us: &self.us[lo as usize..hi as usize],
            vs: &self.vs[lo as usize..hi as usize],
            ws: &self.ws[lo as usize..hi as usize],
            start: lo,
        }
    }

    /// The distinct scales present, ascending — offset-table arithmetic
    /// (peeling iterates this reversed).
    pub fn scales_present(&self) -> impl Iterator<Item = u32> + '_ {
        self.scale_starts.iter().map(|&(s, _)| s)
    }

    /// Number of edges per scale, ascending by scale — consecutive-offset
    /// differences, no edge scan.
    pub fn size_by_scale(&self) -> Vec<(u32, usize)> {
        let mut out = Vec::with_capacity(self.scale_starts.len());
        for (i, &(s, st)) in self.scale_starts.iter().enumerate() {
            let end = self
                .scale_starts
                .get(i + 1)
                .map_or(self.len() as u32, |&(_, st2)| st2);
            out.push((s, (end - st) as usize));
        }
        out
    }

    /// Count edges by kind: (supercluster, interconnect, star) — a running
    /// tally maintained by [`Hopset::push`].
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        (self.kind_tally[0], self.kind_tally[1], self.kind_tally[2])
    }

    /// True when every edge carries a memory path (the path-reporting SPT
    /// precondition).
    pub fn all_paths_recorded(&self) -> bool {
        self.path_ids.iter().all(|&p| p != NO_PATH)
    }

    /// Append an edge, returning its global index.
    ///
    /// Panics if `e.scale` is smaller than the last pushed scale: the
    /// scale-contiguity invariant (edges of a scale form one index range)
    /// is what makes every per-scale query offset arithmetic, and every
    /// construction in this workspace naturally pushes scales in ascending
    /// order.
    pub fn push(&mut self, e: HopsetEdge) -> u32 {
        let id = self.us.len() as u32;
        match self.scale_starts.last() {
            Some(&(s, _)) if e.scale < s => {
                panic!("hopset edges must be pushed in non-decreasing scale order (scale {} after {s})", e.scale)
            }
            Some(&(s, _)) if e.scale == s => {}
            _ => self.scale_starts.push((e.scale, id)),
        }
        self.us.push(e.u);
        self.vs.push(e.v);
        self.ws.push(e.w);
        self.scales.push(e.scale);
        self.kinds.push(e.kind);
        self.path_ids.push(e.path.unwrap_or(NO_PATH));
        self.kind_tally[match e.kind {
            EdgeKind::Supercluster { .. } => 0,
            EdgeKind::Interconnect { .. } => 1,
            EdgeKind::Star => 2,
        }] += 1;
        id
    }

    /// Register a memory path, returning its arena index.
    pub fn push_path(&mut self, p: MemoryPath) -> u32 {
        let id = self.paths.len() as u32;
        self.paths.push(p);
        id
    }

    /// The memory path of edge `edge_idx`, if recorded.
    pub fn path_of(&self, edge_idx: u32) -> Option<&MemoryPath> {
        self.path_id(edge_idx).map(|p| &self.paths[p as usize])
    }

    /// Assemble a hopset directly from validated columns. Callers (the
    /// snapshot loader) must have checked every layout invariant — column
    /// lengths equal, scales non-decreasing, `scale_starts` matching the
    /// scale column, tally matching the kind column, path ids in range.
    /// Debug assertions spot-check shape only.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_columns(
        us: Vec<VId>,
        vs: Vec<VId>,
        ws: Vec<Weight>,
        scales: Vec<u32>,
        kinds: Vec<EdgeKind>,
        path_ids: Vec<u32>,
        scale_starts: Vec<(u32, u32)>,
        kind_tally: [usize; 3],
        paths: Vec<MemoryPath>,
    ) -> Hopset {
        debug_assert_eq!(us.len(), vs.len());
        debug_assert_eq!(us.len(), ws.len());
        debug_assert_eq!(us.len(), scales.len());
        debug_assert_eq!(us.len(), kinds.len());
        debug_assert_eq!(us.len(), path_ids.len());
        debug_assert_eq!(kind_tally.iter().sum::<usize>(), us.len());
        debug_assert!(scales.windows(2).all(|w| w[0] <= w[1]));
        Hopset {
            us,
            vs,
            ws,
            scales,
            kinds,
            path_ids,
            scale_starts,
            kind_tally,
            paths,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::MemEdge;

    fn edge(u: VId, v: VId, w: Weight, scale: u32) -> HopsetEdge {
        HopsetEdge {
            u,
            v,
            w,
            scale,
            kind: EdgeKind::Interconnect { phase: 0 },
            path: None,
        }
    }

    #[test]
    fn slices_are_offset_arithmetic() {
        let mut h = Hopset::new();
        h.push(edge(0, 1, 2.0, 3));
        h.push(edge(1, 2, 4.0, 4));
        h.push(edge(2, 3, 5.0, 4));
        h.push(edge(3, 4, 6.0, 7));
        let all = h.all_slice();
        assert_eq!(all.len(), 4);
        assert_eq!(all.start(), 0);
        assert_eq!(
            all.to_overlay_vec(),
            vec![(0, 1, 2.0), (1, 2, 4.0), (2, 3, 5.0), (3, 4, 6.0)]
        );
        let s4 = h.scale_slice(4);
        assert_eq!(s4.start(), 1);
        assert_eq!(s4.len(), 2);
        assert_eq!(s4.global_id(1), 2);
        assert_eq!(s4.us(), &[1, 2]);
        assert_eq!(s4.vs(), &[2, 3]);
        assert_eq!(s4.ws(), &[4.0, 5.0]);
        // Absent scales: empty slice at the insertion point.
        assert!(h.scale_slice(2).is_empty());
        assert_eq!(h.scale_slice(2).start(), 0);
        let s5 = h.scale_slice(5);
        assert!(s5.is_empty());
        assert_eq!(s5.start(), 3, "between scale 4 and scale 7");
        assert_eq!(h.scale_slice(9).start(), 4, "past the last scale");
        assert_eq!(h.scales_present().collect::<Vec<_>>(), vec![3, 4, 7]);
    }

    #[test]
    fn size_and_kind_accounting() {
        let mut h = Hopset::new();
        h.push(edge(0, 1, 1.0, 3));
        h.push(edge(0, 2, 1.0, 3));
        h.push(HopsetEdge {
            u: 1,
            v: 2,
            w: 5.0,
            scale: 4,
            kind: EdgeKind::Supercluster { phase: 1 },
            path: None,
        });
        h.push(HopsetEdge {
            u: 3,
            v: 4,
            w: 5.0,
            scale: 4,
            kind: EdgeKind::Star,
            path: None,
        });
        assert_eq!(h.size_by_scale(), vec![(3, 2), (4, 2)]);
        assert_eq!(h.kind_counts(), (1, 2, 1));
        assert_eq!(h.len(), 4);
        let e = h.edge(2);
        assert_eq!((e.u, e.v, e.scale), (1, 2, 4));
        assert!(matches!(e.kind, EdgeKind::Supercluster { phase: 1 }));
    }

    #[test]
    #[should_panic(expected = "non-decreasing scale order")]
    fn out_of_order_scale_push_rejected() {
        let mut h = Hopset::new();
        h.push(edge(0, 1, 1.0, 5));
        h.push(edge(1, 2, 1.0, 4));
    }

    #[test]
    fn memory_path_roundtrip() {
        let mut h = Hopset::new();
        let pid = h.push_path(MemoryPath {
            verts: vec![0, 3, 1],
            links: vec![(MemEdge::Base, 1.0), (MemEdge::Base, 2.0)],
        });
        let eid = h.push(HopsetEdge {
            u: 0,
            v: 1,
            w: 3.0,
            scale: 5,
            kind: EdgeKind::Interconnect { phase: 2 },
            path: Some(pid),
        });
        let p = h.path_of(eid).unwrap();
        assert_eq!(p.start(), 0);
        assert_eq!(p.end(), 1);
        assert!((p.weight() - 3.0).abs() < 1e-12);
        assert_eq!(h.path_of(eid).unwrap().len(), 2);
        assert!(h.all_paths_recorded());
        h.push(edge(0, 2, 1.0, 6));
        assert!(!h.all_paths_recorded());
    }

    #[test]
    fn empty_hopset() {
        let h = Hopset::new();
        assert!(h.is_empty());
        assert!(h.all_slice().is_empty());
        assert!(h.scale_slice(3).is_empty());
        assert!(h.size_by_scale().is_empty());
        assert_eq!(h.scales_present().count(), 0);
    }

    #[test]
    fn iter_matches_edge_accessor() {
        let mut h = Hopset::new();
        h.push(edge(0, 1, 2.0, 3));
        h.push(edge(1, 2, 4.0, 4));
        let collected: Vec<HopsetEdge> = h.iter().collect();
        assert_eq!(collected.len(), 2);
        for (i, e) in collected.iter().enumerate() {
            let f = h.edge(i as u32);
            assert_eq!((e.u, e.v, e.scale, e.path), (f.u, f.v, f.scale, f.path));
            assert_eq!(e.w.to_bits(), f.w.to_bits());
        }
    }
}
