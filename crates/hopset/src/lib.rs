#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # hopset — deterministic PRAM hopsets (Elkin–Matar, SPAA 2021)
//!
//! A `(1+ε, β)`-**hopset** of a weighted undirected graph `G = (V, E, ω)` is
//! an edge set `H` such that for every `u, v ∈ V`
//!
//! ```text
//! d_G(u, v) ≤ d^{(β)}_{G∪H}(u, v) ≤ (1+ε)·d_G(u, v)        (eq. 1)
//! ```
//!
//! where `d^{(β)}` is the minimum weight of a path with at most `β` edges.
//! With a hopset, a `β`-round Bellman–Ford answers `(1+ε)`-approximate
//! shortest-distance queries — the engine of the paper's deterministic
//! polylogarithmic-time, `O(|E|·n^ρ)`-work SSSP (Theorems 3.7/3.8).
//!
//! This crate implements the paper's **deterministic** construction:
//!
//! * [`params`] — every parameter of §2/§3.4 (with the documented erratum
//!   fix for the δ-schedule),
//! * [`virtual_bfs`] — Algorithm 2 (bounded explorations in the virtual
//!   cluster graph),
//! * [`ruling`] — Algorithm 4 (deterministic `(3, 2·log n)`-ruling sets;
//!   the derandomization engine replacing \[EN19\]'s sampling),
//! * [`single_scale`] — the superclustering-and-interconnection phase loop,
//! * [`multi_scale`] — `H = ⋃_k H_k` for polynomial aspect ratio
//!   (Theorem 3.7),
//! * [`reduction`] — the Klein–Sairam weight reduction removing the
//!   aspect-ratio dependence (Appendix C, Theorem C.2),
//! * [`path_report`] — path-reporting hopsets and `(1+ε)`-SPT extraction
//!   (§4, Appendix D, Theorems 4.6/D.2),
//! * [`baseline`] — a seeded randomized (sampling) construction in the
//!   style the paper derandomizes, for the E9 comparison,
//! * [`validate`] — invariant checkers used by tests and experiments.
//!
//! ## Determinism
//!
//! The construction never consumes randomness; all parallel reductions are
//! order-independent; outputs are bit-identical across thread counts (see
//! DESIGN.md §5 and the cross-thread tests).
//!
//! ## Quick start
//!
//! ```
//! use pgraph::gen;
//! use hopset::{BuildOptions, HopsetParams, ParamMode};
//!
//! let g = gen::gnm_connected(64, 192, 7, 1.0, 4.0);
//! let params = HopsetParams::new(
//!     64, 0.25, 4, 0.3, ParamMode::Practical, g.aspect_ratio_bound(), None,
//! ).unwrap();
//! let built = hopset::build_hopset(&g, &params, BuildOptions::default());
//! assert!(!built.hopset.is_empty() || g.num_edges() == 0);
//! ```

pub mod baseline;
pub mod io;
pub mod label;
pub mod multi_scale;
pub mod params;
pub mod partition;
pub mod path;
pub mod path_report;
pub mod reduction;
pub mod ruling;
pub mod single_scale;
pub mod snapshot;
pub mod store;
pub mod validate;
pub mod virtual_bfs;

pub use io::{read_hopset, write_hopset};
pub use label::{
    reduce_labels, reduce_labels_columns, reduce_labels_in_place, reduce_labels_in_place_scratch,
    reduce_labels_two_sort, Label, LabelArena, ReduceScratch,
};
pub use multi_scale::{build_hopset, build_hopset_on, BuildOptions, BuiltHopset};
pub use params::{DeltaSchedule, HopsetParams, ParamError, ParamMode, ScaleParams};
pub use partition::{Cluster, ClusterMemory, Partition};
pub use path::{MemEdge, MemoryPath};
pub use ruling::{ruling_set, RulingTrace};
pub use single_scale::{PhaseStats, ScaleReport};
pub use snapshot::{
    load_hopset_snapshot, read_hopset_snapshot, save_hopset_snapshot, write_hopset_snapshot,
    write_hopset_snapshot_quantized,
};
pub use store::{EdgeKind, Hopset, HopsetEdge, ScaleSlice};
pub use virtual_bfs::{ExploreScratch, Explorer};
