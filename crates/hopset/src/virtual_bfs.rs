//! Algorithm 2: parallel limited BFS explorations in the virtual cluster
//! graph `G̃_i`, simulated by hop- and distance-bounded label propagation in
//! `G_{k-1} = (V, E ∪ H_{k-1})` (Appendix A).
//!
//! Two clusters are neighbors in `G̃_i` iff
//! `d^{(2β+1)}_{G_{k-1}}(C, C') ≤ (1+ε_{k-1})·δ_i`. One *pulse* simulates
//! one hop of `G̃_i`: distribute cluster knowledge to members, propagate
//! `2β+1` steps through `G_{k-1}`, aggregate back into clusters.
//!
//! The two variants the construction uses (Appendix A.3):
//!
//! * [`Explorer::detect_neighbors`] — `d = 1`, `x ≥ 1`: every cluster learns
//!   its `x` nearest neighboring clusters (popularity detection, Lemma A.3,
//!   and the phase-ℓ interconnection);
//! * [`Explorer::bfs`] — `x = 1`, `d ≥ 1`: a multi-source BFS in `G̃_i`
//!   (Lemma A.4 / Corollary A.5) used for supercluster formation and for the
//!   ruling-set knock-outs.
//!
//! Execution: the explorer carries an explicit [`Executor`] handle (the
//! persistent pool of `pram::pool`); every propagation step is one parallel
//! round on it. Callers also pass an [`ExploreScratch`] down with the
//! executor: the label table is a flat [`LabelArena`] (one `n·x` slot
//! buffer + length array — see DESIGN.md §8) and the changed-flag double
//! buffer lives beside it, both reused across pulses, ruling-set levels,
//! and phases. The pulse inner loop allocates **nothing per vertex**: each
//! parallel chunk reuses one candidate buffer plus one
//! [`ReduceScratch`], the packed-key reduction sorts in place, and
//! reduced lists are written back into the arena's fixed per-vertex
//! regions. In path-free mode the candidate loop is **column-shaped**
//! (three plain `src`/`dist`/`pw` columns, no per-candidate branch on the
//! label kind) so the relaxation arithmetic autovectorizes; pulse rounds
//! use the executor's autotuned bounds (`round_bounds_auto`), switching
//! to fine chunks + donation when the changed-vertex frontier is skewed.
//!
//! Edge provenance: overlay adjacency entries carry **global** hopset edge
//! ids directly (the scale-block CSRs of `pgraph::OverlayCsrBuilder` tag
//! them so), which is what [`crate::path::MemEdge::Hop`] records — no
//! overlay-to-global side table.
//!
//! Determinism: every per-vertex/per-cluster reduction uses the total order
//! of Algorithm 3 (see [`crate::label::reduce_labels_in_place_scratch`]);
//! propagation is double-buffered (reads see only the previous step — the
//! CREW discipline of §1.5.1), so results are identical for any thread
//! count.
//!
//! Early exit: propagation stops once no label list changes. This computes
//! the fixpoint `d^{(h*)}` for some `h* ≤` the hop budget; allowing *more*
//! hops than `2β+1` only shrinks measured distances, which enlarges `G̃_i`
//! monotonically — every coverage lemma (2.4, A.3, A.4) only needs the
//! paper's `G̃_i` to be a *subgraph* of the one actually used, and the
//! stretch analysis only needs recorded distances to be realizable, which
//! fixpoint distances are. (The hop budget still caps every exploration.)

use crate::label::{
    labels_equal, reduce_labels_columns, reduce_labels_in_place_scratch, Label, LabelArena,
    ReduceScratch,
};
use crate::partition::{ClusterMemory, Partition};
use crate::path::{path_extend, path_splice, path_start, MemEdge, PathHandle};
use pgraph::{EdgeTag, UnionView, VId, Weight};
use pram::{prim, Executor, Ledger};

/// Length sentinel for "vertex not recomputed this step".
const SKIP: u32 = u32::MAX;

/// Caller-owned scratch for the exploration engine: the flat label arena
/// and the double-buffered changed flags. One instance serves any number of
/// [`Explorer::detect_neighbors`] / [`Explorer::bfs`] calls (on graphs of
/// any size — buffers are resized on demand and retain their allocations),
/// so the hot construction loop allocates these once per scale instead of
/// once per pulse.
#[derive(Default)]
pub struct ExploreScratch {
    /// `labels.labels(v)`: up to `x` records sorted by `(dist, src)`.
    labels: LabelArena,
    /// Vertices whose label list changed in the previous step.
    changed: Vec<bool>,
    /// Write buffer for the current step's changed flags.
    next_changed: Vec<bool>,
}

impl ExploreScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear to the all-empty state for `n` lists of capacity `x`, keeping
    /// allocations.
    fn reset(&mut self, n: usize, x: usize) {
        self.labels.reset(n, x);
        self.changed.clear();
        self.changed.resize(n, false);
        self.next_changed.clear();
        self.next_changed.resize(n, false);
    }
}

/// A configured exploration engine for one phase of one scale.
pub struct Explorer<'a> {
    /// The executor the propagation rounds run on.
    pub exec: &'a Executor,
    /// The exploration graph `G_{k-1}`. Overlay entries must carry global
    /// hopset edge ids in their [`EdgeTag::Extra`] tags (scale-block CSRs
    /// and `all_slice()`-derived views both do).
    pub view: &'a UnionView<'a>,
    /// The clusters `P_i`.
    pub part: &'a Partition,
    /// Cluster memory (CP/CD arrays of §4.3).
    pub cm: &'a ClusterMemory,
    /// Distance threshold `(1+ε_{k-1})·δ_i`.
    pub threshold: Weight,
    /// Hop budget per pulse (`2β+1`, capped — see `HopsetParams::hop_limit`).
    pub hop_limit: usize,
    /// Record realized paths (path-reporting mode, §4.3).
    pub record_paths: bool,
}

/// Result of the BFS variant for one cluster.
#[derive(Clone, Debug)]
pub struct Detection {
    /// Cluster index (within `P_i`) of the originating source.
    pub src_cluster: u32,
    /// Center id of the originating source.
    pub src_center: VId,
    /// Pulse at which this cluster was detected (0 for sources themselves).
    pub pulse: usize,
    /// Realized path weight from the source center to this cluster's center.
    pub pw: Weight,
    /// The realized path (source center → this center), when recording.
    pub path: Option<PathHandle>,
}

impl<'a> Explorer<'a> {
    fn mem_edge(&self, tag: EdgeTag) -> MemEdge {
        match tag {
            EdgeTag::Base => MemEdge::Base,
            EdgeTag::Extra(i) => MemEdge::Hop(i),
        }
    }

    /// Charge one propagation step: the paper's accounting is `O(log n)`
    /// depth with `O((|E|+|H_{k-1}|)·x)` processors per step (Lemma A.3).
    fn charge_step(&self, x: usize, ledger: &mut Ledger) {
        let n = self.view.num_vertices() as u64;
        let m = 2 * self.view.num_edges() as u64;
        let logn = pgraph::ceil_log2(self.view.num_vertices().max(2)) as u64;
        ledger.steps(logn.max(1), (m + n) * x as u64);
    }

    /// Seed label for member `v` of cluster `c` given the cluster-level
    /// record `(src_center, dist, pw, path-ending-at-center)`: the member
    /// extends the record by its center → v cluster-memory detour.
    fn seed_member(
        &self,
        v: VId,
        src_center: VId,
        dist: Weight,
        pw: Weight,
        center_path: Option<&PathHandle>,
    ) -> Label {
        let path = if self.record_paths {
            let base = match center_path {
                Some(p) => p.clone(),
                None => path_start(src_center),
            };
            // center → v is the reverse of CP(v) = v → center.
            Some(path_splice(&base, self.cm.path_of(v), true))
        } else {
            None
        };
        Label {
            src: src_center,
            dist,
            pw: pw + self.cm.weight[v as usize],
            path,
        }
    }

    /// Lift a vertex-level label at `v` to cluster level: append the
    /// v → center detour (dist unchanged — cluster distance is the min over
    /// members, Lemma A.3's `m(C)` semantics).
    fn lift_to_cluster(&self, v: VId, label: &Label) -> Label {
        Label {
            src: label.src,
            dist: label.dist,
            pw: label.pw + self.cm.weight[v as usize],
            path: if self.record_paths {
                Some(path_splice(
                    label.path.as_ref().expect("path recorded"),
                    self.cm.path_of(v),
                    false,
                ))
            } else {
                None
            },
        }
    }

    /// One chunk of a propagation step, **path-recording** variant: the
    /// candidate loop materializes full [`Label`] records (each neighbor
    /// relaxation extends a path handle) and reduces with the packed-key
    /// sort through a per-chunk [`ReduceScratch`].
    fn relax_chunk_paths(
        &self,
        r: std::ops::Range<usize>,
        cur: &LabelArena,
        prev_changed: &[bool],
        x: usize,
    ) -> (Vec<u32>, Vec<Label>) {
        let mut lens: Vec<u32> = Vec::with_capacity(r.len());
        let mut out: Vec<Label> = Vec::new();
        let mut cands: Vec<Label> = Vec::new();
        let mut scratch = ReduceScratch::new();
        for v in r {
            let vid = v as VId;
            let mut any = false;
            self.view.for_each_neighbor(vid, |u, _, _| {
                any |= prev_changed[u as usize];
            });
            if !any {
                lens.push(SKIP);
                continue;
            }
            cands.clear();
            cands.extend_from_slice(cur.labels(v));
            self.view.for_each_neighbor(vid, |u, w, tag| {
                for l in cur.labels(u as usize) {
                    let nd = l.dist + w;
                    if nd > self.threshold {
                        continue;
                    }
                    cands.push(Label {
                        src: l.src,
                        dist: nd,
                        pw: l.pw + w,
                        path: Some(path_extend(
                            l.path.as_ref().expect("path recorded"),
                            vid,
                            self.mem_edge(tag),
                            w,
                        )),
                    });
                }
            });
            reduce_labels_in_place_scratch(&mut cands, x, &mut scratch);
            lens.push(cands.len() as u32);
            out.append(&mut cands);
        }
        (lens, out)
    }

    /// One chunk of a propagation step, **path-free** fast path: the
    /// candidate loop accumulates three plain columns (`src`, `dist`,
    /// `pw`) — no 32-byte record writes, no per-candidate branch on the
    /// label kind (the `record_paths` decision is hoisted to the chunk
    /// dispatch) — and reduces them with [`reduce_labels_columns`].
    /// Survivor lists are ≤ `x` long, so re-materializing them as arena
    /// records afterwards is off the critical loop. Results are pinned
    /// bit-identical to the path-recording variant's `(src, dist, pw)`
    /// projection (`flat_fast_path_matches_path_recording` below).
    fn relax_chunk_flat(
        &self,
        r: std::ops::Range<usize>,
        cur: &LabelArena,
        prev_changed: &[bool],
        x: usize,
    ) -> (Vec<u32>, Vec<Label>) {
        let mut lens: Vec<u32> = Vec::with_capacity(r.len());
        let mut out: Vec<Label> = Vec::new();
        let mut srcs: Vec<VId> = Vec::new();
        let mut dists: Vec<Weight> = Vec::new();
        let mut pws: Vec<Weight> = Vec::new();
        let mut scratch = ReduceScratch::new();
        for v in r {
            let vid = v as VId;
            let mut any = false;
            self.view.for_each_neighbor(vid, |u, _, _| {
                any |= prev_changed[u as usize];
            });
            if !any {
                lens.push(SKIP);
                continue;
            }
            srcs.clear();
            dists.clear();
            pws.clear();
            for l in cur.labels(v) {
                srcs.push(l.src);
                dists.push(l.dist);
                pws.push(l.pw);
            }
            self.view.for_each_neighbor(vid, |u, w, _tag| {
                for l in cur.labels(u as usize) {
                    let nd = l.dist + w;
                    if nd <= self.threshold {
                        srcs.push(l.src);
                        dists.push(nd);
                        pws.push(l.pw + w);
                    }
                }
            });
            reduce_labels_columns(&mut srcs, &mut dists, &mut pws, x, &mut scratch);
            lens.push(srcs.len() as u32);
            out.extend(
                srcs.iter()
                    .zip(dists.iter())
                    .zip(pws.iter())
                    .map(|((&s, &d), &p)| Label {
                        src: s,
                        dist: d,
                        pw: p,
                        path: None,
                    }),
            );
        }
        (lens, out)
    }

    /// Propagate `scratch.labels` to a fixpoint (≤ `hop_limit` steps),
    /// each step one parallel round on `self.exec`. The changed-flag
    /// double buffer lives in the scratch too. Per step, each chunk
    /// produces one flat `(lens, labels)` buffer pair (no per-vertex
    /// vectors), which is then compared against — and moved into — the
    /// arena's fixed regions in vertex order.
    fn propagate(&self, scratch: &mut ExploreScratch, x: usize, ledger: &mut Ledger) {
        let n = self.view.num_vertices();
        let ExploreScratch {
            labels,
            changed,
            next_changed,
        } = scratch;
        debug_assert_eq!(labels.num_lists(), n);
        for (v, c) in changed.iter_mut().enumerate() {
            *c = labels.len_of(v) > 0;
        }
        for _step in 0..self.hop_limit {
            // Autotuned bounds: later pulses typically touch a shrinking
            // frontier (few `changed` vertices do real work), which skews
            // per-chunk cost. The fine split hands the executor more
            // chunks than threads so its claim counter can donate
            // trailing chunks to early finishers; `active` is computed
            // from the data, so the fine/coarse choice is deterministic.
            let active = changed.iter().filter(|&&c| c).count();
            if active == 0 {
                break;
            }
            self.charge_step(x, ledger);
            let bounds = self.exec.round_bounds_auto(n, active);
            let cur = &*labels;
            let prev_changed = &*changed;
            // Recompute v iff some neighbor changed last step. One output
            // buffer pair per chunk; `SKIP` marks untouched vertices.
            let chunks: Vec<(Vec<u32>, Vec<Label>)> = self.exec.run_chunks(&bounds, |r| {
                if self.record_paths {
                    self.relax_chunk_paths(r, cur, prev_changed, x)
                } else {
                    self.relax_chunk_flat(r, cur, prev_changed, x)
                }
            });
            // Apply: one pass per chunk — compare each new list against the
            // arena (the iterator's unconsumed slice), set the fixpoint
            // flag, then move it into the arena's region (overwriting a
            // list with equal content is a no-op for every later read).
            for b in next_changed.iter_mut() {
                *b = false;
            }
            for (ci, (lens, out)) in chunks.into_iter().enumerate() {
                let mut items = out.into_iter();
                for (off, &len) in lens.iter().enumerate() {
                    if len == SKIP {
                        continue;
                    }
                    let v = bounds[ci].start + off;
                    let new = &items.as_slice()[..len as usize];
                    if !labels_equal(new, labels.labels(v)) {
                        next_changed[v] = true;
                    }
                    labels.set_list(v, items.by_ref().take(len as usize));
                }
            }
            std::mem::swap(changed, next_changed);
        }
    }

    /// The `d = 1`, `x ≥ 1` variant (Lemma A.3): every cluster of `P_i`
    /// starts an exploration; afterwards `m(C)` holds up to `x` records —
    /// the nearest `x` clusters (including `C` itself at distance 0).
    ///
    /// * If the list is full (`len_of(c) ≥ x`), `C` has at least `x − 1`
    ///   neighbors (popular when `x = deg_i + 1`).
    /// * Otherwise `m(C)` lists *all* neighbors of `C` with their
    ///   `d^{(2β+1)}`-distances.
    ///
    /// Returns the per-cluster arrays `m(·)` as an owned [`LabelArena`]
    /// over cluster indices.
    pub fn detect_neighbors(
        &self,
        x: usize,
        scratch: &mut ExploreScratch,
        ledger: &mut Ledger,
    ) -> LabelArena {
        let n = self.view.num_vertices();
        scratch.reset(n, x);
        // Distribution: every member of every cluster seeds its own record.
        ledger.step(n as u64 * x as u64);
        for cl in self.part.clusters.iter() {
            for &v in &cl.members {
                let l = self.seed_member(v, cl.center, 0.0, 0.0, None);
                scratch.labels.push(v as usize, l);
            }
        }
        self.propagate(scratch, x, ledger);
        // Aggregation: fold member labels into m(C), chunked like the
        // propagate rounds (one buffer pair per chunk, no per-cluster Vec).
        ledger.sort(n as u64 * x as u64);
        let nc = self.part.len();
        let mut m = LabelArena::new();
        m.reset(nc, x);
        let labels = &scratch.labels;
        let bounds = self.exec.round_bounds(nc);
        let chunks: Vec<(Vec<u32>, Vec<Label>)> = self.exec.run_chunks(&bounds, |r| {
            let mut lens: Vec<u32> = Vec::with_capacity(r.len());
            let mut out: Vec<Label> = Vec::new();
            let mut cands: Vec<Label> = Vec::new();
            let mut scratch = ReduceScratch::new();
            for ci in r {
                let cl = &self.part.clusters[ci];
                cands.clear();
                for &v in &cl.members {
                    for l in labels.labels(v as usize) {
                        cands.push(self.lift_to_cluster(v, l));
                    }
                }
                reduce_labels_in_place_scratch(&mut cands, x, &mut scratch);
                lens.push(cands.len() as u32);
                out.append(&mut cands);
            }
            (lens, out)
        });
        for (ci, (lens, out)) in chunks.into_iter().enumerate() {
            let mut items = out.into_iter();
            for (off, &len) in lens.iter().enumerate() {
                m.set_list(bounds[ci].start + off, items.by_ref().take(len as usize));
            }
        }
        m
    }

    /// The `x = 1`, `d ≥ 1` variant (Lemma A.4 / Corollary A.5): a BFS to
    /// depth `pulses` in `G̃_i` from the clusters `sources`. Returns, per
    /// cluster of `P_i`, the detection record (sources detect themselves at
    /// pulse 0). Each pulse re-seeds from every detected cluster with a
    /// fresh hop/distance budget, exactly matching the pulse semantics of
    /// Appendix A.2; the label arena is reset (not reallocated) per pulse.
    pub fn bfs(
        &self,
        sources: &[u32],
        pulses: usize,
        scratch: &mut ExploreScratch,
        ledger: &mut Ledger,
    ) -> Vec<Option<Detection>> {
        let n = self.view.num_vertices();
        let nc = self.part.len();
        let mut det: Vec<Option<Detection>> = vec![None; nc];
        for &s in sources {
            let center = self.part.center(s);
            det[s as usize] = Some(Detection {
                src_cluster: s,
                src_center: center,
                pulse: 0,
                pw: 0.0,
                path: self.record_paths.then(|| path_start(center)),
            });
        }
        for pulse in 1..=pulses {
            // Distribute: members of every detected cluster carry the
            // origin's identity onward with a fresh per-pulse budget.
            scratch.reset(n, 1);
            ledger.step(n as u64);
            for (ci, cl) in self.part.clusters.iter().enumerate() {
                let Some(d) = &det[ci] else { continue };
                for &v in &cl.members {
                    let l = self.seed_member(v, d.src_center, 0.0, d.pw, d.path.as_ref());
                    scratch.labels.push(v as usize, l);
                }
            }
            self.propagate(scratch, 1, ledger);
            // Aggregate: undetected clusters reached this pulse are detected
            // by the best record (min by (dist, src) — deterministic).
            ledger.sort(n as u64);
            let mut newly = 0usize;
            let labels = &scratch.labels;
            let updates: Vec<Option<Detection>> = prim::par_map_range(self.exec, nc, |ci| {
                if det[ci].is_some() {
                    return None;
                }
                let cl = &self.part.clusters[ci];
                let mut best: Option<(Label, VId)> = None;
                for &v in &cl.members {
                    for l in labels.labels(v as usize) {
                        let better = match &best {
                            None => true,
                            Some((b, bv)) => {
                                (l.dist.to_bits(), l.src, l.pw.to_bits(), v)
                                    < (b.dist.to_bits(), b.src, b.pw.to_bits(), *bv)
                            }
                        };
                        if better {
                            best = Some((l.clone(), v));
                        }
                    }
                }
                best.map(|(l, v)| {
                    let lifted = self.lift_to_cluster(v, &l);
                    Detection {
                        src_cluster: self
                            .part
                            .index_of_center(lifted.src)
                            .expect("source is a cluster center"),
                        src_center: lifted.src,
                        pulse,
                        pw: lifted.pw,
                        path: lifted.path,
                    }
                })
            });
            for (ci, u) in updates.into_iter().enumerate() {
                if let Some(d) = u {
                    det[ci] = Some(d);
                    newly += 1;
                }
            }
            if newly == 0 {
                break; // BFS saturated: later pulses cannot reach more.
            }
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{HopsetParams, ParamMode};
    use pgraph::{gen, Graph};

    fn exploration_setup(g: &Graph) -> (UnionView<'_>, Partition, ClusterMemory) {
        let view = UnionView::base_only(g);
        let part = Partition::singletons(g.num_vertices());
        let cm = ClusterMemory::trivial(g.num_vertices(), false);
        (view, part, cm)
    }

    fn exec() -> Executor {
        Executor::shared(2)
    }

    #[test]
    fn detect_neighbors_on_path() {
        // Path 0-1-2-3-4, unit weights, threshold 1.5: neighbors are exactly
        // the adjacent vertices.
        let g = gen::path(5);
        let (view, part, cm) = exploration_setup(&g);
        let exec = exec();
        let ex = Explorer {
            exec: &exec,
            view: &view,
            part: &part,
            cm: &cm,
            threshold: 1.5,
            hop_limit: 8,
            record_paths: false,
        };
        let mut led = Ledger::new();
        let mut scratch = ExploreScratch::new();
        let m = ex.detect_neighbors(10, &mut scratch, &mut led);
        // Vertex 0: itself + neighbor 1.
        let srcs0: Vec<VId> = m.labels(0).iter().map(|l| l.src).collect();
        assert_eq!(srcs0, vec![0, 1]);
        // Vertex 2: itself + 1 + 3.
        let srcs2: Vec<VId> = m.labels(2).iter().map(|l| l.src).collect();
        assert_eq!(srcs2, vec![2, 1, 3]);
        assert_eq!(m.labels(2)[1].dist, 1.0);
        assert!(led.work() > 0);
    }

    #[test]
    fn threshold_and_hops_bound_reach() {
        let g = gen::path(6);
        let (view, part, cm) = exploration_setup(&g);
        let exec = exec();
        // Distance threshold 10 but only 2 hops: reach 2 vertices away.
        let ex = Explorer {
            exec: &exec,
            view: &view,
            part: &part,
            cm: &cm,
            threshold: 10.0,
            hop_limit: 2,
            record_paths: false,
        };
        let mut led = Ledger::new();
        let mut scratch = ExploreScratch::new();
        let m = ex.detect_neighbors(10, &mut scratch, &mut led);
        let srcs0: Vec<VId> = m.labels(0).iter().map(|l| l.src).collect();
        assert_eq!(srcs0, vec![0, 1, 2]);
    }

    #[test]
    fn x_truncates_to_nearest() {
        let g = gen::star(6); // center 0
        let (view, part, cm) = exploration_setup(&g);
        let exec = exec();
        let ex = Explorer {
            exec: &exec,
            view: &view,
            part: &part,
            cm: &cm,
            threshold: 3.0,
            hop_limit: 4,
            record_paths: false,
        };
        let mut led = Ledger::new();
        let mut scratch = ExploreScratch::new();
        let m = ex.detect_neighbors(3, &mut scratch, &mut led);
        // Leaf 1 sees itself (0), center (1.0), then the other leaves (2.0):
        // with x = 3 keep self, center, and the smallest-id leaf.
        let l1: Vec<(VId, Weight)> = m.labels(1).iter().map(|l| (l.src, l.dist)).collect();
        assert_eq!(l1, vec![(1, 0.0), (0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn bfs_detects_in_pulse_order() {
        // Path with unit weights; threshold 1.5 makes G̃ the same path.
        let g = gen::path(6);
        let (view, part, cm) = exploration_setup(&g);
        let exec = exec();
        let ex = Explorer {
            exec: &exec,
            view: &view,
            part: &part,
            cm: &cm,
            threshold: 1.5,
            hop_limit: 4,
            record_paths: false,
        };
        let mut led = Ledger::new();
        let mut scratch = ExploreScratch::new();
        let det = ex.bfs(&[0], 3, &mut scratch, &mut led);
        let pulses: Vec<Option<usize>> = det.iter().map(|d| d.as_ref().map(|x| x.pulse)).collect();
        assert_eq!(pulses, vec![Some(0), Some(1), Some(2), Some(3), None, None]);
        assert!(det.iter().flatten().all(|d| d.src_center == 0));
    }

    #[test]
    fn bfs_multi_source_takes_nearest_origin() {
        let g = gen::path(7);
        let (view, part, cm) = exploration_setup(&g);
        let exec = exec();
        let ex = Explorer {
            exec: &exec,
            view: &view,
            part: &part,
            cm: &cm,
            threshold: 1.5,
            hop_limit: 4,
            record_paths: false,
        };
        let mut led = Ledger::new();
        let mut scratch = ExploreScratch::new();
        let det = ex.bfs(&[0, 6], 10, &mut scratch, &mut led);
        assert_eq!(det[2].as_ref().unwrap().src_center, 0);
        assert_eq!(det[4].as_ref().unwrap().src_center, 6);
        // Midpoint 3: equal pulse from both sides → smaller center id wins.
        assert_eq!(det[3].as_ref().unwrap().src_center, 0);
    }

    #[test]
    fn bfs_early_exits_when_saturated() {
        let g = Graph::from_edges(4, [(0, 1, 1.0)]).unwrap(); // 2,3 isolated
        let (view, part, cm) = exploration_setup(&g);
        let exec = exec();
        let ex = Explorer {
            exec: &exec,
            view: &view,
            part: &part,
            cm: &cm,
            threshold: 5.0,
            hop_limit: 4,
            record_paths: false,
        };
        let mut led = Ledger::new();
        let mut scratch = ExploreScratch::new();
        let det = ex.bfs(&[0], 1000, &mut scratch, &mut led);
        assert!(det[1].is_some());
        assert!(det[2].is_none());
        assert!(det[3].is_none());
    }

    #[test]
    fn paths_recorded_and_consistent() {
        let g = gen::path(5);
        let view = UnionView::base_only(&g);
        let part = Partition::singletons(5);
        let cm = ClusterMemory::trivial(5, true);
        let exec = exec();
        let ex = Explorer {
            exec: &exec,
            view: &view,
            part: &part,
            cm: &cm,
            threshold: 3.5,
            hop_limit: 8,
            record_paths: true,
        };
        let mut led = Ledger::new();
        let mut scratch = ExploreScratch::new();
        let m = ex.detect_neighbors(10, &mut scratch, &mut led);
        // Record for source 3 at cluster 0 must carry a real 3→0 path.
        let rec = m
            .labels(0)
            .iter()
            .find(|l| l.src == 3)
            .expect("3 within 3.5");
        assert_eq!(rec.dist, 3.0);
        assert_eq!(rec.pw, 3.0);
        let mp = crate::path::path_materialize(rec.path.as_ref().unwrap());
        assert_eq!(mp.verts, vec![3, 2, 1, 0]);
        assert!((mp.weight() - rec.pw).abs() < 1e-9);
    }

    #[test]
    fn clustered_partition_uses_cluster_distances() {
        // Clusters {0,1} centered 0 and {3,4} centered 4, bridge 1-2-3;
        // cluster distance = d(1,3) = 2 < d(0,4) = 4.
        let g = gen::path(5);
        let view = UnionView::base_only(&g);
        let part = Partition {
            cluster_of: vec![Some(0), Some(0), None, Some(1), Some(1)],
            clusters: vec![
                crate::partition::Cluster {
                    center: 0,
                    members: vec![0, 1],
                },
                crate::partition::Cluster {
                    center: 4,
                    members: vec![3, 4],
                },
            ],
        };
        assert!(part.validate(5));
        let cm = ClusterMemory::trivial(5, false);
        let exec = exec();
        let ex = Explorer {
            exec: &exec,
            view: &view,
            part: &part,
            cm: &cm,
            threshold: 2.5,
            hop_limit: 8,
            record_paths: false,
        };
        let mut led = Ledger::new();
        let mut scratch = ExploreScratch::new();
        let m = ex.detect_neighbors(5, &mut scratch, &mut led);
        // m for cluster 0 sees cluster 4 at distance 2 (via members 1 and 3).
        let rec = m
            .labels(0)
            .iter()
            .find(|l| l.src == 4)
            .expect("cluster neighbor");
        assert_eq!(rec.dist, 2.0);
    }

    #[test]
    fn flat_fast_path_matches_path_recording() {
        // The column-shaped fast path (record_paths = false) and the
        // path-recording loop are separate implementations of the same
        // pulse; their (src, dist, pw) projections must be bit-identical
        // on every vertex. This pins the SIMD-shaped rewrite to the
        // reference semantics end to end, not just per reduction call.
        let g = gen::gnm_connected(80, 220, 13, 1.0, 4.0);
        let view = UnionView::base_only(&g);
        let part = Partition::singletons(g.num_vertices());
        let run = |record_paths: bool| {
            let cm = ClusterMemory::trivial(g.num_vertices(), record_paths);
            let exec = Executor::shared(2);
            let ex = Explorer {
                exec: &exec,
                view: &view,
                part: &part,
                cm: &cm,
                threshold: 5.0,
                hop_limit: 12,
                record_paths,
            };
            let mut led = Ledger::new();
            let mut scratch = ExploreScratch::new();
            ex.detect_neighbors(6, &mut scratch, &mut led)
        };
        let flat = run(false);
        let with_paths = run(true);
        for (v, (a, b)) in flat.iter_lists().zip(with_paths.iter_lists()).enumerate() {
            assert!(labels_equal(a, b), "vertex {v} diverged");
            assert!(a.iter().all(|l| l.path.is_none()));
            assert!(b.iter().all(|l| l.path.is_some()));
        }
    }

    #[test]
    fn determinism_across_thread_counts() {
        // The engine's reductions are order-independent, so full label
        // tables must be identical whatever the executor's thread count —
        // here actually varied by constructing explorers over executors of
        // different sizes (not just run twice at one count).
        let g = gen::gnm_connected(60, 150, 2, 1.0, 3.0);
        let (view, part, cm) = exploration_setup(&g);
        let run = |threads: usize| {
            let exec = Executor::shared(threads);
            let ex = Explorer {
                exec: &exec,
                view: &view,
                part: &part,
                cm: &cm,
                threshold: 4.0,
                hop_limit: 10,
                record_paths: false,
            };
            let mut l = Ledger::new();
            let mut scratch = ExploreScratch::new();
            (ex.detect_neighbors(4, &mut scratch, &mut l), l)
        };
        let (a, l1) = run(1);
        for threads in [2usize, 4, 8] {
            let (b, l) = run(threads);
            for (x, y) in a.iter_lists().zip(b.iter_lists()) {
                assert!(labels_equal(x, y), "threads={threads}");
            }
            assert_eq!(l, l1);
        }
    }

    #[test]
    fn scratch_reuse_is_observably_identical() {
        // One scratch carried across calls (the hot-loop pattern) must give
        // the same answers as a fresh scratch per call.
        let g = gen::gnm_connected(40, 100, 5, 1.0, 3.0);
        let (view, part, cm) = exploration_setup(&g);
        let exec = exec();
        let ex = Explorer {
            exec: &exec,
            view: &view,
            part: &part,
            cm: &cm,
            threshold: 3.0,
            hop_limit: 8,
            record_paths: false,
        };
        let mut reused = ExploreScratch::new();
        for x in [2usize, 5, 3] {
            let mut l1 = Ledger::new();
            let mut l2 = Ledger::new();
            let with_reuse = ex.detect_neighbors(x, &mut reused, &mut l1);
            let fresh = ex.detect_neighbors(x, &mut ExploreScratch::new(), &mut l2);
            for (a, b) in with_reuse.iter_lists().zip(fresh.iter_lists()) {
                assert!(labels_equal(a, b), "x={x}");
            }
            assert_eq!(l1, l2, "x={x}");
            // And the BFS variant, interleaved on the same scratch.
            let mut l3 = Ledger::new();
            let mut l4 = Ledger::new();
            let d1 = ex.bfs(&[0, 7], 4, &mut reused, &mut l3);
            let d2 = ex.bfs(&[0, 7], 4, &mut ExploreScratch::new(), &mut l4);
            for (a, b) in d1.iter().zip(&d2) {
                match (a, b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!((x.src_cluster, x.pulse), (y.src_cluster, y.pulse));
                        assert_eq!(x.pw.to_bits(), y.pw.to_bits());
                    }
                    _ => panic!("detection presence mismatch"),
                }
            }
            assert_eq!(l3, l4);
        }
    }

    #[test]
    fn params_integrate_with_explorer() {
        let p = HopsetParams::new(64, 0.25, 4, 0.3, ParamMode::Practical, 64.0, None).unwrap();
        assert!(p.hop_limit <= 64);
        assert!(p.degrees[0] >= 2);
    }
}
