//! Bounded label sets — the `m(·)`/`L(·)` arrays of Algorithm 2.
//!
//! A [`Label`] is one record `⟨source cluster, distance⟩` plus the realized
//! path bookkeeping this implementation adds:
//!
//! * `dist` — the hop-and-threshold-bounded distance of the paper (what
//!   popularity, neighborhood and detection decisions read);
//! * `pw` — the weight of the *actual* path realizing the record, including
//!   the cluster-memory detours through centers (§4.3). Always `≥ dist`.
//!   Practical-mode edge weights use `pw` directly (a real path weight can
//!   never undercut a true distance — the Lemma 2.3/2.9 guarantee holds by
//!   construction instead of by radius arithmetic);
//! * `path` — the path itself, only in path-reporting mode.
//!
//! [`reduce_labels_in_place`] implements Algorithm 3 ("Sort Array"): sort by
//! source (ties by distance), drop duplicate sources, re-sort by distance
//! (ties by id), keep the best `x` — **in place** on the caller's buffer, so
//! the exploration inner loop never allocates per candidate set.
//!
//! PR 9 reshaped the reduction for the hardware: instead of two
//! comparator sorts over 32-byte `Label` records (pointer-heavy, branchy
//! comparators), the hot path precomputes one **packed integer key** per
//! candidate — `src·2⁹⁶ | dist_bits·2³² | index` — and runs a single
//! `sort_unstable` over plain `u128`s (branchless three-instruction
//! comparisons, labels never move during the sort). Source-dedup becomes a
//! linear scan over sorted keys, and the final rank order is a second
//! integer sort over the (much smaller) survivor set. The retired
//! implementation survives as [`reduce_labels_two_sort`], and proptests pin
//! the packed path to it record-for-record. `dist`/`pw` are non-negative
//! finite, so `f64::to_bits` is order-monotone — the same argument the
//! two-sort comparators already relied on.
//!
//! [`LabelArena`] is the flat backing store for per-vertex (and
//! per-cluster) label lists: one `n·x` slot buffer plus a per-vertex length
//! array. It is legal precisely because Algorithm 3 caps every reduced list
//! at `x` records; the capacity rule and why determinism survives the
//! layout are documented in DESIGN.md §8.

use crate::path::PathHandle;
use pgraph::{VId, Weight};

/// One exploration record.
#[derive(Clone, Debug)]
pub struct Label {
    /// Source cluster id (= its center's vertex id, §1.5).
    pub src: VId,
    /// Bounded distance from the source cluster (the paper's record value).
    pub dist: Weight,
    /// Weight of the realized path (≥ `dist`; includes center detours).
    pub pw: Weight,
    /// The realized path (ends at the current holder), when recording.
    pub path: Option<PathHandle>,
}

impl Label {
    /// Key for duplicate elimination: group by source, best (dist, pw) first.
    #[inline]
    fn dedup_key(&self) -> (VId, u64, u64) {
        (self.src, self.dist.to_bits(), self.pw.to_bits())
    }

    /// Key for final ranking: nearest source first, ties by id (Algorithm 3
    /// line 5: "sort according to distances, break ties by IDs").
    #[inline]
    fn rank_key(&self) -> (u64, VId) {
        (self.dist.to_bits(), self.src)
    }
}

/// The retired two-keyed-sort implementation of Algorithm 3 — kept as the
/// **pinned reference** for the packed-key fast path (proptests assert the
/// two agree record-for-record on `(src, dist, pw)`). Deduplicate by
/// source keeping the best record, rank by `(dist, src)`, truncate to `x`.
/// Both sorts are unstable (keys are total orders; after source-dedup the
/// rank key `(dist, src)` is unique, and the dedup key `(src, dist, pw)`
/// fully determines every paper-visible field — candidates that tie on all
/// three can differ only in their recorded path, and whichever survives
/// realizes the same `pw`).
pub fn reduce_labels_two_sort(cands: &mut Vec<Label>, x: usize) {
    if cands.is_empty() {
        return;
    }
    cands.sort_unstable_by_key(Label::dedup_key);
    cands.dedup_by(|b, a| b.src == a.src); // keeps first = best per source
    cands.sort_unstable_by_key(Label::rank_key);
    cands.truncate(x);
}

/// Low 32 bits of a packed key: the candidate's index in the input buffer.
const IDX_MASK: u128 = u32::MAX as u128;

/// Dedup-stage key: `src·2⁹⁶ | dist_bits·2³² | index`. Sorting these
/// groups candidates by source, orders each group by distance, and keeps
/// the original index recoverable for the gather. `pw` does not fit —
/// the min-`pw` tiebreak among equal `(src, dist)` is resolved by a
/// linear scan of the (almost always length-1) tie run instead.
#[inline]
fn dedup_pack(src: VId, dist: Weight, idx: usize) -> u128 {
    ((src as u128) << 96) | ((dist.to_bits() as u128) << 32) | idx as u128
}

/// Reusable buffers for the packed-key reduction. One instance per
/// parallel chunk (the pulse engine keeps it beside the candidate buffer),
/// so the reduction stays allocation-free in the hot loop — the PR-5
/// "nothing per vertex" claim extends to the PR-9 rewrite.
#[derive(Default)]
pub struct ReduceScratch {
    /// Packed keys, reused for the dedup sort and then the rank sort.
    keys: Vec<u128>,
    /// Survivor gather buffer for the label (AoS) variant.
    tmp: Vec<Label>,
    /// Survivor gather buffers for the column (SoA) variant.
    tmp_src: Vec<VId>,
    tmp_dist: Vec<Weight>,
    tmp_pw: Vec<Weight>,
}

impl ReduceScratch {
    /// Empty scratch; buffers grow on first use and are retained.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Shared core of the packed-key reduction: given dedup keys for `n`
/// candidates and a `pw`-by-index accessor, leave in `keys[..r]` the `≤ x`
/// survivors' **rank** keys (`dist_bits·2⁶⁴ | src·2³² | index`) in final
/// rank order, returning `r`.
#[inline]
fn reduce_keys(
    keys: &mut Vec<u128>,
    n: usize,
    x: usize,
    pw_bits_of: impl Fn(usize) -> u64,
) -> usize {
    keys.sort_unstable();
    // Source-dedup scan: one survivor per run of equal top-32 bits. The
    // run's head has the minimal distance; ties on (src, dist) — equal
    // top-96 bits — resolve to the minimal (pw, index), matching the
    // reference's (src, dist, pw) dedup key. Survivor rank keys are
    // written back into the prefix (`w` never passes the read cursor).
    let mut w = 0usize;
    let mut i = 0usize;
    while i < n {
        let src_bits = keys[i] >> 96;
        let top96 = keys[i] >> 32;
        let mut best_idx = (keys[i] & IDX_MASK) as usize;
        let mut best_pw = pw_bits_of(best_idx);
        let mut j = i + 1;
        while j < n && keys[j] >> 32 == top96 {
            let idx = (keys[j] & IDX_MASK) as usize;
            let pwb = pw_bits_of(idx);
            if (pwb, idx) < (best_pw, best_idx) {
                best_pw = pwb;
                best_idx = idx;
            }
            j += 1;
        }
        // Skip the rest of this source's run (worse distances).
        while j < n && keys[j] >> 96 == src_bits {
            j += 1;
        }
        let dist_bits = (keys[i] >> 32) as u64;
        keys[w] = ((dist_bits as u128) << 64) | (src_bits << 32) | best_idx as u128;
        w += 1;
        i = j;
    }
    keys.truncate(w);
    // Rank sort: (dist, src) is unique after dedup, so the index bits
    // never decide the order — they just ride along for the gather.
    keys.sort_unstable();
    let r = x.min(w);
    keys.truncate(r);
    r
}

/// Algorithm 3 via one packed-integer-key sort (see the module docs), in
/// place on the caller's buffer with explicit scratch — the hot-path
/// entry. Bit-identical to [`reduce_labels_two_sort`] on every
/// paper-visible field; fully deterministic (a pure function of the
/// candidate sequence, which callers produce deterministically:
/// self-labels first, then neighbors in adjacency order).
pub fn reduce_labels_in_place_scratch(
    cands: &mut Vec<Label>,
    x: usize,
    scratch: &mut ReduceScratch,
) {
    let n = cands.len();
    if n == 0 {
        return;
    }
    assert!(
        n <= u32::MAX as usize,
        "candidate index must fit the packed key"
    );
    let keys = &mut scratch.keys;
    keys.clear();
    keys.extend(
        cands
            .iter()
            .enumerate()
            .map(|(i, l)| dedup_pack(l.src, l.dist, i)),
    );
    let r = reduce_keys(keys, n, x, |idx| cands[idx].pw.to_bits());
    let tmp = &mut scratch.tmp;
    tmp.clear();
    tmp.extend(
        keys[..r]
            .iter()
            .map(|&k| cands[(k & IDX_MASK) as usize].clone()),
    );
    // `r ≤ n ≤ cands.capacity()`: clear + append never reallocates.
    cands.clear();
    cands.append(tmp);
}

/// [`reduce_labels_in_place_scratch`] with a throwaway scratch — the
/// drop-in signature the non-hot call sites keep using. Hot loops hold a
/// [`ReduceScratch`] per chunk instead.
pub fn reduce_labels_in_place(cands: &mut Vec<Label>, x: usize) {
    reduce_labels_in_place_scratch(cands, x, &mut ReduceScratch::new());
}

/// The column (SoA) variant of the packed-key reduction, for the
/// path-free pulse fast path: candidates arrive as three parallel columns
/// (`srcs[i]`, `dists[i]`, `pws[i]`), and the columns are reduced in
/// place to the `≤ x` survivors in rank order. Same algorithm, same
/// determinism argument, same reference semantics as
/// [`reduce_labels_in_place_scratch`] — pinned by the proptests — but no
/// 32-byte record or `Option<PathHandle>` is ever touched, so both the
/// caller's accumulation loop and the key build vectorize.
pub fn reduce_labels_columns(
    srcs: &mut Vec<VId>,
    dists: &mut Vec<Weight>,
    pws: &mut Vec<Weight>,
    x: usize,
    scratch: &mut ReduceScratch,
) {
    let n = srcs.len();
    debug_assert!(n == dists.len() && n == pws.len(), "columns must align");
    if n == 0 {
        return;
    }
    assert!(
        n <= u32::MAX as usize,
        "candidate index must fit the packed key"
    );
    let keys = &mut scratch.keys;
    keys.clear();
    keys.extend(
        srcs.iter()
            .zip(dists.iter())
            .enumerate()
            .map(|(i, (&s, &d))| dedup_pack(s, d, i)),
    );
    let r = reduce_keys(keys, n, x, |idx| pws[idx].to_bits());
    scratch.tmp_src.clear();
    scratch.tmp_dist.clear();
    scratch.tmp_pw.clear();
    for &k in &keys[..r] {
        let idx = (k & IDX_MASK) as usize;
        scratch.tmp_src.push(srcs[idx]);
        scratch.tmp_dist.push(dists[idx]);
        scratch.tmp_pw.push(pws[idx]);
    }
    srcs.clear();
    srcs.append(&mut scratch.tmp_src);
    dists.clear();
    dists.append(&mut scratch.tmp_dist);
    pws.clear();
    pws.append(&mut scratch.tmp_pw);
}

/// [`reduce_labels_in_place`] on an owned vector (the non-hot-path
/// convenience used by tests and aggregation call sites).
pub fn reduce_labels(mut cands: Vec<Label>, x: usize) -> Vec<Label> {
    reduce_labels_in_place(&mut cands, x);
    cands
}

/// True if two label lists agree on the paper-visible fields (src, dist) and
/// the realized weights — used for fixpoint detection.
pub fn labels_equal(a: &[Label], b: &[Label]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.src == y.src && x.dist == y.dist && x.pw == y.pw)
}

/// Flat backing store for `n` bounded label lists: one `n·x` slot buffer
/// (`slots`) plus a per-list length array (`lens`). List `i` occupies
/// `slots[i·x .. i·x + lens[i]]` — a fixed stride, legal because every
/// reduced list holds at most `x` records (Algorithm 3's cap).
///
/// This replaces the `Vec<Vec<Label>>` tables of the exploration engine:
/// resetting is an `O(n)` length clear (allocations are retained), reading
/// a list is a slice, and writing a list overwrites its region in place —
/// no per-vertex heap allocation anywhere in the pulse loop.
///
/// Capacity rule: `reset(n, x)` sizes the buffer to `n·x` slots. The
/// construction's `x` is `deg_i + 1` during detection (`O(n^{1/κ})`), `1`
/// during BFS pulses, and `|P_ℓ| ≤ n^ρ` in the final interconnection phase,
/// so the arena is `O(n^{1+max(1/κ, ρ)})` slots at worst — the same
/// asymptotic budget as the hopset itself (eq. (10)). Slots beyond a list's
/// length may hold stale records from earlier pulses; they are never read
/// (every read goes through `lens`) and are overwritten on the next write
/// to that list.
#[derive(Debug, Default)]
pub struct LabelArena {
    slots: Vec<Label>,
    lens: Vec<u32>,
    x: usize,
}

impl LabelArena {
    /// An empty arena (buffers grow on first [`LabelArena::reset`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear to `n` empty lists of capacity `x` each, retaining allocations
    /// where possible. `x` clamps to at least 1.
    ///
    /// Path-handle hygiene: together with [`LabelArena::set_list`]'s
    /// gap-clearing, the arena maintains the invariant that slots at or
    /// beyond a list's length hold no `PathHandle` — so resetting (an
    /// `O(used)` pass) releases every retained path chain, exactly like the
    /// retired per-list `Vec::clear` did, instead of pinning path DAGs
    /// until a slot happens to be overwritten.
    pub fn reset(&mut self, n: usize, x: usize) {
        // Drop the used prefixes' path handles before the lengths go away.
        for i in 0..self.lens.len() {
            let base = i * self.x;
            for slot in &mut self.slots[base..base + self.lens[i] as usize] {
                slot.path = None;
            }
        }
        let x = x.max(1);
        self.x = x;
        let cap = n.checked_mul(x).expect("label arena capacity overflow");
        self.slots.truncate(cap);
        if self.slots.len() < cap {
            let filler = Label {
                src: 0,
                dist: 0.0,
                pw: 0.0,
                path: None,
            };
            self.slots.resize(cap, filler);
        }
        self.lens.clear();
        self.lens.resize(n, 0);
    }

    /// Number of lists.
    #[inline]
    pub fn num_lists(&self) -> usize {
        self.lens.len()
    }

    /// The per-list capacity `x` of the current reset.
    #[inline]
    pub fn x(&self) -> usize {
        self.x
    }

    /// The current length of list `i`.
    #[inline]
    pub fn len_of(&self, i: usize) -> usize {
        self.lens[i] as usize
    }

    /// List `i` as a slice.
    #[inline]
    pub fn labels(&self, i: usize) -> &[Label] {
        let base = i * self.x;
        &self.slots[base..base + self.lens[i] as usize]
    }

    /// Append one record to list `i`. Panics if the list is full — callers
    /// only push reduced (≤ `x`) content.
    pub fn push(&mut self, i: usize, l: Label) {
        let len = self.lens[i] as usize;
        assert!(
            len < self.x,
            "label list {i} exceeds arena capacity x = {}",
            self.x
        );
        self.slots[i * self.x + len] = l;
        self.lens[i] = len as u32 + 1;
    }

    /// Overwrite list `i` with the first ≤ `x` items of `items` (panics if
    /// more arrive — reduced lists never do). A shrinking overwrite drops
    /// the outgoing tail's path handles (see [`LabelArena::reset`]).
    pub fn set_list(&mut self, i: usize, items: impl Iterator<Item = Label>) {
        let base = i * self.x;
        let old = self.lens[i] as usize;
        let mut len = 0usize;
        for l in items {
            assert!(
                len < self.x,
                "label list {i} exceeds arena capacity x = {}",
                self.x
            );
            self.slots[base + len] = l;
            len += 1;
        }
        for slot in &mut self.slots[base + len..base + old.max(len)] {
            slot.path = None;
        }
        self.lens[i] = len as u32;
    }

    /// Iterate all lists in index order.
    pub fn iter_lists(&self) -> impl Iterator<Item = &[Label]> + '_ {
        (0..self.num_lists()).map(move |i| self.labels(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(src: VId, dist: Weight) -> Label {
        Label {
            src,
            dist,
            pw: dist,
            path: None,
        }
    }

    #[test]
    fn dedup_keeps_min_distance_per_source() {
        let out = reduce_labels(vec![l(2, 5.0), l(1, 3.0), l(2, 1.0), l(1, 4.0)], 10);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].src, out[0].dist), (2, 1.0));
        assert_eq!((out[1].src, out[1].dist), (1, 3.0));
    }

    #[test]
    fn ranking_breaks_distance_ties_by_id() {
        let out = reduce_labels(vec![l(9, 2.0), l(4, 2.0), l(7, 1.0)], 10);
        let srcs: Vec<VId> = out.iter().map(|x| x.src).collect();
        assert_eq!(srcs, vec![7, 4, 9]);
    }

    #[test]
    fn truncation_to_x() {
        let out = reduce_labels((0..20).map(|i| l(i, i as f64)).collect(), 5);
        assert_eq!(out.len(), 5);
        assert_eq!(out.last().unwrap().src, 4);
    }

    #[test]
    fn equal_dist_pw_tiebreak_prefers_smaller_pw() {
        let mut a = l(3, 2.0);
        a.pw = 9.0;
        let mut b = l(3, 2.0);
        b.pw = 2.5;
        let out = reduce_labels(vec![a, b], 4);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].pw, 2.5);
    }

    #[test]
    fn in_place_reuses_the_buffer() {
        let mut buf = vec![l(2, 5.0), l(1, 3.0), l(2, 1.0)];
        let cap = buf.capacity();
        reduce_labels_in_place(&mut buf, 10);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.capacity(), cap, "no reallocation");
        // Reuse for the next candidate set, as the pulse loop does.
        buf.clear();
        buf.extend([l(5, 1.0), l(5, 0.5), l(6, 2.0)]);
        reduce_labels_in_place(&mut buf, 1);
        assert_eq!(buf.len(), 1);
        assert_eq!((buf[0].src, buf[0].dist), (5, 0.5));
    }

    /// Deterministic mixed-shape candidate generator: duplicate sources,
    /// tied distances, tied (dist, pw) pairs — the shapes the dedup scan
    /// has to get right.
    fn mixed_cands(len: usize, seed: u64) -> Vec<Label> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let src = (state % 7) as VId;
            let dist = ((state >> 8) % 5) as Weight * 0.5;
            let pw = dist + ((state >> 16) % 3) as Weight;
            out.push(Label {
                src,
                dist,
                pw,
                path: None,
            });
        }
        out
    }

    #[test]
    fn packed_reduce_is_pinned_to_the_two_sort_reference() {
        let mut scratch = ReduceScratch::new();
        for len in 0..64usize {
            for x in [1usize, 2, 3, 7, 64] {
                let cands = mixed_cands(len, (len * 31 + x) as u64);
                let mut reference = cands.clone();
                reduce_labels_two_sort(&mut reference, x);
                let mut fast = cands;
                reduce_labels_in_place_scratch(&mut fast, x, &mut scratch);
                assert!(
                    labels_equal(&fast, &reference),
                    "len={len} x={x}: packed {:?} vs reference {:?}",
                    fast.iter()
                        .map(|l| (l.src, l.dist, l.pw))
                        .collect::<Vec<_>>(),
                    reference
                        .iter()
                        .map(|l| (l.src, l.dist, l.pw))
                        .collect::<Vec<_>>(),
                );
            }
        }
    }

    #[test]
    fn columns_reduce_is_pinned_to_the_reference() {
        let mut scratch = ReduceScratch::new();
        for len in 0..64usize {
            for x in [1usize, 3, 16] {
                let cands = mixed_cands(len, (len * 17 + x) as u64);
                let mut reference = cands.clone();
                reduce_labels_two_sort(&mut reference, x);
                let mut srcs: Vec<VId> = cands.iter().map(|l| l.src).collect();
                let mut dists: Vec<Weight> = cands.iter().map(|l| l.dist).collect();
                let mut pws: Vec<Weight> = cands.iter().map(|l| l.pw).collect();
                reduce_labels_columns(&mut srcs, &mut dists, &mut pws, x, &mut scratch);
                assert_eq!(srcs.len(), reference.len(), "len={len} x={x}");
                for (i, r) in reference.iter().enumerate() {
                    assert_eq!(srcs[i], r.src, "len={len} x={x} i={i}");
                    assert_eq!(dists[i].to_bits(), r.dist.to_bits());
                    assert_eq!(pws[i].to_bits(), r.pw.to_bits());
                }
            }
        }
    }

    #[test]
    fn scratch_reduce_reuses_buffers_without_touching_cands_capacity() {
        let mut scratch = ReduceScratch::new();
        let mut buf = mixed_cands(40, 9);
        let cap = buf.capacity();
        reduce_labels_in_place_scratch(&mut buf, 5, &mut scratch);
        assert!(buf.len() <= 5);
        assert_eq!(buf.capacity(), cap, "no reallocation of the caller buffer");
        // Second use on the warmed scratch: key/tmp buffers are retained.
        let keys_cap = scratch.keys.capacity();
        buf.clear();
        buf.extend(mixed_cands(30, 11));
        reduce_labels_in_place_scratch(&mut buf, 3, &mut scratch);
        assert_eq!(scratch.keys.capacity(), keys_cap, "scratch buffers reused");
    }

    #[test]
    fn labels_equal_compares_fields() {
        assert!(labels_equal(&[l(1, 2.0)], &[l(1, 2.0)]));
        assert!(!labels_equal(&[l(1, 2.0)], &[l(1, 2.5)]));
        assert!(!labels_equal(&[l(1, 2.0)], &[]));
        let mut c = l(1, 2.0);
        c.pw = 3.0;
        assert!(!labels_equal(&[l(1, 2.0)], &[c]));
    }

    #[test]
    fn empty_input() {
        assert!(reduce_labels(vec![], 3).is_empty());
    }

    #[test]
    fn arena_lists_behave_like_vec_of_vec() {
        let mut arena = LabelArena::new();
        arena.reset(3, 2);
        assert_eq!(arena.num_lists(), 3);
        assert_eq!(arena.x(), 2);
        arena.push(0, l(4, 1.0));
        arena.push(2, l(7, 2.0));
        arena.push(2, l(8, 3.0));
        assert_eq!(arena.len_of(0), 1);
        assert!(arena.labels(1).is_empty());
        assert_eq!(arena.labels(2).len(), 2);
        assert_eq!(arena.labels(2)[1].src, 8);
        // set_list overwrites in place.
        arena.set_list(2, [l(9, 0.5)].into_iter());
        assert_eq!(arena.labels(2).len(), 1);
        assert_eq!(arena.labels(2)[0].src, 9);
        // Reset clears lengths, keeps shape for the same (n, x).
        arena.reset(3, 2);
        assert!(arena.iter_lists().all(|list| list.is_empty()));
        // Reshape to a different (n, x).
        arena.reset(5, 1);
        assert_eq!(arena.num_lists(), 5);
        arena.push(4, l(1, 1.0));
        assert_eq!(arena.labels(4).len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds arena capacity")]
    fn arena_rejects_overflow() {
        let mut arena = LabelArena::new();
        arena.reset(1, 1);
        arena.push(0, l(1, 1.0));
        arena.push(0, l(2, 2.0));
    }

    #[test]
    fn arena_x_clamps_to_one() {
        let mut arena = LabelArena::new();
        arena.reset(2, 0);
        assert_eq!(arena.x(), 1);
        arena.push(0, l(3, 1.0));
        assert_eq!(arena.labels(0).len(), 1);
    }
}
