//! Bounded label sets — the `m(·)`/`L(·)` arrays of Algorithm 2.
//!
//! A [`Label`] is one record `⟨source cluster, distance⟩` plus the realized
//! path bookkeeping this implementation adds:
//!
//! * `dist` — the hop-and-threshold-bounded distance of the paper (what
//!   popularity, neighborhood and detection decisions read);
//! * `pw` — the weight of the *actual* path realizing the record, including
//!   the cluster-memory detours through centers (§4.3). Always `≥ dist`.
//!   Practical-mode edge weights use `pw` directly (a real path weight can
//!   never undercut a true distance — the Lemma 2.3/2.9 guarantee holds by
//!   construction instead of by radius arithmetic);
//! * `path` — the path itself, only in path-reporting mode.
//!
//! [`reduce_labels`] implements Algorithm 3 ("Sort Array"): sort by source
//! (ties by distance), drop duplicate sources, re-sort by distance (ties by
//! id), keep the best `x`.

use crate::path::PathHandle;
use pgraph::{VId, Weight};

/// One exploration record.
#[derive(Clone, Debug)]
pub struct Label {
    /// Source cluster id (= its center's vertex id, §1.5).
    pub src: VId,
    /// Bounded distance from the source cluster (the paper's record value).
    pub dist: Weight,
    /// Weight of the realized path (≥ `dist`; includes center detours).
    pub pw: Weight,
    /// The realized path (ends at the current holder), when recording.
    pub path: Option<PathHandle>,
}

impl Label {
    /// Key for duplicate elimination: group by source, best (dist, pw) first.
    #[inline]
    fn dedup_key(&self) -> (VId, u64, u64) {
        (self.src, self.dist.to_bits(), self.pw.to_bits())
    }

    /// Key for final ranking: nearest source first, ties by id (Algorithm 3
    /// line 5: "sort according to distances, break ties by IDs").
    #[inline]
    fn rank_key(&self) -> (u64, VId) {
        (self.dist.to_bits(), self.src)
    }
}

/// Algorithm 3: deduplicate by source keeping the best record, rank by
/// `(dist, src)`, truncate to `x`. Stable and fully deterministic: ties
/// beyond `(src, dist, pw)` resolve to the earliest candidate, and candidate
/// order is itself deterministic (callers enumerate self-labels first, then
/// neighbors in adjacency order).
pub fn reduce_labels(mut cands: Vec<Label>, x: usize) -> Vec<Label> {
    if cands.is_empty() {
        return cands;
    }
    cands.sort_by_key(Label::dedup_key);
    cands.dedup_by(|b, a| b.src == a.src); // keeps first = best per source
    cands.sort_by_key(Label::rank_key);
    cands.truncate(x);
    cands
}

/// True if two label lists agree on the paper-visible fields (src, dist) and
/// the realized weights — used for fixpoint detection.
pub fn labels_equal(a: &[Label], b: &[Label]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.src == y.src && x.dist == y.dist && x.pw == y.pw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(src: VId, dist: Weight) -> Label {
        Label {
            src,
            dist,
            pw: dist,
            path: None,
        }
    }

    #[test]
    fn dedup_keeps_min_distance_per_source() {
        let out = reduce_labels(vec![l(2, 5.0), l(1, 3.0), l(2, 1.0), l(1, 4.0)], 10);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].src, out[0].dist), (2, 1.0));
        assert_eq!((out[1].src, out[1].dist), (1, 3.0));
    }

    #[test]
    fn ranking_breaks_distance_ties_by_id() {
        let out = reduce_labels(vec![l(9, 2.0), l(4, 2.0), l(7, 1.0)], 10);
        let srcs: Vec<VId> = out.iter().map(|x| x.src).collect();
        assert_eq!(srcs, vec![7, 4, 9]);
    }

    #[test]
    fn truncation_to_x() {
        let out = reduce_labels((0..20).map(|i| l(i, i as f64)).collect(), 5);
        assert_eq!(out.len(), 5);
        assert_eq!(out.last().unwrap().src, 4);
    }

    #[test]
    fn equal_dist_pw_tiebreak_prefers_smaller_pw() {
        let mut a = l(3, 2.0);
        a.pw = 9.0;
        let mut b = l(3, 2.0);
        b.pw = 2.5;
        let out = reduce_labels(vec![a, b], 4);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].pw, 2.5);
    }

    #[test]
    fn labels_equal_compares_fields() {
        assert!(labels_equal(&[l(1, 2.0)], &[l(1, 2.0)]));
        assert!(!labels_equal(&[l(1, 2.0)], &[l(1, 2.5)]));
        assert!(!labels_equal(&[l(1, 2.0)], &[]));
        let mut c = l(1, 2.0);
        c.pw = 3.0;
        assert!(!labels_equal(&[l(1, 2.0)], &[c]));
    }

    #[test]
    fn empty_input() {
        assert!(reduce_labels(vec![], 3).is_empty());
    }
}
