//! Bounded label sets — the `m(·)`/`L(·)` arrays of Algorithm 2.
//!
//! A [`Label`] is one record `⟨source cluster, distance⟩` plus the realized
//! path bookkeeping this implementation adds:
//!
//! * `dist` — the hop-and-threshold-bounded distance of the paper (what
//!   popularity, neighborhood and detection decisions read);
//! * `pw` — the weight of the *actual* path realizing the record, including
//!   the cluster-memory detours through centers (§4.3). Always `≥ dist`.
//!   Practical-mode edge weights use `pw` directly (a real path weight can
//!   never undercut a true distance — the Lemma 2.3/2.9 guarantee holds by
//!   construction instead of by radius arithmetic);
//! * `path` — the path itself, only in path-reporting mode.
//!
//! [`reduce_labels_in_place`] implements Algorithm 3 ("Sort Array"): sort by
//! source (ties by distance), drop duplicate sources, re-sort by distance
//! (ties by id), keep the best `x` — **in place** on the caller's buffer, so
//! the exploration inner loop never allocates per candidate set.
//!
//! [`LabelArena`] is the flat backing store for per-vertex (and
//! per-cluster) label lists: one `n·x` slot buffer plus a per-vertex length
//! array. It is legal precisely because Algorithm 3 caps every reduced list
//! at `x` records; the capacity rule and why determinism survives the
//! layout are documented in DESIGN.md §8.

use crate::path::PathHandle;
use pgraph::{VId, Weight};

/// One exploration record.
#[derive(Clone, Debug)]
pub struct Label {
    /// Source cluster id (= its center's vertex id, §1.5).
    pub src: VId,
    /// Bounded distance from the source cluster (the paper's record value).
    pub dist: Weight,
    /// Weight of the realized path (≥ `dist`; includes center detours).
    pub pw: Weight,
    /// The realized path (ends at the current holder), when recording.
    pub path: Option<PathHandle>,
}

impl Label {
    /// Key for duplicate elimination: group by source, best (dist, pw) first.
    #[inline]
    fn dedup_key(&self) -> (VId, u64, u64) {
        (self.src, self.dist.to_bits(), self.pw.to_bits())
    }

    /// Key for final ranking: nearest source first, ties by id (Algorithm 3
    /// line 5: "sort according to distances, break ties by IDs").
    #[inline]
    fn rank_key(&self) -> (u64, VId) {
        (self.dist.to_bits(), self.src)
    }
}

/// Algorithm 3, in place: deduplicate by source keeping the best record,
/// rank by `(dist, src)`, truncate to `x`. No allocation: both sorts are
/// unstable (keys are total orders; after source-dedup the rank key
/// `(dist, src)` is unique, and the dedup key `(src, dist, pw)` fully
/// determines every paper-visible field — candidates that tie on all three
/// can differ only in their recorded path, and whichever survives realizes
/// the same `pw`). Fully deterministic: the sort is a pure function of the
/// candidate sequence, and candidate order is itself deterministic (callers
/// enumerate self-labels first, then neighbors in adjacency order).
pub fn reduce_labels_in_place(cands: &mut Vec<Label>, x: usize) {
    if cands.is_empty() {
        return;
    }
    cands.sort_unstable_by_key(Label::dedup_key);
    cands.dedup_by(|b, a| b.src == a.src); // keeps first = best per source
    cands.sort_unstable_by_key(Label::rank_key);
    cands.truncate(x);
}

/// [`reduce_labels_in_place`] on an owned vector (the non-hot-path
/// convenience used by tests and aggregation call sites).
pub fn reduce_labels(mut cands: Vec<Label>, x: usize) -> Vec<Label> {
    reduce_labels_in_place(&mut cands, x);
    cands
}

/// True if two label lists agree on the paper-visible fields (src, dist) and
/// the realized weights — used for fixpoint detection.
pub fn labels_equal(a: &[Label], b: &[Label]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.src == y.src && x.dist == y.dist && x.pw == y.pw)
}

/// Flat backing store for `n` bounded label lists: one `n·x` slot buffer
/// (`slots`) plus a per-list length array (`lens`). List `i` occupies
/// `slots[i·x .. i·x + lens[i]]` — a fixed stride, legal because every
/// reduced list holds at most `x` records (Algorithm 3's cap).
///
/// This replaces the `Vec<Vec<Label>>` tables of the exploration engine:
/// resetting is an `O(n)` length clear (allocations are retained), reading
/// a list is a slice, and writing a list overwrites its region in place —
/// no per-vertex heap allocation anywhere in the pulse loop.
///
/// Capacity rule: `reset(n, x)` sizes the buffer to `n·x` slots. The
/// construction's `x` is `deg_i + 1` during detection (`O(n^{1/κ})`), `1`
/// during BFS pulses, and `|P_ℓ| ≤ n^ρ` in the final interconnection phase,
/// so the arena is `O(n^{1+max(1/κ, ρ)})` slots at worst — the same
/// asymptotic budget as the hopset itself (eq. (10)). Slots beyond a list's
/// length may hold stale records from earlier pulses; they are never read
/// (every read goes through `lens`) and are overwritten on the next write
/// to that list.
#[derive(Debug, Default)]
pub struct LabelArena {
    slots: Vec<Label>,
    lens: Vec<u32>,
    x: usize,
}

impl LabelArena {
    /// An empty arena (buffers grow on first [`LabelArena::reset`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear to `n` empty lists of capacity `x` each, retaining allocations
    /// where possible. `x` clamps to at least 1.
    ///
    /// Path-handle hygiene: together with [`LabelArena::set_list`]'s
    /// gap-clearing, the arena maintains the invariant that slots at or
    /// beyond a list's length hold no `PathHandle` — so resetting (an
    /// `O(used)` pass) releases every retained path chain, exactly like the
    /// retired per-list `Vec::clear` did, instead of pinning path DAGs
    /// until a slot happens to be overwritten.
    pub fn reset(&mut self, n: usize, x: usize) {
        // Drop the used prefixes' path handles before the lengths go away.
        for i in 0..self.lens.len() {
            let base = i * self.x;
            for slot in &mut self.slots[base..base + self.lens[i] as usize] {
                slot.path = None;
            }
        }
        let x = x.max(1);
        self.x = x;
        let cap = n.checked_mul(x).expect("label arena capacity overflow");
        self.slots.truncate(cap);
        if self.slots.len() < cap {
            let filler = Label {
                src: 0,
                dist: 0.0,
                pw: 0.0,
                path: None,
            };
            self.slots.resize(cap, filler);
        }
        self.lens.clear();
        self.lens.resize(n, 0);
    }

    /// Number of lists.
    #[inline]
    pub fn num_lists(&self) -> usize {
        self.lens.len()
    }

    /// The per-list capacity `x` of the current reset.
    #[inline]
    pub fn x(&self) -> usize {
        self.x
    }

    /// The current length of list `i`.
    #[inline]
    pub fn len_of(&self, i: usize) -> usize {
        self.lens[i] as usize
    }

    /// List `i` as a slice.
    #[inline]
    pub fn labels(&self, i: usize) -> &[Label] {
        let base = i * self.x;
        &self.slots[base..base + self.lens[i] as usize]
    }

    /// Append one record to list `i`. Panics if the list is full — callers
    /// only push reduced (≤ `x`) content.
    pub fn push(&mut self, i: usize, l: Label) {
        let len = self.lens[i] as usize;
        assert!(
            len < self.x,
            "label list {i} exceeds arena capacity x = {}",
            self.x
        );
        self.slots[i * self.x + len] = l;
        self.lens[i] = len as u32 + 1;
    }

    /// Overwrite list `i` with the first ≤ `x` items of `items` (panics if
    /// more arrive — reduced lists never do). A shrinking overwrite drops
    /// the outgoing tail's path handles (see [`LabelArena::reset`]).
    pub fn set_list(&mut self, i: usize, items: impl Iterator<Item = Label>) {
        let base = i * self.x;
        let old = self.lens[i] as usize;
        let mut len = 0usize;
        for l in items {
            assert!(
                len < self.x,
                "label list {i} exceeds arena capacity x = {}",
                self.x
            );
            self.slots[base + len] = l;
            len += 1;
        }
        for slot in &mut self.slots[base + len..base + old.max(len)] {
            slot.path = None;
        }
        self.lens[i] = len as u32;
    }

    /// Iterate all lists in index order.
    pub fn iter_lists(&self) -> impl Iterator<Item = &[Label]> + '_ {
        (0..self.num_lists()).map(move |i| self.labels(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(src: VId, dist: Weight) -> Label {
        Label {
            src,
            dist,
            pw: dist,
            path: None,
        }
    }

    #[test]
    fn dedup_keeps_min_distance_per_source() {
        let out = reduce_labels(vec![l(2, 5.0), l(1, 3.0), l(2, 1.0), l(1, 4.0)], 10);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].src, out[0].dist), (2, 1.0));
        assert_eq!((out[1].src, out[1].dist), (1, 3.0));
    }

    #[test]
    fn ranking_breaks_distance_ties_by_id() {
        let out = reduce_labels(vec![l(9, 2.0), l(4, 2.0), l(7, 1.0)], 10);
        let srcs: Vec<VId> = out.iter().map(|x| x.src).collect();
        assert_eq!(srcs, vec![7, 4, 9]);
    }

    #[test]
    fn truncation_to_x() {
        let out = reduce_labels((0..20).map(|i| l(i, i as f64)).collect(), 5);
        assert_eq!(out.len(), 5);
        assert_eq!(out.last().unwrap().src, 4);
    }

    #[test]
    fn equal_dist_pw_tiebreak_prefers_smaller_pw() {
        let mut a = l(3, 2.0);
        a.pw = 9.0;
        let mut b = l(3, 2.0);
        b.pw = 2.5;
        let out = reduce_labels(vec![a, b], 4);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].pw, 2.5);
    }

    #[test]
    fn in_place_reuses_the_buffer() {
        let mut buf = vec![l(2, 5.0), l(1, 3.0), l(2, 1.0)];
        let cap = buf.capacity();
        reduce_labels_in_place(&mut buf, 10);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.capacity(), cap, "no reallocation");
        // Reuse for the next candidate set, as the pulse loop does.
        buf.clear();
        buf.extend([l(5, 1.0), l(5, 0.5), l(6, 2.0)]);
        reduce_labels_in_place(&mut buf, 1);
        assert_eq!(buf.len(), 1);
        assert_eq!((buf[0].src, buf[0].dist), (5, 0.5));
    }

    #[test]
    fn labels_equal_compares_fields() {
        assert!(labels_equal(&[l(1, 2.0)], &[l(1, 2.0)]));
        assert!(!labels_equal(&[l(1, 2.0)], &[l(1, 2.5)]));
        assert!(!labels_equal(&[l(1, 2.0)], &[]));
        let mut c = l(1, 2.0);
        c.pw = 3.0;
        assert!(!labels_equal(&[l(1, 2.0)], &[c]));
    }

    #[test]
    fn empty_input() {
        assert!(reduce_labels(vec![], 3).is_empty());
    }

    #[test]
    fn arena_lists_behave_like_vec_of_vec() {
        let mut arena = LabelArena::new();
        arena.reset(3, 2);
        assert_eq!(arena.num_lists(), 3);
        assert_eq!(arena.x(), 2);
        arena.push(0, l(4, 1.0));
        arena.push(2, l(7, 2.0));
        arena.push(2, l(8, 3.0));
        assert_eq!(arena.len_of(0), 1);
        assert!(arena.labels(1).is_empty());
        assert_eq!(arena.labels(2).len(), 2);
        assert_eq!(arena.labels(2)[1].src, 8);
        // set_list overwrites in place.
        arena.set_list(2, [l(9, 0.5)].into_iter());
        assert_eq!(arena.labels(2).len(), 1);
        assert_eq!(arena.labels(2)[0].src, 9);
        // Reset clears lengths, keeps shape for the same (n, x).
        arena.reset(3, 2);
        assert!(arena.iter_lists().all(|list| list.is_empty()));
        // Reshape to a different (n, x).
        arena.reset(5, 1);
        assert_eq!(arena.num_lists(), 5);
        arena.push(4, l(1, 1.0));
        assert_eq!(arena.labels(4).len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds arena capacity")]
    fn arena_rejects_overflow() {
        let mut arena = LabelArena::new();
        arena.reset(1, 1);
        arena.push(0, l(1, 1.0));
        arena.push(0, l(2, 2.0));
    }

    #[test]
    fn arena_x_clamps_to_one() {
        let mut arena = LabelArena::new();
        arena.reset(2, 0);
        assert_eq!(arena.x(), 1);
        arena.push(0, l(3, 1.0));
        assert_eq!(arena.labels(0).len(), 1);
    }
}
