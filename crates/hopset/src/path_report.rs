//! Path-reporting hopsets and `(1+ε)`-SPT extraction (§4, Theorem 4.6).
//!
//! A hopset built with [`crate::BuildOptions::record_paths`] gives every
//! edge the *memory property* (§4.1): an attached path in
//! `G_{k-1} = (V, E ∪ H_{k-1})` of weight at most the edge's weight. This
//! module implements Algorithm 1:
//!
//! 1. run a `β`-hop Bellman–Ford from the source over `G ∪ H`, producing a
//!    tree `T = T_λ` that may use hopset edges;
//! 2. **peel** scale by scale, `k = λ … k₀`: every tree edge of `H_k` is
//!    replaced by its memory path. The replacing vertex writes, for every
//!    interior path vertex, a `⟨vertex, estimate, parent⟩` triplet into a
//!    global array `M`; `M` is sorted and each vertex adopts its best
//!    improving entry (§4.1). Lemma 4.1 (estimates strictly decrease toward
//!    the root) keeps `T` a tree; Lemma 4.2 shows the final tree uses only
//!    edges of `G`;
//! 3. recompute exact tree distances by pointer jumping (§4.2, Lemma 4.3).
//!
//! The result is a spanning tree of the source's component with
//! `d_T(s, v) ≤ (1+ε)·d_G(s, v)` — the full shortest-path *tree* that the
//! implicit mechanism of \[EN18, EN19\] cannot produce (§1.3).

use crate::multi_scale::BuiltHopset;
use crate::path::MemEdge;
use crate::reduction::ReducedHopset;
use crate::store::Hopset;
use pgraph::{EdgeTag, Graph, UnionView, VId, Weight, INF};
use pram::{bford, jump, sort as psort, Executor, Ledger};

/// Composition of the working tree during peeling (experiment F11's series).
#[derive(Clone, Copy, Debug)]
pub struct PeelStats {
    /// Scale being eliminated this iteration.
    pub scale: u32,
    /// Tree edges that are plain graph edges before the iteration.
    pub graph_edges: usize,
    /// Tree edges that are hopset edges before the iteration.
    pub hopset_edges: usize,
    /// Hopset edges of `scale` replaced in this iteration.
    pub replaced: usize,
    /// Triplets written to the global array `M`.
    pub triplets: usize,
    /// Vertices that improved their estimate from `M`.
    pub improved: usize,
}

/// A `(1+ε)`-approximate shortest-path tree with edges in `E`.
#[derive(Clone, Debug)]
pub struct SptResult {
    /// The source.
    pub source: VId,
    /// `parent[v] = Some((p, w))`: tree edge `p—v` of weight `w` (an edge of
    /// the original graph). `None` for the source and unreachable vertices.
    pub parent: Vec<Option<(VId, Weight)>>,
    /// Exact distance to the source *in the tree* (INF if unreachable).
    pub dist: Vec<Weight>,
    /// Per-iteration peeling statistics (descending scale).
    pub peel_stats: Vec<PeelStats>,
    /// PRAM cost of the query (Bellman–Ford + peeling + pointer jumping).
    pub ledger: Ledger,
}

impl SptResult {
    /// Tree path from the source to `v` (source first), `None` if
    /// unreachable.
    pub fn path_to(&self, v: VId) -> Option<Vec<VId>> {
        if self.dist[v as usize] == INF {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some((p, _)) = self.parent[cur as usize] {
            path.push(p);
            cur = p;
            debug_assert!(path.len() <= self.parent.len(), "parent cycle");
        }
        path.reverse();
        Some(path)
    }
}

/// The working per-vertex tree pointer during peeling.
#[derive(Clone, Copy, Debug)]
struct Ptr {
    parent: VId,
    weight: Weight,
    /// Provenance: graph edge or hopset edge (global index).
    link: MemEdge,
}

/// Extract a `(1+ε)`-SPT rooted at `source` from a path-reporting hopset
/// (Algorithm 1). Panics if the hopset was built without
/// [`crate::BuildOptions::record_paths`].
pub fn build_spt(g: &Graph, built: &BuiltHopset, source: VId) -> SptResult {
    let sl = built.hopset.all_slice();
    let view = UnionView::with_overlay_columns(g, sl.us(), sl.vs(), sl.ws());
    // xlint: allow(ambient-threads, compat entry point captures the process executor once at the API boundary)
    build_spt_on(&Executor::current(), &view, built, source)
}

/// Like [`build_spt`], but on an explicit executor and over a pre-built
/// `G ∪ H` view whose overlay covers the whole hopset with global edge
/// ids (`EdgeTag::Extra(i)` maps to hopset edge `i` — what
/// [`Hopset::all_slice`]-derived CSRs produce).
/// Long-lived query engines build the view once, own an executor, and
/// call this per query.
pub fn build_spt_on(
    exec: &Executor,
    view: &UnionView<'_>,
    built: &BuiltHopset,
    source: VId,
) -> SptResult {
    spt_core(exec, view, &built.hopset, source, built.params.query_hops)
}

/// Extract a `(1+ε)`-SPT from a *weight-reduced* path-reporting hopset
/// (Appendix D, Theorem D.2). The same peeling engine applies: the
/// reduction's encoded provenance scales strictly descend through mapped
/// hopset edges, then star edges, then graph edges — realizing the
/// three-step replacement of §D.2 (Figure 11) in one uniform loop.
pub fn build_spt_reduced(g: &Graph, reduced: &ReducedHopset, source: VId) -> SptResult {
    let sl = reduced.hopset.all_slice();
    let view = UnionView::with_overlay_columns(g, sl.us(), sl.vs(), sl.ws());
    // xlint: allow(ambient-threads, compat entry point captures the process executor once at the API boundary)
    build_spt_reduced_on(&Executor::current(), &view, reduced, source)
}

/// Like [`build_spt_reduced`], but on an explicit executor and over a
/// pre-built `G ∪ H` view (see [`build_spt_on`] for the overlay-index
/// contract).
pub fn build_spt_reduced_on(
    exec: &Executor,
    view: &UnionView<'_>,
    reduced: &ReducedHopset,
    source: VId,
) -> SptResult {
    spt_core(exec, view, &reduced.hopset, source, reduced.query_hops)
}

fn spt_core(
    exec: &Executor,
    view: &UnionView<'_>,
    hopset: &Hopset,
    source: VId,
    query_hops: usize,
) -> SptResult {
    assert!(
        hopset.all_paths_recorded(),
        "path-reporting SPT requires a hopset built with record_paths"
    );
    debug_assert_eq!(
        view.num_extra(),
        hopset.len(),
        "view overlay must cover the whole hopset (global edge ids)"
    );
    let n = view.num_vertices();
    let mut ledger = Ledger::new();

    // ---- 1. β-hop Bellman–Ford over G ∪ H (Algorithm 1, line 3).
    let bf = bford::bellman_ford(exec, view, &[source], query_hops, &mut ledger);

    let mut dist: Vec<Weight> = bf.dist.clone();
    let mut ptr: Vec<Option<Ptr>> = bf
        .parent
        .iter()
        .map(|p| {
            p.map(|pe| Ptr {
                parent: pe.parent,
                weight: pe.weight,
                link: match pe.tag {
                    EdgeTag::Base => MemEdge::Base,
                    EdgeTag::Extra(i) => MemEdge::Hop(i),
                },
            })
        })
        .collect();

    // ---- 2. Peeling, scale by scale (Algorithm 1, lines 4-5). The scale
    // set is whatever provenance the hopset carries (plain scales for §2,
    // encoded level/scale pairs for Appendix C/D), in descending order —
    // memory paths only ever reference strictly smaller scales. The store
    // is scale-indexed, so this is its offset table reversed (no edge
    // scan, no sort).
    let mut scales: Vec<u32> = hopset.scales_present().collect();
    scales.reverse();
    let mut peel_stats = Vec::new();
    for k in scales {
        let stats = peel_scale(exec, hopset, k, &mut dist, &mut ptr, &mut ledger);
        peel_stats.push(stats);
        debug_assert!(estimates_decrease(&dist, &ptr), "Lemma 4.1 violated");
    }

    // All hopset edges are gone (Lemma 4.2).
    debug_assert!(ptr
        .iter()
        .flatten()
        .all(|p| matches!(p.link, MemEdge::Base)));

    // ---- 3. Exact tree distances by pointer jumping (§4.2).
    let mut parent_arr: Vec<VId> = (0..n as VId).collect();
    let mut weight_arr: Vec<Weight> = vec![0.0; n];
    for v in 0..n {
        if let Some(p) = &ptr[v] {
            parent_arr[v] = p.parent;
            weight_arr[v] = p.weight;
        }
    }
    let (tree_dist, root) =
        jump::pointer_jump_distances(exec, &parent_arr, &weight_arr, &mut ledger);
    let mut final_dist = vec![INF; n];
    let mut parent: Vec<Option<(VId, Weight)>> = vec![None; n];
    for v in 0..n {
        if v as VId == source {
            final_dist[v] = 0.0;
        } else if root[v] == source {
            final_dist[v] = tree_dist[v];
            let p = ptr[v].as_ref().expect("non-root reachable vertex");
            parent[v] = Some((p.parent, p.weight));
        }
    }

    SptResult {
        source,
        parent,
        dist: final_dist,
        peel_stats,
        ledger,
    }
}

/// One peeling iteration (§4.1): replace tree edges of scale `k`.
fn peel_scale(
    exec: &Executor,
    hopset: &Hopset,
    k: u32,
    dist: &mut [Weight],
    ptr: &mut [Option<Ptr>],
    ledger: &mut Ledger,
) -> PeelStats {
    let n = ptr.len();
    let mut stats = PeelStats {
        scale: k,
        graph_edges: 0,
        hopset_edges: 0,
        replaced: 0,
        triplets: 0,
        improved: 0,
    };
    for p in ptr.iter().flatten() {
        match p.link {
            MemEdge::Base => stats.graph_edges += 1,
            MemEdge::Hop(_) => stats.hopset_edges += 1,
        }
    }

    // Global array M of ⟨vertex, estimate, parent, link, weight⟩ triplets.
    let mut m_array: Vec<(VId, u64, VId, MemEdge, Weight)> = Vec::new();
    let mut self_updates: Vec<(VId, Ptr)> = Vec::new();

    ledger.step(n as u64);
    for v in 0..n as u32 {
        let Some(p) = &ptr[v as usize] else { continue };
        let MemEdge::Hop(eidx) = p.link else { continue };
        if hopset.scale_of(eidx) != k {
            continue;
        }
        stats.replaced += 1;
        // Orient the memory path parent → v.
        let mp = hopset.path_of(eidx).expect("memory property");
        let oriented;
        let mp = if mp.start() == p.parent && mp.end() == v {
            mp
        } else {
            debug_assert!(mp.start() == v && mp.end() == p.parent);
            oriented = mp.reversed();
            &oriented
        };
        let prefix = mp.prefix_dists();
        let base = dist[p.parent as usize];
        let t = mp.len();
        // v's own new parent: the last interior vertex (x_{t-1}).
        let (last_link, last_w) = mp.links[t - 1];
        self_updates.push((
            v,
            Ptr {
                parent: mp.verts[t - 1],
                weight: last_w,
                link: last_link,
            },
        ));
        // Triplets for the path vertices x_1 … x_t (§4.1 writes x_1…x_{t-1};
        // including x_t = v is harmless — the improving-only update rule
        // applies — and lets v benefit when the memory path is lighter than
        // the replaced edge).
        #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
        for i in 1..=t {
            let (link, w) = mp.links[i - 1];
            m_array.push((
                mp.verts[i],
                (base + prefix[i]).to_bits(),
                mp.verts[i - 1],
                link,
                w,
            ));
            stats.triplets += 1;
        }
    }

    // Apply v's unconditional parent swap first (its estimate is unchanged;
    // Lemma 4.1's case 2 covers why this keeps estimates decreasing).
    for (v, new_ptr) in self_updates {
        ptr[v as usize] = Some(new_ptr);
    }

    // Sort M by (vertex, estimate) and let every vertex adopt its best
    // improving entry (§4.1 sorts and binary-searches; same cost charged).
    psort::sort_by(exec, &mut m_array, ledger, |a, b| {
        a.0.cmp(&b.0).then(a.1.cmp(&b.1))
    });
    ledger.binary_search(n as u64, m_array.len().max(1) as u64);
    let mut i = 0;
    while i < m_array.len() {
        let (x, est_bits, par, link, w) = m_array[i];
        // Skip the rest of this vertex's run.
        let mut j = i + 1;
        while j < m_array.len() && m_array[j].0 == x {
            j += 1;
        }
        let est = f64::from_bits(est_bits);
        if est < dist[x as usize] {
            dist[x as usize] = est;
            ptr[x as usize] = Some(Ptr {
                parent: par,
                weight: w,
                link,
            });
            stats.improved += 1;
        }
        i = j;
    }
    stats
}

/// Lemma 4.1's invariant: `d(x) > d(p(x))` for every non-root vertex.
fn estimates_decrease(dist: &[Weight], ptr: &[Option<Ptr>]) -> bool {
    ptr.iter().enumerate().all(|(v, p)| match p {
        Some(p) => dist[p.parent as usize] < dist[v] || dist[v] == INF,
        None => true,
    })
}

/// Validation report for an [`SptResult`] (experiment E7).
#[derive(Clone, Copy, Debug, Default)]
pub struct SptValidation {
    /// Tree edges not present in `G` (must be 0 — Lemma 4.2).
    pub non_graph_edges: usize,
    /// Tree-edge weights disagreeing with `G` (must be 0).
    pub weight_mismatches: usize,
    /// Vertices whose `dist` differs from the recomputed path weight
    /// (must be 0 — Lemma 4.3).
    pub distance_mismatches: usize,
    /// Largest `d_T(s, v) / d_G(s, v)` over reachable vertices.
    pub max_stretch: f64,
    /// Reachable vertices the tree misses (must be 0).
    pub missing: usize,
}

/// Validate an SPT against the graph and exact distances.
pub fn validate_spt(g: &Graph, spt: &SptResult) -> SptValidation {
    let n = g.num_vertices();
    let exact = pgraph::exact::dijkstra(g, spt.source).dist;
    let mut val = SptValidation {
        max_stretch: 1.0,
        ..Default::default()
    };
    #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
    for v in 0..n {
        if let Some((p, w)) = spt.parent[v] {
            match g.edge_weight(p, v as VId) {
                None => val.non_graph_edges += 1,
                Some(gw) if (gw - w).abs() > 1e-9 * gw.max(1.0) => val.weight_mismatches += 1,
                Some(_) => {}
            }
            let expect = spt.dist[p as usize] + w;
            if (spt.dist[v] - expect).abs() > 1e-6 * expect.max(1.0) {
                val.distance_mismatches += 1;
            }
        }
        if exact[v].is_finite() && exact[v] > 0.0 {
            if spt.dist[v] == INF {
                val.missing += 1;
            } else {
                val.max_stretch = val.max_stretch.max(spt.dist[v] / exact[v]);
            }
        }
    }
    val
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_scale::{build_hopset, BuildOptions};
    use crate::params::{HopsetParams, ParamMode};
    use pgraph::gen;

    fn build(g: &Graph, eps: f64) -> BuiltHopset {
        let p = HopsetParams::new(
            g.num_vertices(),
            eps,
            4,
            0.3,
            ParamMode::Practical,
            g.aspect_ratio_bound(),
            None,
        )
        .unwrap();
        build_hopset(g, &p, BuildOptions { record_paths: true })
    }

    #[test]
    fn spt_on_clique_chain() {
        let g = gen::clique_chain(4, 8, 2.0);
        let built = build(&g, 0.25);
        assert!(!built.hopset.is_empty(), "need hopset edges to peel");
        let spt = build_spt(&g, &built, 0);
        let val = validate_spt(&g, &spt);
        assert_eq!(val.non_graph_edges, 0, "{val:?}");
        assert_eq!(val.weight_mismatches, 0);
        assert_eq!(val.distance_mismatches, 0);
        assert_eq!(val.missing, 0);
        assert!(
            val.max_stretch <= 1.25 + 1e-9,
            "stretch {}",
            val.max_stretch
        );
    }

    #[test]
    fn spt_on_weighted_path() {
        let g = gen::path_weighted(80, |i| 1.0 + (i % 7) as f64);
        let built = build(&g, 0.25);
        let spt = build_spt(&g, &built, 40);
        let val = validate_spt(&g, &spt);
        assert_eq!(
            (
                val.non_graph_edges,
                val.weight_mismatches,
                val.distance_mismatches,
                val.missing
            ),
            (0, 0, 0, 0),
            "{val:?}"
        );
        assert!(val.max_stretch <= 1.25 + 1e-9);
        // On a path, the SPT *is* the path: exact distances.
        let exact = pgraph::exact::dijkstra(&g, 40).dist;
        #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
        for v in 0..80 {
            assert!((spt.dist[v] - exact[v]).abs() < 1e-9);
        }
    }

    #[test]
    fn spt_on_random_graph() {
        let g = gen::gnm_connected(100, 300, 11, 1.0, 8.0);
        let built = build(&g, 0.2);
        for src in [0u32, 55, 99] {
            let spt = build_spt(&g, &built, src);
            let val = validate_spt(&g, &spt);
            assert_eq!(val.non_graph_edges, 0);
            assert_eq!(val.distance_mismatches, 0);
            assert_eq!(val.missing, 0);
            assert!(val.max_stretch <= 1.2 + 1e-9, "src {src}: {val:?}");
        }
    }

    #[test]
    fn spt_paths_are_walkable() {
        let g = gen::clique_chain(3, 7, 2.5);
        let built = build(&g, 0.25);
        let spt = build_spt(&g, &built, 0);
        for v in 0..g.num_vertices() as u32 {
            let path = spt.path_to(v).expect("connected");
            assert_eq!(path[0], 0);
            assert_eq!(*path.last().unwrap(), v);
            // Consecutive vertices joined by graph edges; weights sum to dist.
            let mut acc = 0.0;
            for w in path.windows(2) {
                acc += g.edge_weight(w[0], w[1]).expect("tree edge in G");
            }
            assert!((acc - spt.dist[v as usize]).abs() < 1e-9 * acc.max(1.0));
        }
    }

    #[test]
    fn spt_on_disconnected_graph() {
        let mut b = pgraph::GraphBuilder::new(20);
        for i in 0..9 {
            b.add_edge(i, i + 1, 1.0);
        }
        for i in 10..19 {
            b.add_edge(i, i + 1, 1.0);
        }
        let g = b.build().unwrap();
        let built = build(&g, 0.25);
        let spt = build_spt(&g, &built, 0);
        for v in 0..10 {
            assert!(spt.dist[v].is_finite());
        }
        for v in 10..20 {
            assert_eq!(spt.dist[v], INF);
            assert!(spt.parent[v].is_none());
        }
    }

    #[test]
    fn peel_stats_eliminate_hopset_edges() {
        let g = gen::clique_chain(5, 8, 2.0);
        let built = build(&g, 0.25);
        let spt = build_spt(&g, &built, 0);
        if let Some(last) = spt.peel_stats.last() {
            assert!(last.hopset_edges >= last.replaced);
        }
        let val = validate_spt(&g, &spt);
        assert_eq!(val.non_graph_edges, 0);
    }

    #[test]
    #[should_panic(expected = "record_paths")]
    fn refuses_pathless_hopset() {
        let g = gen::clique_chain(3, 6, 2.0);
        let p = HopsetParams::new(
            g.num_vertices(),
            0.25,
            4,
            0.3,
            ParamMode::Practical,
            g.aspect_ratio_bound(),
            None,
        )
        .unwrap();
        let built = build_hopset(
            &g,
            &p,
            BuildOptions {
                record_paths: false,
            },
        );
        if built.hopset.is_empty() {
            // Ensure the assertion is actually exercised.
            panic!("record_paths");
        }
        let _ = build_spt(&g, &built, 0);
    }
}

#[cfg(test)]
mod reduced_tests {
    use super::*;
    use crate::multi_scale::BuildOptions;
    use crate::params::ParamMode;
    use crate::reduction::build_reduced_hopset;
    use pgraph::gen;

    #[test]
    fn reduced_spt_on_huge_aspect_ratio() {
        // Theorem D.2 end-to-end: SPT through the weight reduction.
        let g = gen::exponential_path(32, 3.0);
        let r = build_reduced_hopset(
            &g,
            0.5,
            4,
            0.3,
            ParamMode::Practical,
            BuildOptions { record_paths: true },
        )
        .unwrap();
        let spt = build_spt_reduced(&g, &r, 0);
        let val = validate_spt(&g, &spt);
        assert_eq!(val.non_graph_edges, 0, "{val:?}");
        assert_eq!(val.weight_mismatches, 0);
        assert_eq!(val.distance_mismatches, 0);
        assert_eq!(val.missing, 0);
        assert!(val.max_stretch <= 1.5 + 1e-9, "stretch {}", val.max_stretch);
    }

    #[test]
    fn reduced_spt_on_wide_weights() {
        let g = gen::wide_weights(64, 128, 10, 7);
        let r = build_reduced_hopset(
            &g,
            0.5,
            4,
            0.3,
            ParamMode::Practical,
            BuildOptions { record_paths: true },
        )
        .unwrap();
        for src in [0u32, 31, 63] {
            let spt = build_spt_reduced(&g, &r, src);
            let val = validate_spt(&g, &spt);
            assert_eq!(val.non_graph_edges, 0, "src {src}: {val:?}");
            assert_eq!(val.distance_mismatches, 0);
            assert_eq!(val.missing, 0);
            assert!(val.max_stretch <= 1.5 + 1e-9, "src {src}: {val:?}");
        }
    }

    #[test]
    fn reduced_spt_paths_walkable() {
        let g = gen::wide_weights(48, 100, 8, 2);
        let r = build_reduced_hopset(
            &g,
            0.4,
            4,
            0.3,
            ParamMode::Practical,
            BuildOptions { record_paths: true },
        )
        .unwrap();
        let spt = build_spt_reduced(&g, &r, 5);
        for v in 0..48u32 {
            let path = spt.path_to(v).expect("connected");
            let mut acc = 0.0;
            for w in path.windows(2) {
                acc += g.edge_weight(w[0], w[1]).expect("tree edge in G");
            }
            assert!((acc - spt.dist[v as usize]).abs() < 1e-9 * acc.max(1.0));
        }
    }
}
