//! Hopset serialization — build once, query everywhere.
//!
//! A production deployment precomputes the hopset (the expensive part) and
//! ships it alongside the graph; queries are then a β-round Bellman–Ford.
//! The format is line-oriented text like `pgraph::io` (diffable,
//! dependency-free):
//!
//! ```text
//! H <num_edges> <num_paths>
//! e <u> <v> <w> <scale> <kind> <phase> <path|->   # kind: S|I|T(star)
//! p <len> <v0> <link0> <w0> <v1> ...              # link: B | h<edge-idx>
//! ```

use crate::path::{MemEdge, MemoryPath};
use crate::store::{EdgeKind, Hopset, HopsetEdge};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

// Format invariant: edge records appear grouped by non-decreasing scale —
// exactly the order the scale-indexed store pushes (and writes) them.
// `read_hopset` rejects files violating it rather than panicking in `push`.

/// Errors raised while parsing the hopset format.
#[derive(Debug)]
pub enum HopsetIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem, with 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
}

impl std::fmt::Display for HopsetIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HopsetIoError::Io(e) => write!(f, "io error: {e}"),
            HopsetIoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for HopsetIoError {}

impl From<std::io::Error> for HopsetIoError {
    fn from(e: std::io::Error) -> Self {
        HopsetIoError::Io(e)
    }
}

/// Serialize a hopset. Weights use `{:e}` round-trippable formatting.
pub fn write_hopset(h: &Hopset, w: impl Write) -> Result<(), HopsetIoError> {
    let mut out = BufWriter::new(w);
    writeln!(out, "H {} {}", h.len(), h.paths.len())?;
    for e in h.iter() {
        let kind = match e.kind {
            EdgeKind::Supercluster { phase } => format!("S {phase}"),
            EdgeKind::Interconnect { phase } => format!("I {phase}"),
            EdgeKind::Star => "T 0".to_string(),
        };
        let path = match e.path {
            Some(p) => p.to_string(),
            None => "-".to_string(),
        };
        writeln!(
            out,
            "e {} {} {:e} {} {} {}",
            e.u, e.v, e.w, e.scale, kind, path
        )?;
    }
    for p in &h.paths {
        write!(out, "p {}", p.links.len())?;
        write!(out, " {}", p.verts[0])?;
        for (i, &(link, lw)) in p.links.iter().enumerate() {
            match link {
                MemEdge::Base => write!(out, " B")?,
                MemEdge::Hop(j) => write!(out, " h{j}")?,
            }
            write!(out, " {:e} {}", lw, p.verts[i + 1])?;
        }
        writeln!(out)?;
    }
    out.flush()?;
    Ok(())
}

/// Deserialize a hopset.
pub fn read_hopset(r: impl Read) -> Result<Hopset, HopsetIoError> {
    let mut reader = BufReader::new(r);
    let mut line = String::new();
    let mut lineno = 0usize;
    let perr = |line: usize, msg: &str| HopsetIoError::Parse {
        line,
        msg: msg.to_string(),
    };

    // Header.
    reader.read_line(&mut line)?;
    lineno += 1;
    let mut it = line.split_whitespace();
    if it.next() != Some("H") {
        return Err(perr(lineno, "missing 'H' header"));
    }
    let ne: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| perr(lineno, "bad edge count"))?;
    let np: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| perr(lineno, "bad path count"))?;

    let mut h = Hopset::new();
    let mut last_scale: Option<u32> = None;
    for _ in 0..ne {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(perr(lineno, "unexpected EOF in edges"));
        }
        lineno += 1;
        let mut it = line.split_whitespace();
        if it.next() != Some("e") {
            return Err(perr(lineno, "expected 'e' record"));
        }
        let mut next = |name: &str| -> Result<String, HopsetIoError> {
            it.next()
                .map(str::to_string)
                .ok_or_else(|| perr(lineno, &format!("missing {name}")))
        };
        let u = next("u")?.parse().map_err(|_| perr(lineno, "bad u"))?;
        let v = next("v")?.parse().map_err(|_| perr(lineno, "bad v"))?;
        let w = next("w")?.parse().map_err(|_| perr(lineno, "bad w"))?;
        let scale = next("scale")?
            .parse()
            .map_err(|_| perr(lineno, "bad scale"))?;
        let kind_tok = next("kind")?;
        let phase: u8 = next("phase")?
            .parse()
            .map_err(|_| perr(lineno, "bad phase"))?;
        let kind = match kind_tok.as_str() {
            "S" => EdgeKind::Supercluster { phase },
            "I" => EdgeKind::Interconnect { phase },
            "T" => EdgeKind::Star,
            other => return Err(perr(lineno, &format!("unknown kind '{other}'"))),
        };
        let path_tok = next("path")?;
        let path = if path_tok == "-" {
            None
        } else {
            Some(path_tok.parse().map_err(|_| perr(lineno, "bad path id"))?)
        };
        if last_scale.is_some_and(|s| scale < s) {
            return Err(perr(lineno, "edges must be grouped by ascending scale"));
        }
        last_scale = Some(scale);
        h.push(HopsetEdge {
            u,
            v,
            w,
            scale,
            kind,
            path,
        });
    }
    for _ in 0..np {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(perr(lineno, "unexpected EOF in paths"));
        }
        lineno += 1;
        let mut it = line.split_whitespace();
        if it.next() != Some("p") {
            return Err(perr(lineno, "expected 'p' record"));
        }
        let len: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| perr(lineno, "bad path length"))?;
        let v0 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| perr(lineno, "bad start vertex"))?;
        let mut mp = MemoryPath::trivial(v0);
        for _ in 0..len {
            let link_tok = it.next().ok_or_else(|| perr(lineno, "missing link"))?;
            let link = if link_tok == "B" {
                MemEdge::Base
            } else if let Some(idx) = link_tok.strip_prefix('h') {
                let idx: u32 = idx.parse().map_err(|_| perr(lineno, "bad hop index"))?;
                // A hop link recurses into another hopset edge's memory
                // path; an index past the declared edge count would panic
                // (or silently mis-resolve) at unfold time.
                if idx as usize >= ne {
                    return Err(perr(
                        lineno,
                        &format!("hop link h{idx} out of range (edge count {ne})"),
                    ));
                }
                MemEdge::Hop(idx)
            } else {
                return Err(perr(lineno, "unknown link kind"));
            };
            let lw: f64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| perr(lineno, "bad link weight"))?;
            let to = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| perr(lineno, "bad link target"))?;
            mp.verts.push(to);
            mp.links.push((link, lw));
        }
        h.push_path(mp);
    }
    // Referential integrity.
    for (i, e) in h.iter().enumerate() {
        if let Some(p) = e.path {
            if p as usize >= h.paths.len() {
                return Err(perr(
                    lineno,
                    &format!("edge {i} references missing path {p}"),
                ));
            }
        }
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_scale::{build_hopset, BuildOptions};
    use crate::params::{HopsetParams, ParamMode};
    use pgraph::gen;

    fn sample_hopset(record_paths: bool) -> Hopset {
        let g = gen::clique_chain(4, 6, 2.0);
        let p = HopsetParams::new(
            g.num_vertices(),
            0.25,
            4,
            0.3,
            ParamMode::Practical,
            g.aspect_ratio_bound(),
            None,
        )
        .unwrap();
        build_hopset(&g, &p, BuildOptions { record_paths }).hopset
    }

    fn roundtrip(h: &Hopset) -> Hopset {
        let mut buf = Vec::new();
        write_hopset(h, &mut buf).unwrap();
        read_hopset(buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_without_paths() {
        let h = sample_hopset(false);
        assert!(!h.is_empty());
        let h2 = roundtrip(&h);
        assert_eq!(h.len(), h2.len());
        for (a, b) in h.iter().zip(h2.iter()) {
            assert_eq!(
                (a.u, a.v, a.scale, a.kind, a.path),
                (b.u, b.v, b.scale, b.kind, b.path)
            );
            assert_eq!(
                a.w.to_bits(),
                b.w.to_bits(),
                "weights must round-trip exactly"
            );
        }
    }

    #[test]
    fn roundtrip_with_paths() {
        let h = sample_hopset(true);
        let h2 = roundtrip(&h);
        assert_eq!(h.paths.len(), h2.paths.len());
        for (a, b) in h.paths.iter().zip(&h2.paths) {
            assert_eq!(a.verts, b.verts);
            assert_eq!(a.links.len(), b.links.len());
            for (x, y) in a.links.iter().zip(&b.links) {
                assert_eq!(x.0, y.0);
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
    }

    #[test]
    fn loaded_hopset_answers_queries_identically() {
        let g = gen::clique_chain(4, 6, 2.0);
        let h = sample_hopset(false);
        let h2 = roundtrip(&h);
        let v1 = pgraph::UnionView::with_extra(&g, &h.all_slice().to_overlay_vec());
        let v2 = pgraph::UnionView::with_extra(&g, &h2.all_slice().to_overlay_vec());
        let d1 = pgraph::exact::bellman_ford_hops(&v1, &[0], 24);
        let d2 = pgraph::exact::bellman_ford_hops(&v2, &[0], 24);
        assert_eq!(d1, d2);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            read_hopset("X 1 0\n".as_bytes()),
            Err(HopsetIoError::Parse { .. })
        ));
        assert!(matches!(
            read_hopset("H 1 0\n".as_bytes()), // missing edge line
            Err(HopsetIoError::Parse { .. })
        ));
        assert!(matches!(
            read_hopset("H 1 0\ne 0 1 notaweight 3 I 0 -\n".as_bytes()),
            Err(HopsetIoError::Parse { .. })
        ));
        // Dangling path reference.
        assert!(matches!(
            read_hopset("H 1 0\ne 0 1 2e0 3 I 0 5\n".as_bytes()),
            Err(HopsetIoError::Parse { .. })
        ));
        // Scale grouping violated: a typed error, not a store panic.
        assert!(matches!(
            read_hopset("H 2 0\ne 0 1 2e0 5 I 0 -\ne 1 2 2e0 3 I 0 -\n".as_bytes()),
            Err(HopsetIoError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_hop_link() {
        // Regression: the `h<edge-idx>` parse never bounds-checked the
        // index against the edge count, so `h7` in a 1-edge hopset loaded
        // fine and blew up (or mis-resolved) at path unfold time.
        let err = read_hopset("H 1 1\ne 0 1 2e0 3 I 0 0\np 1 0 h7 1e0 1\n".as_bytes()).unwrap_err();
        match err {
            HopsetIoError::Parse { line, msg } => {
                assert_eq!(line, 3, "error must point at the offending 'p' line");
                assert!(
                    msg.contains("h7") && msg.contains("out of range"),
                    "got: {msg}"
                );
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        // In-range hop links still load.
        let h = read_hopset("H 1 1\ne 0 1 2e0 3 I 0 0\np 1 0 h0 1e0 1\n".as_bytes()).unwrap();
        assert_eq!(h.paths.len(), 1);
    }

    #[test]
    fn empty_hopset_roundtrip() {
        let h = Hopset::new();
        let h2 = roundtrip(&h);
        assert!(h2.is_empty());
    }
}
