//! Invariant checkers — the executable versions of the paper's lemmas.
//!
//! Used by tests, property tests and the experiment harness to verify:
//!
//! * **no-shortcut** (Lemmas 2.3/2.9): no hopset edge weight undercuts the
//!   exact `G` distance between its endpoints;
//! * **hopset property** (eq. (1)): `d_G ≤ d^{(β)}_{G∪H} ≤ (1+ε)·d_G` on
//!   sampled sources;
//! * **memory property** (§4.1): every recorded path is a real path in the
//!   union graph, has weight ≤ its edge's weight, matches the edge's
//!   endpoints, and references only lower scales.

use crate::store::Hopset;
use pgraph::exact::{bellman_ford_hops, dijkstra};
use pgraph::{Graph, UnionView, Weight, INF};

/// Result of a stretch measurement (experiment E2's row).
#[derive(Clone, Copy, Debug, Default)]
pub struct StretchReport {
    /// Largest observed `d^{(β)}_{G∪H} / d_G` over sampled pairs.
    pub max_stretch: f64,
    /// Mean observed stretch.
    pub mean_stretch: f64,
    /// Pairs where the β-bounded distance is infinite but `d_G` is not.
    pub unreached: usize,
    /// Pairs where the approximate distance undercuts `d_G` beyond float
    /// tolerance (must be 0 — Lemmas 2.3/2.9).
    pub undershoots: usize,
    /// Pairs measured.
    pub pairs: usize,
}

/// Measure the hopset property from the given sources at the given hop
/// budget.
pub fn measure_stretch(
    g: &Graph,
    hopset: &Hopset,
    sources: &[u32],
    query_hops: usize,
) -> StretchReport {
    let sl = hopset.all_slice();
    let view = UnionView::with_overlay_columns(g, sl.us(), sl.vs(), sl.ws());
    let mut rep = StretchReport {
        max_stretch: 1.0,
        ..Default::default()
    };
    let mut sum = 0.0;
    for &s in sources {
        let approx = bellman_ford_hops(&view, &[s], query_hops);
        let exact = dijkstra(g, s).dist;
        for v in 0..g.num_vertices() {
            let e = exact[v];
            if e == 0.0 {
                continue;
            }
            if e == INF {
                debug_assert_eq!(approx[v], INF, "hopset connected disconnected vertices");
                continue;
            }
            rep.pairs += 1;
            let a = approx[v];
            if a == INF {
                rep.unreached += 1;
                continue;
            }
            if a < e - 1e-6 * e.max(1.0) {
                rep.undershoots += 1;
            }
            let ratio = a / e;
            rep.max_stretch = rep.max_stretch.max(ratio);
            sum += ratio;
        }
    }
    let counted = rep.pairs - rep.unreached;
    rep.mean_stretch = if counted > 0 {
        sum / counted as f64
    } else {
        1.0
    };
    rep
}

/// Check the no-shortcut property edge by edge (exact, O(|H|) Dijkstras —
/// test-scale only). Returns the offending edges.
pub fn find_shortcut_violations(g: &Graph, hopset: &Hopset) -> Vec<(u32, Weight, Weight)> {
    let mut bad = Vec::new();
    // Group by source endpoint to reuse Dijkstra runs.
    let mut by_u: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    for (i, e) in hopset.iter().enumerate() {
        by_u.entry(e.u).or_default().push(i as u32);
    }
    for (u, ids) in by_u {
        let d = dijkstra(g, u).dist;
        for i in ids {
            let e = hopset.edge(i);
            let exact = d[e.v as usize];
            if e.w < exact - 1e-6 * exact.max(1.0) {
                bad.push((i, e.w, exact));
            }
        }
    }
    bad
}

/// Errors found by [`check_memory_paths`].
#[derive(Clone, Debug, PartialEq)]
pub enum MemoryPathError {
    /// The edge has no recorded path although recording was requested.
    Missing {
        /// Offending edge index.
        edge: u32,
    },
    /// Path endpoints don't match the edge endpoints.
    Endpoints {
        /// Offending edge index.
        edge: u32,
    },
    /// Path weight exceeds the edge weight (violates §4.1).
    TooHeavy {
        /// Offending edge index.
        edge: u32,
        /// The path's weight.
        path_w: Weight,
        /// The edge's weight.
        edge_w: Weight,
    },
    /// A link is not present in the union graph (not a real path).
    PhantomLink {
        /// Offending edge index.
        edge: u32,
        /// Link position within the path.
        pos: usize,
    },
    /// A link references a hopset edge of the same or higher scale
    /// (peeling would not terminate — Lemma 4.2).
    ScaleOrder {
        /// Offending edge index.
        edge: u32,
        /// Link position within the path.
        pos: usize,
    },
    /// A link's endpoints/weight disagree with the referenced hopset edge.
    LinkMismatch {
        /// Offending edge index.
        edge: u32,
        /// Link position within the path.
        pos: usize,
    },
}

/// Verify the memory property (§4.1) of every edge of a path-reporting
/// hopset. Empty result = all good.
pub fn check_memory_paths(g: &Graph, hopset: &Hopset) -> Vec<MemoryPathError> {
    let mut errs = Vec::new();
    for (i, e) in hopset.iter().enumerate() {
        let i = i as u32;
        let Some(mp) = hopset.path_of(i) else {
            errs.push(MemoryPathError::Missing { edge: i });
            continue;
        };
        let ends = (mp.start().min(mp.end()), mp.start().max(mp.end()));
        if ends != (e.u.min(e.v), e.u.max(e.v)) {
            errs.push(MemoryPathError::Endpoints { edge: i });
            continue;
        }
        let pw = mp.weight();
        if pw > e.w * (1.0 + 1e-9) + 1e-9 {
            errs.push(MemoryPathError::TooHeavy {
                edge: i,
                path_w: pw,
                edge_w: e.w,
            });
        }
        for (pos, ((&a, &b), link)) in mp
            .verts
            .iter()
            .zip(mp.verts.iter().skip(1))
            .zip(mp.links.iter())
            .enumerate()
        {
            match link.0 {
                crate::path::MemEdge::Base => match g.edge_weight(a, b) {
                    Some(w) if (w - link.1).abs() <= 1e-9 * w.max(1.0) => {}
                    Some(_) | None => {
                        errs.push(MemoryPathError::PhantomLink { edge: i, pos });
                    }
                },
                crate::path::MemEdge::Hop(j) => {
                    if (j as usize) >= hopset.len() {
                        errs.push(MemoryPathError::LinkMismatch { edge: i, pos });
                        continue;
                    }
                    let ref_edge = hopset.edge(j);
                    if ref_edge.scale >= e.scale {
                        errs.push(MemoryPathError::ScaleOrder { edge: i, pos });
                    }
                    let same = (ref_edge.u == a && ref_edge.v == b)
                        || (ref_edge.u == b && ref_edge.v == a);
                    if !same || (ref_edge.w - link.1).abs() > 1e-9 * ref_edge.w.max(1.0) {
                        errs.push(MemoryPathError::LinkMismatch { edge: i, pos });
                    }
                }
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_scale::{build_hopset, BuildOptions};
    use crate::params::{HopsetParams, ParamMode};
    use crate::path::{MemEdge, MemoryPath};
    use crate::store::{EdgeKind, HopsetEdge};
    use pgraph::gen;

    fn build(g: &Graph, record_paths: bool) -> Hopset {
        let p = HopsetParams::new(
            g.num_vertices(),
            0.25,
            4,
            0.3,
            ParamMode::Practical,
            g.aspect_ratio_bound(),
            None,
        )
        .unwrap();
        build_hopset(g, &p, BuildOptions { record_paths }).hopset
    }

    #[test]
    fn measure_stretch_on_real_hopset() {
        let g = gen::gnm_connected(96, 288, 4, 1.0, 6.0);
        let h = build(&g, false);
        let rep = measure_stretch(&g, &h, &[0, 50], 96);
        assert_eq!(rep.undershoots, 0);
        assert_eq!(rep.unreached, 0);
        assert!(rep.max_stretch <= 1.25 + 1e-9);
        assert!(rep.mean_stretch >= 1.0 && rep.mean_stretch <= rep.max_stretch + 1e-12);
        assert_eq!(rep.pairs, 2 * 95);
    }

    #[test]
    fn no_shortcut_violations_on_real_hopset() {
        let g = gen::clique_chain(4, 6, 3.0);
        let h = build(&g, false);
        assert!(find_shortcut_violations(&g, &h).is_empty());
    }

    #[test]
    fn shortcut_violation_detected_on_corrupted_edge() {
        let g = gen::path(6);
        let mut h = Hopset::new();
        h.push(HopsetEdge {
            u: 0,
            v: 5,
            w: 1.0, // true distance is 5
            scale: 3,
            kind: EdgeKind::Interconnect { phase: 0 },
            path: None,
        });
        let bad = find_shortcut_violations(&g, &h);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, 0);
    }

    #[test]
    fn memory_paths_validate_on_real_hopset() {
        let g = gen::clique_chain(4, 6, 3.0);
        let h = build(&g, true);
        assert!(!h.is_empty());
        let errs = check_memory_paths(&g, &h);
        assert!(errs.is_empty(), "memory path errors: {errs:?}");
    }

    #[test]
    fn memory_path_checker_catches_problems() {
        let g = gen::path(4);
        let mut h = Hopset::new();
        // Edge with no path.
        h.push(HopsetEdge {
            u: 0,
            v: 2,
            w: 2.0,
            scale: 3,
            kind: EdgeKind::Interconnect { phase: 0 },
            path: None,
        });
        assert_eq!(
            check_memory_paths(&g, &h),
            vec![MemoryPathError::Missing { edge: 0 }]
        );
        // Edge with phantom link (0-3 not a graph edge).
        let pid = h.push_path(MemoryPath {
            verts: vec![0, 3],
            links: vec![(MemEdge::Base, 3.0)],
        });
        h.push(HopsetEdge {
            u: 0,
            v: 3,
            w: 3.0,
            scale: 3,
            kind: EdgeKind::Interconnect { phase: 0 },
            path: Some(pid),
        });
        let errs = check_memory_paths(&g, &h);
        assert!(errs.contains(&MemoryPathError::PhantomLink { edge: 1, pos: 0 }));
        // Edge whose path is heavier than the edge.
        let pid2 = h.push_path(MemoryPath {
            verts: vec![0, 1],
            links: vec![(MemEdge::Base, 1.0)],
        });
        h.push(HopsetEdge {
            u: 0,
            v: 1,
            w: 0.5,
            scale: 3,
            kind: EdgeKind::Interconnect { phase: 0 },
            path: Some(pid2),
        });
        let errs = check_memory_paths(&g, &h);
        assert!(errs
            .iter()
            .any(|e| matches!(e, MemoryPathError::TooHeavy { edge: 2, .. })));
    }

    #[test]
    fn scale_order_violation_detected() {
        let g = gen::path(3);
        let mut h = Hopset::new();
        let e0 = h.push(HopsetEdge {
            u: 0,
            v: 1,
            w: 1.0,
            scale: 5,
            kind: EdgeKind::Interconnect { phase: 0 },
            path: None,
        });
        let pid = h.push_path(MemoryPath {
            verts: vec![0, 1],
            links: vec![(MemEdge::Hop(e0), 1.0)],
        });
        // Edge at scale 5 referencing a scale-5 edge: peeling would loop.
        h.push(HopsetEdge {
            u: 0,
            v: 1,
            w: 1.0,
            scale: 5,
            kind: EdgeKind::Supercluster { phase: 0 },
            path: Some(pid),
        });
        let errs = check_memory_paths(&g, &h);
        assert!(errs
            .iter()
            .any(|e| matches!(e, MemoryPathError::ScaleOrder { edge: 1, pos: 0 })));
        // Edge 0 has no path: also reported.
        assert!(errs
            .iter()
            .any(|e| matches!(e, MemoryPathError::Missing { edge: 0 })));
    }
}
