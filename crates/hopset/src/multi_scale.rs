//! The multi-scale hopset `H = ⋃_{k ∈ [k₀, λ]} H_k` for graphs of bounded
//! aspect ratio (§2–§3, Theorem 3.7).
//!
//! Scales are built in ascending order; the construction of `H_k` explores
//! `G_{k-1} = (V, E ∪ H_{k-1})` — only the *previous* scale's hopset is
//! overlaid ("Edges of the hopsets H_{k-2}, H_{k-3}, … are not used
//! explicitly", §3.2). The stretch of `G_{k-1}` compounds per Lemma 3.6:
//! `1 + ε_k = (1 + ε_{k-1})(1 + ε′)`.

use crate::params::{HopsetParams, ScaleParams};
use crate::single_scale::{build_single_scale, ScaleContext, ScaleReport};
use crate::store::Hopset;
use pgraph::{Graph, OverlayCsrBuilder, UnionView};
use pram::{scan, Executor, Ledger};

/// A built multi-scale hopset plus everything the experiments report.
#[derive(Clone, Debug)]
pub struct BuiltHopset {
    /// The hopset `H`.
    pub hopset: Hopset,
    /// The parameters used.
    pub params: HopsetParams,
    /// Per-scale construction reports (ascending `k`).
    pub scales: Vec<ScaleReport>,
    /// PRAM cost of the whole construction.
    pub ledger: Ledger,
    /// First scale `k₀`.
    pub k0: u32,
    /// Last scale `λ`.
    pub lambda: u32,
}

impl BuiltHopset {
    /// Overlay edge list for querying `G ∪ H` (allocates; prefer the
    /// hopset's zero-copy columns — [`Hopset::all_slice`] — for anything
    /// hot).
    pub fn overlay(&self) -> Vec<(pgraph::VId, pgraph::VId, pgraph::Weight)> {
        self.hopset.all_slice().to_overlay_vec()
    }

    /// The paper's size bound `⌈log Λ⌉ · n^{1+1/κ}` (eq. (10)) for the
    /// aspect bound the hopset was built with.
    pub fn size_bound(&self) -> f64 {
        let scales = (self.lambda - self.k0 + 1) as f64;
        scales * (self.params.n as f64).powf(1.0 + 1.0 / self.params.kappa as f64)
    }
}

/// Build options.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildOptions {
    /// Record memory paths on every hopset edge (§4 path reporting).
    pub record_paths: bool,
}

/// Build the multi-scale hopset of `g` (Theorem 3.7) on the process-default
/// executor ([`Executor::current`]) — the compatibility entry point.
/// Long-lived engines own an executor and call [`build_hopset_on`].
///
/// Requirements (checked): `g` has minimum edge weight ≥ 1 (§1.5 — use
/// [`Graph::scaled_to_unit_min`]) — edgeless graphs trivially return an
/// empty hopset.
pub fn build_hopset(g: &Graph, params: &HopsetParams, opts: BuildOptions) -> BuiltHopset {
    // xlint: allow(ambient-threads, compat entry point captures the process executor once at the API boundary)
    build_hopset_on(&Executor::current(), g, params, opts)
}

/// Build the multi-scale hopset of `g` (Theorem 3.7) on an explicit
/// executor: every exploration round of every scale runs on `exec`.
pub fn build_hopset_on(
    exec: &Executor,
    g: &Graph,
    params: &HopsetParams,
    opts: BuildOptions,
) -> BuiltHopset {
    assert_eq!(params.n, g.num_vertices(), "params built for another n");
    if let Some(mn) = g.min_weight() {
        assert!(
            mn >= 1.0 - 1e-12,
            "hopset construction requires min edge weight >= 1 (got {mn}); \
             normalize with Graph::scaled_to_unit_min()"
        );
    }
    let mut ledger = Ledger::new();
    let mut hopset = Hopset::new();
    let mut scales = Vec::new();
    let k0 = params.k0();
    let lambda = params.lambda(g.aspect_ratio_bound());
    // The incremental overlay store: scale k's exploration appends exactly
    // H_{k-1}'s column slice as one new CSR block (counting-sorted with a
    // prefix-sum round on `exec`) — earlier scales are never re-bucketed,
    // no filtered edge copy is ever made, and rolling retention keeps
    // exactly one block alive (§3.2 reads only the previous scale).
    let mut overlay = OverlayCsrBuilder::rolling(g.num_vertices());

    let mut eps_prev = 0.0f64;
    for k in k0..=lambda {
        // Overlay only the previous scale's edges.
        let block = if k == k0 {
            None
        } else {
            let sl = hopset.scale_slice(k - 1);
            debug_assert_eq!(
                overlay.num_extra() as u32,
                sl.start(),
                "overlay blocks must stay aligned with global edge ids"
            );
            let _ph = pram::phase::PhaseScope::enter("overlay-csr");
            Some(overlay.append_scale(sl.us(), sl.vs(), sl.ws(), |deg| {
                scan::exclusive_prefix_sum(exec, deg, &mut ledger).0
            }))
        };
        let view = match block {
            Some(csr) => UnionView::with_csr(g, csr),
            None => UnionView::base_only(g),
        };
        let sp = ScaleParams::derive(params, k, eps_prev);
        let ctx = ScaleContext {
            exec,
            view: &view,
            params,
            sp: &sp,
            record_paths: opts.record_paths,
        };
        let report = build_single_scale(&ctx, &mut hopset, &mut ledger);
        scales.push(report);
        // Lemma 3.6: stretch compounds by (1+ε′) per scale.
        eps_prev = (1.0 + eps_prev) * (1.0 + params.eps_scale) - 1.0;
    }

    BuiltHopset {
        hopset,
        params: params.clone(),
        scales,
        ledger,
        k0,
        lambda,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamMode;
    use pgraph::exact::{bellman_ford_hops, dijkstra};
    use pgraph::{gen, INF};

    fn practical_params(g: &Graph, eps: f64) -> HopsetParams {
        HopsetParams::new(
            g.num_vertices(),
            eps,
            4,
            0.3,
            ParamMode::Practical,
            g.aspect_ratio_bound(),
            None,
        )
        .unwrap()
    }

    /// Measured stretch of β-hop-limited distances in G ∪ H from `src`.
    fn max_stretch(g: &Graph, built: &BuiltHopset, src: u32) -> f64 {
        let overlay = built.overlay();
        let view = UnionView::with_extra(g, &overlay);
        let approx = bellman_ford_hops(&view, &[src], built.params.query_hops);
        let exact = dijkstra(g, src).dist;
        let mut worst: f64 = 1.0;
        for v in 0..g.num_vertices() {
            if exact[v] == 0.0 {
                continue;
            }
            if exact[v] == INF {
                assert_eq!(approx[v], INF);
                continue;
            }
            assert!(
                approx[v] >= exact[v] - 1e-6,
                "hopset shortened a distance: v={v} {} < {}",
                approx[v],
                exact[v]
            );
            worst = worst.max(approx[v] / exact[v]);
        }
        worst
    }

    #[test]
    fn stretch_on_weighted_path() {
        let g = gen::path_weighted(96, |i| 1.0 + (i % 5) as f64);
        let p = practical_params(&g, 0.25);
        let built = build_hopset(&g, &p, BuildOptions::default());
        let s = max_stretch(&g, &built, 0);
        assert!(s <= 1.25 + 1e-9, "stretch {s} exceeds 1.25");
    }

    #[test]
    fn stretch_on_grid() {
        let g = gen::unit_grid(8, 12);
        let p = practical_params(&g, 0.25);
        let built = build_hopset(&g, &p, BuildOptions::default());
        for src in [0u32, 47, 95] {
            let s = max_stretch(&g, &built, src);
            assert!(s <= 1.25 + 1e-9, "stretch {s} from {src}");
        }
    }

    #[test]
    fn stretch_on_random_graph() {
        let g = gen::gnm_connected(128, 384, 21, 1.0, 9.0);
        let p = practical_params(&g, 0.2);
        let built = build_hopset(&g, &p, BuildOptions::default());
        let s = max_stretch(&g, &built, 5);
        assert!(s <= 1.2 + 1e-9, "stretch {s}");
    }

    #[test]
    fn hopset_reduces_hop_radius() {
        // On a long unit path the whole point of the hopset is fewer hops:
        // the β-hop distance in G alone is infinite past β vertices.
        let g = gen::path(200);
        let p = practical_params(&g, 0.25).with_hop_cap(48);
        let built = build_hopset(&g, &p, BuildOptions::default());
        let overlay = built.overlay();
        let view = UnionView::with_extra(&g, &overlay);
        let without = bellman_ford_hops(&UnionView::base_only(&g), &[0], p.query_hops);
        let with = bellman_ford_hops(&view, &[0], p.query_hops);
        assert_eq!(without[199], INF, "48 hops cannot cross 199 edges");
        assert!(with[199].is_finite(), "hopset must shortcut the path");
        let exact = dijkstra(&g, 0).dist[199];
        assert!(with[199] <= 1.25 * exact + 1e-9);
    }

    #[test]
    fn size_within_paper_bound() {
        let g = gen::gnm_connected(128, 512, 3, 1.0, 4.0);
        let p = practical_params(&g, 0.25);
        let built = build_hopset(&g, &p, BuildOptions::default());
        assert!(
            (built.hopset.len() as f64) <= built.size_bound(),
            "{} edges > bound {}",
            built.hopset.len(),
            built.size_bound()
        );
    }

    #[test]
    fn determinism_end_to_end() {
        let g = gen::gnm_connected(64, 160, 12, 1.0, 7.0);
        let p = practical_params(&g, 0.25);
        let a = build_hopset(&g, &p, BuildOptions::default());
        let b = build_hopset(&g, &p, BuildOptions::default());
        assert_eq!(a.hopset.len(), b.hopset.len());
        for (x, y) in a.hopset.iter().zip(b.hopset.iter()) {
            assert_eq!((x.u, x.v, x.scale), (y.u, y.v, y.scale));
            assert_eq!(x.w, y.w);
        }
        assert_eq!(a.ledger, b.ledger);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = Graph::empty(4);
        let p = practical_params(&g, 0.25);
        let built = build_hopset(&g, &p, BuildOptions::default());
        assert!(built.hopset.is_empty());

        let g2 = gen::path(2);
        let p2 = practical_params(&g2, 0.25);
        let built2 = build_hopset(&g2, &p2, BuildOptions::default());
        // A single edge needs no hopset but must not break anything.
        let s = max_stretch(&g2, &built2, 0);
        assert!(s <= 1.25);
    }

    #[test]
    fn no_shortcut_below_true_distance_exhaustive() {
        let g = gen::gnm_connected(48, 144, 8, 1.0, 5.0);
        let p = practical_params(&g, 0.25);
        let built = build_hopset(&g, &p, BuildOptions::default());
        // Every hopset edge's weight ≥ exact distance (Lemmas 2.3/2.9).
        for e in built.hopset.iter() {
            let exact = dijkstra(&g, e.u).dist[e.v as usize];
            assert!(e.w >= exact - 1e-6);
        }
    }

    #[test]
    fn disconnected_graph_handled() {
        // Two components; hopset must not connect them.
        let mut b = pgraph::GraphBuilder::new(40);
        for i in 0..19 {
            b.add_edge(i, i + 1, 1.0);
        }
        for i in 20..39 {
            b.add_edge(i, i + 1, 1.0);
        }
        let g = b.build().unwrap();
        let p = practical_params(&g, 0.25);
        let built = build_hopset(&g, &p, BuildOptions::default());
        for e in built.hopset.iter() {
            assert_eq!(
                (e.u < 20),
                (e.v < 20),
                "hopset edge crosses components: ({}, {})",
                e.u,
                e.v
            );
        }
        let s = max_stretch(&g, &built, 0);
        assert!(s <= 1.25 + 1e-9);
    }
}
