//! Binary snapshots of the hopset store — the expensive artifact.
//!
//! The construction is the costly phase by design (the whole point of a
//! hopset is to pay it once); this module makes the result a shippable
//! artifact. The container framing comes from [`pgraph::snapshot`]
//! (DESIGN.md §11): the SoA columns of [`Hopset`] stream out verbatim and
//! load back with `read_exact` — no per-edge decoding — followed by one
//! structural validation pass (scale order, offset-table consistency, kind
//! tally, path-link bounds).
//!
//! Sections, in order: `us  `/`vs  ` (u32 endpoints), `wgts` (f64, or
//! u32 when quantized — see below), `scal` (u32), `kind`/`phas` (u8 each
//! — [`EdgeKind`] split into a code and a phase byte), `path` (u32,
//! [`Hopset::NO_PATH`] = none), `sstr` (u32, the `(scale, start)` offset
//! table interleaved), and `prec` — the memory-path arena as
//! length-prefixed records: `L` (u32), `L + 1` vertex ids, then `L` links
//! as (tag u32, weight f64) where tag `u32::MAX` is a base-graph edge and
//! anything else a hopset edge index, bounds-checked against the edge
//! count exactly like the text loader.
//!
//! ## Quantized weights (format v2, DESIGN.md §12)
//!
//! [`write_hopset_snapshot_quantized`] stores the weight column as `u32`
//! at half the bytes: `q = round(w / scale)` clamped to `1..=u32::MAX`
//! with `scale = w_max / u32::MAX`, decoded as `ŵ = q · scale` (absolute
//! error ≤ `scale / 2`). Quantization is **storage-only and opt-in**: the
//! default writer stays exact (`f64` bit patterns), nothing in the
//! compute path ever sees a quantized value unless a quantized file is
//! explicitly loaded, and the determinism contract (§5) is stated over
//! exact snapshots. Path-record link weights stay f64 either way.

use crate::path::{MemEdge, MemoryPath};
use crate::store::{EdgeKind, Hopset};
use pgraph::snapshot::{
    container_size, ContainerReader, ContainerWriter, ParamsBuf, ParamsReader, SectionDecl,
    SnapshotError,
};
use std::io::{Read, Write};
use std::path::Path;

/// Magic of the [`Hopset`] container.
pub const HOPSET_MAGIC: [u8; 8] = *b"PSSHOPST";

// v1: ne, np, tally[3] (5×u64). v2 appends weight_width u8 + qscale f64
// (qscale is 0 when weights are exact f64).
const PARAMS_BYTES: usize = 8 * 5 + 1 + 8;

/// Link tag meaning "base-graph edge" in `prec` records.
const LINK_BASE: u32 = u32::MAX;

fn corrupt(what: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt { what: what.into() }
}

fn kind_code(k: EdgeKind) -> (u8, u8) {
    match k {
        EdgeKind::Supercluster { phase } => (0, phase),
        EdgeKind::Interconnect { phase } => (1, phase),
        EdgeKind::Star => (2, 0),
    }
}

fn path_record_bytes(p: &MemoryPath) -> u64 {
    // L (u32) + (L + 1) vertex ids (u32) + L × (tag u32 + weight f64).
    8 + 16 * p.links.len() as u64
}

fn sections(h: &Hopset, weight_width: u32) -> Vec<SectionDecl> {
    let ne = h.len() as u64;
    let prec_bytes: u64 = h.paths.iter().map(path_record_bytes).sum();
    vec![
        SectionDecl {
            tag: *b"us  ",
            elem_size: 4,
            count: ne,
        },
        SectionDecl {
            tag: *b"vs  ",
            elem_size: 4,
            count: ne,
        },
        SectionDecl {
            tag: *b"wgts",
            elem_size: weight_width,
            count: ne,
        },
        SectionDecl {
            tag: *b"scal",
            elem_size: 4,
            count: ne,
        },
        SectionDecl {
            tag: *b"kind",
            elem_size: 1,
            count: ne,
        },
        SectionDecl {
            tag: *b"phas",
            elem_size: 1,
            count: ne,
        },
        SectionDecl {
            tag: *b"path",
            elem_size: 4,
            count: ne,
        },
        SectionDecl {
            tag: *b"sstr",
            elem_size: 4,
            count: 2 * h.scale_starts().len() as u64,
        },
        SectionDecl {
            tag: *b"prec",
            elem_size: 1,
            count: prec_bytes,
        },
    ]
}

/// Exact byte size [`write_hopset_snapshot`] will emit for `h`.
pub fn hopset_snapshot_size(h: &Hopset) -> u64 {
    container_size(PARAMS_BYTES, &sections(h, 8))
}

/// Exact byte size [`write_hopset_snapshot_quantized`] will emit for `h`.
pub fn hopset_snapshot_size_quantized(h: &Hopset) -> u64 {
    container_size(PARAMS_BYTES, &sections(h, 4))
}

/// The quantization step for `h`'s weight column: `w_max / u32::MAX`
/// (1.0 for an empty store, so the scale is always positive).
fn quantize_scale(ws: &[f64]) -> f64 {
    // xlint: allow(float-fold, sequential max is order-independent; no parallel chunking here)
    let wmax = ws.iter().copied().fold(0.0f64, f64::max);
    if wmax > 0.0 {
        wmax / u32::MAX as f64
    } else {
        1.0
    }
}

/// Write `h` as a binary snapshot (columns streamed verbatim; weights
/// exact f64 bit patterns — round-trips bit-identically).
pub fn write_hopset_snapshot(h: &Hopset, w: impl Write) -> Result<(), SnapshotError> {
    write_hopset_snapshot_with(h, w, false)
}

/// Write `h` with the weight column quantized to `u32` (half the weight
/// bytes; lossy — see the module docs for the rule and the error bound).
pub fn write_hopset_snapshot_quantized(h: &Hopset, w: impl Write) -> Result<(), SnapshotError> {
    write_hopset_snapshot_with(h, w, true)
}

fn write_hopset_snapshot_with(
    h: &Hopset,
    mut w: impl Write,
    quantize: bool,
) -> Result<(), SnapshotError> {
    let (ts, ti, tt) = h.kind_counts();
    let weight_width: u32 = if quantize { 4 } else { 8 };
    let qscale = if quantize {
        quantize_scale(h.ws())
    } else {
        0.0
    };
    let mut params = ParamsBuf::new();
    params
        .u64(h.len() as u64)
        .u64(h.paths.len() as u64)
        .u64(ts as u64)
        .u64(ti as u64)
        .u64(tt as u64);
    params.u8(weight_width as u8).f64(qscale);
    let mut cw = ContainerWriter::begin(
        &mut w,
        &HOPSET_MAGIC,
        params.as_slice(),
        sections(h, weight_width),
    )?;
    cw.col_u32(*b"us  ", h.us())?;
    cw.col_u32(*b"vs  ", h.vs())?;
    if quantize {
        let q: Vec<u32> = h
            .ws()
            .iter()
            .map(|&wv| ((wv / qscale).round() as u64).clamp(1, u32::MAX as u64) as u32)
            .collect();
        cw.col_u32(*b"wgts", &q)?;
    } else {
        cw.col_f64(*b"wgts", h.ws())?;
    }
    cw.col_u32(*b"scal", h.scales())?;
    let (kinds, phases): (Vec<u8>, Vec<u8>) = h.kinds().iter().map(|&k| kind_code(k)).unzip();
    cw.col_u8(*b"kind", &kinds)?;
    cw.col_u8(*b"phas", &phases)?;
    cw.col_u32(*b"path", h.path_ids())?;
    let sstr: Vec<u32> = h
        .scale_starts()
        .iter()
        .flat_map(|&(s, st)| [s, st])
        .collect();
    cw.col_u32(*b"sstr", &sstr)?;
    cw.raw(*b"prec", |out| {
        for p in &h.paths {
            out.write_all(&(p.links.len() as u32).to_le_bytes())?;
            for &v in &p.verts {
                out.write_all(&v.to_le_bytes())?;
            }
            for &(link, lw) in &p.links {
                let tag = match link {
                    MemEdge::Base => LINK_BASE,
                    MemEdge::Hop(i) => i,
                };
                out.write_all(&tag.to_le_bytes())?;
                out.write_all(&lw.to_bits().to_le_bytes())?;
            }
        }
        Ok(())
    })?;
    cw.finish()
}

/// Save `h` to a snapshot file.
pub fn save_hopset_snapshot(h: &Hopset, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_hopset_snapshot(h, &mut out)?;
    out.flush()?;
    Ok(())
}

fn read_u32(r: &mut dyn Read, region: &str) -> Result<u32, SnapshotError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated {
                region: region.to_string(),
            }
        } else {
            SnapshotError::Io(e)
        }
    })?;
    Ok(u32::from_le_bytes(b))
}

fn read_f64(r: &mut dyn Read, region: &str) -> Result<f64, SnapshotError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated {
                region: region.to_string(),
            }
        } else {
            SnapshotError::Io(e)
        }
    })?;
    Ok(f64::from_bits(u64::from_le_bytes(b)))
}

/// Load a hopset snapshot and validate every store invariant: scale order,
/// offset-table and kind-tally consistency, path-id referential integrity,
/// and — same rule as the text loader — hop links bounds-checked against
/// the edge count. Endpoint ids are *not* range-checked here (a hopset
/// container does not know `n`); the oracle loader cross-validates them.
pub fn read_hopset_snapshot(r: impl Read) -> Result<Hopset, SnapshotError> {
    let mut cr = ContainerReader::open(r, &HOPSET_MAGIC)?;
    let version = cr.version();
    let mut p = ParamsReader::new(cr.params());
    let ne = usize::try_from(p.u64()?).map_err(|_| corrupt("edge count overflows usize"))?;
    let np = usize::try_from(p.u64()?).map_err(|_| corrupt("path count overflows usize"))?;
    let tally = [p.u64()? as usize, p.u64()? as usize, p.u64()? as usize];

    // v1 always stored exact f64 weights; v2 records the width (+ scale).
    let (weight_width, qscale) = if version >= 2 {
        let ww = p.u8()?;
        let qs = p.f64()?;
        match ww {
            8 => {}
            4 if qs.is_finite() && qs > 0.0 => {}
            4 => return Err(corrupt(format!("quantized weights with bad scale {qs}"))),
            _ => {
                return Err(corrupt(format!(
                    "hopset weight width {ww} (expected 4 or 8)"
                )))
            }
        }
        (u32::from(ww), qs)
    } else {
        (8, 0.0)
    };

    let us = cr.col_u32(*b"us  ")?;
    let vs = cr.col_u32(*b"vs  ")?;
    let ws: Vec<f64> = if weight_width == 4 {
        cr.col_u32(*b"wgts")?
            .into_iter()
            .map(|q| q as f64 * qscale)
            .collect()
    } else {
        cr.col_f64(*b"wgts")?
    };
    let scales = cr.col_u32(*b"scal")?;
    let kind_codes = cr.col_u8(*b"kind")?;
    let phases = cr.col_u8(*b"phas")?;
    let path_ids = cr.col_u32(*b"path")?;
    let sstr = cr.col_u32(*b"sstr")?;

    for (name, len) in [
        ("us", us.len()),
        ("vs", vs.len()),
        ("wgts", ws.len()),
        ("scal", scales.len()),
        ("kind", kind_codes.len()),
        ("phas", phases.len()),
        ("path", path_ids.len()),
    ] {
        if len != ne {
            return Err(corrupt(format!(
                "column '{name}' has {len} entries for edge count {ne}"
            )));
        }
    }

    let mut kinds = Vec::with_capacity(ne.min(1 << 24));
    let mut recount = [0usize; 3];
    for i in 0..ne {
        let k = match (kind_codes[i], phases[i]) {
            (0, ph) => EdgeKind::Supercluster { phase: ph },
            (1, ph) => EdgeKind::Interconnect { phase: ph },
            (2, 0) => EdgeKind::Star,
            (2, ph) => return Err(corrupt(format!("star edge {i} has nonzero phase {ph}"))),
            (c, _) => return Err(corrupt(format!("edge {i} has unknown kind code {c}"))),
        };
        recount[kind_codes[i] as usize] += 1;
        kinds.push(k);
        if !(ws[i].is_finite() && ws[i] > 0.0) {
            return Err(corrupt(format!("edge {i} has invalid weight {}", ws[i])));
        }
        if i > 0 && scales[i] < scales[i - 1] {
            return Err(corrupt(format!("scale column decreases at edge {i}")));
        }
        match path_ids[i] {
            Hopset::NO_PATH => {}
            pid if (pid as usize) < np => {}
            pid => {
                return Err(corrupt(format!(
                    "edge {i} references missing path {pid} (path count {np})"
                )))
            }
        }
    }
    if recount != tally {
        return Err(corrupt(format!(
            "kind tally {tally:?} does not match recount {recount:?}"
        )));
    }

    // The offset table must be exactly what re-scanning the scale column
    // produces: (scale, first index) per distinct scale, both ascending.
    if sstr.len() % 2 != 0 {
        return Err(corrupt("scale_starts section has odd length"));
    }
    let scale_starts: Vec<(u32, u32)> = sstr.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    let mut expected: Vec<(u32, u32)> = Vec::new();
    for (i, &s) in scales.iter().enumerate() {
        if expected.last().map(|&(ls, _)| ls) != Some(s) {
            expected.push((s, i as u32));
        }
    }
    if scale_starts != expected {
        return Err(corrupt(
            "scale_starts table does not match the scale column",
        ));
    }

    let paths = cr.raw(*b"prec", |r| {
        let mut paths = Vec::with_capacity(np.min(1 << 22));
        for pi in 0..np {
            let links_len = read_u32(r, "prec")? as usize;
            let mut verts = Vec::with_capacity((links_len + 1).min(1 << 22));
            for _ in 0..=links_len {
                verts.push(read_u32(r, "prec")?);
            }
            let mut links = Vec::with_capacity(links_len.min(1 << 22));
            for _ in 0..links_len {
                let tag = read_u32(r, "prec")?;
                let lw = read_f64(r, "prec")?;
                let link = match tag {
                    LINK_BASE => MemEdge::Base,
                    idx if (idx as usize) < ne => MemEdge::Hop(idx),
                    idx => {
                        return Err(corrupt(format!(
                            "path {pi} hop link h{idx} out of range (edge count {ne})"
                        )))
                    }
                };
                if !(lw.is_finite() && lw >= 0.0) {
                    return Err(corrupt(format!("path {pi} has invalid link weight {lw}")));
                }
                links.push((link, lw));
            }
            paths.push(MemoryPath { verts, links });
        }
        Ok(paths)
    })?;

    Ok(Hopset::from_columns(
        us,
        vs,
        ws,
        scales,
        kinds,
        path_ids,
        scale_starts,
        recount,
        paths,
    ))
}

/// Load a hopset snapshot from a file path.
pub fn load_hopset_snapshot(path: impl AsRef<Path>) -> Result<Hopset, SnapshotError> {
    read_hopset_snapshot(std::io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_scale::{build_hopset, BuildOptions};
    use crate::params::{HopsetParams, ParamMode};
    use crate::store::HopsetEdge;
    use pgraph::gen;

    fn sample_hopset(record_paths: bool) -> Hopset {
        let g = gen::clique_chain(4, 6, 2.0);
        let p = HopsetParams::new(
            g.num_vertices(),
            0.25,
            4,
            0.3,
            ParamMode::Practical,
            g.aspect_ratio_bound(),
            None,
        )
        .unwrap();
        build_hopset(&g, &p, BuildOptions { record_paths }).hopset
    }

    fn roundtrip(h: &Hopset) -> Hopset {
        let mut buf = Vec::new();
        write_hopset_snapshot(h, &mut buf).unwrap();
        assert_eq!(buf.len() as u64, hopset_snapshot_size(h));
        read_hopset_snapshot(buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        for record_paths in [false, true] {
            let h = sample_hopset(record_paths);
            assert!(!h.is_empty());
            let h2 = roundtrip(&h);
            assert_eq!(h.len(), h2.len());
            assert_eq!(h.us(), h2.us());
            assert_eq!(h.vs(), h2.vs());
            assert_eq!(h.scales(), h2.scales());
            assert_eq!(h.kinds(), h2.kinds());
            assert_eq!(h.path_ids(), h2.path_ids());
            assert_eq!(h.scale_starts(), h2.scale_starts());
            assert_eq!(h.kind_counts(), h2.kind_counts());
            for (a, b) in h.ws().iter().zip(h2.ws()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(h.paths, h2.paths);
            assert_eq!(h.all_paths_recorded(), h2.all_paths_recorded());
        }
    }

    #[test]
    fn empty_roundtrip() {
        let h2 = roundtrip(&Hopset::new());
        assert!(h2.is_empty());
        assert!(h2.paths.is_empty());
    }

    #[test]
    fn quantized_roundtrip_is_structurally_identical_and_weights_close() {
        let h = sample_hopset(true);
        assert!(!h.is_empty());
        let mut buf = Vec::new();
        write_hopset_snapshot_quantized(&h, &mut buf).unwrap();
        assert_eq!(buf.len() as u64, hopset_snapshot_size_quantized(&h));
        assert!(
            hopset_snapshot_size_quantized(&h) < hopset_snapshot_size(&h),
            "u32 weights must shrink the file"
        );
        let h2 = read_hopset_snapshot(buf.as_slice()).unwrap();
        // Everything except the weight column is exact.
        assert_eq!(h.us(), h2.us());
        assert_eq!(h.vs(), h2.vs());
        assert_eq!(h.scales(), h2.scales());
        assert_eq!(h.kinds(), h2.kinds());
        assert_eq!(h.path_ids(), h2.path_ids());
        assert_eq!(h.scale_starts(), h2.scale_starts());
        assert_eq!(h.paths, h2.paths);
        // Weights reconstruct within half a quantization step.
        let wmax = h.ws().iter().copied().fold(0.0f64, f64::max);
        let step = wmax / u32::MAX as f64;
        for (a, b) in h.ws().iter().zip(h2.ws()) {
            assert!(
                (a - b).abs() <= step,
                "weight {a} decoded as {b} (step {step})"
            );
            assert!(*b > 0.0, "decoded weight must stay positive");
        }
    }

    #[test]
    fn v1_hopset_snapshots_still_load() {
        // A genuine version-1 file: 40-byte params, f64 weights.
        let h = sample_hopset(false);
        let (ts, ti, tt) = h.kind_counts();
        let mut params = ParamsBuf::new();
        params
            .u64(h.len() as u64)
            .u64(h.paths.len() as u64)
            .u64(ts as u64)
            .u64(ti as u64)
            .u64(tt as u64);
        let mut buf = Vec::new();
        let mut cw = ContainerWriter::begin_with_version(
            &mut buf,
            &HOPSET_MAGIC,
            1,
            params.as_slice(),
            sections(&h, 8),
        )
        .unwrap();
        cw.col_u32(*b"us  ", h.us()).unwrap();
        cw.col_u32(*b"vs  ", h.vs()).unwrap();
        cw.col_f64(*b"wgts", h.ws()).unwrap();
        cw.col_u32(*b"scal", h.scales()).unwrap();
        let (kinds, phases): (Vec<u8>, Vec<u8>) = h.kinds().iter().map(|&k| kind_code(k)).unzip();
        cw.col_u8(*b"kind", &kinds).unwrap();
        cw.col_u8(*b"phas", &phases).unwrap();
        cw.col_u32(*b"path", h.path_ids()).unwrap();
        let sstr: Vec<u32> = h
            .scale_starts()
            .iter()
            .flat_map(|&(s, st)| [s, st])
            .collect();
        cw.col_u32(*b"sstr", &sstr).unwrap();
        cw.raw(*b"prec", |_| Ok(())).unwrap(); // no paths recorded
        cw.finish().unwrap();

        let h2 = read_hopset_snapshot(buf.as_slice()).unwrap();
        assert_eq!(h.us(), h2.us());
        assert_eq!(h.scale_starts(), h2.scale_starts());
        for (a, b) in h.ws().iter().zip(h2.ws()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rejects_out_of_range_hop_link() {
        // Same satellite rule as the text loader: a path link naming a
        // hopset edge index past the edge count must be a typed error.
        let mut h = Hopset::new();
        let pid = h.push_path(MemoryPath {
            verts: vec![0, 1],
            links: vec![(MemEdge::Hop(999), 1.0)],
        });
        h.push(HopsetEdge {
            u: 0,
            v: 1,
            w: 2.0,
            scale: 3,
            kind: EdgeKind::Interconnect { phase: 0 },
            path: Some(pid),
        });
        let mut buf = Vec::new();
        write_hopset_snapshot(&h, &mut buf).unwrap();
        let err = read_hopset_snapshot(buf.as_slice()).unwrap_err();
        match err {
            SnapshotError::Corrupt { what } => {
                assert!(
                    what.contains("h999") && what.contains("out of range"),
                    "got: {what}"
                );
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_magic_and_version_and_checksum() {
        let h = sample_hopset(false);
        let mut buf = Vec::new();
        write_hopset_snapshot(&h, &mut buf).unwrap();

        let mut bad = buf.clone();
        bad[0] = b'Z';
        assert!(matches!(
            read_hopset_snapshot(bad.as_slice()),
            Err(SnapshotError::BadMagic { .. })
        ));

        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            read_hopset_snapshot(bad.as_slice()),
            Err(SnapshotError::UnsupportedVersion { found: 7, .. })
        ));

        let mut bad = buf.clone();
        bad[24] ^= 0x80;
        assert!(matches!(
            read_hopset_snapshot(bad.as_slice()),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        assert!(matches!(
            read_hopset_snapshot(&buf[..buf.len() - 5]),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_dangling_path_id() {
        let mut h = Hopset::new();
        h.push(HopsetEdge {
            u: 0,
            v: 1,
            w: 2.0,
            scale: 3,
            kind: EdgeKind::Star,
            path: Some(5), // no such path
        });
        let mut buf = Vec::new();
        write_hopset_snapshot(&h, &mut buf).unwrap();
        assert!(matches!(
            read_hopset_snapshot(buf.as_slice()),
            Err(SnapshotError::Corrupt { .. })
        ));
    }
}
