//! Algorithm 4: deterministic `(3, 2·log n)`-ruling sets (Appendix B),
//! following \[AGLP89, SEW13, KMW18\].
//!
//! Given the popular clusters `W_i ⊆ P_i`, compute `Q_i ⊆ W_i` such that
//! w.r.t. the virtual graph `G̃_i`:
//! 1. every pair of `Q_i` clusters is at distance ≥ 3 (Lemma B.2), and
//! 2. every `W_i` cluster has a `Q_i` cluster within distance `2·log2 n`
//!    (Lemma B.3).
//!
//! The divide-and-conquer on ID bits executes bottom-up as `⌈log2 n⌉`
//! levels. At level `h`, each recursive invocation splits its alive set on
//! bit `h−1` of the (center-id) binary representation; all `B0` outputs
//! (bit 0) across *all* invocations simultaneously run one BFS to depth 2 in
//! `G̃_i`, and any alive bit-1 cluster that is detected is *knocked out* —
//! including by explorations of other invocations (Figure 9). Because
//! membership in `B0`/`B1` depends only on the bit, the whole level reduces
//! to: sources = alive ∧ bit=0, kill every (alive ∧ bit=1) within distance 2.

use crate::virtual_bfs::{ExploreScratch, Explorer};
use pram::Ledger;

/// Per-level statistics for the F9 experiment (knock-out recursion trace).
#[derive(Clone, Debug, Default)]
pub struct RulingTrace {
    /// `(level, sources, candidates, knocked_out, alive_after)` per level.
    pub levels: Vec<LevelStat>,
}

/// One level of the knock-out recursion.
#[derive(Clone, Copy, Debug)]
pub struct LevelStat {
    /// Level index `h` (1-based; bit `h−1` splits).
    pub level: usize,
    /// Clusters on the 0-side (exploration sources).
    pub sources: usize,
    /// Clusters on the 1-side (knock-out candidates).
    pub candidates: usize,
    /// Candidates knocked out this level.
    pub knocked_out: usize,
    /// Alive clusters after the level.
    pub alive_after: usize,
}

/// Compute a `(3, 2·log2 n)`-ruling set for the clusters `w_set` (indices
/// into `ex.part`) w.r.t. the virtual graph realized by `ex` (threshold +
/// hop budget). Returns the selected cluster indices, ascending.
pub fn ruling_set(
    ex: &Explorer<'_>,
    w_set: &[u32],
    scratch: &mut ExploreScratch,
    ledger: &mut Ledger,
    mut trace: Option<&mut RulingTrace>,
) -> Vec<u32> {
    if w_set.is_empty() {
        return Vec::new();
    }
    let n = ex.view.num_vertices();
    let bits = pgraph::ceil_log2(n.max(2)) as usize;
    let mut alive: Vec<u32> = w_set.to_vec();
    alive.sort_unstable();
    alive.dedup();

    for h in 1..=bits {
        let bit = h - 1;
        let (b0, b1): (Vec<u32>, Vec<u32>) = alive
            .iter()
            .copied()
            .partition(|&c| (ex.part.center(c) >> bit) & 1 == 0);
        if b0.is_empty() || b1.is_empty() {
            if let Some(t) = trace.as_deref_mut() {
                t.levels.push(LevelStat {
                    level: h,
                    sources: b0.len(),
                    candidates: b1.len(),
                    knocked_out: 0,
                    alive_after: alive.len(),
                });
            }
            continue;
        }
        // One BFS to depth 2 from all B0 clusters (Corollary B.4's
        // per-level exploration; knock-outs may cross invocations).
        let det = ex.bfs(&b0, 2, scratch, ledger);
        let before = alive.len();
        let killed: usize = b1.iter().filter(|&&c| det[c as usize].is_some()).count();
        alive.retain(|&c| {
            let is_b1 = (ex.part.center(c) >> bit) & 1 == 1;
            !(is_b1 && det[c as usize].is_some())
        });
        debug_assert_eq!(before - alive.len(), killed);
        if let Some(t) = trace.as_deref_mut() {
            t.levels.push(LevelStat {
                level: h,
                sources: b0.len(),
                candidates: b1.len(),
                knocked_out: killed,
                alive_after: alive.len(),
            });
        }
    }
    alive
}

/// Measure, for every pair of `set` clusters, the `G̃_i` distance (via BFS
/// from each member, up to `max_depth`) — the verification oracle for
/// Lemma B.2/B.3 used by tests and experiment E6. Returns
/// `(min_pairwise_distance, max_cover_distance)` where the cover distance is
/// over `w_set` to its nearest `set` member (`usize::MAX` = unreachable).
pub fn verify_ruling(
    ex: &Explorer<'_>,
    set: &[u32],
    w_set: &[u32],
    max_depth: usize,
    scratch: &mut ExploreScratch,
    ledger: &mut Ledger,
) -> (usize, usize) {
    // Pairwise separation: BFS from each selected cluster alone.
    let mut min_sep = usize::MAX;
    for &q in set {
        let det = ex.bfs(&[q], max_depth, scratch, ledger);
        for &q2 in set {
            if q2 != q {
                if let Some(d) = &det[q2 as usize] {
                    min_sep = min_sep.min(d.pulse);
                }
            }
        }
    }
    // Cover: one multi-source BFS from the whole set.
    let det = ex.bfs(set, max_depth, scratch, ledger);
    let mut max_cover = 0usize;
    for &w in w_set {
        match &det[w as usize] {
            Some(d) => max_cover = max_cover.max(d.pulse),
            None => max_cover = usize::MAX,
        }
    }
    (min_sep, max_cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{ClusterMemory, Partition};
    use pgraph::{gen, UnionView};

    fn explorer<'a>(
        exec: &'a pram::Executor,
        view: &'a UnionView<'a>,
        part: &'a Partition,
        cm: &'a ClusterMemory,
        threshold: f64,
    ) -> Explorer<'a> {
        Explorer {
            exec,
            view,
            part,
            cm,
            threshold,
            hop_limit: 16,
            record_paths: false,
        }
    }

    #[test]
    fn ruling_on_a_path_is_separated_and_covering() {
        // Unit path: G̃ with threshold 1.5 is the path itself.
        let g = gen::path(32);
        let view = UnionView::base_only(&g);
        let part = Partition::singletons(32);
        let cm = ClusterMemory::trivial(32, false);
        let exec = pram::Executor::shared(2);
        let mut scratch = ExploreScratch::new();
        let ex = explorer(&exec, &view, &part, &cm, 1.5);
        let w: Vec<u32> = (0..32).collect();
        let mut led = Ledger::new();
        let q = ruling_set(&ex, &w, &mut scratch, &mut led, None);
        assert!(!q.is_empty());
        let (sep, cover) = verify_ruling(&ex, &q, &w, 64, &mut scratch, &mut led);
        assert!(sep >= 3, "separation {sep} < 3");
        let bound = 2 * pgraph::ceil_log2(32) as usize;
        assert!(cover <= bound, "cover {cover} > {bound}");
    }

    #[test]
    fn ruling_on_random_graph() {
        let g = gen::gnm_connected(64, 160, 11, 1.0, 2.0);
        let view = UnionView::base_only(&g);
        let part = Partition::singletons(64);
        let cm = ClusterMemory::trivial(64, false);
        let exec = pram::Executor::shared(2);
        let mut scratch = ExploreScratch::new();
        let ex = explorer(&exec, &view, &part, &cm, 2.5);
        let w: Vec<u32> = (0..64).step_by(2).collect();
        let mut led = Ledger::new();
        let mut trace = RulingTrace::default();
        let q = ruling_set(&ex, &w, &mut scratch, &mut led, Some(&mut trace));
        assert!(!q.is_empty());
        assert!(q.iter().all(|c| w.contains(c)), "Q ⊆ W");
        let (sep, cover) = verify_ruling(&ex, &q, &w, 64, &mut scratch, &mut led);
        assert!(sep >= 3);
        assert!(cover <= 2 * pgraph::ceil_log2(64) as usize);
        assert_eq!(trace.levels.len(), pgraph::ceil_log2(64) as usize);
        // Alive counts never increase.
        for w2 in trace.levels.windows(2) {
            assert!(w2[1].alive_after <= w2[0].alive_after);
        }
    }

    #[test]
    fn singleton_w_returns_itself() {
        let g = gen::path(8);
        let view = UnionView::base_only(&g);
        let part = Partition::singletons(8);
        let cm = ClusterMemory::trivial(8, false);
        let exec = pram::Executor::shared(2);
        let mut scratch = ExploreScratch::new();
        let ex = explorer(&exec, &view, &part, &cm, 1.5);
        let mut led = Ledger::new();
        let q = ruling_set(&ex, &[5], &mut scratch, &mut led, None);
        assert_eq!(q, vec![5]);
    }

    #[test]
    fn empty_w_returns_empty() {
        let g = gen::path(4);
        let view = UnionView::base_only(&g);
        let part = Partition::singletons(4);
        let cm = ClusterMemory::trivial(4, false);
        let exec = pram::Executor::shared(2);
        let mut scratch = ExploreScratch::new();
        let ex = explorer(&exec, &view, &part, &cm, 1.5);
        let mut led = Ledger::new();
        assert!(ruling_set(&ex, &[], &mut scratch, &mut led, None).is_empty());
    }

    #[test]
    fn isolated_clusters_all_survive() {
        // No edges: every W cluster is 3-separated trivially.
        let g = pgraph::Graph::empty(10);
        let view = UnionView::base_only(&g);
        let part = Partition::singletons(10);
        let cm = ClusterMemory::trivial(10, false);
        let exec = pram::Executor::shared(2);
        let mut scratch = ExploreScratch::new();
        let ex = explorer(&exec, &view, &part, &cm, 5.0);
        let w: Vec<u32> = (0..10).collect();
        let mut led = Ledger::new();
        let q = ruling_set(&ex, &w, &mut scratch, &mut led, None);
        assert_eq!(q, w);
    }

    #[test]
    fn adjacent_pair_keeps_exactly_one() {
        let g = gen::path(2);
        let view = UnionView::base_only(&g);
        let part = Partition::singletons(2);
        let cm = ClusterMemory::trivial(2, false);
        let exec = pram::Executor::shared(2);
        let mut scratch = ExploreScratch::new();
        let ex = explorer(&exec, &view, &part, &cm, 1.5);
        let mut led = Ledger::new();
        let q = ruling_set(&ex, &[0, 1], &mut scratch, &mut led, None);
        assert_eq!(q, vec![0]); // 1 is knocked out by 0 at the bit-0 level
    }

    #[test]
    fn determinism() {
        let g = gen::gnm_connected(48, 120, 3, 1.0, 2.0);
        let view = UnionView::base_only(&g);
        let part = Partition::singletons(48);
        let cm = ClusterMemory::trivial(48, false);
        let exec = pram::Executor::shared(2);
        let mut scratch = ExploreScratch::new();
        let ex = explorer(&exec, &view, &part, &cm, 3.0);
        let w: Vec<u32> = (0..48).collect();
        let mut l1 = Ledger::new();
        let mut l2 = Ledger::new();
        assert_eq!(
            ruling_set(&ex, &w, &mut scratch, &mut l1, None),
            ruling_set(&ex, &w, &mut ExploreScratch::new(), &mut l2, None)
        );
        assert_eq!(l1, l2);
    }
}
