//! Randomized sampling baseline — the construction the paper derandomizes.
//!
//! \[EN19\]-style superclustering-and-interconnection with *random sampling*
//! in place of ruling sets: at phase `i` every cluster is sampled
//! independently with probability `1/deg_i`; sampled clusters grow
//! superclusters over their `G̃_i`-neighbors (one BFS pulse); unsampled,
//! undetected clusters interconnect with their neighbors.
//!
//! This is the **only** module in the crate that consumes randomness (a
//! seeded [`rand::rngs::StdRng`], so experiments are repeatable). It exists
//! for experiment E9: comparing size / hopbound / counted work of the
//! deterministic construction against its randomized ancestor, which is the
//! paper's headline trade ("derandomization at no asymptotic cost").
//!
//! Fidelity notes (documented deviations, both favoring the baseline):
//! * the randomized analysis bounds *expected* interconnection degrees; we
//!   cap the neighbor enumeration at `4·deg_i + 1` records per cluster and
//!   count truncations rather than let memory blow up;
//! * superclusters grow from one BFS pulse (radius `δ_i`), the EN19 shape,
//!   rather than the ruling-set BFS of depth `2·log n` — the baseline's
//!   radii (hence realized weights) are therefore *smaller*.

use crate::params::{HopsetParams, ScaleParams};
use crate::partition::{Cluster, ClusterMemory, Partition};
use crate::store::{EdgeKind, Hopset, HopsetEdge};
use crate::virtual_bfs::Explorer;
use pgraph::{Graph, OverlayCsrBuilder, UnionView, VId};
use pram::{scan, Ledger};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::virtual_bfs::ExploreScratch;
use pram::Executor;

/// Outcome of the randomized construction.
#[derive(Clone, Debug)]
pub struct RandomHopset {
    /// The hopset.
    pub hopset: Hopset,
    /// PRAM cost (same accounting as the deterministic build).
    pub ledger: Ledger,
    /// Number of label-list truncations (see module docs) — reported by E9.
    pub truncations: usize,
    /// First scale.
    pub k0: u32,
    /// Last scale.
    pub lambda: u32,
}

/// Build a randomized sampling hopset with the given seed.
pub fn build_random_hopset(g: &Graph, params: &HopsetParams, seed: u64) -> RandomHopset {
    let n = g.num_vertices();
    assert_eq!(params.n, n);
    // xlint: allow(ambient-threads, compat entry point captures the process executor once at the API boundary)
    let exec = Executor::current();
    let mut ledger = Ledger::new();
    let mut hopset = Hopset::new();
    let k0 = params.k0();
    let lambda = params.lambda(g.aspect_ratio_bound());
    let mut truncations = 0usize;
    let mut eps_prev = 0.0f64;
    // Same incremental overlay discipline as the deterministic build: one
    // rolling CSR block per scale, no per-scale edge scan or re-bucket.
    let mut overlay = OverlayCsrBuilder::rolling(n);

    for k in k0..=lambda {
        let block = if k == k0 {
            None
        } else {
            let sl = hopset.scale_slice(k - 1);
            debug_assert_eq!(overlay.num_extra() as u32, sl.start());
            Some(overlay.append_scale(sl.us(), sl.vs(), sl.ws(), |deg| {
                scan::exclusive_prefix_sum(&exec, deg, &mut ledger).0
            }))
        };
        let view = match block {
            Some(csr) => UnionView::with_csr(g, csr),
            None => UnionView::base_only(g),
        };
        let sp = ScaleParams::derive(params, k, eps_prev);
        build_scale(
            &exec,
            g,
            &view,
            params,
            &sp,
            seed ^ (k as u64).wrapping_mul(0x9e3779b97f4a7c15),
            &mut hopset,
            &mut ledger,
            &mut truncations,
        );
        eps_prev = (1.0 + eps_prev) * (1.0 + params.eps_scale) - 1.0;
    }
    RandomHopset {
        hopset,
        ledger,
        truncations,
        k0,
        lambda,
    }
}

#[allow(clippy::too_many_arguments)]
fn build_scale(
    exec: &Executor,
    g: &Graph,
    view: &UnionView<'_>,
    params: &HopsetParams,
    sp: &ScaleParams,
    seed: u64,
    hopset: &mut Hopset,
    ledger: &mut Ledger,
    truncations: &mut usize,
) {
    let n = g.num_vertices();
    let mut part = Partition::singletons(n);
    let cm_store = ClusterMemory::trivial(n, false);
    let mut cm = cm_store;
    let mut scratch = ExploreScratch::new();

    for i in 0..=params.ell {
        let n_clusters = part.len();
        if n_clusters == 0 {
            break;
        }
        let deg_i = params.degrees[i];
        let ex = Explorer {
            exec,
            view,
            part: &part,
            cm: &cm,
            threshold: sp.thresholds[i],
            hop_limit: params.hop_limit,
            record_paths: false,
        };

        if i == params.ell {
            let m = ex.detect_neighbors(n_clusters, &mut scratch, ledger);
            interconnect_all(
                &part,
                &m,
                &(0..n_clusters as u32).collect::<Vec<_>>(),
                sp.k,
                i,
                hopset,
            );
            break;
        }

        // Random sampling replaces popularity detection + ruling sets.
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 32);
        ledger.step(n_clusters as u64);
        let sampled: Vec<u32> = (0..n_clusters as u32)
            .filter(|_| rng.random::<f64>() < 1.0 / deg_i as f64)
            .collect();

        // One-pulse BFS: neighbors of sampled clusters join them.
        let det = ex.bfs(&sampled, 1, &mut scratch, ledger);

        // Interconnect the rest (bounded neighbor lists).
        let x = 4 * deg_i + 1;
        let m = ex.detect_neighbors(x, &mut scratch, ledger);
        let u_set: Vec<u32> = (0..n_clusters as u32)
            .filter(|&c| det[c as usize].is_none())
            .collect();
        for &c in &u_set {
            if m.len_of(c as usize) >= x {
                *truncations += 1;
            }
        }
        interconnect_all(&part, &m, &u_set, sp.k, i, hopset);

        // Superclustering edges + new partition.
        let mut members_of: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
        for (ci, d) in det.iter().enumerate() {
            if let Some(d) = d {
                members_of.entry(d.src_cluster).or_default().push(ci as u32);
            }
        }
        for (&q, members) in &members_of {
            let rq = part.center(q);
            for &c in members {
                if c == q {
                    continue;
                }
                let d = det[c as usize].as_ref().unwrap();
                hopset.push(HopsetEdge {
                    u: part.center(c),
                    v: rq,
                    w: d.pw.max(f64::MIN_POSITIVE),
                    scale: sp.k,
                    kind: EdgeKind::Supercluster { phase: i as u8 },
                    path: None,
                });
            }
        }
        // Extend memory weights, rebuild partition (same as deterministic).
        for members in members_of.values() {
            for &c in members {
                let d = det[c as usize].as_ref().unwrap();
                if d.pulse == 0 {
                    continue;
                }
                for &v in &part.clusters[c as usize].members.clone() {
                    cm.extend(v, None, d.pw);
                }
            }
        }
        let mut new_clusters: Vec<Cluster> = Vec::new();
        for (&q, members) in &members_of {
            let mut verts: Vec<VId> = Vec::new();
            for &c in members {
                verts.extend_from_slice(&part.clusters[c as usize].members);
            }
            verts.sort_unstable();
            new_clusters.push(Cluster {
                center: part.center(q),
                members: verts,
            });
        }
        new_clusters.sort_by_key(|c| c.center);
        let mut cluster_of = vec![None; n];
        for (ci, cl) in new_clusters.iter().enumerate() {
            for &v in &cl.members {
                cluster_of[v as usize] = Some(ci as u32);
            }
        }
        part = Partition {
            cluster_of,
            clusters: new_clusters,
        };
    }
}

fn interconnect_all(
    part: &Partition,
    m: &crate::label::LabelArena,
    u_set: &[u32],
    k: u32,
    phase: usize,
    hopset: &mut Hopset,
) {
    // Sorted membership table, same discipline as the deterministic build
    // (see single_scale::interconnect_all): lookup-only, xlint D1-proof.
    let mut in_u: Vec<VId> = u_set.iter().map(|&c| part.center(c)).collect();
    in_u.sort_unstable();
    let mut proposals: Vec<(VId, VId, f64)> = Vec::new();
    for &c in u_set {
        let rc = part.center(c);
        for l in m.labels(c as usize) {
            if l.src == rc || in_u.binary_search(&l.src).is_err() {
                continue;
            }
            proposals.push((rc.min(l.src), rc.max(l.src), l.pw.max(f64::MIN_POSITIVE)));
        }
    }
    proposals.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.total_cmp(&b.2)));
    proposals.dedup_by(|nx, pv| nx.0 == pv.0 && nx.1 == pv.1);
    for (u, v, w) in proposals {
        hopset.push(HopsetEdge {
            u,
            v,
            w,
            scale: k,
            kind: EdgeKind::Interconnect { phase: phase as u8 },
            path: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamMode;
    use crate::validate::{find_shortcut_violations, measure_stretch};
    use pgraph::gen;

    fn params(g: &Graph) -> HopsetParams {
        HopsetParams::new(
            g.num_vertices(),
            0.25,
            4,
            0.3,
            ParamMode::Practical,
            g.aspect_ratio_bound(),
            None,
        )
        .unwrap()
    }

    #[test]
    fn random_hopset_is_a_hopset() {
        let g = gen::gnm_connected(96, 288, 5, 1.0, 6.0);
        let p = params(&g);
        let rh = build_random_hopset(&g, &p, 42);
        assert!(find_shortcut_violations(&g, &rh.hopset).is_empty());
        let rep = measure_stretch(&g, &rh.hopset, &[0, 48], p.query_hops);
        assert_eq!(rep.undershoots, 0);
        assert!(rep.max_stretch <= 1.25 + 1e-9);
    }

    #[test]
    fn seed_determinism() {
        let g = gen::gnm_connected(64, 160, 9, 1.0, 4.0);
        let p = params(&g);
        let a = build_random_hopset(&g, &p, 7);
        let b = build_random_hopset(&g, &p, 7);
        assert_eq!(a.hopset.len(), b.hopset.len());
        for (x, y) in a.hopset.iter().zip(b.hopset.iter()) {
            assert_eq!((x.u, x.v), (y.u, y.v));
            assert_eq!(x.w, y.w);
        }
        // Different seeds generally differ (not asserted — could collide on
        // tiny graphs, but sizes should at least exist).
        let c = build_random_hopset(&g, &p, 8);
        assert!(!c.hopset.is_empty());
    }

    #[test]
    fn comparable_size_to_deterministic() {
        let g = gen::clique_chain(6, 8, 2.0);
        let p = params(&g);
        let det = crate::build_hopset(&g, &p, crate::BuildOptions::default());
        let rnd = build_random_hopset(&g, &p, 3);
        // Same ballpark (within 8x either way) — E9 reports the exact ratio.
        let a = det.hopset.len().max(1) as f64;
        let b = rnd.hopset.len().max(1) as f64;
        assert!(a / b < 8.0 && b / a < 8.0, "det={a} rnd={b}");
    }
}
