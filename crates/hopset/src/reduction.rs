//! The Klein–Sairam weight reduction (Appendix C, Theorems C.2/C.3) and its
//! path-reporting variant (Appendix D).
//!
//! The bounded-aspect-ratio pipeline of §2 pays `log Λ` in size and time.
//! Appendix C removes the dependence: for every *relevant* scale `k` (one
//! with an edge of weight in `((ε/n)·2^k, 2^{k+1}]`), build a contracted
//! graph `𝒢_k`:
//!
//! * **nodes** `V_k` = connected components over edges of weight
//!   `≤ (ε/n)·2^k` (computed with Shiloach–Vishkin, which also yields a
//!   spanning tree `T_U` per node — Appendix C.2),
//! * **edges**: the lightest original edge between two nodes, if
//!   `≤ 2^{k+1}`, reweighted `W(X,Y) = ω(x,y) + (|X|+|Y|)·(ε/n)·2^k`
//!   (eq. (21)), giving aspect ratio `O(n/ε)` (eq. (22)),
//! * **centers**: chosen by the largest-child rule over the laminar node
//!   family (Appendix C.3), which caps the star-edge count at `n·log n`
//!   (Lemma C.1, eq. (24)),
//! * **star edges** `S`: center-to-member edges weighted by the `T_U` tree
//!   path (the Appendix D refinement of \[EN19\]'s `|U|·(ε/n)·2^k`, needed
//!   so stars are *realizable paths* and path reporting works).
//!
//! A full multi-scale hopset is built per `𝒢_k` (aspect `O(n/ε)`, so
//! `log(n/ε)` scales); its top scales (covering the image of
//! `(2^k, 2^{k+1}]`) map back to node-center edges of the ultimate hopset
//! `H`, which also contains `S`. Per \[EN19\] Lemma 4.3, `H` is a
//! `(1+6ε, 6β+5)`-hopset of `G` — so we build with `ε/6` internally and
//! query with `6β+5` hops.
//!
//! For path reporting (Appendix D), *all* scales of each `𝒢_k` hopset map
//! in (the peeling needs them — §D.1), every mapped memory path routes
//! explicitly through node centers (`center → member → member → center`),
//! and star edges carry their tree path. The provenance scale is encoded so
//! that peeling strictly descends: stars of level `k` sit below every
//! mapped hopset edge of level `k`, which sit below level `k+1` (see
//! [`encode_scale`]).

use crate::multi_scale::{build_hopset_on, BuildOptions, BuiltHopset};
use crate::params::{HopsetParams, ParamError, ParamMode};
use crate::path::{MemEdge, MemoryPath};
use crate::store::{EdgeKind, Hopset, HopsetEdge};
use pgraph::{Graph, GraphBuilder, VId, Weight};
use pram::{cc, jump, Executor, Ledger};

/// Per-level (relevant scale) report for experiment E8.
#[derive(Clone, Debug)]
pub struct LevelReport {
    /// The scale `k`.
    pub k: u32,
    /// Number of nodes `|V_k|`.
    pub nodes: usize,
    /// Nodes that are not isolated in `𝒢_k` — the quantity eq. (26) bounds
    /// by `O(n·log n)` summed over all levels.
    pub non_isolated_nodes: usize,
    /// Non-singleton nodes.
    pub contracted_nodes: usize,
    /// Edges of `𝒢_k`.
    pub edges: usize,
    /// Weight ratio `max ω / min ω` of `𝒢_k` (eq. (22) bounds it by
    /// `O(n/ε)` — the quantity that determines the number of scales).
    pub aspect_ratio: f64,
    /// Star edges added at this level.
    pub star_edges: usize,
    /// Hopset edges mapped into `H` from this level.
    pub mapped_edges: usize,
}

/// A hopset of `G` built through the weight reduction.
#[derive(Clone, Debug)]
pub struct ReducedHopset {
    /// Star edges plus mapped node-center edges, on original vertex ids.
    pub hopset: Hopset,
    /// Per-level reports (ascending `k`).
    pub levels: Vec<LevelReport>,
    /// Total PRAM cost (levels charged in parallel, per Appendix C.4).
    pub ledger: Ledger,
    /// Hop budget for queries over `G ∪ H`: `6β+5`, capped at `n`.
    pub query_hops: usize,
    /// Total star edges `|S|` (eq. (24) bounds by `n·log2 n`).
    pub star_edges: usize,
    /// The ε the caller asked for (internally scales are built with ε/6).
    pub eps: f64,
}

/// Encode the peeling order for reduced-hopset provenance: level-`k` star
/// edges < level-`k` mapped hopset edges (by ascending `𝒢_k` scale) <
/// level-`k+1` anything. `gk_scale = None` marks a star edge.
pub fn encode_scale(k: u32, gk_scale: Option<u32>) -> u32 {
    (k << 21)
        | match gk_scale {
            None => 0,
            Some(s) => s + 1,
        }
}

/// Build a `(1+ε, 6β+5)`-hopset of `g` without any aspect-ratio assumption
/// (Theorem C.2; with `record_paths`, Theorem D.1).
///
/// `g` must have minimum edge weight ≥ 1 (normalize with
/// [`Graph::scaled_to_unit_min`]).
pub fn build_reduced_hopset(
    g: &Graph,
    eps: f64,
    kappa: usize,
    rho: f64,
    mode: ParamMode,
    opts: BuildOptions,
) -> Result<ReducedHopset, ParamError> {
    // xlint: allow(ambient-threads, compat entry point captures the process executor once at the API boundary)
    build_reduced_hopset_on(&Executor::current(), g, eps, kappa, rho, mode, opts)
}

/// Like [`build_reduced_hopset`], on an explicit executor: the
/// components/forest/pointer-jumping substrate and every per-level hopset
/// construction run on `exec`.
pub fn build_reduced_hopset_on(
    exec: &Executor,
    g: &Graph,
    eps: f64,
    kappa: usize,
    rho: f64,
    mode: ParamMode,
    opts: BuildOptions,
) -> Result<ReducedHopset, ParamError> {
    let n = g.num_vertices();
    if let Some(mn) = g.min_weight() {
        assert!(mn >= 1.0 - 1e-12, "min edge weight must be >= 1");
    }
    let eps_internal = eps / 6.0; // [EN19] Lemma 4.3: final stretch ≤ 1+6ε′.
    let mut ledger = Ledger::new();
    let mut hopset = Hopset::new();
    let mut levels = Vec::new();
    let mut total_stars = 0usize;
    let mut max_beta = 2usize;

    // Relevant scales: k with an edge of weight in ((ε/n)·2^k, 2^{k+1}].
    let ks = relevant_scales(g, eps_internal);

    // The laminar family: levels processed in ascending k; remember the
    // previous level's nodes for the largest-child rule.
    let mut prev: Option<LevelNodes> = None;

    for &k in &ks {
        let mut level_ledger = Ledger::new();
        let lvl = build_level(exec, g, k, eps_internal, prev.as_ref(), &mut level_ledger);

        // --- star edges (with tree-path memory in path mode).
        let star_count = add_star_edges(g, &lvl, prev.as_ref(), k, opts.record_paths, &mut hopset);
        total_stars += star_count;

        // --- 𝒢_k hopset (scaled to unit min weight).
        let (mapped, beta_hops) = if lvl.gk.num_vertices() >= 2 && lvl.gk.num_edges() > 0 {
            build_and_map_level_hopset(
                exec,
                &lvl,
                k,
                eps_internal,
                kappa,
                rho,
                mode,
                opts.record_paths,
                &mut hopset,
                &mut level_ledger,
            )
        } else {
            (0, 2)
        };
        max_beta = max_beta.max(beta_hops);

        levels.push(LevelReport {
            k,
            nodes: lvl.gk.num_vertices(),
            non_isolated_nodes: (0..lvl.gk.num_vertices() as u32)
                .filter(|&u| lvl.gk.degree(u) > 0)
                .count(),
            contracted_nodes: lvl.node_sizes.iter().filter(|&&s| s > 1).count(),
            edges: lvl.gk.num_edges(),
            aspect_ratio: match (lvl.gk.max_weight(), lvl.gk.min_weight()) {
                (Some(mx), Some(mn)) if mn > 0.0 => mx / mn,
                _ => 1.0,
            },
            star_edges: star_count,
            mapped_edges: mapped,
        });
        // Appendix C.4: the per-scale hopsets are computed in parallel.
        ledger.absorb_parallel(&level_ledger);
        prev = Some(lvl);
    }

    // 6β+5 hops, capped at n (a hop bound ≥ n−1 is exact).
    let query_hops = (6 * max_beta + 5).min(n.max(2));

    Ok(ReducedHopset {
        hopset,
        levels,
        ledger,
        query_hops,
        star_edges: total_stars,
        eps,
    })
}

/// All the per-level state the laminar family needs.
struct LevelNodes {
    /// Node index per vertex (dense, sorted by component label).
    node_of: Vec<u32>,
    /// Node center per node index.
    center: Vec<VId>,
    /// Center of the largest previous-level child per node (`None` at the
    /// lowest level): members of that child inherit its star edges
    /// (Appendix C.3's rule, behind Lemma C.1's `n·log n` count).
    largest_child_center: Vec<Option<VId>>,
    /// Node sizes.
    node_sizes: Vec<usize>,
    /// Tree parent/weight arrays oriented toward the node center.
    tree_parent: Vec<VId>,
    tree_weight: Vec<Weight>,
    /// Tree distance of every vertex to its node center.
    tree_dist: Vec<Weight>,
    /// The contracted graph `𝒢_k` (vertices = node indices).
    gk: Graph,
    /// For each canonical `𝒢_k` edge, the original edge `(x, y, ω)`.
    orig_edge: Vec<(VId, VId, Weight)>,
}

/// Relevant scales of `g` for internal ε (ascending).
pub fn relevant_scales(g: &Graph, eps: f64) -> Vec<u32> {
    let n = g.num_vertices().max(2) as f64;
    let mut ks: Vec<u32> = Vec::new();
    let lambda = g.aspect_ratio_bound().max(2.0).log2().ceil() as u32;
    for k in 0..=lambda {
        let lo = (eps / n) * (2.0f64).powi(k as i32);
        let hi = (2.0f64).powi(k as i32 + 1);
        if g.edges().iter().any(|&(_, _, w)| w > lo && w <= hi) {
            ks.push(k);
        }
    }
    ks
}

fn build_level(
    exec: &Executor,
    g: &Graph,
    k: u32,
    eps: f64,
    prev: Option<&LevelNodes>,
    ledger: &mut Ledger,
) -> LevelNodes {
    let n = g.num_vertices();
    let contract_w = (eps / n.max(2) as f64) * (2.0f64).powi(k as i32);
    let keep_w = (2.0f64).powi(k as i32 + 1);
    let edges = g.edges();

    // Nodes = components over light edges; spanning forest for the trees.
    let (cc_res, forest) = cc::spanning_forest(exec, g, |e| edges[e].2 <= contract_w, ledger);
    let label = cc_res.label;
    // Dense node indexing, sorted by label.
    let mut labels: Vec<VId> = (0..n)
        .filter(|&v| label[v] == v as VId)
        .map(|v| v as VId)
        .collect();
    labels.sort_unstable();
    // Keyed lookup only — never iterated, so no iteration order can leak
    // into the output (legal under xlint D1; the sorted `labels` Vec above
    // carries the deterministic order).
    let mut index_of_label = std::collections::HashMap::with_capacity(labels.len());
    for (i, &l) in labels.iter().enumerate() {
        index_of_label.insert(l, i as u32);
    }
    let node_of: Vec<u32> = (0..n).map(|v| index_of_label[&label[v]]).collect();
    let mut node_sizes = vec![0usize; labels.len()];
    for v in 0..n {
        node_sizes[node_of[v] as usize] += 1;
    }

    // Centers by the largest-child rule (Appendix C.3). The lowest level
    // takes the smallest-id vertex ("an arbitrary vertex").
    let mut center: Vec<VId> = labels.clone();
    let mut largest_child_center: Vec<Option<VId>> = vec![None; labels.len()];
    if let Some(prev) = prev {
        // Children of node U = previous-level nodes contained in U
        // (components nest because the weight threshold only grows).
        // (size desc, center asc) picks X1 deterministically.
        let mut best: Vec<(usize, VId)> = vec![(0, VId::MAX); labels.len()];
        for ci in 0..prev.center.len() {
            let child_center = prev.center[ci];
            let u = node_of[child_center as usize] as usize;
            let cand = (prev.node_sizes[ci], child_center);
            let (bs, bc) = best[u];
            if cand.0 > bs || (cand.0 == bs && cand.1 < bc) {
                best[u] = cand;
            }
        }
        for u in 0..labels.len() {
            if best[u].1 != VId::MAX {
                center[u] = best[u].1;
                largest_child_center[u] = Some(best[u].1);
            }
        }
        ledger.step(n as u64);
    }

    // Orient the per-node spanning trees toward the centers and compute
    // tree distances by pointer jumping (Appendix C.3 / §4.2).
    let center_of_label = |l: VId| -> VId { center[index_of_label[&l] as usize] };
    let (tree_parent, tree_weight) =
        cc::orient_forest(exec, n, g, &forest, center_of_label, &label, ledger);
    let (tree_dist, _roots) =
        jump::pointer_jump_distances(exec, &tree_parent, &tree_weight, ledger);

    // 𝒢_k edges: lightest original edge per node pair, reweighted (eq. 21).
    let mut proposals: Vec<(u32, u32, Weight, VId, VId)> = Vec::new();
    for &(x, y, w) in edges {
        if w > keep_w {
            continue;
        }
        let (nx, ny) = (node_of[x as usize], node_of[y as usize]);
        if nx == ny {
            continue;
        }
        let (a, b) = (nx.min(ny), nx.max(ny));
        proposals.push((a, b, w, x, y));
    }
    ledger.sort(proposals.len().max(1) as u64);
    proposals.sort_by(|p, q| {
        p.0.cmp(&q.0)
            .then(p.1.cmp(&q.1))
            .then(p.2.total_cmp(&q.2))
            .then(p.3.cmp(&q.3))
            .then(p.4.cmp(&q.4))
    });
    proposals.dedup_by(|nx, pv| nx.0 == pv.0 && nx.1 == pv.1);

    let mut b = GraphBuilder::with_capacity(labels.len().max(1), proposals.len());
    let mut orig_edge = Vec::with_capacity(proposals.len());
    for &(a, bb, w, x, y) in &proposals {
        let wk = w + (node_sizes[a as usize] + node_sizes[bb as usize]) as f64 * contract_w;
        b.add_edge(a, bb, wk);
        orig_edge.push((x, y, w));
    }
    let gk = b.build().expect("contracted graph is valid");
    // The canonical edge order of `gk` equals the (a, b)-sorted proposal
    // order (already deduped and endpoint-sorted), so `orig_edge[i]`
    // corresponds to `gk.edges()[i]`.
    debug_assert_eq!(gk.num_edges(), orig_edge.len());

    LevelNodes {
        node_of,
        center,
        largest_child_center,
        node_sizes,
        tree_parent,
        tree_weight,
        tree_dist,
        gk,
        orig_edge,
    }
}

/// Add the star edges of level `k` (with tree-path memory in path mode).
/// Members of the largest previous-level child inherit its star edges
/// (Appendix C.3); the others get fresh ones weighted by the `T_U` path.
fn add_star_edges(
    g: &Graph,
    lvl: &LevelNodes,
    prev: Option<&LevelNodes>,
    k: u32,
    record_paths: bool,
    hopset: &mut Hopset,
) -> usize {
    let n = g.num_vertices();
    let mut count = 0usize;
    for v in 0..n as u32 {
        let u = lvl.node_of[v as usize] as usize;
        let c = lvl.center[u];
        if c == v {
            continue;
        }
        let w = lvl.tree_dist[v as usize];
        if w == 0.0 {
            continue; // singleton node
        }
        if let (Some(x1c), Some(prev)) = (lvl.largest_child_center[u], prev) {
            // v inside the largest child X1: its star edge to the (same)
            // center already exists from a lower level (Lemma C.1's rule).
            if prev.node_of[v as usize] == prev.node_of[x1c as usize] {
                continue;
            }
        }
        let path_id = record_paths.then(|| {
            let mp = tree_path(lvl, v);
            debug_assert_eq!(mp.start(), c);
            debug_assert_eq!(mp.end(), v);
            hopset.push_path(mp)
        });
        hopset.push(HopsetEdge {
            u: c,
            v,
            w,
            scale: encode_scale(k, None),
            kind: EdgeKind::Star,
            path: path_id,
        });
        count += 1;
    }
    count
}

/// The tree path center → v as a memory path of base edges.
fn tree_path(lvl: &LevelNodes, v: VId) -> MemoryPath {
    let mut verts = vec![v];
    let mut links: Vec<(MemEdge, Weight)> = Vec::new();
    let mut cur = v;
    while lvl.tree_parent[cur as usize] != cur {
        let p = lvl.tree_parent[cur as usize];
        links.push((MemEdge::Base, lvl.tree_weight[cur as usize]));
        verts.push(p);
        cur = p;
        debug_assert!(verts.len() <= lvl.tree_parent.len());
    }
    verts.reverse();
    links.reverse();
    MemoryPath { verts, links }
}

/// Build the multi-scale hopset of `𝒢_k` and map it onto node centers.
/// Returns (mapped edge count, query hops of the level's construction).
#[allow(clippy::too_many_arguments)]
fn build_and_map_level_hopset(
    exec: &Executor,
    lvl: &LevelNodes,
    k: u32,
    eps: f64,
    kappa: usize,
    rho: f64,
    mode: ParamMode,
    record_paths: bool,
    hopset: &mut Hopset,
    ledger: &mut Ledger,
) -> (usize, usize) {
    // Scale to unit minimum weight (stretch-invariant).
    let factor = lvl.gk.min_weight().unwrap_or(1.0);
    let gk_scaled = lvl.gk.scaled_to_unit_min();
    let params = match HopsetParams::new(
        gk_scaled.num_vertices(),
        eps,
        kappa,
        rho,
        mode,
        gk_scaled.aspect_ratio_bound(),
        None,
    ) {
        Ok(p) => p,
        Err(_) => return (0, 2),
    };
    let built: BuiltHopset =
        build_hopset_on(exec, &gk_scaled, &params, BuildOptions { record_paths });
    ledger.absorb_sequential(&built.ledger);

    // Which 𝒢_k scales to keep: without path reporting, only the scales
    // covering the image of (2^k, 2^{k+1}] (eq. (28)'s size accounting);
    // with path reporting, all of them (Appendix D.1).
    let target_lo_scaled = (2.0f64).powi(k as i32) / factor;
    let min_keep_scale = if record_paths {
        0
    } else {
        target_lo_scaled.max(2.0).log2().floor().max(1.0) as u32 - 1
    };

    // Map 𝒢_k hopset edges (and memory paths) onto G. Mapped edge index
    // bookkeeping lets memory paths reference mapped lower-scale edges.
    let mut mapped_id: Vec<Option<u32>> = vec![None; built.hopset.len()];
    let mut mapped = 0usize;
    for (i, e) in built.hopset.iter().enumerate() {
        if e.scale < min_keep_scale {
            continue;
        }
        let cu = lvl.center[e.u as usize];
        let cv = lvl.center[e.v as usize];
        // Distinct nodes have distinct centers (a center is a member).
        debug_assert_ne!(cu, cv);
        let w = e.w * factor;
        let path_id = if record_paths {
            let gk_path = built
                .hopset
                .path_of(i as u32)
                .expect("path-reporting build");
            let mp = map_memory_path(lvl, gk_path, factor, &mapped_id, hopset);
            // Memory paths may be stored in either orientation.
            debug_assert_eq!(
                (mp.start().min(mp.end()), mp.start().max(mp.end())),
                (cu.min(cv), cu.max(cv))
            );
            Some(hopset.push_path(mp))
        } else {
            None
        };
        let gid = hopset.push(HopsetEdge {
            u: cu,
            v: cv,
            // The mapped weight must dominate the mapped path (center
            // detours add tree-path weight the 𝒢_k weight already budgets
            // for via eq. (21)'s (|X|+|Y|)·(ε/n)·2^k term).
            w,
            scale: encode_scale(k, Some(e.scale)),
            kind: e.kind,
            path: path_id,
        });
        mapped_id[i] = Some(gid);
        mapped += 1;
    }
    (mapped, built.params.query_hops)
}

/// Map a `𝒢_k` memory path (over nodes) to a `G` memory path (over original
/// vertices) routed through node centers: a node-graph edge `(X, Y)`
/// realized by original edge `(x, y)` becomes
/// `center(X) →tree x →graph y →tree center(Y)`; a node-hopset link becomes
/// the corresponding mapped hopset edge (Appendix D's center paths).
fn map_memory_path(
    lvl: &LevelNodes,
    gk_path: &MemoryPath,
    factor: f64,
    mapped_id: &[Option<u32>],
    hopset: &Hopset,
) -> MemoryPath {
    let mut out = MemoryPath::trivial(lvl.center[gk_path.start() as usize]);
    for (i, &(link, w)) in gk_path.links.iter().enumerate() {
        let from_node = gk_path.verts[i];
        let to_node = gk_path.verts[i + 1];
        match link {
            MemEdge::Base => {
                // Find the original edge behind this 𝒢_k edge.
                let (a, b) = (from_node.min(to_node), from_node.max(to_node));
                let idx = lvl
                    .gk
                    .edges()
                    .binary_search_by(|&(u, v, _)| (u, v).cmp(&(a, b)))
                    .expect("gk edge exists");
                let (x, y, ow) = lvl.orig_edge[idx];
                // Orient x inside from_node.
                let (x, y) = if lvl.node_of[x as usize] == from_node {
                    (x, y)
                } else {
                    (y, x)
                };
                // center(from) → x (tree), x → y (graph), y → center(to).
                let t1 = tree_path(lvl, x); // center → x
                out = out.concat(&t1);
                out.verts.push(y);
                out.links.push((MemEdge::Base, ow));
                let t2 = tree_path(lvl, y).reversed(); // y → center
                out = out.concat(&t2);
            }
            MemEdge::Hop(j) => {
                let gid = mapped_id[j as usize]
                    .expect("memory paths reference lower scales, mapped first");
                let e = hopset.edge(gid);
                let cur = out.end();
                let nxt = if e.u == cur {
                    e.v
                } else {
                    debug_assert_eq!(e.v, cur, "mapped path must be contiguous");
                    e.u
                };
                out.verts.push(nxt);
                out.links.push((MemEdge::Hop(gid), e.w));
                debug_assert!((e.w - w * factor).abs() <= 1e-6 * e.w.max(1.0));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{find_shortcut_violations, measure_stretch};
    use pgraph::exact::{bellman_ford_hops, dijkstra};
    use pgraph::{gen, UnionView};

    #[test]
    fn relevant_scales_cover_weights() {
        let g = gen::exponential_path(12, 4.0); // weights 1, 4, ..., 4^10
        let ks = relevant_scales(&g, 0.25 / 6.0);
        assert!(!ks.is_empty());
        for &(_, _, w) in g.edges() {
            let n = g.num_vertices() as f64;
            assert!(
                ks.iter().any(|&k| {
                    w > (0.25 / 6.0 / n) * 2f64.powi(k as i32) && w <= 2f64.powi(k as i32 + 1)
                }),
                "weight {w} uncovered"
            );
        }
    }

    #[test]
    fn reduced_hopset_on_huge_aspect_ratio() {
        // Aspect ratio 4^22: far beyond what poly(n) scales would cover
        // comfortably; the reduction contracts aggressively instead.
        let g = gen::exponential_path(24, 4.0);
        let r = build_reduced_hopset(
            &g,
            0.5,
            4,
            0.3,
            ParamMode::Practical,
            BuildOptions::default(),
        )
        .unwrap();
        assert!(find_shortcut_violations(&g, &r.hopset).is_empty());
        let rep = measure_stretch(&g, &r.hopset, &[0, 12, 23], r.query_hops);
        assert_eq!(rep.undershoots, 0);
        assert_eq!(rep.unreached, 0);
        assert!(rep.max_stretch <= 1.5 + 1e-9, "stretch {}", rep.max_stretch);
    }

    #[test]
    fn level_aspect_ratios_are_bounded() {
        let g = gen::wide_weights(64, 128, 12, 5);
        let eps = 0.25;
        let r = build_reduced_hopset(
            &g,
            eps,
            4,
            0.3,
            ParamMode::Practical,
            BuildOptions::default(),
        )
        .unwrap();
        let n = g.num_vertices() as f64;
        for lvl in &r.levels {
            if lvl.edges == 0 {
                continue;
            }
            // eq. (22): Λ(𝒢_k) = O(n/ε) for internal ε' = ε/6.
            let bound = (1.0 + 2.0 * eps / 6.0) * n / (eps / 6.0) * 2.0;
            assert!(
                lvl.aspect_ratio <= bound,
                "level {} aspect {} > {}",
                lvl.k,
                lvl.aspect_ratio,
                bound
            );
        }
    }

    #[test]
    fn star_count_within_lemma_c1() {
        let g = gen::wide_weights(96, 200, 14, 9);
        let r = build_reduced_hopset(
            &g,
            0.25,
            4,
            0.3,
            ParamMode::Practical,
            BuildOptions::default(),
        )
        .unwrap();
        let n = g.num_vertices() as f64;
        assert!(
            (r.star_edges as f64) <= n * n.log2(),
            "|S| = {} > n log n",
            r.star_edges
        );
    }

    #[test]
    fn stars_are_real_tree_paths() {
        let g = gen::wide_weights(48, 96, 10, 3);
        let r = build_reduced_hopset(
            &g,
            0.25,
            4,
            0.3,
            ParamMode::Practical,
            BuildOptions { record_paths: true },
        )
        .unwrap();
        let mut stars = 0;
        for (i, e) in r.hopset.iter().enumerate() {
            if !matches!(e.kind, EdgeKind::Star) {
                continue;
            }
            stars += 1;
            let mp = r.hopset.path_of(i as u32).expect("paths recorded");
            assert!(mp.links.iter().all(|l| matches!(l.0, MemEdge::Base)));
            assert!((mp.weight() - e.w).abs() <= 1e-9 * e.w.max(1.0));
            for (j, win) in mp.verts.windows(2).enumerate() {
                let gw = g.edge_weight(win[0], win[1]).expect("tree edge in G");
                assert!((gw - mp.links[j].1).abs() <= 1e-12 * gw.max(1.0));
            }
        }
        assert_eq!(stars, r.star_edges);
    }

    #[test]
    fn memory_paths_valid_for_reduced_hopset() {
        let g = gen::wide_weights(48, 96, 10, 3);
        let r = build_reduced_hopset(
            &g,
            0.25,
            4,
            0.3,
            ParamMode::Practical,
            BuildOptions { record_paths: true },
        )
        .unwrap();
        // Scale-order validation uses the encoded scales; weight and
        // path-reality checks are scale-agnostic.
        let errs: Vec<_> = crate::validate::check_memory_paths(&g, &r.hopset)
            .into_iter()
            .filter(|e| !matches!(e, crate::validate::MemoryPathError::TooHeavy { .. }))
            .collect();
        assert!(errs.is_empty(), "{errs:?}");
        // TooHeavy must not occur either: mapped weights budget the
        // detours via eq. (21).
        let heavy: Vec<_> = crate::validate::check_memory_paths(&g, &r.hopset)
            .into_iter()
            .filter(|e| matches!(e, crate::validate::MemoryPathError::TooHeavy { .. }))
            .collect();
        assert!(heavy.is_empty(), "{heavy:?}");
    }

    #[test]
    fn reduced_matches_plain_on_small_aspect() {
        // With unit-ish weights nothing contracts; the reduction must agree
        // with the plain pipeline's guarantees.
        let g = gen::gnm_connected(64, 160, 13, 1.0, 4.0);
        let r = build_reduced_hopset(
            &g,
            0.3,
            4,
            0.3,
            ParamMode::Practical,
            BuildOptions::default(),
        )
        .unwrap();
        assert_eq!(r.star_edges, 0, "no contraction at unit-ish weights");
        let rep = measure_stretch(&g, &r.hopset, &[0, 32], r.query_hops);
        assert_eq!(rep.undershoots, 0);
        assert!(rep.max_stretch <= 1.3 + 1e-9);
    }

    #[test]
    fn reduced_hopset_shortcuts_hops() {
        let g = gen::exponential_path(64, 2.0);
        let r = build_reduced_hopset(
            &g,
            0.5,
            4,
            0.3,
            ParamMode::Practical,
            BuildOptions::default(),
        )
        .unwrap();
        let sl = r.hopset.all_slice();
        let view = UnionView::with_overlay_columns(&g, sl.us(), sl.vs(), sl.ws());
        let cap = r.query_hops.min(32);
        let with = bellman_ford_hops(&view, &[0], cap);
        let exact = dijkstra(&g, 0).dist;
        for v in [32usize, 63] {
            assert!(with[v].is_finite(), "v={v} unreached at {cap} hops");
            assert!(with[v] <= 1.5 * exact[v] + 1e-9);
            assert!(with[v] >= exact[v] - 1e-6 * exact[v]);
        }
    }
}
