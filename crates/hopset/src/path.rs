//! Memory paths — the "memory property" of §4.1.
//!
//! A hopset edge `(u, v) ∈ H_k` has the *memory property* if it carries a
//! path `π_{G_{k-1}}(u, v)` in `G_{k-1} = (V, E ∪ H_{k-1})` of weight at most
//! the edge's weight, together with prefix distances (§4.1). The peeling
//! process of Algorithm 1 replaces hopset edges by these paths scale by
//! scale until only original edges remain.
//!
//! Two representations:
//! * [`MemoryPath`] — the materialized array `A(u, v)` of §4.1 (vertices,
//!   per-link provenance, weights);
//! * [`PathHandle`] — a persistent (structurally shared) builder used while
//!   labels propagate through explorations, so extending a path by one edge
//!   is O(1) and common prefixes are shared (an `Arc` cons list with
//!   spliced-in shared segments for the cluster-memory detours of §4.3).

use pgraph::{VId, Weight};
use std::sync::Arc;

/// Provenance of one link of a memory path: either an edge of the original
/// graph, or a hopset edge (identified by its global index in the
/// accumulated [`crate::Hopset`]), which a later peeling iteration will
/// itself expand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemEdge {
    /// An edge of the base graph `E`.
    Base,
    /// The hopset edge with this global index (always of a *lower* scale
    /// than the edge carrying this path — Lemma 4.2's termination argument).
    Hop(u32),
}

/// A materialized path: `verts[0] … verts[L]` with `links[i]` describing the
/// edge `verts[i] → verts[i+1]`.
#[derive(Clone, Debug, PartialEq)]
pub struct MemoryPath {
    /// The vertices, in order; length `L + 1` (at least 1).
    pub verts: Vec<VId>,
    /// Per-link provenance and weight; length `L`.
    pub links: Vec<(MemEdge, Weight)>,
}

impl MemoryPath {
    /// The trivial path sitting at `v`.
    pub fn trivial(v: VId) -> Self {
        MemoryPath {
            verts: vec![v],
            links: Vec::new(),
        }
    }

    /// First vertex.
    #[inline]
    pub fn start(&self) -> VId {
        self.verts[0]
    }

    /// Last vertex.
    #[inline]
    pub fn end(&self) -> VId {
        *self.verts.last().expect("non-empty")
    }

    /// Number of links (hops).
    #[inline]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True for a trivial single-vertex path.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Total weight.
    pub fn weight(&self) -> Weight {
        self.links.iter().map(|l| l.1).sum()
    }

    /// Prefix distances from `start()` to every vertex (length `L + 1`,
    /// first entry 0) — the `Ldist` field of §4.3's messages.
    pub fn prefix_dists(&self) -> Vec<Weight> {
        let mut out = Vec::with_capacity(self.verts.len());
        let mut acc = 0.0;
        out.push(0.0);
        for &(_, w) in &self.links {
            acc += w;
            out.push(acc);
        }
        out
    }

    /// The same path traversed end → start (undirected edges reverse freely).
    pub fn reversed(&self) -> MemoryPath {
        let mut verts = self.verts.clone();
        verts.reverse();
        let mut links = self.links.clone();
        links.reverse();
        MemoryPath { verts, links }
    }

    /// Concatenate with `other`, which must start where `self` ends.
    pub fn concat(&self, other: &MemoryPath) -> MemoryPath {
        assert_eq!(
            self.end(),
            other.start(),
            "concat endpoints must meet ({} vs {})",
            self.end(),
            other.start()
        );
        let mut verts = Vec::with_capacity(self.verts.len() + other.verts.len() - 1);
        verts.extend_from_slice(&self.verts);
        verts.extend_from_slice(&other.verts[1..]);
        let mut links = Vec::with_capacity(self.links.len() + other.links.len());
        links.extend_from_slice(&self.links);
        links.extend_from_slice(&other.links);
        MemoryPath { verts, links }
    }

    /// Structural sanity check: lengths match and every vertex id < `n`.
    pub fn validate(&self, n: usize) -> bool {
        self.verts.len() == self.links.len() + 1
            && self.verts.iter().all(|&v| (v as usize) < n)
            && self.links.iter().all(|l| l.1.is_finite() && l.1 >= 0.0)
    }
}

/// One node of the persistent path builder.
#[derive(Debug)]
pub struct PathNode {
    prev: Option<PathHandle>,
    step: PathStep,
}

/// One step of a persistent path.
#[derive(Debug)]
enum PathStep {
    /// The path begins at this vertex.
    Start(VId),
    /// Extend by a single edge to `to`.
    Edge { to: VId, via: MemEdge, w: Weight },
    /// Splice in a shared materialized segment, which must begin at the
    /// current end vertex (possibly reversed first). Used for the
    /// cluster-memory (`CP`) detours of §4.3.
    Segment { seg: Arc<MemoryPath>, reverse: bool },
}

/// Shared handle to a persistent path. Cloning is O(1).
pub type PathHandle = Arc<PathNode>;

impl Drop for PathNode {
    // Default recursive drop would overflow the stack on long cons lists
    // (labels accumulate one node per exploration hop); unlink iteratively.
    fn drop(&mut self) {
        let mut cur = self.prev.take();
        while let Some(node) = cur {
            match Arc::into_inner(node) {
                Some(mut inner) => cur = inner.prev.take(),
                None => break, // shared elsewhere: someone else will free it
            }
        }
    }
}

/// Start a persistent path at `v`.
pub fn path_start(v: VId) -> PathHandle {
    Arc::new(PathNode {
        prev: None,
        step: PathStep::Start(v),
    })
}

/// Extend by one edge. O(1).
pub fn path_extend(p: &PathHandle, to: VId, via: MemEdge, w: Weight) -> PathHandle {
    Arc::new(PathNode {
        prev: Some(p.clone()),
        step: PathStep::Edge { to, via, w },
    })
}

/// Splice a shared segment (reversed if `reverse`). The segment's entry
/// vertex (start, or end if reversed) must equal the path's current end;
/// checked at materialization. O(1).
pub fn path_splice(p: &PathHandle, seg: &Arc<MemoryPath>, reverse: bool) -> PathHandle {
    // Splicing a trivial segment is a no-op.
    if seg.is_empty() {
        return p.clone();
    }
    Arc::new(PathNode {
        prev: Some(p.clone()),
        step: PathStep::Segment {
            seg: seg.clone(),
            reverse,
        },
    })
}

/// The current end vertex of a persistent path.
pub fn path_end(p: &PathHandle) -> VId {
    match &p.step {
        PathStep::Start(v) => *v,
        PathStep::Edge { to, .. } => *to,
        PathStep::Segment { seg, reverse } => {
            if *reverse {
                seg.start()
            } else {
                seg.end()
            }
        }
    }
}

/// Materialize a persistent path into a [`MemoryPath`] (start → end).
/// Panics if spliced segments do not meet — construction-time logic error.
pub fn path_materialize(p: &PathHandle) -> MemoryPath {
    // Collect nodes back-to-front without recursion (paths can be long).
    let mut nodes: Vec<&PathNode> = Vec::new();
    let mut cur: Option<&PathHandle> = Some(p);
    while let Some(h) = cur {
        nodes.push(h);
        cur = h.prev.as_ref();
    }
    nodes.reverse();
    let mut out: Option<MemoryPath> = None;
    for node in nodes {
        match &node.step {
            PathStep::Start(v) => {
                debug_assert!(out.is_none(), "Start step must come first");
                out = Some(MemoryPath::trivial(*v));
            }
            PathStep::Edge { to, via, w } => {
                let path = out.as_mut().expect("path begins with Start");
                path.verts.push(*to);
                path.links.push((*via, *w));
            }
            PathStep::Segment { seg, reverse } => {
                let path = out.as_mut().expect("path begins with Start");
                let seg2;
                let seg_ref: &MemoryPath = if *reverse {
                    seg2 = seg.reversed();
                    &seg2
                } else {
                    seg
                };
                assert_eq!(
                    path.end(),
                    seg_ref.start(),
                    "spliced segment must start at the path end"
                );
                path.verts.extend_from_slice(&seg_ref.verts[1..]);
                path.links.extend_from_slice(&seg_ref.links);
            }
        }
    }
    out.expect("non-empty persistent path")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MemoryPath {
        MemoryPath {
            verts: vec![3, 7, 1],
            links: vec![(MemEdge::Base, 2.0), (MemEdge::Hop(5), 1.5)],
        }
    }

    #[test]
    fn basic_accessors() {
        let p = sample();
        assert_eq!(p.start(), 3);
        assert_eq!(p.end(), 1);
        assert_eq!(p.len(), 2);
        assert!((p.weight() - 3.5).abs() < 1e-12);
        assert_eq!(p.prefix_dists(), vec![0.0, 2.0, 3.5]);
        assert!(p.validate(8));
        assert!(!p.validate(7)); // vertex 7 out of range
    }

    #[test]
    fn trivial_path() {
        let t = MemoryPath::trivial(4);
        assert_eq!(t.start(), 4);
        assert_eq!(t.end(), 4);
        assert!(t.is_empty());
        assert_eq!(t.weight(), 0.0);
        assert_eq!(t.prefix_dists(), vec![0.0]);
    }

    #[test]
    fn reversal() {
        let p = sample();
        let r = p.reversed();
        assert_eq!(r.verts, vec![1, 7, 3]);
        assert_eq!(r.links, vec![(MemEdge::Hop(5), 1.5), (MemEdge::Base, 2.0)]);
        assert_eq!(r.reversed(), p);
    }

    #[test]
    fn concatenation() {
        let p = sample();
        let q = MemoryPath {
            verts: vec![1, 9],
            links: vec![(MemEdge::Base, 4.0)],
        };
        let c = p.concat(&q);
        assert_eq!(c.verts, vec![3, 7, 1, 9]);
        assert!((c.weight() - 7.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "concat endpoints must meet")]
    fn concat_mismatch_panics() {
        let p = sample();
        let q = MemoryPath::trivial(0);
        let _ = p.concat(&q);
    }

    #[test]
    fn persistent_build_and_materialize() {
        let h = path_start(0);
        let h = path_extend(&h, 2, MemEdge::Base, 1.0);
        let h = path_extend(&h, 5, MemEdge::Hop(3), 2.0);
        assert_eq!(path_end(&h), 5);
        let m = path_materialize(&h);
        assert_eq!(m.verts, vec![0, 2, 5]);
        assert_eq!(m.links, vec![(MemEdge::Base, 1.0), (MemEdge::Hop(3), 2.0)]);
    }

    #[test]
    fn persistent_sharing() {
        let root = path_start(1);
        let a = path_extend(&root, 2, MemEdge::Base, 1.0);
        let b = path_extend(&root, 3, MemEdge::Base, 1.0);
        assert_eq!(path_materialize(&a).end(), 2);
        assert_eq!(path_materialize(&b).end(), 3);
    }

    #[test]
    fn splice_forward_and_reverse() {
        let seg = Arc::new(MemoryPath {
            verts: vec![5, 6, 7],
            links: vec![(MemEdge::Base, 1.0), (MemEdge::Base, 2.0)],
        });
        let h = path_start(5);
        let fwd = path_splice(&h, &seg, false);
        assert_eq!(path_end(&fwd), 7);
        assert_eq!(path_materialize(&fwd).verts, vec![5, 6, 7]);

        let h2 = path_start(7);
        let rev = path_splice(&h2, &seg, true);
        assert_eq!(path_end(&rev), 5);
        assert_eq!(path_materialize(&rev).verts, vec![7, 6, 5]);
    }

    #[test]
    fn splice_trivial_is_noop() {
        let h = path_start(4);
        let seg = Arc::new(MemoryPath::trivial(9));
        let s = path_splice(&h, &seg, false);
        assert_eq!(path_materialize(&s).verts, vec![4]);
    }

    #[test]
    #[should_panic(expected = "spliced segment must start at the path end")]
    fn splice_mismatch_detected_at_materialize() {
        let h = path_start(0);
        let seg = Arc::new(MemoryPath {
            verts: vec![5, 6],
            links: vec![(MemEdge::Base, 1.0)],
        });
        let s = path_splice(&h, &seg, false);
        let _ = path_materialize(&s);
    }

    #[test]
    fn long_path_materializes_without_stack_overflow() {
        let mut h = path_start(0);
        for i in 1..100_000u32 {
            h = path_extend(&h, i % 1000, MemEdge::Base, 1.0);
        }
        let m = path_materialize(&h);
        assert_eq!(m.len(), 99_999);
    }
}
