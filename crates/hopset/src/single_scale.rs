//! One single-scale hopset `H_k` (§2.1): the superclustering-and-
//! interconnection phase loop.
//!
//! Phases `i ∈ [0, ℓ]`, input `P_i` (phase 0: singletons):
//!
//! 1. **Detection** (§2.1.1 / Lemma A.3): `deg_i + 1` parallel explorations
//!    to depth 1 in `G̃_i` give every cluster its array `m(C)`; `C` is
//!    *popular* iff `m(C)` is full (`≥ deg_i` neighbors).
//! 2. **Ruling set** (Corollary B.4): a `(3, 2·log n)`-ruling set `Q_i` for
//!    the popular clusters `W_i`.
//! 3. **Superclustering**: BFS to depth `2·log2 n` in `G̃_i` from `Q_i`;
//!    every detected cluster joins the supercluster of its detecting origin
//!    and its center gains a superclustering edge to the origin's center.
//!    `P_{i+1}` = the superclusters.
//! 4. **Interconnection** (§2.1.2): clusters not superclustered form `U_i`;
//!    each connects its center to the centers of its `m(C)`-neighbors that
//!    are also in `U_i`. Lemma 2.4 guarantees `U_i ∩ W_i = ∅`, so `m(C)` is
//!    complete for every `U_i` cluster.
//!
//! Phase `ℓ` skips superclustering; all of `P_ℓ` interconnects (eq. (5)
//! bounds `|P_ℓ| ≤ n^ρ` under valid parameters).
//!
//! Edge weights: `Theory` mode uses the paper's formulas (superclustering:
//! `2((1+ε_{k-1})δ_i + 2R_i)·log2 n`; interconnection: `d + 2R_i`), which
//! Lemmas 2.3/2.9 prove never undercut real distances. `Practical` mode uses
//! the *realized path weight* `pw` (never larger than the formula —
//! asserted — and trivially a real path's weight, so the no-shortcut
//! guarantee is by construction).

use crate::label::{Label, LabelArena};
use crate::params::{HopsetParams, ParamMode, ScaleParams};
use crate::partition::{Cluster, ClusterMemory, Partition};
use crate::path::path_materialize;
use crate::ruling::{ruling_set, RulingTrace};
use crate::store::{EdgeKind, Hopset, HopsetEdge};
use crate::virtual_bfs::{Detection, ExploreScratch, Explorer};
use pgraph::{UnionView, VId, Weight};
use pram::{Executor, Ledger};

/// Statistics of one phase (experiment E5/E6 fodder).
#[derive(Clone, Debug)]
pub struct PhaseStats {
    /// Phase index `i`.
    pub phase: usize,
    /// `|P_i|`.
    pub clusters: usize,
    /// `deg_i`.
    pub degree: usize,
    /// `|W_i|` (popular clusters).
    pub popular: usize,
    /// `|Q_i|` (ruling set size).
    pub ruling: usize,
    /// Number of clusters superclustered (including `Q_i` members).
    pub superclustered: usize,
    /// `|U_i|`.
    pub unclustered: usize,
    /// Superclustering edges added.
    pub super_edges: usize,
    /// Interconnection edges added.
    pub inter_edges: usize,
    /// Knock-out recursion trace of the ruling-set computation.
    pub ruling_trace: RulingTrace,
}

/// Outcome of one scale.
#[derive(Clone, Debug)]
pub struct ScaleReport {
    /// The scale `k`.
    pub k: u32,
    /// Per-phase statistics.
    pub phases: Vec<PhaseStats>,
    /// Edges added to `H_k`.
    pub edges_added: usize,
    /// Practical/Theory weight-bound violations observed (realized path
    /// weight exceeding the paper's formula weight) — must stay 0.
    pub weight_bound_violations: usize,
}

/// Context for building one scale.
pub struct ScaleContext<'a> {
    /// The executor every exploration round of the scale runs on.
    pub exec: &'a Executor,
    /// The exploration graph `G_{k-1} = (V, E ∪ H_{k-1})`. Overlay entries
    /// must carry global hopset edge ids (scale-block CSRs do).
    pub view: &'a UnionView<'a>,
    /// Global parameters.
    pub params: &'a HopsetParams,
    /// Scale-derived parameters.
    pub sp: &'a ScaleParams,
    /// Record memory paths (§4).
    pub record_paths: bool,
}

/// Build `H_k`, appending its edges into `hopset` (global ids stay stable).
pub fn build_single_scale(
    ctx: &ScaleContext<'_>,
    hopset: &mut Hopset,
    ledger: &mut Ledger,
) -> ScaleReport {
    let n = ctx.view.num_vertices();
    let p = ctx.params;
    let mut part = Partition::singletons(n);
    let mut cm = ClusterMemory::trivial(n, ctx.record_paths);
    let mut phases = Vec::with_capacity(p.ell + 1);
    let edges_before = hopset.len();
    let mut violations = 0usize;
    // One scratch serves every exploration of the scale (per-pulse label
    // tables and changed flags are reset, not reallocated).
    let mut scratch = ExploreScratch::new();

    for i in 0..=p.ell {
        let deg_i = p.degrees[i];
        let threshold = ctx.sp.thresholds[i];
        let ex = Explorer {
            exec: ctx.exec,
            view: ctx.view,
            part: &part,
            cm: &cm,
            threshold,
            hop_limit: p.hop_limit,
            record_paths: ctx.record_paths,
        };
        let n_clusters = part.len();
        if n_clusters == 0 {
            break;
        }

        if i == p.ell {
            // ---- Final phase: no superclustering; everyone interconnects.
            let x = n_clusters; // |P_ℓ| parallel explorations (§2.1.2)
            let m = {
                let _ph = pram::phase::PhaseScope::enter("detect");
                ex.detect_neighbors(x, &mut scratch, ledger)
            };
            let _ph = pram::phase::PhaseScope::enter("interconnect");
            let inter = interconnect(
                ctx,
                hopset,
                &part,
                &m,
                &(0..n_clusters as u32).collect::<Vec<_>>(),
                i,
                &mut violations,
            );
            phases.push(PhaseStats {
                phase: i,
                clusters: n_clusters,
                degree: deg_i,
                popular: 0,
                ruling: 0,
                superclustered: 0,
                unclustered: n_clusters,
                super_edges: 0,
                inter_edges: inter,
                ruling_trace: RulingTrace::default(),
            });
            break;
        }

        // ---- 1. Detection of popular clusters (x = deg_i + 1, d = 1).
        let x = deg_i + 1;
        let m = {
            let _ph = pram::phase::PhaseScope::enter("detect");
            ex.detect_neighbors(x, &mut scratch, ledger)
        };
        let popular: Vec<u32> = (0..n_clusters as u32)
            .filter(|&c| m.len_of(c as usize) >= x)
            .collect();

        // ---- 2 + 3. Ruling set, then superclustering BFS to depth
        // 2·log2 n from Q_i (one "supercluster" phase for the audit).
        let mut trace = RulingTrace::default();
        let (q_set, det) = {
            let _ph = pram::phase::PhaseScope::enter("supercluster");
            let q_set = ruling_set(&ex, &popular, &mut scratch, ledger, Some(&mut trace));
            let det = ex.bfs(&q_set, p.supercluster_depth(), &mut scratch, ledger);
            (q_set, det)
        };

        // Lemma 2.4: every popular cluster must be detected.
        debug_assert!(
            popular.iter().all(|&c| det[c as usize].is_some()),
            "popular cluster escaped superclustering (Lemma 2.4)"
        );

        // ---- 4. Interconnection of U_i (undetected clusters). Runs against
        // the *current* partition P_i, before superclusters replace it.
        let u_set: Vec<u32> = (0..n_clusters as u32)
            .filter(|&c| det[c as usize].is_none())
            .collect();
        let inter = {
            let _ph = pram::phase::PhaseScope::enter("interconnect");
            interconnect(ctx, hopset, &part, &m, &u_set, i, &mut violations)
        };

        // ---- 3b. Form the superclusters: rebuilds `part` into P_{i+1}.
        let super_edges = {
            let _ph = pram::phase::PhaseScope::enter("supercluster");
            form_superclusters(ctx, hopset, &mut part, &mut cm, &det, i, &mut violations)
        };

        let superclustered = n_clusters - u_set.len();
        phases.push(PhaseStats {
            phase: i,
            clusters: n_clusters,
            degree: deg_i,
            popular: popular.len(),
            ruling: q_set.len(),
            superclustered,
            unclustered: u_set.len(),
            super_edges,
            inter_edges: inter,
            ruling_trace: trace,
        });
    }

    ScaleReport {
        k: ctx.sp.k,
        phases,
        edges_added: hopset.len() - edges_before,
        weight_bound_violations: violations,
    }
}

/// Add interconnection edges for the clusters `u_set` (phase `i`): centers
/// of `C` and `C' ∈ Γ(C) ∩ U_i` get an edge of weight
/// `d^{(2β+1)}(C, C') + 2R_i` (Theory) or the realized path weight
/// (Practical). Returns the number of edges added.
fn interconnect(
    ctx: &ScaleContext<'_>,
    hopset: &mut Hopset,
    part: &Partition,
    m: &LabelArena,
    u_set: &[u32],
    phase: usize,
    violations: &mut usize,
) -> usize {
    // Sorted membership table (not a HashSet): lookup-only today, but a
    // sorted Vec can never grow an order-dependent iteration (xlint D1).
    let mut in_u: Vec<VId> = u_set.iter().map(|&c| part.center(c)).collect();
    in_u.sort_unstable();
    // Collect directed proposals, dedup by unordered pair keeping the
    // lightest realized weight (floating-point sums may differ by ulps
    // between the two directions).
    let mut proposals: Vec<(VId, VId, Weight, Option<&Label>)> = Vec::new();
    for &c in u_set {
        let rc = part.center(c);
        for l in m.labels(c as usize) {
            if l.src == rc || in_u.binary_search(&l.src).is_err() {
                continue;
            }
            let formula_w = ctx.sp.interconnect_weight(phase, l.dist);
            if l.pw > formula_w * (1.0 + 1e-9) {
                *violations += 1;
            }
            let w = match ctx.params.mode {
                ParamMode::Theory => formula_w.max(l.pw),
                ParamMode::Practical => l.pw.max(f64::MIN_POSITIVE),
            };
            let (a, b) = (rc.min(l.src), rc.max(l.src));
            proposals.push((a, b, w, ctx.record_paths.then_some(l)));
        }
    }
    proposals.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.cmp(&y.1)).then(x.2.total_cmp(&y.2)));
    proposals.dedup_by(|next, prev| next.0 == prev.0 && next.1 == prev.1);
    let count = proposals.len();
    for (u, v, w, label) in proposals {
        let path_id = label.map(|l| {
            let mp = path_materialize(l.path.as_ref().expect("path recorded"));
            hopset.push_path(mp)
        });
        hopset.push(HopsetEdge {
            u,
            v,
            w,
            scale: ctx.sp.k,
            kind: EdgeKind::Interconnect { phase: phase as u8 },
            path: path_id,
        });
    }
    count
}

/// Form the superclusters of phase `i` from the BFS detections, rebuild the
/// partition and cluster memory, and add superclustering edges. Returns the
/// number of edges added.
fn form_superclusters(
    ctx: &ScaleContext<'_>,
    hopset: &mut Hopset,
    part: &mut Partition,
    cm: &mut ClusterMemory,
    det: &[Option<Detection>],
    phase: usize,
    violations: &mut usize,
) -> usize {
    let n = part.cluster_of.len();
    let formula_w = ctx.sp.supercluster_weights[phase];
    let mut edges = 0usize;

    // Group detected clusters by origin, in deterministic order.
    let mut members_of: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    for (ci, d) in det.iter().enumerate() {
        if let Some(d) = d {
            members_of.entry(d.src_cluster).or_default().push(ci as u32);
        }
    }

    // Add superclustering edges and extend cluster memory.
    // Memory-path bookkeeping per absorbed cluster: (old center → new
    // center) path and weight, applied to each member below.
    let mut absorb: Vec<(u32, Option<crate::path::MemoryPath>, Weight)> = Vec::new();
    for (&q, members) in &members_of {
        let rq = part.center(q);
        for &c in members {
            if c == q {
                continue;
            }
            let d = det[c as usize].as_ref().expect("detected");
            let rc = part.center(c);
            let mem_path = d.path.as_ref().map(path_materialize);
            if let Some(mp) = &mem_path {
                debug_assert_eq!(mp.start(), rq);
                debug_assert_eq!(mp.end(), rc);
            }
            let (w, path_id) = match ctx.params.mode {
                ParamMode::Theory => {
                    if d.pw > formula_w * (1.0 + 1e-9) {
                        *violations += 1;
                    }
                    let pid = mem_path.clone().map(|p| hopset.push_path(p));
                    (formula_w.max(d.pw), pid)
                }
                ParamMode::Practical => {
                    if d.pw > formula_w * (1.0 + 1e-9) {
                        *violations += 1;
                    }
                    let pid = mem_path.clone().map(|p| hopset.push_path(p));
                    (d.pw.max(f64::MIN_POSITIVE), pid)
                }
            };
            hopset.push(HopsetEdge {
                u: rc,
                v: rq,
                w,
                scale: ctx.sp.k,
                kind: EdgeKind::Supercluster { phase: phase as u8 },
                path: path_id,
            });
            edges += 1;
            // Members of c will extend memory by the rc → rq path.
            absorb.push((c, mem_path.map(|p| p.reversed()), d.pw));
        }
    }

    // Extend the cluster memory of members of absorbed clusters.
    for (c, rev_path, w) in &absorb {
        let members = part.clusters[*c as usize].members.clone();
        for v in members {
            cm.extend(v, rev_path.as_ref(), *w);
        }
    }

    // Rebuild the partition: one cluster per origin q.
    let mut new_clusters: Vec<Cluster> = Vec::with_capacity(members_of.len());
    for (&q, members) in &members_of {
        let mut verts: Vec<VId> = Vec::new();
        for &c in members {
            verts.extend_from_slice(&part.clusters[c as usize].members);
        }
        verts.sort_unstable();
        new_clusters.push(Cluster {
            center: part.center(q),
            members: verts,
        });
    }
    new_clusters.sort_by_key(|c| c.center);
    let mut cluster_of: Vec<Option<u32>> = vec![None; n];
    for (ci, cl) in new_clusters.iter().enumerate() {
        for &v in &cl.members {
            cluster_of[v as usize] = Some(ci as u32);
        }
    }
    *part = Partition {
        cluster_of,
        clusters: new_clusters,
    };
    debug_assert!(part.validate(n));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamMode;
    use pgraph::gen;

    fn scale_setup(n: usize, mode: ParamMode) -> (HopsetParams, ScaleParams) {
        // Scale k = 5 (distances 32..64): with ε = 0.25 and ℓ = 4 the phase
        // thresholds start at δ_0 = 64·0.25³ = 1, matching unit weights.
        let p = HopsetParams::new(n, 0.25, 4, 0.3, mode, n as f64, None).unwrap();
        let sp = ScaleParams::derive(&p, 5, 0.0);
        (p, sp)
    }

    #[test]
    fn builds_a_scale_on_clique_chain() {
        // Dense cliques: superclustering must fire.
        let g = gen::clique_chain(4, 8, 2.0);
        let (p, sp) = scale_setup(g.num_vertices(), ParamMode::Practical);
        let view = UnionView::base_only(&g);
        let exec = Executor::shared(2);
        let ctx = ScaleContext {
            exec: &exec,
            view: &view,
            params: &p,
            sp: &sp,
            record_paths: false,
        };
        let mut h = Hopset::new();
        let mut led = Ledger::new();
        let report = build_single_scale(&ctx, &mut h, &mut led);
        assert!(report.edges_added > 0);
        assert_eq!(report.weight_bound_violations, 0);
        assert!(!report.phases.is_empty());
        // Phase 0 on 32 singletons with deg_0 = n^{1/4} ≈ 3: cliques are
        // popular areas, so some superclustering happened.
        let ph0 = &report.phases[0];
        assert_eq!(ph0.clusters, 32);
        assert!(ph0.popular > 0, "cliques must contain popular clusters");
        assert!(ph0.super_edges > 0);
    }

    #[test]
    fn sparse_scale_interconnects_only() {
        // A path with unit weights at scale k=4 (distances 16..32): with
        // small thresholds at early phases nothing is popular for deg >= 3.
        let g = gen::path(24);
        let (p, sp) = scale_setup(24, ParamMode::Practical);
        let view = UnionView::base_only(&g);
        let exec = Executor::shared(2);
        let ctx = ScaleContext {
            exec: &exec,
            view: &view,
            params: &p,
            sp: &sp,
            record_paths: false,
        };
        let mut h = Hopset::new();
        let mut led = Ledger::new();
        let report = build_single_scale(&ctx, &mut h, &mut led);
        assert_eq!(report.weight_bound_violations, 0);
        // All edges must connect distinct vertices with positive weights.
        for e in h.iter() {
            assert_ne!(e.u, e.v);
            assert!(e.w > 0.0);
        }
    }

    #[test]
    fn interconnect_edges_never_undercut_distances() {
        let g = gen::gnm_connected(48, 120, 7, 1.0, 3.0);
        let (p, sp) = scale_setup(48, ParamMode::Practical);
        let view = UnionView::base_only(&g);
        let exec = Executor::shared(2);
        let ctx = ScaleContext {
            exec: &exec,
            view: &view,
            params: &p,
            sp: &sp,
            record_paths: false,
        };
        let mut h = Hopset::new();
        let mut led = Ledger::new();
        let report = build_single_scale(&ctx, &mut h, &mut led);
        assert_eq!(report.weight_bound_violations, 0);
        for e in h.iter() {
            let exact = pgraph::exact::dijkstra(&g, e.u).dist[e.v as usize];
            assert!(
                e.w >= exact - 1e-6,
                "edge ({},{}) w={} undercuts d_G={}",
                e.u,
                e.v,
                e.w,
                exact
            );
        }
    }

    #[test]
    fn memory_paths_match_edges() {
        let g = gen::clique_chain(3, 6, 2.0);
        let (p, sp) = scale_setup(g.num_vertices(), ParamMode::Practical);
        let view = UnionView::base_only(&g);
        let exec = Executor::shared(2);
        let ctx = ScaleContext {
            exec: &exec,
            view: &view,
            params: &p,
            sp: &sp,
            record_paths: true,
        };
        let mut h = Hopset::new();
        let mut led = Ledger::new();
        let report = build_single_scale(&ctx, &mut h, &mut led);
        assert!(report.edges_added > 0);
        for (i, e) in h.iter().enumerate() {
            let mp = h.path_of(i as u32).expect("paths recorded");
            // Path endpoints match the edge (in either orientation).
            let ends = (mp.start().min(mp.end()), mp.start().max(mp.end()));
            assert_eq!(ends, (e.u.min(e.v), e.u.max(e.v)));
            // Memory property: path weight ≤ edge weight (§4.1).
            assert!(
                mp.weight() <= e.w * (1.0 + 1e-9),
                "memory path heavier than its edge"
            );
            // Practical mode: weight IS the path weight.
            assert!((mp.weight() - e.w).abs() <= 1e-9 * e.w.max(1.0));
            assert!(mp.validate(g.num_vertices()));
        }
    }

    #[test]
    fn theory_mode_weights_use_formulas() {
        let g = gen::clique_chain(3, 6, 2.0);
        let (p, sp) = scale_setup(g.num_vertices(), ParamMode::Theory);
        let view = UnionView::base_only(&g);
        let exec = Executor::shared(2);
        let ctx = ScaleContext {
            exec: &exec,
            view: &view,
            params: &p,
            sp: &sp,
            record_paths: false,
        };
        let mut h = Hopset::new();
        let mut led = Ledger::new();
        let report = build_single_scale(&ctx, &mut h, &mut led);
        assert_eq!(
            report.weight_bound_violations, 0,
            "pw must stay within formula bounds"
        );
        for e in h.iter() {
            match e.kind {
                EdgeKind::Supercluster { phase } => {
                    assert!((e.w - sp.supercluster_weights[phase as usize]).abs() < 1e-9);
                }
                EdgeKind::Interconnect { phase } => {
                    assert!(e.w >= 2.0 * sp.radii[phase as usize] - 1e-9);
                }
                EdgeKind::Star => unreachable!("no star edges in single scale"),
            }
        }
    }

    #[test]
    fn determinism_of_scale_construction() {
        let g = gen::gnm_connected(40, 100, 9, 1.0, 4.0);
        let (p, sp) = scale_setup(40, ParamMode::Practical);
        let view = UnionView::base_only(&g);
        let exec = Executor::shared(2);
        let ctx = ScaleContext {
            exec: &exec,
            view: &view,
            params: &p,
            sp: &sp,
            record_paths: false,
        };
        let mut h1 = Hopset::new();
        let mut h2 = Hopset::new();
        let mut l1 = Ledger::new();
        let mut l2 = Ledger::new();
        build_single_scale(&ctx, &mut h1, &mut l1);
        build_single_scale(&ctx, &mut h2, &mut l2);
        assert_eq!(h1.len(), h2.len());
        for (a, b) in h1.iter().zip(h2.iter()) {
            assert_eq!((a.u, a.v, a.scale), (b.u, b.v, b.scale));
            assert_eq!(a.w, b.w);
        }
        assert_eq!(l1, l2);
    }

    #[test]
    fn cluster_count_decay_bounds() {
        // Lemma 2.6: |P_{i+1}| ≤ |P_i| / deg_i when superclustering fires;
        // globally |P_i| is non-increasing.
        let g = gen::clique_chain(6, 8, 2.0);
        let (p, sp) = scale_setup(g.num_vertices(), ParamMode::Practical);
        let view = UnionView::base_only(&g);
        let exec = Executor::shared(2);
        let ctx = ScaleContext {
            exec: &exec,
            view: &view,
            params: &p,
            sp: &sp,
            record_paths: false,
        };
        let mut h = Hopset::new();
        let mut led = Ledger::new();
        let report = build_single_scale(&ctx, &mut h, &mut led);
        for w in report.phases.windows(2) {
            assert!(w[1].clusters <= w[0].clusters);
        }
        // Lemma 2.5: every supercluster has ≥ deg_i + 1 clusters, so the
        // supercluster count is at most superclustered/(deg_i+1).
        for ph in &report.phases {
            if ph.super_edges > 0 {
                assert!(ph.superclustered >= ph.ruling * (ph.degree + 1));
            }
        }
    }
}
