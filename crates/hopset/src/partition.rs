//! Cluster partitions `P_i` and per-vertex cluster memory (§2.1, §4.3).
//!
//! Each phase's input is a collection of clusters `P_i`; every cluster `C`
//! is centered at a vertex `r_C ∈ C` and identified by `r_C`'s id (§1.5).
//! Vertices whose cluster joined some `U_j` (j < i) are no longer clustered
//! (`cluster_of = None`) but still relay exploration messages.

use crate::path::MemoryPath;
use pgraph::{VId, Weight};
use std::sync::Arc;

/// One cluster: a center and its members (sorted, includes the center).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cluster {
    /// The center `r_C`; the cluster's id is this vertex's id.
    pub center: VId,
    /// All member vertices, ascending (contains `center`).
    pub members: Vec<VId>,
}

/// The collection `P_i`.
#[derive(Clone, Debug, Default)]
pub struct Partition {
    /// `cluster_of[v]` = index into `clusters` of the cluster containing
    /// `v`, or `None` if `v` is no longer clustered (already in `U^{(j)}`).
    pub cluster_of: Vec<Option<u32>>,
    /// Clusters sorted by center id (deterministic iteration order).
    pub clusters: Vec<Cluster>,
}

impl Partition {
    /// `P_0`: every vertex is a singleton cluster centered at itself.
    pub fn singletons(n: usize) -> Partition {
        Partition {
            cluster_of: (0..n as u32).map(Some).collect(),
            clusters: (0..n as VId)
                .map(|v| Cluster {
                    center: v,
                    members: vec![v],
                })
                .collect(),
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True if no clusters remain.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The center of cluster index `c`.
    #[inline]
    pub fn center(&self, c: u32) -> VId {
        self.clusters[c as usize].center
    }

    /// Index of the cluster centered at `center_id`, if any.
    pub fn index_of_center(&self, center_id: VId) -> Option<u32> {
        self.clusters
            .binary_search_by_key(&center_id, |c| c.center)
            .ok()
            .map(|i| i as u32)
    }

    /// Check the partition invariant (Lemma 2.10 maintains it): every vertex
    /// belongs to at most one cluster, clusters are disjoint and sorted by
    /// center, centers are members.
    pub fn validate(&self, n: usize) -> bool {
        if self.cluster_of.len() != n {
            return false;
        }
        let mut seen = vec![false; n];
        for (ci, cl) in self.clusters.iter().enumerate() {
            if !cl.members.windows(2).all(|w| w[0] < w[1]) {
                return false;
            }
            if !cl.members.contains(&cl.center) {
                return false;
            }
            for &m in &cl.members {
                if seen[m as usize] || self.cluster_of[m as usize] != Some(ci as u32) {
                    return false;
                }
                seen[m as usize] = true;
            }
        }
        // Sorted by center and every unclustered vertex has None.
        self.clusters.windows(2).all(|w| w[0].center < w[1].center)
            && (0..n).all(|v| seen[v] || self.cluster_of[v].is_none())
    }
}

/// Per-vertex cluster memory (the `CP(v)/CD(v)` arrays of §4.3): the path
/// from `v` to its cluster's center within `E ∪ H_{k-1}` and its weight.
/// Weights are always maintained (cheap scalars — they feed edge-weight
/// assignment); paths only when building a path-reporting hopset.
#[derive(Clone, Debug)]
pub struct ClusterMemory {
    /// `cpw[v]` = weight of the stored `v → center` path (0 for centers and
    /// unclustered vertices).
    pub weight: Vec<Weight>,
    /// `path[v]` = the `v → center` path; `Some` iff recording paths.
    pub path: Option<Vec<Arc<MemoryPath>>>,
}

impl ClusterMemory {
    /// Phase-0 memory: every vertex is its own center.
    pub fn trivial(n: usize, record_paths: bool) -> ClusterMemory {
        ClusterMemory {
            weight: vec![0.0; n],
            path: record_paths.then(|| {
                (0..n as VId)
                    .map(|v| Arc::new(MemoryPath::trivial(v)))
                    .collect()
            }),
        }
    }

    /// The stored path of `v` (panics if paths are not recorded).
    pub fn path_of(&self, v: VId) -> &Arc<MemoryPath> {
        &self.path.as_ref().expect("paths recorded")[v as usize]
    }

    /// Extend `v`'s memory: its old center `r` was absorbed into a
    /// supercluster centered at `r'` via a path `r → r'` of weight `w`.
    pub fn extend(&mut self, v: VId, center_path: Option<&MemoryPath>, w: Weight) {
        self.weight[v as usize] += w;
        if let Some(paths) = &mut self.path {
            let p = center_path.expect("path required in path mode");
            let joined = paths[v as usize].concat(p);
            paths[v as usize] = Arc::new(joined);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::MemEdge;

    #[test]
    fn singleton_partition_is_valid() {
        let p = Partition::singletons(5);
        assert_eq!(p.len(), 5);
        assert!(p.validate(5));
        assert_eq!(p.center(3), 3);
        assert_eq!(p.index_of_center(2), Some(2));
    }

    #[test]
    fn index_of_center_binary_search() {
        let p = Partition {
            cluster_of: vec![Some(0), None, Some(1), Some(1)],
            clusters: vec![
                Cluster {
                    center: 0,
                    members: vec![0],
                },
                Cluster {
                    center: 2,
                    members: vec![2, 3],
                },
            ],
        };
        assert!(p.validate(4));
        assert_eq!(p.index_of_center(2), Some(1));
        assert_eq!(p.index_of_center(1), None);
    }

    #[test]
    fn validate_catches_overlap() {
        let p = Partition {
            cluster_of: vec![Some(0), Some(0), Some(1)],
            clusters: vec![
                Cluster {
                    center: 0,
                    members: vec![0, 1],
                },
                Cluster {
                    center: 1, // center 1 also a member of cluster 0 → invalid
                    members: vec![1, 2],
                },
            ],
        };
        assert!(!p.validate(3));
    }

    #[test]
    fn validate_requires_center_membership() {
        let p = Partition {
            cluster_of: vec![Some(0), Some(0)],
            clusters: vec![Cluster {
                center: 5,
                members: vec![0, 1],
            }],
        };
        assert!(!p.validate(2));
    }

    #[test]
    fn cluster_memory_weights() {
        let mut cm = ClusterMemory::trivial(4, false);
        assert_eq!(cm.weight, vec![0.0; 4]);
        cm.extend(2, None, 3.5);
        assert_eq!(cm.weight[2], 3.5);
        assert!(cm.path.is_none());
    }

    #[test]
    fn cluster_memory_paths() {
        let mut cm = ClusterMemory::trivial(4, true);
        assert_eq!(cm.path_of(1).start(), 1);
        // Vertex 1's center 1 was absorbed by center 3 via edge 1-3.
        let bridge = MemoryPath {
            verts: vec![1, 3],
            links: vec![(MemEdge::Base, 2.0)],
        };
        cm.extend(1, Some(&bridge), 2.0);
        assert_eq!(cm.weight[1], 2.0);
        let p = cm.path_of(1);
        assert_eq!(p.start(), 1);
        assert_eq!(p.end(), 3);
        assert!((p.weight() - 2.0).abs() < 1e-12);
    }
}
